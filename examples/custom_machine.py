#!/usr/bin/env python3
"""Bring your own machine: evaluate the paper's designs on new hardware.

The machine catalog is plain dataclasses, so a downstream user can describe
a hypothetical (or future) system and re-ask the paper's question on it:
*does overlap still pay when the hardware balance shifts?*

Here we sketch a modern-style node — few fat GPUs behind a fast, low-latency
link (the paper's §VI closing speculation) — and run the single-node ladder.
On such a node, moving boundary work through the host stops being
catastrophic, but the full-overlap hybrid still wins by hiding everything.
"""

from repro.core.config import RunConfig
from repro.core.runner import run
from repro.machines.spec import GpuSpec, InterconnectSpec, MachineSpec, NodeSpec
from repro.perf.sweep import best_over_threads

# A hypothetical 2015-ish node: 16 faster cores, an NVLink-class host link,
# and a GPU with ~4x the C2050's stencil throughput.
FUTURA = MachineSpec(
    name="Futura",
    compute_nodes=8,
    node=NodeSpec(
        sockets=2,
        cores_per_socket=8,
        clock_ghz=3.0,
        memory_gb=128,
        numa_domains_per_socket=1,
        stencil_flop_efficiency=0.25,
        numa_bandwidth_gbs=40.0,
        memcpy_bandwidth_gbs=15.0,
    ),
    interconnect=InterconnectSpec(
        name="EDR-class fabric",
        mpi_name="hypothetical MPI",
        latency_us=1.0,
        bandwidth_gbs=12.0,
        per_message_cpu_us=0.5,
        overlap_fraction=0.9,
        eager_threshold_bytes=8192,
    ),
    gpu=GpuSpec(
        name="HypoGPU",
        memory_gb=16,
        sm_count=56,
        warp_size=32,
        max_threads_per_block=1024,
        max_threads_per_sm=2048,
        max_blocks_per_sm=16,
        shared_mem_per_sm_kb=96.0,
        dp_peak_gflops=2000.0,
        mem_bandwidth_gbs=500.0,
        pcie_bandwidth_gbs=40.0,  # NVLink-class
        pcie_unpinned_gbs=10.0,
        pcie_latency_us=2.0,
        copy_engines=2,
        stencil_gflops_best=350.0,
        face_kernel_gflops=4.0,  # caches soften the strided faces
        thin_slab_efficiency=0.25,
        register_file_size=65536,
        regs_per_thread=20,
        by_sweet_spot=8.0,
    ),
    gpus_per_node=1,
    thread_options=(1, 2, 4, 8, 16),
    figure_core_counts=(16, 32, 64, 128),
)


def main():
    print(f"=== single {FUTURA.name} node, 420^3 ===")
    resident = run(
        RunConfig(machine=FUTURA, implementation="gpu_resident",
                  cores=16, threads_per_task=16)
    ).gflops
    print(f"{'gpu_resident':16s} {resident:7.1f} GF")
    rows = {}
    for key in ("bulk", "gpu_bulk", "gpu_streams", "hybrid_overlap"):
        res = best_over_threads(FUTURA, key, 16)
        rows[key] = res.gflops
        print(f"{key:16s} {res.gflops:7.1f} GF")
    print()
    gap_then = 86.0 / 24.0  # Yona's resident/bulk ratio (paper §V-E)
    gap_now = resident / rows["gpu_bulk"]
    print(
        f"resident/gpu_bulk gap: {gap_then:.1f}x on Yona -> {gap_now:.1f}x here —\n"
        "a faster host link shrinks the §IV-F penalty, as §VI predicted,\n"
        f"yet the hybrid ({rows['hybrid_overlap']:.0f} GF) still tracks the "
        f"resident kernel ({resident:.0f} GF).\n"
    )


if __name__ == "__main__":
    main()
