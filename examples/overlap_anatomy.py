#!/usr/bin/env python3
"""Anatomy of the overlap win: reproduce the paper's §V-E argument.

The paper's key insight is that the hybrid implementation's dramatic win is
*not* load balancing — the CPU box is a mere veneer — but the decoupling of
MPI communication from CPU-GPU communication. This example rebuilds that
argument on one simulated Yona node:

1. measure the four GPU implementations (resident / bulk / streams / hybrid);
2. show the hybrid's best box is thin, and its CPU work share tiny;
3. as an extension of §VI's closing observation, re-run the §IV-F/G codes
   with a hypothetical faster CPU-GPU link to show how much of their loss
   is the PCIe path.
"""

from dataclasses import replace

from repro import RunConfig, YONA, run
from repro.decomp.boxdecomp import BoxDecomposition
from repro.perf.sweep import best_over_threads


def single_node_ladder():
    print("=== one Yona node, 420^3 (paper §V-E: 86 / 24 / 35 / 82 GF) ===")
    resident = run(
        RunConfig(machine=YONA, implementation="gpu_resident", cores=12,
                  threads_per_task=12)
    ).gflops
    print(f"{'gpu_resident':16s} {resident:6.1f} GF   (everything stays on the GPU)")
    for key, note in (
        ("gpu_bulk", "CPU does MPI, all serialized"),
        ("gpu_streams", "interior kernel overlaps MPI+PCIe"),
        ("hybrid_overlap", "CPU veneer decouples MPI from PCIe"),
    ):
        res = best_over_threads(YONA, key, 12)
        print(f"{key:16s} {res.gflops:6.1f} GF   ({note})")
    print()


def thin_box_analysis():
    print("=== the winning box is a veneer, not a load balancer ===")
    best = best_over_threads(YONA, "hybrid_overlap", 12, thicknesses=range(1, 13))
    cfg = best.config
    box = BoxDecomposition((420, 420, 420 // cfg.ntasks), cfg.box_thickness)
    print(
        f"best config: {cfg.ntasks} task(s), thickness {cfg.box_thickness} -> "
        f"{best.gflops:.1f} GF"
    )
    print(
        f"CPU share of the points: {box.cpu_fraction:.1%} — the 12 CPU cores "
        "mostly stage communication, not computation.\n"
    )


def faster_pcie_what_if():
    print("=== §VI what-if: a faster, lower-latency CPU-GPU link ===")
    print("(gpu_bulk best GF as the synchronous-copy path speeds up)")
    for factor in (1, 2, 4, 8):
        gpu = replace(
            YONA.gpu,
            pcie_unpinned_gbs=YONA.gpu.pcie_unpinned_gbs * factor,
            pcie_bandwidth_gbs=YONA.gpu.pcie_bandwidth_gbs * factor,
            pcie_latency_us=YONA.gpu.pcie_latency_us / factor,
        )
        machine = replace(YONA, gpu=gpu)
        res = best_over_threads(machine, "gpu_bulk", 12)
        print(f"  {factor:2d}x PCIe -> {res.gflops:6.1f} GF")
    print(
        "\nEven an 8x link leaves gpu_bulk far below the resident 86 GF: the\n"
        "one-point-thick boundary-face kernels, not the bus, dominate — the\n"
        "cost the hybrid implementation removes by giving those points to\n"
        "the CPUs.\n"
    )


def timeline():
    print("=== one traced step of the full-overlap implementation ===")
    r = run(RunConfig(machine=YONA, implementation="hybrid_overlap", cores=12,
                      threads_per_task=12, box_thickness=2, trace=True))
    tr = r.tracer
    t0, _ = tr.span()
    print(tr.timeline_text(width=100, window=(t0, t0 + r.seconds_per_step)))
    hidden = tr.overlap_time("host", "gpu-kernel")
    print(
        f"\nGPU kernels busy {tr.busy_time('gpu-kernel') * 1e3:.1f} ms, host busy "
        f"{tr.busy_time('host') * 1e3:.1f} ms, {hidden * 1e3:.1f} ms of host work "
        "hidden under kernels — the overlap the paper is about.\n"
    )


if __name__ == "__main__":
    single_node_ladder()
    thin_box_analysis()
    timeline()
    faster_pcie_what_if()
