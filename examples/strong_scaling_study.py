#!/usr/bin/env python3
"""Strong-scaling study: the climate-motivated workload of the paper.

The paper's intro motivates the test with climate/weather simulation, where
the grid is fixed (physics parameterizations depend on it) and speed must
come from more parallelism — a strong-scaling problem. This example sweeps
the 420^3 advection step across core counts on two machines:

* JaguarPF (CPU-only): does overlapping MPI with computation pay?
* Yona (GPU cluster): how much does the full CPU+GPU overlap buy?

Each data point is the best over the paper's tuning space, like Figs. 3/10.
"""

from repro.machines import JAGUARPF, YONA
from repro.perf.sweep import best_over_threads


def cpu_study():
    print("=== JaguarPF: is MPI overlap worth it? (Fig. 3 regime) ===")
    print(f"{'cores':>7s} {'bulk GF':>10s} {'nonblocking GF':>15s} {'winner':>12s}")
    for cores in (192, 1536, 3072, 6144, 12288):
        bulk = best_over_threads(JAGUARPF, "bulk", cores).gflops
        nonb = best_over_threads(JAGUARPF, "nonblocking", cores).gflops
        winner = "overlap" if nonb > bulk else "bulk-sync"
        print(f"{cores:7d} {bulk:10.1f} {nonb:15.1f} {winner:>12s}")
    print(
        "\nAs the paper found: overlap helps (slightly) while subdomains are\n"
        "large, then loses to its own partitioning overhead as the work per\n"
        "core dwindles.\n"
    )


def gpu_study():
    print("=== Yona: the payoff of full CPU+GPU overlap (Fig. 10 regime) ===")
    print(f"{'cores':>7s} {'CPU-only':>10s} {'GPU+streams':>12s} {'hybrid':>10s} {'hybrid/CPU':>11s}")
    for cores in YONA.figure_core_counts:
        cpu = best_over_threads(YONA, "bulk", cores).gflops
        gpu = best_over_threads(YONA, "gpu_streams", cores).gflops
        hyb = best_over_threads(YONA, "hybrid_overlap", cores).gflops
        print(f"{cores:7d} {cpu:10.1f} {gpu:12.1f} {hyb:10.1f} {hyb / cpu:10.1f}x")
    print(
        "\nThe hybrid implementation overlaps CPU compute, GPU compute, MPI\n"
        "and PCIe traffic, and exceeds 4x the best CPU-only rate — more than\n"
        "the sum of its parts (paper §V-D).\n"
    )


if __name__ == "__main__":
    cpu_study()
    gpu_study()
