#!/usr/bin/env python3
"""Quickstart: run the paper's best implementation and verify the numerics.

Two runs:

1. a *performance* run of the full-overlap CPU+GPU implementation (§IV-I)
   on one simulated Yona node at the paper's 420^3 problem size — compare
   the GF figure with the paper's ~82 GF;
2. a *functional* run on a small grid with every rank simulated and real
   NumPy fields, verified against the analytic solution (a Gaussian that
   returns to its starting point after one period).
"""

from repro import RunConfig, YONA, run


def performance_run():
    print("=== performance: hybrid overlap on one Yona node (420^3) ===")
    cfg = RunConfig(
        machine=YONA,
        implementation="hybrid_overlap",
        cores=12,
        threads_per_task=6,
        box_thickness=3,  # the paper's best single-node config
    )
    result = run(cfg)
    print(result.summary())
    print(f"paper reports ~82 GF for this configuration (§V-E)\n")


def functional_run():
    print("=== functional: verify against the analytic solution ===")
    cfg = RunConfig(
        machine=YONA,
        implementation="hybrid_overlap",
        cores=12,
        threads_per_task=6,
        box_thickness=2,
        steps=8,
        domain=(24, 24, 24),
        functional=True,
        network="full",  # every rank simulated, real halo payloads
    )
    result = run(cfg)
    print(result.summary())
    print("error norms vs analytic solution:")
    for name, value in result.norms.items():
        print(f"  {name:5s} = {value:.3e}")
    assert result.norms["linf"] < 0.2, "numerics diverged!"
    print("verification passed\n")


if __name__ == "__main__":
    performance_run()
    functional_run()
