#!/usr/bin/env python3
"""GPU block-size tuning and the paper's auto-tuning outlook (§V-C, §VI).

Sweeps the 2-D thread-block space of the GPU-resident kernel on both GPU
generations (Figs. 7/8), then runs the greedy auto-tuner over the full
(threads/task, box thickness, block) space to show that coordinate descent
finds a near-optimal configuration at a fraction of the evaluations — the
tuning problem the paper's conclusion poses.
"""

from repro.autotune import exhaustive_search, greedy_search
from repro.machines import LENS, YONA
from repro.simgpu.blockmodel import best_block, kernel_rate_gflops


def block_sweep():
    for machine in (LENS, YONA):
        gpu = machine.gpu
        print(f"=== {machine.name} ({gpu.name}): GPU-resident GF by block size ===")
        header = "y/x"
        print(f"{header:>5s}" + "".join(f"{bx:>9d}" for bx in (16, 32, 64, 128)))
        for by in range(2, 17, 2):
            row = [f"{by:5d}"]
            for bx in (16, 32, 64, 128):
                if bx * by > gpu.max_threads_per_block:
                    row.append(f"{'-':>9s}")
                else:
                    row.append(f"{kernel_rate_gflops(gpu, (bx, by)):9.1f}")
            print("".join(row))
        bb = best_block(gpu)
        print(
            f"best block {bb[0]}x{bb[1]} -> {kernel_rate_gflops(gpu, bb):.1f} GF "
            f"(paper: 32x11 on C1060, 32x8 at 86 GF on C2050)\n"
        )


def autotune_demo():
    print("=== auto-tuning the hybrid implementation on 4 Yona nodes ===")
    exhaustive = exhaustive_search(YONA, "hybrid_overlap", 48)
    greedy = greedy_search(YONA, "hybrid_overlap", 48)
    for name, res in (("exhaustive", exhaustive), ("greedy", greedy)):
        p = res.best_point
        print(
            f"{name:11s}: threads={p.threads_per_task} thickness={p.box_thickness} "
            f"block={p.block or 'device-best'} -> {res.best_gflops:.1f} GF "
            f"in {res.evaluations} evaluations"
        )
    frac = greedy.best_gflops / exhaustive.best_gflops
    print(f"greedy reaches {frac:.1%} of the exhaustive optimum\n")


if __name__ == "__main__":
    block_sweep()
    autotune_demo()
