"""Tests for the ASCII chart renderer."""

import pytest

from repro.report import ascii_plot


class TestAsciiPlot:
    def test_empty(self):
        assert "no plottable" in ascii_plot({})

    def test_markers_and_legend(self):
        out = ascii_plot({"alpha": {1: 10.0, 10: 100.0}, "beta": {1: 5.0, 10: 20.0}})
        assert "o alpha" in out
        assert "x beta" in out
        assert out.count("o") >= 2 + 1  # two points + legend

    def test_title(self):
        out = ascii_plot({"s": {1: 1.0, 2: 2.0}}, title="My Chart")
        assert out.startswith("My Chart")

    def test_monotonic_series_renders_monotonic(self):
        """Higher y lands on an earlier (higher) row."""
        out = ascii_plot({"s": {1: 1.0, 100: 1000.0}}, width=40, height=10)
        lines = [l for l in out.split("\n") if "|" in l]
        rows = [i for i, l in enumerate(lines) if "o" in l.split("|")[1]]
        cols = [lines[i].split("|")[1].index("o") for i in rows]
        # larger x (later column) pairs with larger y (earlier row)
        assert rows[0] < rows[-1] and cols[0] > cols[-1]

    def test_nonpositive_points_skipped_in_log(self):
        out = ascii_plot({"s": {1: 0.0, 2: 10.0}})
        assert "no plottable" not in out

    def test_single_point(self):
        out = ascii_plot({"s": {5: 7.0}})
        assert "o s" in out

    def test_linear_axes(self):
        out = ascii_plot({"s": {0: 1.0, 10: 2.0}}, logx=False, logy=False)
        assert "o s" in out

    def test_experiment_integration(self):
        from repro.experiments import run_experiment

        res = run_experiment("fig8", fast=True)
        out = ascii_plot(res.series, title=res.title)
        assert "x=32" in out

    def test_mixed_type_abscissae_do_not_crash(self):
        """Regression: ``sorted`` over str+int keys raised ``TypeError``.

        The bounds pass filtered non-numeric abscissae but the per-series
        pass sorted the raw keys first; a series mixing labels and numbers
        crashed the renderer.
        """
        out = ascii_plot({"s": {"label": 5.0, 1: 10.0, 10: 100.0}})
        assert "no plottable" not in out
        assert "o s" in out

    def test_nonpositive_x_skipped_on_log_axis(self):
        """x=0 under logx used to reach math.log10 and raise."""
        out = ascii_plot({"s": {0: 5.0, 1: 10.0, 10: 100.0}})
        assert "o s" in out

    def test_marker_cycling_notes_the_reuse(self):
        many = {f"s{i:02d}": {1: 1.0 + i, 10: 2.0 + i} for i in range(15)}
        out = ascii_plot(many)
        assert "markers cycle" in out
        # series 0 and 12 share a marker glyph by cycling
        assert "o s00" in out and "o s12" in out

    def test_no_cycle_note_under_marker_budget(self):
        out = ascii_plot({"a": {1: 1.0}, "b": {1: 2.0}})
        assert "markers cycle" not in out
