"""PR acceptance gate: the separable engine's measured throughput.

The issue for this PR requires ``advance`` at 256^3 to run at >= 2.5x the
seed's dense throughput (~5.6 Mpts/s on the reference container, i.e. a
floor of 14 Mpts/s) while agreeing with the dense 27-point kernel within
``rtol=1e-12``. This module is the test that pins both halves of that
claim; ``tools/perf_smoke.py`` records the same measurement in
``BENCH_PR1.json``.

Timing tests are inherently machine-sensitive; the floor here is set at
half the acceptance threshold observed on the reference container (which
measures ~40 Mpts/s, nearly 3x headroom over the 14 Mpts/s gate) so that
ordinary scheduling noise cannot flake the suite while a real regression
back toward the dense path (~6 Mpts/s) still fails loudly.
"""

import time

import numpy as np
import pytest

from repro.stencil.arena import ScratchArena
from repro.stencil.coefficients import max_stable_nu, tensor_product_coefficients
from repro.stencil.grid import allocate_field
from repro.stencil.kernels import (
    advance,
    apply_stencil,
    apply_stencil_dense,
    fill_periodic_halo,
    interior,
)

N = 256
VELOCITY = (0.9, -0.6, 0.4)

# The seed's dense path measured ~5.6 Mpts/s at 256^3 on the reference
# container; the acceptance criterion is 2.5x that. We assert the full
# 2.5x gate but keep a generous margin below the ~40 Mpts/s actually
# measured so timing noise cannot flake CI.
FLOOR_MPTS = 14.0


def _field(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    u = allocate_field((n, n, n))
    interior(u)[...] = rng.random((n, n, n))
    fill_periodic_halo(u)
    return u


@pytest.fixture(scope="module")
def coeffs():
    return tensor_product_coefficients(VELOCITY, 0.8 * max_stable_nu(VELOCITY))


class TestAcceptance256:
    def test_separable_throughput_floor(self, coeffs):
        """``advance`` at 256^3 sustains >= 2.5x the seed's throughput."""
        assert coeffs.is_separable
        u = _field(N)
        arena = ScratchArena()
        scratch = np.zeros_like(u)
        # Warm the arena and the page cache, then time the steady state.
        advance(u.copy(), coeffs, steps=1, scratch=scratch, arena=arena)
        steps = 3
        t0 = time.perf_counter()
        advance(u.copy(), coeffs, steps=steps, scratch=scratch, arena=arena)
        elapsed = time.perf_counter() - t0
        mpts = steps * N**3 / elapsed / 1e6
        assert mpts >= FLOOR_MPTS, (
            f"separable advance at {N}^3 ran at {mpts:.1f} Mpts/s, below the "
            f"{FLOOR_MPTS:.0f} Mpts/s acceptance floor (2.5x the seed)"
        )

    def test_separable_agrees_with_dense_at_256(self, coeffs):
        """The speed does not come at the cost of accuracy: rtol=1e-12."""
        u = _field(N, seed=1)
        sep = apply_stencil(u, coeffs, method="separable")
        dense = apply_stencil_dense(u, coeffs)
        np.testing.assert_allclose(
            interior(sep), interior(dense), rtol=1e-12, atol=1e-14
        )

    def test_steady_state_allocates_nothing(self, coeffs):
        """At 256^3 the arena stops allocating after the first step."""
        u = _field(N, seed=2)
        arena = ScratchArena()
        scratch = np.zeros_like(u)
        advance(u, coeffs, steps=1, scratch=scratch, arena=arena)
        warm = arena.misses
        advance(u, coeffs, steps=2, scratch=scratch, arena=arena)
        assert arena.misses == warm
