"""Tests for the derived performance metrics."""

import pytest

from repro import RunConfig, JAGUARPF, YONA, run
from repro.perf.analysis import (
    exposed_wait_fraction,
    host_fraction,
    overlap_efficiency,
    parallel_efficiency,
    speedup_series,
)


class TestSeriesMetrics:
    def test_speedup_base_is_one(self):
        s = speedup_series({12: 10.0, 24: 18.0, 48: 30.0})
        assert s[12] == 1.0
        assert s[24] == pytest.approx(1.8)

    def test_efficiency_ideal(self):
        s = parallel_efficiency({12: 10.0, 24: 20.0})
        assert s[24] == pytest.approx(1.0)

    def test_efficiency_degrades(self):
        s = parallel_efficiency({12: 10.0, 48: 30.0})
        assert s[48] == pytest.approx(0.75)

    def test_empty(self):
        assert speedup_series({}) == {}
        assert parallel_efficiency({}) == {}

    def test_bad_baseline(self):
        with pytest.raises(ValueError):
            speedup_series({1: 0.0})

    def test_real_strong_scaling_efficiency_below_one(self):
        series = {}
        for cores in (12, 192, 1536):
            series[cores] = run(
                RunConfig(machine=JAGUARPF, implementation="bulk",
                          cores=cores, threads_per_task=6)
            ).gflops
        eff = parallel_efficiency(series)
        assert eff[12] == 1.0
        assert 0.3 < eff[1536] < 1.0  # strong scaling loses efficiency


class TestResultMetrics:
    @pytest.fixture(scope="class")
    def bulk_result(self):
        return run(RunConfig(machine=JAGUARPF, implementation="bulk",
                             cores=3072, threads_per_task=6))

    def test_host_fractions_sane(self, bulk_result):
        compute = host_fraction(bulk_result, "compute")
        assert 0.1 < compute < 1.0

    def test_exposed_wait_positive_at_scale(self, bulk_result):
        """At 3072 cores a visible share of the step is exposed comm."""
        wait = exposed_wait_fraction(bulk_result)
        assert 0.0 < wait < 0.9

    def test_unknown_phase_is_zero(self, bulk_result):
        assert host_fraction(bulk_result, "quantum") == 0.0

    def test_exposed_wait_exported(self):
        """Regression: the helper is part of the module's public API."""
        from repro.perf import analysis

        assert "exposed_wait_fraction" in analysis.__all__

    def test_empty_measurement_raises_consistently(self, bulk_result):
        """Regression: both fraction helpers reject an empty measurement.

        ``exposed_wait_fraction`` used to divide straight through
        ``elapsed_s`` and raise ``ZeroDivisionError`` where
        ``host_fraction`` raised ``ValueError``.
        """
        from dataclasses import replace

        empty = replace(bulk_result, elapsed_s=0.0)
        with pytest.raises(ValueError, match="empty measurement"):
            host_fraction(empty, "compute")
        with pytest.raises(ValueError, match="empty measurement"):
            exposed_wait_fraction(empty)


class TestOverlapEfficiency:
    def test_hybrid_overlap_hides_host_work(self):
        r = run(RunConfig(machine=YONA, implementation="hybrid_overlap",
                          cores=12, threads_per_task=12, box_thickness=2,
                          trace=True))
        eff = overlap_efficiency(r.tracer)
        assert eff is not None
        assert eff > 0.5  # most host work hidden under the GPU

    def test_missing_lane_returns_none(self):
        r = run(RunConfig(machine=JAGUARPF, implementation="bulk",
                          cores=12, threads_per_task=6, trace=True))
        assert overlap_efficiency(r.tracer) is None
