"""Tests for the sweep/best-of harness."""

import pytest

from repro.core.config import RunConfig
from repro.machines import HOPPER, JAGUARPF, LENS, YONA
from repro.perf.sweep import (
    best_over_threads,
    sweep_configs,
    valid_thread_counts,
)


class TestValidThreadCounts:
    def test_filters_by_divisibility(self):
        # 48 cores on JaguarPF: every measured option divides 48 and 12.
        assert valid_thread_counts(JAGUARPF, 48) == [1, 2, 3, 6, 12]

    def test_small_core_counts(self):
        assert valid_thread_counts(JAGUARPF, 6) == [1, 2, 3, 6]

    def test_hopper_includes_24(self):
        assert 24 in valid_thread_counts(HOPPER, 48)

    def test_lens_options(self):
        assert valid_thread_counts(LENS, 16) == [1, 2, 4, 8, 16]


class TestSweep:
    def test_invalid_configs_skipped(self):
        cfgs = [
            RunConfig(machine=YONA, implementation="bulk", cores=12,
                      threads_per_task=6),
        ]
        results = sweep_configs(cfgs)
        assert len(results) == 1

    def test_best_over_threads_returns_max(self):
        best = best_over_threads(JAGUARPF, "bulk", 48)
        for t in valid_thread_counts(JAGUARPF, 48):
            from repro.core.runner import run

            r = run(RunConfig(machine=JAGUARPF, implementation="bulk",
                              cores=48, threads_per_task=t))
            assert r.gflops <= best.gflops + 1e-9

    def test_single_task_uses_all_cores_as_threads(self):
        best = best_over_threads(JAGUARPF, "single", 12)
        assert best.config.threads_per_task == 12
        assert best.config.ntasks == 1

    def test_single_task_beyond_node_returns_none(self):
        assert best_over_threads(JAGUARPF, "single", 24) is None

    def test_hybrid_sweeps_thickness(self):
        best = best_over_threads(
            YONA, "hybrid_overlap", 12, thicknesses=(1, 2, 3)
        )
        assert best.config.box_thickness in (1, 2, 3)

    def test_impossible_thickness_skipped(self):
        # Thickness 50 cannot fit a 420-point subdomain halved repeatedly,
        # but small thicknesses still produce a result.
        best = best_over_threads(
            YONA, "hybrid_overlap", 192, thicknesses=(1, 200)
        )
        assert best is not None
        assert best.config.box_thickness == 1

    def test_skipped_configs_counted(self):
        """Regression: infeasible points are counted, not silently eaten."""
        cfgs = [
            RunConfig(machine=YONA, implementation="hybrid_overlap",
                      cores=192, threads_per_task=2, box_thickness=200),
            RunConfig(machine=YONA, implementation="bulk", cores=12,
                      threads_per_task=6),
        ]
        results = sweep_configs(cfgs)
        assert len(results) == 1
        assert results.skipped == 1

    def test_simulator_errors_propagate(self, monkeypatch):
        """Regression: sweep_configs used to swallow *every* ValueError
        raised during simulation, hiding genuine model bugs as invalid
        sweep points.  Only eager feasibility rejections are skipped."""
        import repro.perf.sweep as sweep_mod

        def boom(cfg):
            raise ValueError("model bug, not an invalid point")

        monkeypatch.setattr(sweep_mod, "run", boom)
        cfgs = [RunConfig(machine=YONA, implementation="bulk", cores=12,
                          threads_per_task=6)]
        with pytest.raises(ValueError, match="model bug"):
            sweep_configs(cfgs)
