"""Unit tests for Resource and SharedBandwidth."""

import pytest

from repro.des import Environment, Resource, SharedBandwidth, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_within_capacity_is_immediate(self, env):
        res = Resource(env, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.count == 2

    def test_queueing_and_fifo_release(self, env):
        res = Resource(env, capacity=1)
        order = []

        def holder():
            req = res.request()
            yield req
            yield env.timeout(1.0)
            res.release(req)

        def waiter(tag):
            req = res.request()
            yield req
            order.append((tag, env.now))
            res.release(req)

        env.process(holder())
        env.process(waiter("a"))
        env.process(waiter("b"))
        env.run()
        assert order == [("a", 1.0), ("b", 1.0)]

    def test_release_unknown_request_raises(self, env):
        res = Resource(env, capacity=1)
        other = Resource(env, capacity=1)
        req = other.request()
        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        held = res.request()
        queued = res.request()
        assert not queued.triggered
        res.release(queued)  # cancels, does not grant
        res.release(held)
        assert res.count == 0

    def test_serialization_under_contention(self, env):
        """Three 1-second holders of a capacity-1 resource take 3 seconds."""
        res = Resource(env, capacity=1)

        def worker():
            req = res.request()
            yield req
            yield env.timeout(1.0)
            res.release(req)

        procs = [env.process(worker()) for _ in range(3)]
        env.run()
        assert env.now == 3.0


class TestSharedBandwidth:
    def test_rate_validation(self, env):
        with pytest.raises(ValueError):
            SharedBandwidth(env, 0)

    def test_single_transfer_time(self, env):
        link = SharedBandwidth(env, rate=100.0)

        def proc():
            yield link.transfer(250.0)
            return env.now

        p = env.process(proc())
        assert env.run(until=p) == pytest.approx(2.5)

    def test_zero_work_completes_immediately(self, env):
        link = SharedBandwidth(env, rate=10.0)
        ev = link.transfer(0.0)
        assert ev.triggered

    def test_negative_work_rejected(self, env):
        link = SharedBandwidth(env, rate=10.0)
        with pytest.raises(ValueError):
            link.transfer(-1.0)

    def test_two_equal_transfers_share_fairly(self, env):
        """Two 100-unit transfers on a 100/s link both finish at t=2."""
        link = SharedBandwidth(env, rate=100.0)
        done = []

        def proc(tag):
            yield link.transfer(100.0)
            done.append((tag, env.now))

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        assert done == [("a", 2.0), ("b", 2.0)]

    def test_staggered_arrival(self, env):
        """B arrives halfway through A; A slows down for B's duration.

        A: 100 units; alone for 0.5s (50 done), then shares (rate 50) until
        its remaining 50 complete at t=1.5. B: 100 units at 50/s until A
        leaves (50 done at 1.5), then full rate: done at 2.0.
        """
        link = SharedBandwidth(env, rate=100.0)
        done = {}

        def a():
            yield link.transfer(100.0)
            done["a"] = env.now

        def b():
            yield env.timeout(0.5)
            yield link.transfer(100.0)
            done["b"] = env.now

        env.process(a())
        env.process(b())
        env.run()
        assert done["a"] == pytest.approx(1.5)
        assert done["b"] == pytest.approx(2.0)

    def test_weighted_sharing(self, env):
        """Weight-3 transfer gets 3x the share of a weight-1 transfer."""
        link = SharedBandwidth(env, rate=100.0)
        done = {}

        def proc(tag, work, weight):
            yield link.transfer(work, weight=weight)
            done[tag] = env.now

        env.process(proc("heavy", 75.0, 3.0))
        env.process(proc("light", 100.0, 1.0))
        env.run()
        # heavy runs at 75/s until done at t=1.0; light gets 25 done by then,
        # then 75 more at full rate: t = 1.0 + 0.75.
        assert done["heavy"] == pytest.approx(1.0)
        assert done["light"] == pytest.approx(1.75)

    def test_invalid_weight(self, env):
        link = SharedBandwidth(env, rate=10.0)
        with pytest.raises(ValueError):
            link.transfer(1.0, weight=0.0)

    def test_n_active(self, env):
        link = SharedBandwidth(env, rate=1.0)
        link.transfer(10.0)
        link.transfer(10.0)
        assert link.n_active == 2

    def test_many_concurrent_total_time(self, env):
        """N equal transfers take N times one transfer (work conservation)."""
        link = SharedBandwidth(env, rate=10.0)
        for _ in range(5):
            link.transfer(10.0)
        env.run()
        assert env.now == pytest.approx(5.0)
