"""Flat event core vs reference ``(time, counter)`` FIFO semantics.

The cohort engine (docs/MODEL.md §12) replaces the merged heap+deque of the
previous engine with per-time buckets and no per-entry counter; the claim is
that bucket-FIFO draining is observably identical to a global
``(time, counter)`` priority queue. These tests check that claim directly:

* a hypothesis property test executes randomized programs — mixes of event
  timeouts, bare callback slots, cancellable slots (some tombstoned), and
  zero-delay bursts, nested so that entries are scheduled both up front and
  from inside running cohorts — on the real engine and on an oracle-simple
  reference executor, and requires the exact same firing order;
* deterministic stress tests hammer tombstone cancellation (cancel-heavy
  queues, handle recycling, cancel/fire error contract);
* a tracemalloc smoke check pins the allocation-free steady state.
"""

import heapq
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, SimulationError

# ---------------------------------------------------------------------------
# Program representation
#
# An action = (delay, kind, cancel, children). Executing an action fires its
# label and schedules its children (exercising scheduling from *inside* a
# draining cohort). Labels are assigned by a pre-order walk of the program so
# both executors agree on them independently of execution order.
# ---------------------------------------------------------------------------

_DELAYS = [0.0, 0.0, 0.25, 0.5, 1.0]  # 0.0 twice: bias toward same-time bursts
_KINDS = ["event", "slot", "cancellable"]


def _label_program(program):
    """Attach a pre-order label to every action; returns labelled copies."""
    counter = [0]

    def walk(action):
        delay, kind, cancel, children = action
        label = counter[0]
        counter[0] += 1
        return (label, delay, kind, cancel, [walk(c) for c in children])

    return [walk(a) for a in program]


def run_reference(program):
    """Oracle: a single heap of ``(time, counter, action)`` entries.

    This is the seed engine's semantics — every scheduled entry gets a
    global monotonically increasing counter; execution pops the least
    ``(time, counter)``; a cancelled entry is a no-op when popped.
    """
    labelled = _label_program(program)
    order = []
    heap = []
    counter = [0]

    def push(action, now):
        heapq.heappush(heap, (now + action[1], counter[0], action))
        counter[0] += 1

    for action in labelled:
        push(action, 0.0)
    while heap:
        t, _, action = heapq.heappop(heap)
        label, _delay, kind, cancel, children = action
        if kind == "cancellable" and cancel:
            continue  # tombstone: dead when reached
        order.append(label)
        for child in children:
            push(child, t)
    return order


def run_engine(program):
    """Execute the same program on the production flat-core engine."""
    labelled = _label_program(program)
    env = Environment()
    order = []

    def schedule_action(action):
        label, delay, kind, cancel, children = action

        def fire(_arg):
            order.append(label)
            for child in children:
                schedule_action(child)

        if kind == "event":
            ev = env.timeout(delay, label)
            ev.callbacks.append(fire)
        elif kind == "slot":
            env.schedule(delay, fire)
        else:
            handle = env.schedule_cancellable(delay, fire)
            if cancel:
                env.cancel(handle)

    for action in labelled:
        schedule_action(action)
    env.run()
    return order


def _actions(depth: int):
    base = st.tuples(
        st.sampled_from(_DELAYS),
        st.sampled_from(_KINDS),
        st.booleans(),
        st.just([]),
    )
    if depth == 0:
        return base
    return st.tuples(
        st.sampled_from(_DELAYS),
        st.sampled_from(_KINDS),
        st.booleans(),
        st.lists(_actions(depth - 1), max_size=3),
    )


class TestOrderEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_actions(2), min_size=1, max_size=10))
    def test_engine_order_matches_reference_fifo(self, program):
        assert run_engine(program) == run_reference(program)

    def test_interleaved_kinds_same_bucket(self):
        """Events, slots, and cancellables interleaved at one time share the
        FIFO exactly (the bucket replaces the global counter)."""
        env = Environment()
        order = []
        env.timeout(1.0, "e0").callbacks.append(lambda ev: order.append(ev.value))
        env.schedule(1.0, order.append, "s0")
        h = env.schedule_cancellable(1.0, order.append, "c0")
        env.timeout(1.0, "e1").callbacks.append(lambda ev: order.append(ev.value))
        env.schedule_cancellable(1.0, order.append, "c1")
        env.schedule(1.0, order.append, "s1")
        env.cancel(h)  # tombstone c0; everything else keeps its position
        env.run()
        assert order == ["e0", "s0", "e1", "c1", "s1"]

    def test_zero_delay_burst_from_inside_cohort(self):
        """Zero-delay entries scheduled by a firing entry join the *live*
        cohort after everything already scheduled for that time."""
        env = Environment()
        order = []

        def spawn(_a):
            order.append("spawn")
            env.schedule(0.0, order.append, "child")
            env.timeout(0.0, "child-ev").callbacks.append(
                lambda ev: order.append(ev.value)
            )

        env.schedule(1.0, spawn)
        env.schedule(1.0, order.append, "sibling")
        env.run()
        assert order == ["spawn", "sibling", "child", "child-ev"]


class TestCancellation:
    def test_cancelled_slot_never_fires(self):
        env = Environment()
        fired = []
        h = env.schedule_cancellable(1.0, fired.append, "x")
        env.cancel(h)
        env.run()
        assert fired == []
        assert env.now == 1.0  # the tombstoned bucket still advances the clock

    def test_double_cancel_raises(self):
        env = Environment()
        h = env.schedule_cancellable(1.0, lambda _a: None)
        env.cancel(h)
        with pytest.raises(SimulationError, match="dead handle"):
            env.cancel(h)

    def test_cancel_after_fire_raises(self):
        env = Environment()
        h = env.schedule_cancellable(1.0, lambda _a: None)
        env.run()
        with pytest.raises(SimulationError, match="dead handle"):
            env.cancel(h)

    def test_handles_are_recycled(self):
        """The slot pool reaches a steady state: sequential schedule/fire
        cycles reuse one slot index instead of growing the arrays."""
        env = Environment()
        env.schedule_cancellable(1.0, lambda _a: None)
        env.run()
        for _ in range(50):
            env.schedule_cancellable(1.0, lambda _a: None)
            env.run()
        assert len(env._slot_fn) == 1

    def test_cancellation_heavy_stress(self):
        """90% of a large cancellable population is tombstoned; survivors
        fire in exact scheduling order and the pool fully recycles."""
        env = Environment()
        fired = []
        survivors = []
        handles = []
        for i in range(2000):
            t = 1.0 + (i % 7)
            handles.append((i, t, env.schedule_cancellable(t, fired.append, i)))
        for i, _t, h in handles:
            if i % 10 != 0:
                env.cancel(h)
            else:
                survivors.append((_t, i))
        env.run()
        survivors.sort()  # (time, scheduling order) — the FIFO contract
        assert fired == [i for _t, i in survivors]
        assert len(env._slot_free) == len(env._slot_fn)  # every slot recycled

    def test_cancel_from_inside_cohort(self):
        """An entry can tombstone a later same-time entry while the cohort
        is already draining."""
        env = Environment()
        fired = []
        h = {}

        def killer(_a):
            fired.append("killer")
            env.cancel(h["victim"])

        env.schedule(1.0, killer)
        h["victim"] = env.schedule_cancellable(1.0, fired.append, "victim")
        env.schedule(1.0, fired.append, "bystander")
        env.run()
        assert fired == ["killer", "bystander"]

    def test_step_skips_tombstones(self):
        env = Environment()
        fired = []
        h = env.schedule_cancellable(1.0, fired.append, "dead")
        env.schedule(1.0, fired.append, "live")
        env.cancel(h)
        env.step()
        assert fired == ["live"]


class TestEnqueueValidation:
    def test_enqueue_negative_delay_raises(self):
        """Regression: _enqueue used to accept negative delays, scheduling
        into the past and silently breaking clock monotonicity."""
        env = Environment()
        with pytest.raises(ValueError, match="negative"):
            env._enqueue(env.event().succeed(), -1.0)

    def test_schedule_cancellable_negative_delay_raises(self):
        env = Environment()
        with pytest.raises(ValueError, match="negative"):
            env.schedule_cancellable(-0.5, lambda _a: None)


class TestAllocationFreeSteadyState:
    def test_steady_state_scheduling_allocates_no_per_entry_objects(self):
        """Scheduling N entries into warmed buckets must not allocate per
        entry: the tracemalloc live-block delta is bounded by list growth
        (O(log N) reallocations), not O(N) tuples/wrappers."""
        env = Environment()
        sink = []

        def cb(_a):
            pass

        # Warm up: create the buckets, the pool, and the slot arrays.
        for _ in range(16):
            env.schedule(1.0, cb)
            env.schedule_cancellable(1.0, cb)
        env.run()
        env.schedule(1.0, cb)  # re-create the t=now+1 bucket

        n = 4096
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(n):
            env.schedule(1.0, cb)  # same bucket: two appends, no objects
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        stats = after.compare_to(before, "filename")
        new_blocks = sum(s.count_diff for s in stats if s.count_diff > 0)
        # List doubling yields a handful of reallocations; per-entry tuple
        # churn would show up as ~n new blocks.
        assert new_blocks < n / 8, (
            f"{new_blocks} new allocations for {n} scheduled entries — "
            "per-entry allocation crept back into the hot path"
        )
        env.run()
        assert sink == []
