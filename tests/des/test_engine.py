"""Unit tests for the discrete-event engine."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Event, SimulationError, Timeout


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_initially_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_succeed_carries_value(self, env):
        ev = env.event().succeed(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_double_succeed_raises(self, env):
        ev = env.event().succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_fail_carries_exception(self, env):
        exc = RuntimeError("boom")
        ev = env.event().fail(exc)
        assert ev.triggered and not ev.ok
        assert ev.value is exc
        env.run()  # unhandled failed event with no waiters is fine


class TestTimeout:
    def test_advances_clock(self, env):
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeout_value(self, env):
        result = {}

        def proc():
            result["v"] = yield env.timeout(1.0, value="hello")

        env.process(proc())
        env.run()
        assert result["v"] == "hello"

    def test_zero_delay_fires_now(self, env):
        fired = []

        def proc():
            yield env.timeout(0.0)
            fired.append(env.now)

        env.process(proc())
        env.run()
        assert fired == [0.0]


class TestProcess:
    def test_sequential_timeouts_accumulate(self, env):
        times = []

        def proc():
            yield env.timeout(1.0)
            times.append(env.now)
            yield env.timeout(2.5)
            times.append(env.now)

        env.process(proc())
        env.run()
        assert times == [1.0, 3.5]

    def test_return_value_is_process_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return "done"

        p = env.process(proc())
        assert env.run(until=p) == "done"

    def test_process_waits_on_process(self, env):
        def child():
            yield env.timeout(2.0)
            return 7

        def parent():
            v = yield env.process(child())
            return v + 1

        p = env.process(parent())
        assert env.run(until=p) == 8
        assert env.now == 2.0

    def test_exception_propagates_to_waiter(self, env):
        def child():
            yield env.timeout(1.0)
            raise ValueError("child failed")

        def parent():
            try:
                yield env.process(child())
            except ValueError as e:
                return f"caught {e}"

        p = env.process(parent())
        assert env.run(until=p) == "caught child failed"

    def test_uncaught_crash_reraises_from_run(self, env):
        def proc():
            yield env.timeout(1.0)
            raise RuntimeError("unhandled")

        env.process(proc())
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_yielding_non_event_fails_process(self, env):
        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(SimulationError, match="yielded"):
            env.run()

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_already_processed_event_resumes_immediately(self, env):
        ev = env.event().succeed("early")

        def late():
            yield env.timeout(3.0)
            v = yield ev  # processed long ago
            return (env.now, v)

        p = env.process(late())
        assert env.run(until=p) == (3.0, "early")

    def test_cross_environment_event_rejected(self, env):
        other = Environment()

        def proc():
            yield other.timeout(1.0)

        env.process(proc())
        with pytest.raises(SimulationError, match="different Environment"):
            env.run()

    def test_is_alive(self, env):
        def proc():
            yield env.timeout(1.0)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive


class TestDeterminism:
    def test_same_time_events_fifo(self, env):
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for i in range(10):
            env.process(proc(i))
        env.run()
        assert order == list(range(10))

    def test_repeatability(self):
        def build_and_run():
            env = Environment()
            order = []

            def proc(tag, delay):
                yield env.timeout(delay)
                order.append((tag, env.now))

            for i, d in enumerate([3.0, 1.0, 2.0, 1.0]):
                env.process(proc(i, d))
            env.run()
            return order

        assert build_and_run() == build_and_run()


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        def proc():
            vs = yield AllOf(env, [env.timeout(1.0, "a"), env.timeout(3.0, "b")])
            return (env.now, vs)

        p = env.process(proc())
        assert env.run(until=p) == (3.0, ["a", "b"])

    def test_all_of_empty_succeeds_immediately(self, env):
        def proc():
            vs = yield AllOf(env, [])
            return vs

        p = env.process(proc())
        assert env.run(until=p) == []

    def test_all_of_fails_fast(self, env):
        bad = env.event().fail(ValueError("nope"))

        def proc():
            try:
                yield AllOf(env, [env.timeout(10.0), bad])
            except ValueError:
                return env.now

        p = env.process(proc())
        assert env.run(until=p) == 0.0  # did not wait 10s

    def test_any_of_first_wins(self, env):
        def proc():
            v = yield AnyOf(env, [env.timeout(5.0, "slow"), env.timeout(1.0, "fast")])
            return (env.now, v)

        p = env.process(proc())
        assert env.run(until=p) == (1.0, "fast")

    def test_any_of_empty_rejected(self, env):
        with pytest.raises(ValueError):
            AnyOf(env, [])

    def test_any_of_all_fail(self, env):
        e1 = env.event()
        e2 = env.event()

        def failer():
            yield env.timeout(1.0)
            e1.fail(ValueError("one"))
            yield env.timeout(1.0)
            e2.fail(ValueError("two"))

        def proc():
            try:
                yield AnyOf(env, [e1, e2])
            except ValueError as e:
                return str(e)

        env.process(failer())
        p = env.process(proc())
        assert env.run(until=p) == "two"

    def test_all_of_with_already_processed_events(self, env):
        done = env.event().succeed("x")

        def proc():
            yield env.timeout(1.0)
            vs = yield AllOf(env, [done, env.timeout(1.0, "y")])
            return vs

        p = env.process(proc())
        assert env.run(until=p) == ["x", "y"]


class TestRun:
    def test_run_until_time(self, env):
        ticks = []

        def proc():
            while True:
                yield env.timeout(1.0)
                ticks.append(env.now)

        env.process(proc())
        env.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]
        assert env.now == 3.5

    def test_run_until_past_raises(self, env):
        env.timeout(1.0)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=0.5)

    def test_run_until_never_fires_is_deadlock(self, env):
        ev = env.event()

        def proc():
            yield ev

        env.process(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=env.process(proc()))

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(2.0)
        assert env.peek() == 2.0

    def test_step_on_empty_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()
