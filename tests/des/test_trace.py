"""Tests for the execution tracer."""

import pytest

from repro.des.trace import TraceEvent, Tracer


def make_tracer(events):
    t = Tracer()
    for lane, name, s, e in events:
        t.record(lane, name, s, e)
    return t


class TestRecording:
    def test_event_fields(self):
        ev = TraceEvent("host", "compute", 1.0, 3.0)
        assert ev.duration == 2.0

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record("host", "x", 2.0, 1.0)

    def test_lanes_in_first_appearance_order(self):
        t = make_tracer([
            ("gpu", "k", 0, 1),
            ("host", "c", 0, 1),
            ("gpu", "k2", 1, 2),
        ])
        assert t.lanes() == ["gpu", "host"]

    def test_span(self):
        t = make_tracer([("a", "x", 1.0, 2.0), ("b", "y", 0.5, 3.5)])
        assert t.span() == (0.5, 3.5)

    def test_empty_span(self):
        assert Tracer().span() == (0.0, 0.0)


class TestBusyTime:
    def test_disjoint_intervals_sum(self):
        t = make_tracer([("h", "a", 0, 1), ("h", "b", 2, 4)])
        assert t.busy_time("h") == pytest.approx(3.0)

    def test_overlapping_intervals_merge(self):
        t = make_tracer([("h", "a", 0, 2), ("h", "b", 1, 3)])
        assert t.busy_time("h") == pytest.approx(3.0)

    def test_other_lanes_ignored(self):
        t = make_tracer([("h", "a", 0, 2), ("g", "b", 0, 10)])
        assert t.busy_time("h") == pytest.approx(2.0)


class TestOverlapTime:
    def test_simple_overlap(self):
        t = make_tracer([("h", "a", 0, 4), ("g", "k", 2, 6)])
        assert t.overlap_time("h", "g") == pytest.approx(2.0)

    def test_no_overlap(self):
        t = make_tracer([("h", "a", 0, 1), ("g", "k", 2, 3)])
        assert t.overlap_time("h", "g") == 0.0

    def test_multiple_fragments(self):
        t = make_tracer([
            ("h", "a", 0, 2), ("h", "b", 4, 6),
            ("g", "k", 1, 5),
        ])
        assert t.overlap_time("h", "g") == pytest.approx(2.0)

    def test_symmetric(self):
        t = make_tracer([("h", "a", 0, 3), ("g", "k", 1, 7)])
        assert t.overlap_time("h", "g") == t.overlap_time("g", "h")


class TestTimeline:
    def test_renders_all_lanes(self):
        t = make_tracer([("host", "compute", 0, 1e-3), ("gpu", "kernel", 0, 2e-3)])
        text = t.timeline_text(width=40)
        assert "host" in text and "gpu" in text
        assert "compute"[:5] in text

    def test_empty(self):
        assert "no trace" in Tracer().timeline_text()

    def test_window_clips(self):
        t = make_tracer([("h", "early", 0, 1), ("h", "late", 10, 11)])
        text = t.timeline_text(width=40, window=(0, 2))
        assert "early"[:3] in text
        assert "late" not in text


class TestIntegration:
    def test_hybrid_overlap_trace_shows_real_overlap(self):
        from repro import RunConfig, YONA, run

        r = run(RunConfig(machine=YONA, implementation="hybrid_overlap",
                          cores=12, threads_per_task=12, box_thickness=2,
                          trace=True))
        tr = r.tracer
        assert set(tr.lanes()) >= {"host", "gpu-kernel", "gpu-copy"}
        # The defining property of §IV-I: GPU kernels overlap host work.
        assert tr.overlap_time("host", "gpu-kernel") > 0
        # Kernels dominate the step (the CPU box is a veneer).
        assert tr.busy_time("gpu-kernel") > tr.busy_time("host") * 0.5

    def test_trace_off_by_default(self):
        from repro import RunConfig, YONA, run

        r = run(RunConfig(machine=YONA, implementation="gpu_resident",
                          cores=12, threads_per_task=12))
        assert r.tracer is None

    def test_bulk_trace_shows_no_gpu(self):
        from repro import RunConfig, JAGUARPF, run

        r = run(RunConfig(machine=JAGUARPF, implementation="bulk",
                          cores=12, threads_per_task=6, trace=True))
        assert "gpu-kernel" not in r.tracer.lanes()
        assert r.tracer.busy_time("host") > 0
