"""DES edge cases: conditions over stale/failed events, until-boundaries,
crash-while-stopping, determinism, and the scheduling fast paths."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Event, SimulationError, Timeout


@pytest.fixture
def env():
    return Environment()


class TestConditionsOverProcessedEvents:
    """AllOf/AnyOf built after their constituents already ran."""

    def test_allof_over_already_processed(self, env):
        a = env.timeout(1.0, "a")
        b = env.timeout(2.0, "b")
        env.run()  # both now PROCESSED
        assert a.processed and b.processed
        cond = env.all_of([a, b])
        env.run(until=cond)
        assert cond.value == ["a", "b"]

    def test_anyof_over_already_processed(self, env):
        a = env.timeout(1.0, "a")
        env.run()
        cond = env.any_of([a, env.event()])
        env.run(until=cond)
        assert cond.value == "a"

    def test_allof_over_already_failed(self, env):
        boom = RuntimeError("boom")
        failed = env.event()
        failed.fail(boom)
        failed.callbacks.append(lambda ev: None)  # absorb so run() is clean
        env.run()
        assert failed.processed and not failed.ok
        cond = env.all_of([failed, env.timeout(1.0)])
        with pytest.raises(RuntimeError, match="boom"):
            env.run(until=cond)
        assert not cond.ok

    def test_anyof_all_failed_including_processed(self, env):
        e1, e2 = RuntimeError("first"), RuntimeError("second")
        f1 = env.event()
        f1.fail(e1)
        f1.callbacks.append(lambda ev: None)
        env.run()
        f2 = env.event()
        cond = env.any_of([f1, f2])
        f2.fail(e2)
        with pytest.raises(RuntimeError, match="second"):
            env.run(until=cond)

    def test_anyof_mixed_processed_failure_then_success(self, env):
        f1 = env.event()
        f1.fail(RuntimeError("ignored"))
        f1.callbacks.append(lambda ev: None)
        env.run()
        winner = env.timeout(1.0, "late-win")
        cond = env.any_of([f1, winner])
        env.run(until=cond)
        assert cond.ok and cond.value == "late-win"

    def test_process_yield_already_processed_event_gets_value(self, env):
        """The relay-free resume path must carry (ok, value) faithfully."""
        stale = env.timeout(0.5, "payload")
        env.run()
        got = []

        def proc():
            got.append((yield stale))
            return "done"

        p = env.process(proc())
        assert env.run(until=p) == "done"
        assert got == ["payload"]
        assert env.now == 0.5  # stale yield resumes at the current time

    def test_process_yield_already_processed_failed_event_raises_in(self, env):
        stale = env.event()
        stale.fail(ValueError("stale-fail"))
        stale.callbacks.append(lambda ev: None)
        env.run()
        caught = []

        def proc():
            try:
                yield stale
            except ValueError as exc:
                caught.append(str(exc))
            return None

        env.run(until=env.process(proc()))
        assert caught == ["stale-fail"]


class TestRunUntilBoundaries:
    def test_events_exactly_at_until_time_fire(self, env):
        fired = []
        env.timeout(1.0).callbacks.append(lambda ev: fired.append("t1"))
        env.timeout(2.0).callbacks.append(lambda ev: fired.append("t2"))
        env.timeout(2.0).callbacks.append(lambda ev: fired.append("t2b"))
        env.timeout(3.0).callbacks.append(lambda ev: fired.append("t3"))
        env.run(until=2.0)
        assert fired == ["t1", "t2", "t2b"]  # at-boundary events fire, later not
        assert env.now == 2.0
        env.run()
        assert fired[-1] == "t3"

    def test_zero_delay_at_until_time_fires(self, env):
        """Zero-delay cascades spawned exactly at t=until still run at t."""
        fired = []

        def chain(ev):
            fired.append("first")
            env.timeout(0.0).callbacks.append(lambda e: fired.append("second"))

        env.timeout(2.0).callbacks.append(chain)
        env.run(until=2.0)
        assert fired == ["first", "second"]
        assert env.now == 2.0

    def test_until_in_past_raises(self, env):
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_peek_merges_ready_and_heap(self, env):
        env.timeout(3.0)
        assert env.peek() == 3.0
        env.timeout(0.0)  # ready-deque fast path
        assert env.peek() == 0.0
        env.step()
        assert env.peek() == 3.0


class TestCrashPropagation:
    def test_crash_while_stop_event_pending_raises(self, env):
        """A crash with nobody waiting must surface even under run(until=ev)."""
        stop = env.event()  # never triggered by anyone

        def crasher():
            yield env.timeout(1.0)
            raise RuntimeError("crashed-mid-run")

        env.process(crasher())
        with pytest.raises(RuntimeError, match="crashed-mid-run"):
            env.run(until=stop)

    def test_crash_after_stop_event_triggers_does_not_mask_result(self, env):
        """If the stop event resolves first, run returns its value."""
        stop = env.event()

        def finisher():
            yield env.timeout(1.0)
            stop.succeed("finished")

        def late_crasher():
            yield env.timeout(5.0)
            raise RuntimeError("too late to matter")

        env.process(finisher())
        env.process(late_crasher())
        assert env.run(until=stop) == "finished"

    def test_crash_observed_by_waiter_is_not_reraised(self, env):
        def crasher():
            yield env.timeout(1.0)
            raise ValueError("handled")

        def watcher():
            try:
                yield p
            except ValueError:
                return "saw-it"

        p = env.process(crasher())
        w = env.process(watcher())
        assert env.run(until=w) == "saw-it"


def _instrumented_order(seed_delays):
    """Run a mixed workload and record the exact (time, label) firing order."""
    env = Environment()
    order = []

    def worker(i, delay):
        for k in range(3):
            yield env.timeout(delay)
            order.append((env.now, f"w{i}.{k}"))
        stale = env.timeout(0.0)
        yield stale
        yield stale  # second yield takes the already-processed fast path
        order.append((env.now, f"w{i}.stale"))

    for i, d in enumerate(seed_delays):
        env.process(worker(i, d))
    env.run()
    return order


class TestDeterminism:
    def test_two_identical_runs_identical_event_order(self):
        delays = [0.25, 0.5, 0.25, 1.0, 0.125]
        assert _instrumented_order(delays) == _instrumented_order(delays)

    def test_same_time_events_fire_in_scheduling_order(self, env):
        order = []
        for i in range(5):
            env.timeout(1.0, i).callbacks.append(
                lambda ev: order.append(ev.value)
            )
        # Interleave zero-delay (ready-deque) entries scheduled later: they
        # run first (t=0 < t=1), in FIFO order.
        for i in range(5, 8):
            env.timeout(0.0, i).callbacks.append(
                lambda ev: order.append(ev.value)
            )
        env.run()
        assert order == [5, 6, 7, 0, 1, 2, 3, 4]

    def test_slot_and_event_share_fifo_counter(self, env):
        order = []
        env.timeout(1.0).callbacks.append(lambda ev: order.append("event"))
        env.schedule(1.0, lambda _: order.append("slot"))
        env.timeout(1.0).callbacks.append(lambda ev: order.append("event2"))
        env.run()
        assert order == ["event", "slot", "event2"]

    def test_step_executes_slots(self, env):
        hits = []
        env.schedule_now(hits.append, "a")
        env.schedule(2.0, hits.append, "b")
        env.step()
        assert hits == ["a"] and env.now == 0.0
        env.step()
        assert hits == ["a", "b"] and env.now == 2.0
        with pytest.raises(SimulationError):
            env.step()

    def test_negative_schedule_delay_raises(self, env):
        with pytest.raises(ValueError):
            env.schedule(-1.0, lambda _: None)
