"""Fixed-point tick clock (Environment quantum mode) and timebase helpers."""

import math

import pytest

from repro.des import Environment, SimulationError
from repro.des.timebase import (
    find_unrepresentable,
    is_power_of_two,
    is_representable,
    suggest_quantum,
)


class TestTickEnvironment:
    def test_exact_delays_run_identically(self):
        q = 2.0**-20
        order = []
        for env in (Environment(), Environment(quantum=q)):
            local = []

            def proc(env=env, local=local):
                yield env.timeout(0.25)
                local.append(env.now)
                yield env.timeout(0.5)
                local.append(env.now)

            env.process(proc())
            env.run()
            order.append(local)
        assert order[0] == order[1] == [0.25, 0.75]

    def test_now_is_seconds_not_ticks(self):
        env = Environment(quantum=0.25)
        env.timeout(1.5)
        env.run()
        assert env.now == 1.5
        assert env._now == 6  # 6 ticks of 0.25s

    def test_unrepresentable_delay_raises(self):
        env = Environment(quantum=0.25)
        with pytest.raises(SimulationError, match="not representable"):
            env.timeout(0.1)

    def test_unrepresentable_schedule_raises(self):
        env = Environment(quantum=0.25)
        with pytest.raises(SimulationError, match="not representable"):
            env.schedule(1e-3, lambda _a: None)

    def test_run_until_time_in_ticks(self):
        env = Environment(quantum=0.25)
        ticks = []

        def proc():
            while True:
                yield env.timeout(0.25)
                ticks.append(env.now)

        env.process(proc())
        env.run(until=0.75)
        assert ticks == [0.25, 0.5, 0.75]
        assert env.now == 0.75

    def test_unrepresentable_until_raises(self):
        env = Environment(quantum=0.25)
        env.timeout(0.25)
        with pytest.raises(SimulationError, match="not representable"):
            env.run(until=0.3)

    def test_peek_converts_ticks_to_seconds(self):
        env = Environment(quantum=0.25)
        env.timeout(1.25)
        assert env.peek() == 1.25

    def test_integer_keys_no_float_drift(self):
        """1000 steps of 0.1s drift on float64 but are exact on a tick
        clock with a quantum that represents the step — the motivating
        difference between the two bases."""
        q = 2.0**-8
        step = 3 * q  # exactly representable, not a power of two itself
        env = Environment(quantum=q)

        def proc():
            for _ in range(1000):
                yield env.timeout(step)

        env.process(proc())
        env.run()
        assert env._now == 3000  # exact integer arithmetic
        assert env.now == 1000 * step

    def test_quantum_property_and_validation(self):
        assert Environment().quantum is None
        assert Environment(quantum=0.5).quantum == 0.5
        with pytest.raises(ValueError):
            Environment(quantum=-1.0)


class TestHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(1.0)
        assert is_power_of_two(2.0**-30)
        assert is_power_of_two(1024.0)
        assert not is_power_of_two(0.1)
        assert not is_power_of_two(0.0)
        assert not is_power_of_two(-2.0)
        assert not is_power_of_two(float("inf"))

    def test_is_representable(self):
        assert is_representable(0.75, 0.25)
        assert is_representable(0.0, 2.0**-30)
        assert not is_representable(0.1, 0.25)
        assert not is_representable(float("nan"), 0.25)

    def test_find_unrepresentable(self):
        assert find_unrepresentable([0.5, 0.3, 0.25], 0.25) == [0.3]

    def test_suggest_quantum_finds_coarsest(self):
        q = suggest_quantum([0.5, 0.25, 0.125])
        assert q == 0.125  # coarsest power of two representing all three

    def test_suggest_quantum_none_for_machine_model_delays(self):
        """Delays shaped like the paper's machine models (bytes/rate with a
        decimal rate) defeat every practical quantum — this is why the
        experiments pin the float64 time base."""
        delays = [8192 / 12.5e9, 1e-6, 262144 / 6.0e9]
        assert suggest_quantum(delays) is None

    def test_suggest_quantum_validates_bounds(self):
        with pytest.raises(ValueError):
            suggest_quantum([0.5], coarsest=0.3)
