"""Registry and implementation-metadata tests."""

import pytest

from repro.core.base import Implementation
from repro.core.registry import (
    CPU_KEYS,
    EXTENSION_KEYS,
    GPU_KEYS,
    IMPLEMENTATIONS,
    PAPER_KEYS,
    get_implementation,
)


class TestRegistry:
    def test_papers_nine_present(self):
        assert len(PAPER_KEYS) == 9
        assert set(PAPER_KEYS) <= set(IMPLEMENTATIONS)
        assert set(PAPER_KEYS) | set(EXTENSION_KEYS) == set(IMPLEMENTATIONS)

    def test_sections_cover_iv_a_through_i(self):
        sections = {IMPLEMENTATIONS[k].section for k in PAPER_KEYS}
        assert sections == {f"IV-{c}" for c in "ABCDEFGHI"}

    def test_extensions_marked(self):
        for key in EXTENSION_KEYS:
            assert IMPLEMENTATIONS[key].section == "ext"
            assert IMPLEMENTATIONS[key].fortran_loc == 0

    def test_keys_partition_cpu_gpu(self):
        assert set(CPU_KEYS) | set(GPU_KEYS) == set(IMPLEMENTATIONS)
        assert not set(CPU_KEYS) & set(GPU_KEYS)

    def test_gpu_flags_consistent(self):
        for key in GPU_KEYS:
            assert IMPLEMENTATIONS[key].uses_gpu
        for key in CPU_KEYS:
            assert not IMPLEMENTATIONS[key].uses_gpu

    def test_mpi_flags(self):
        assert not IMPLEMENTATIONS["single"].uses_mpi
        assert not IMPLEMENTATIONS["gpu_resident"].uses_mpi
        for key in ("bulk", "nonblocking", "thread_overlap", "gpu_bulk",
                    "gpu_streams", "hybrid_bulk", "hybrid_overlap"):
            assert IMPLEMENTATIONS[key].uses_mpi

    def test_unknown_key(self):
        with pytest.raises(KeyError, match="unknown implementation"):
            get_implementation("quantum")

    def test_instances_are_singletons(self):
        assert get_implementation("bulk") is get_implementation("bulk")

    def test_all_are_implementations(self):
        for impl in IMPLEMENTATIONS.values():
            assert isinstance(impl, Implementation)
            assert impl.key and impl.title and impl.section


class TestFig2Loc:
    """Fig. 2's stated and derived Fortran line counts."""

    def test_exact_values_from_paper(self):
        assert IMPLEMENTATIONS["single"].fortran_loc == 215
        assert IMPLEMENTATIONS["hybrid_overlap"].fortran_loc == 860  # exactly 4x

    def test_mpi_adds_57_to_73_percent(self):
        base = IMPLEMENTATIONS["single"].fortran_loc
        for key in ("bulk", "nonblocking", "thread_overlap"):
            ratio = IMPLEMENTATIONS[key].fortran_loc / base
            assert 1.57 <= ratio <= 1.74

    def test_nonblocking_adds_the_most(self):
        assert (
            IMPLEMENTATIONS["nonblocking"].fortran_loc
            > IMPLEMENTATIONS["bulk"].fortran_loc
        )
        assert (
            IMPLEMENTATIONS["nonblocking"].fortran_loc
            > IMPLEMENTATIONS["thread_overlap"].fortran_loc
        )

    def test_cuda_adds_6_percent(self):
        base = IMPLEMENTATIONS["single"].fortran_loc
        assert IMPLEMENTATIONS["gpu_resident"].fortran_loc == pytest.approx(
            base * 1.06, abs=1
        )

    def test_gpu_mpi_almost_triples(self):
        base = IMPLEMENTATIONS["single"].fortran_loc
        for key in ("gpu_bulk", "gpu_streams"):
            ratio = IMPLEMENTATIONS[key].fortran_loc / base
            assert 2.5 < ratio < 3.2

    def test_hybrid_most_expensive(self):
        locs = {k: i.fortran_loc for k, i in IMPLEMENTATIONS.items()}
        assert max(locs, key=locs.get) == "hybrid_overlap"
