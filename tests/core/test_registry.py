"""Registry and implementation-metadata tests."""

import pytest

from repro.core.base import Implementation
from repro.core.registry import (
    CPU_KEYS,
    EXTENSION_KEYS,
    GPU_KEYS,
    IMPLEMENTATIONS,
    PAPER_KEYS,
    get_implementation,
)


class TestRegistry:
    def test_papers_nine_present(self):
        assert len(PAPER_KEYS) == 9
        assert set(PAPER_KEYS) <= set(IMPLEMENTATIONS)
        assert set(PAPER_KEYS) | set(EXTENSION_KEYS) == set(IMPLEMENTATIONS)

    def test_sections_cover_iv_a_through_i(self):
        sections = {IMPLEMENTATIONS[k].section for k in PAPER_KEYS}
        assert sections == {f"IV-{c}" for c in "ABCDEFGHI"}

    def test_extensions_marked(self):
        for key in EXTENSION_KEYS:
            assert IMPLEMENTATIONS[key].section == "ext"
            assert IMPLEMENTATIONS[key].fortran_loc == 0

    def test_keys_partition_cpu_gpu(self):
        assert set(CPU_KEYS) | set(GPU_KEYS) == set(IMPLEMENTATIONS)
        assert not set(CPU_KEYS) & set(GPU_KEYS)

    def test_gpu_flags_consistent(self):
        for key in GPU_KEYS:
            assert IMPLEMENTATIONS[key].uses_gpu
        for key in CPU_KEYS:
            assert not IMPLEMENTATIONS[key].uses_gpu

    def test_mpi_flags(self):
        assert not IMPLEMENTATIONS["single"].uses_mpi
        assert not IMPLEMENTATIONS["gpu_resident"].uses_mpi
        for key in ("bulk", "nonblocking", "thread_overlap", "gpu_bulk",
                    "gpu_streams", "hybrid_bulk", "hybrid_overlap"):
            assert IMPLEMENTATIONS[key].uses_mpi

    def test_unknown_key(self):
        with pytest.raises(KeyError, match="unknown implementation"):
            get_implementation("quantum")

    def test_instances_are_singletons(self):
        assert get_implementation("bulk") is get_implementation("bulk")

    def test_all_are_implementations(self):
        for impl in IMPLEMENTATIONS.values():
            assert isinstance(impl, Implementation)
            assert impl.key and impl.title and impl.section


class TestTwoLevelRegistry:
    """The ``(workload, implementation)`` axes and their error paths."""

    def test_workload_level_resolves(self):
        from repro.workloads import get_workload

        spmv = get_workload("spmv")
        assert get_implementation("bulk", workload="spmv") is \
            spmv.implementations["bulk"]
        # The default-workload fast path still returns the old singletons.
        assert get_implementation("bulk") is IMPLEMENTATIONS["bulk"]
        assert get_implementation("bulk", workload="spmv") is not \
            get_implementation("bulk")

    def test_unknown_impl_names_both_axes(self):
        with pytest.raises(KeyError) as exc:
            get_implementation("quantum", workload="spmv")
        msg = exc.value.args[0]
        assert "'quantum'" in msg and "'spmv'" in msg
        assert "bulk" in msg  # lists the workload's known keys

    def test_near_miss_suggested_under_normalization(self):
        # Case, space and hyphen variants suggest the snake_case key
        # instead of resolving (keys enter cache keys verbatim).
        for typo in ("Hybrid-Overlap", "hybrid overlap", "HYBRID_OVERLAP"):
            with pytest.raises(KeyError, match="did you mean 'hybrid_overlap'"):
                get_implementation(typo)

    def test_cross_workload_hint(self):
        # gpu_streams exists under advection only; asking spmv for it
        # points at the workload that has it.
        with pytest.raises(KeyError, match="exists under workload 'advection'"):
            get_implementation("gpu_streams", workload="spmv")
        # unknown workload errors before the implementation axis:
        with pytest.raises(KeyError, match="unknown workload"):
            get_implementation("bulk", workload="nope")

    def test_workload_near_miss(self):
        from repro.workloads import get_workload

        with pytest.raises(KeyError, match="did you mean 'spmv'"):
            get_workload("SpMV")
        with pytest.raises(KeyError, match="did you mean 'advection'"):
            get_workload("Advection")

    def test_implementation_keys_per_workload(self):
        from repro.core.registry import implementation_keys

        assert implementation_keys() == sorted(IMPLEMENTATIONS)
        assert implementation_keys("spmv") == \
            ["bulk", "hybrid_overlap", "nonblocking"]


class TestFrozenSingletons:
    """Registry instances are shared across interleaved runs; writing to
    them used to silently bleed state between runs — now it raises."""

    def test_advection_instances_frozen(self):
        for impl in IMPLEMENTATIONS.values():
            with pytest.raises(AttributeError, match="shared singletons"):
                impl.scratch = object()

    def test_spmv_instances_frozen(self):
        from repro.workloads import get_workload

        for impl in get_workload("spmv").implementations.values():
            with pytest.raises(AttributeError, match="shared singletons"):
                impl.scratch = object()

    def test_interleaved_runs_are_bit_identical(self):
        """A run's results must not depend on what ran before it on the
        same singletons (scheduler pool / serve daemon interleaving)."""
        from repro.core.config import RunConfig
        from repro.core.runner import run
        from repro.machines import JAGUARPF, YONA

        adv = RunConfig(machine=YONA, implementation="hybrid_overlap",
                        cores=12, threads_per_task=6, steps=2)
        spmv = RunConfig(machine=JAGUARPF, implementation="nonblocking",
                         cores=24, threads_per_task=6, steps=2,
                         workload="spmv",
                         workload_params=(("rows", 1 << 15),))
        first = run(adv)
        run(spmv)  # interleave a different workload on shared machinery
        second = run(adv)
        assert second.elapsed_s == first.elapsed_s
        assert second.phases == first.phases
        assert second.comm_stats == first.comm_stats


class TestFig2Loc:
    """Fig. 2's stated and derived Fortran line counts."""

    def test_exact_values_from_paper(self):
        assert IMPLEMENTATIONS["single"].fortran_loc == 215
        assert IMPLEMENTATIONS["hybrid_overlap"].fortran_loc == 860  # exactly 4x

    def test_mpi_adds_57_to_73_percent(self):
        base = IMPLEMENTATIONS["single"].fortran_loc
        for key in ("bulk", "nonblocking", "thread_overlap"):
            ratio = IMPLEMENTATIONS[key].fortran_loc / base
            assert 1.57 <= ratio <= 1.74

    def test_nonblocking_adds_the_most(self):
        assert (
            IMPLEMENTATIONS["nonblocking"].fortran_loc
            > IMPLEMENTATIONS["bulk"].fortran_loc
        )
        assert (
            IMPLEMENTATIONS["nonblocking"].fortran_loc
            > IMPLEMENTATIONS["thread_overlap"].fortran_loc
        )

    def test_cuda_adds_6_percent(self):
        base = IMPLEMENTATIONS["single"].fortran_loc
        assert IMPLEMENTATIONS["gpu_resident"].fortran_loc == pytest.approx(
            base * 1.06, abs=1
        )

    def test_gpu_mpi_almost_triples(self):
        base = IMPLEMENTATIONS["single"].fortran_loc
        for key in ("gpu_bulk", "gpu_streams"):
            ratio = IMPLEMENTATIONS[key].fortran_loc / base
            assert 2.5 < ratio < 3.2

    def test_hybrid_most_expensive(self):
        locs = {k: i.fortran_loc for k, i in IMPLEMENTATIONS.items()}
        assert max(locs, key=locs.get) == "hybrid_overlap"
