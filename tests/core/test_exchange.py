"""Protocol-level tests for the serialized halo exchange and comm counters."""

import numpy as np
import pytest

from repro import RunConfig, JAGUARPF, YONA, run
from repro.decomp.halo import face_message_bytes


class TestMessageCounts:
    """The paper's §IV-B protocol: exactly 6 messages per task per step."""

    @pytest.mark.parametrize("impl", ["bulk", "nonblocking", "thread_overlap"])
    @pytest.mark.parametrize("network", ["mirror", "full"])
    def test_six_messages_per_step(self, impl, network):
        steps = 3
        cfg = RunConfig(machine=JAGUARPF, implementation=impl, cores=48,
                        threads_per_task=6, steps=steps, network=network)
        r = run(cfg)
        # comm_stats aggregates over every simulated rank: the representative
        # alone in mirror mode, all ranks in full-network mode.
        nranks = cfg.ntasks if network == "full" else 1
        assert r.comm_stats["messages_sent"] == 6 * steps * nranks
        assert r.comm_stats["messages_received"] == 6 * steps * nranks

    def test_full_network_global_sent_equals_received(self):
        """Global conservation: every sent message/byte is received."""
        r = run(RunConfig(machine=JAGUARPF, implementation="nonblocking",
                          cores=96, threads_per_task=12, steps=2,
                          network="full"))
        assert r.comm_stats["messages_sent"] > 0
        assert r.comm_stats["messages_sent"] == r.comm_stats["messages_received"]
        assert r.comm_stats["bytes_sent"] == r.comm_stats["bytes_received"]

    def test_gpu_implementations_also_six(self):
        for impl in ("gpu_bulk", "gpu_streams", "hybrid_bulk", "hybrid_overlap"):
            r = run(RunConfig(machine=YONA, implementation=impl, cores=24,
                              threads_per_task=12, steps=2, box_thickness=2))
            assert r.comm_stats["messages_sent"] == 12, impl

    def test_single_task_sends_nothing(self):
        r = run(RunConfig(machine=JAGUARPF, implementation="single",
                          cores=12, threads_per_task=12, steps=2))
        assert r.comm_stats == {}


class TestMessageVolumes:
    def test_bytes_match_face_plan(self):
        """Total bytes = 2 faces per dim with rims, per step."""
        steps = 2
        cfg = RunConfig(machine=JAGUARPF, implementation="bulk", cores=96,
                        threads_per_task=12, steps=steps)
        r = run(cfg)
        from repro.decomp.partition import Decomposition
        from repro.simmpi.mirror import MirrorProfile

        d = Decomposition(cfg.ntasks, cfg.domain)
        profile = MirrorProfile.for_decomposition(
            cfg.machine, d, cfg.tasks_per_node
        )
        shape = d.subdomain(profile.representative_rank).shape
        expected = steps * 2 * sum(face_message_bytes(shape, dim) for dim in range(3))
        assert r.comm_stats["bytes_sent"] == expected

    def test_larger_threads_fewer_bigger_messages(self):
        """More threads/task -> fewer tasks -> same count, bigger faces."""
        r1 = run(RunConfig(machine=JAGUARPF, implementation="bulk", cores=96,
                           threads_per_task=1, steps=1))
        r12 = run(RunConfig(machine=JAGUARPF, implementation="bulk", cores=96,
                            threads_per_task=12, steps=1))
        assert r1.comm_stats["messages_sent"] == r12.comm_stats["messages_sent"] == 6
        assert r12.comm_stats["bytes_sent"] > r1.comm_stats["bytes_sent"]


class TestCornerPropagation:
    """End-to-end: diagonal advection forces data through the corners."""

    def test_diagonal_unit_cfl_through_mpi(self):
        """With c=(1,1,1), nu=1 the exact result is a diagonal shift whose
        stencil reduces to the corner coefficient a_{-1,-1,-1}=1 — any
        corner-forwarding bug in the serialized exchange breaks this."""
        from repro.stencil.grid import Grid3D, gaussian_initial_condition

        grid = Grid3D((12, 12, 12))
        u0 = gaussian_initial_condition(grid, sigma=0.12)
        cfg = RunConfig(machine=JAGUARPF, implementation="bulk", cores=24,
                        threads_per_task=3, steps=3, domain=(12, 12, 12),
                        velocity=(1.0, 1.0, 1.0), sigma=0.12,
                        functional=True, network="full")
        r = run(cfg)
        expected = np.roll(u0, (3, 3, 3), axis=(0, 1, 2))
        assert np.abs(r.global_field - expected).max() < 1e-13

    def test_diagonal_through_gpu_streams_rim_forwarding(self):
        """§IV-G's host-side rim forwarding must deliver the same corners."""
        from repro.stencil.grid import Grid3D, gaussian_initial_condition

        grid = Grid3D((12, 12, 12))
        u0 = gaussian_initial_condition(grid, sigma=0.12)
        cfg = RunConfig(machine=YONA, implementation="gpu_streams", cores=12,
                        threads_per_task=6, steps=3, domain=(12, 12, 12),
                        velocity=(1.0, 1.0, 1.0), sigma=0.12,
                        functional=True, network="full")
        r = run(cfg)
        expected = np.roll(u0, (3, 3, 3), axis=(0, 1, 2))
        assert np.abs(r.global_field - expected).max() < 1e-13
