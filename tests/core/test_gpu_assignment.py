"""Regression tests for task→GPU assignment with several GPUs per node."""

import dataclasses

import pytest

from repro.core.config import RunConfig
from repro.core.registry import get_implementation
from repro.core.runner import _build_full, _tasks_per_gpu, run
from repro.decomp.partition import Decomposition
from repro.des import Environment
from repro.machines import YONA
from repro.workloads import get_workload


def _yona_with_gpus(gpus_per_node: int):
    return dataclasses.replace(YONA, gpus_per_node=gpus_per_node)


class TestTasksPerGpu:
    def test_single_gpu_node_serializes_all_tasks(self):
        cfg = RunConfig(machine=YONA, implementation="gpu_bulk", cores=12,
                        threads_per_task=3)
        assert cfg.tasks_per_node == 4
        assert _tasks_per_gpu(cfg) == 4

    def test_two_gpus_per_node_halve_the_sharing(self):
        cfg = RunConfig(machine=_yona_with_gpus(2), implementation="gpu_bulk",
                        cores=12, threads_per_task=3)
        assert _tasks_per_gpu(cfg) == 2

    def test_more_gpus_than_tasks_never_below_one(self):
        cfg = RunConfig(machine=_yona_with_gpus(8), implementation="gpu_bulk",
                        cores=12, threads_per_task=12)
        assert _tasks_per_gpu(cfg) == 1

    def test_cpu_machine_default_counts_as_one(self):
        from repro.machines import JAGUARPF

        cfg = RunConfig(machine=JAGUARPF, implementation="bulk", cores=12,
                        threads_per_task=12)
        assert JAGUARPF.gpus_per_node == 0
        assert _tasks_per_gpu(cfg) == 1


class TestFullBackendGpuWiring:
    def _contexts(self, machine, cores, threads):
        cfg = RunConfig(machine=machine, implementation="gpu_bulk",
                        cores=cores, threads_per_task=threads,
                        domain=(48, 48, 48), network="full")
        impl = get_implementation(cfg.implementation)
        env = Environment()
        decomp = Decomposition(cfg.ntasks, cfg.domain)
        workload = get_workload(cfg.workload)
        return cfg, _build_full(env, cfg, impl, workload, decomp)

    def test_one_gpu_per_node_is_shared_by_the_node(self):
        _cfg, ctxs = self._contexts(YONA, 12, 3)  # 4 tasks, 1 node, 1 GPU
        gpus = {id(c.gpu) for c in ctxs}
        assert len(gpus) == 1

    def test_two_gpus_per_node_split_contiguously(self):
        _cfg, ctxs = self._contexts(_yona_with_gpus(2), 12, 3)
        # tasks_per_gpu = 2: ranks {0,1} share gpu0, ranks {2,3} share gpu1.
        assert ctxs[0].gpu is ctxs[1].gpu
        assert ctxs[2].gpu is ctxs[3].gpu
        assert ctxs[0].gpu is not ctxs[2].gpu

    def test_multi_node_assignment_does_not_alias_across_nodes(self):
        _cfg, ctxs = self._contexts(_yona_with_gpus(2), 24, 6)
        # 4 tasks over 2 nodes (2 per node), 2 GPUs per node -> 1 task/GPU.
        assert len({id(c.gpu) for c in ctxs}) == 4

    def test_end_to_end_run_with_two_gpus_per_node(self):
        """More GPUs per node must not run slower than one (less sharing)."""
        shared = run(RunConfig(machine=YONA, implementation="gpu_bulk",
                               cores=12, threads_per_task=3,
                               domain=(48, 48, 48), network="full"))
        split = run(RunConfig(machine=_yona_with_gpus(2),
                              implementation="gpu_bulk", cores=12,
                              threads_per_task=3, domain=(48, 48, 48),
                              network="full"))
        assert split.elapsed_s <= shared.elapsed_s * (1 + 1e-9)
