"""Functional correctness: every implementation must reproduce the
single-domain reference field bit-for-bit, across decompositions.

This is the reproduction's strongest oracle: the nine §IV programs all
implement the same Equation-2 step, so their fields must agree exactly (the
per-point arithmetic is identical), and after enough steps must track the
analytic solution.
"""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.runner import run
from repro.machines import JAGUARPF, LENS, YONA
from repro.stencil.coefficients import max_stable_nu, tensor_product_coefficients
from repro.stencil.grid import Grid3D, allocate_field, gaussian_initial_condition
from repro.stencil.kernels import advance, interior

DOMAIN = (16, 16, 16)
VELOCITY = (1.0, 0.9, 0.8)
STEPS = 3


@pytest.fixture(scope="module")
def reference():
    grid = Grid3D(DOMAIN)
    nu = max_stable_nu(VELOCITY)
    coeffs = tensor_product_coefficients(VELOCITY, nu)
    u = allocate_field(grid.n)
    interior(u)[...] = gaussian_initial_condition(grid, sigma=0.08)
    u = advance(u, coeffs, steps=STEPS)
    return interior(u).copy()


def functional_run(machine, impl, cores, threads, **kw):
    cfg = RunConfig(
        machine=machine,
        implementation=impl,
        cores=cores,
        threads_per_task=threads,
        steps=STEPS,
        domain=DOMAIN,
        velocity=VELOCITY,
        functional=True,
        network="full",
        **kw,
    )
    return run(cfg)


class TestCpuImplementations:
    def test_single_task(self, reference):
        r = functional_run(JAGUARPF, "single", 12, 12)
        assert np.array_equal(r.global_field, reference)

    @pytest.mark.parametrize("threads", [1, 2, 3, 6])
    def test_bulk_across_decompositions(self, reference, threads):
        r = functional_run(JAGUARPF, "bulk", 12, threads)
        assert np.array_equal(r.global_field, reference)

    @pytest.mark.parametrize("cores,threads", [(12, 2), (12, 1), (24, 6)])
    def test_nonblocking(self, reference, cores, threads):
        r = functional_run(JAGUARPF, "nonblocking", cores, threads)
        assert np.array_equal(r.global_field, reference)

    @pytest.mark.parametrize("cores,threads", [(12, 3), (12, 1), (24, 12)])
    def test_thread_overlap(self, reference, cores, threads):
        r = functional_run(JAGUARPF, "thread_overlap", cores, threads)
        assert np.array_equal(r.global_field, reference)

    def test_multinode_decomposition(self, reference):
        r = functional_run(JAGUARPF, "bulk", 48, 6)  # 8 tasks, (2,2,2)
        assert np.array_equal(r.global_field, reference)


class TestGpuImplementations:
    def test_gpu_resident(self, reference):
        r = functional_run(YONA, "gpu_resident", 12, 12)
        assert np.array_equal(r.global_field, reference)

    @pytest.mark.parametrize(
        "machine,threads", [(YONA, 6), (YONA, 12), (LENS, 8), (LENS, 16)]
    )
    def test_gpu_bulk(self, reference, machine, threads):
        r = functional_run(machine, "gpu_bulk", machine.node.cores, threads)
        assert np.array_equal(r.global_field, reference)

    @pytest.mark.parametrize("threads", [6, 12])
    def test_gpu_streams(self, reference, threads):
        r = functional_run(YONA, "gpu_streams", 12, threads)
        assert np.array_equal(r.global_field, reference)

    @pytest.mark.parametrize("thickness", [1, 2, 3])
    def test_hybrid_bulk(self, reference, thickness):
        r = functional_run(YONA, "hybrid_bulk", 12, 6, box_thickness=thickness)
        assert np.array_equal(r.global_field, reference)

    @pytest.mark.parametrize("thickness", [1, 2, 3])
    @pytest.mark.parametrize("threads", [6, 12])
    def test_hybrid_overlap(self, reference, thickness, threads):
        r = functional_run(
            YONA, "hybrid_overlap", 12, threads, box_thickness=thickness
        )
        assert np.array_equal(r.global_field, reference)

    def test_hybrid_overlap_multinode(self, reference):
        r = functional_run(YONA, "hybrid_overlap", 24, 12, box_thickness=2)
        assert np.array_equal(r.global_field, reference)


class TestAgainstAnalytic:
    def test_norms_reported_and_small(self):
        r = functional_run(JAGUARPF, "bulk", 12, 6)
        assert r.norms is not None
        assert r.norms["linf"] < 0.2  # coarse grid, few steps

    def test_longer_run_tracks_analytic(self):
        cfg = RunConfig(
            machine=JAGUARPF, implementation="bulk", cores=12,
            threads_per_task=6, steps=16, domain=(32, 32, 32),
            velocity=VELOCITY, sigma=0.15, functional=True, network="full",
        )
        r = run(cfg)
        assert r.norms["linf"] < 0.06

    def test_unit_cfl_axis_velocity_exact(self):
        """Unit-CFL axis-aligned advection is exact through MPI + GPU."""
        grid = Grid3D((16, 16, 16))
        u0 = gaussian_initial_condition(grid, sigma=0.1)
        for impl, machine in (("bulk", JAGUARPF), ("hybrid_overlap", YONA)):
            cfg = RunConfig(
                machine=machine, implementation=impl, cores=12,
                threads_per_task=6, steps=4, domain=(16, 16, 16),
                velocity=(1.0, 0.0, 0.0), sigma=0.1,
                box_thickness=2, functional=True, network="full",
            )
            r = run(cfg)
            expected = np.roll(u0, 4, axis=0)
            assert np.abs(r.global_field - expected).max() < 1e-13
