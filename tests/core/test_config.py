"""Tests for RunConfig validation and derived layout."""

import pytest

from repro.core.config import RunConfig, RunResult
from repro.machines import HOPPER, JAGUARPF, YONA
from repro.stencil.coefficients import FLOPS_PER_POINT


def cfg(**kw):
    base = dict(machine=JAGUARPF, implementation="bulk", cores=24,
                threads_per_task=2)
    base.update(kw)
    return RunConfig(**base)


class TestValidation:
    def test_threads_exceed_node(self):
        with pytest.raises(ValueError, match="impossible"):
            cfg(threads_per_task=13)

    def test_threads_must_pack_node(self):
        with pytest.raises(ValueError, match="pack"):
            cfg(threads_per_task=5)  # 12 % 5 != 0

    def test_cores_whole_nodes(self):
        with pytest.raises(ValueError, match="whole number"):
            cfg(cores=18)

    def test_cores_divisible_by_threads(self):
        with pytest.raises(ValueError):
            cfg(cores=12, threads_per_task=8)

    def test_functional_requires_full_network(self):
        with pytest.raises(ValueError, match="full network"):
            cfg(functional=True, network="mirror")

    def test_unknown_network(self):
        with pytest.raises(ValueError, match="network"):
            cfg(network="carrier-pigeon")

    def test_steps_positive(self):
        with pytest.raises(ValueError):
            cfg(steps=0)

    def test_subnode_cores_allowed(self):
        c = cfg(cores=6, threads_per_task=2)
        assert c.ntasks == 3


class TestDerived:
    def test_ntasks(self):
        assert cfg(cores=48, threads_per_task=6).ntasks == 8

    def test_tasks_per_node(self):
        assert cfg(cores=48, threads_per_task=6).tasks_per_node == 2
        assert cfg(machine=HOPPER, cores=48, threads_per_task=2).tasks_per_node == 12

    def test_nodes(self):
        assert cfg(cores=48, threads_per_task=6).nodes == 4

    def test_total_points(self):
        assert cfg().total_points == 420**3
        assert cfg(domain=(8, 10, 12)).total_points == 960

    def test_nu_at_max_stable(self):
        c = cfg(velocity=(2.0, 1.0, 0.5), nu_fraction=1.0)
        assert c.nu == pytest.approx(0.5)

    def test_with_(self):
        c = cfg()
        c2 = c.with_(cores=48)
        assert c2.cores == 48 and c.cores == 24
        assert c2.machine is c.machine


class TestRunResult:
    def test_gflops_metric(self):
        """GF uses the paper's analytic 53 flops/point, not wall ops."""
        c = cfg(domain=(10, 10, 10), steps=4)
        r = RunResult(config=c, elapsed_s=2.0)
        expected = 1000 * FLOPS_PER_POINT * 4 / 2.0 / 1e9
        assert r.gflops == pytest.approx(expected)
        assert r.seconds_per_step == pytest.approx(0.5)

    def test_summary_mentions_machine_and_impl(self):
        c = cfg()
        s = RunResult(config=c, elapsed_s=1.0).summary()
        assert "JaguarPF" in s and "bulk" in s
