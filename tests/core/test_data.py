"""Tests for RankData (functional per-rank state) and gpu_common geometry."""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.data import RankData, local_initial_condition
from repro.core.gpu_common import (
    box_points,
    copy_box_dev_to_host,
    copy_box_host_to_dev,
    inner_boundary_slabs,
    inner_halo_slabs,
    slab_normal_split,
)
from repro.decomp.boxdecomp import BoxDecomposition
from repro.decomp.partition import Decomposition
from repro.machines import JAGUARPF
from repro.stencil.grid import Grid3D, gaussian_initial_condition


def make_cfg(functional=True, domain=(12, 12, 12), ntasks_cores=(12, 6)):
    cores, threads = ntasks_cores
    return RunConfig(
        machine=JAGUARPF, implementation="bulk", cores=cores,
        threads_per_task=threads, domain=domain,
        functional=functional, network="full",
    )


class TestLocalInitialCondition:
    def test_tiles_reassemble_global(self):
        cfg = make_cfg()
        d = Decomposition(cfg.ntasks, cfg.domain)
        global_ic = gaussian_initial_condition(Grid3D(cfg.domain), sigma=cfg.sigma)
        assembled = np.zeros(cfg.domain)
        for r in range(cfg.ntasks):
            sub = d.subdomain(r)
            sl = tuple(slice(o, o + s) for o, s in zip(sub.offset, sub.shape))
            assembled[sl] = local_initial_condition(cfg, sub)
        assert np.allclose(assembled, global_ic)


class TestRankData:
    def test_shadow_mode_noops(self):
        cfg = make_cfg(functional=False).with_(functional=False, network="mirror")
        sub = Decomposition(cfg.ntasks, cfg.domain).subdomain(0)
        data = RankData(cfg, sub)
        assert data.u is None
        assert data.pack(0, -1) is None
        data.unpack(0, -1, None)  # no-op, no error
        data.apply_all()
        data.copy_state()
        assert data.interior_view() is None

    def test_functional_holds_initial_condition(self):
        cfg = make_cfg()
        sub = Decomposition(cfg.ntasks, cfg.domain).subdomain(1)
        data = RankData(cfg, sub)
        assert np.allclose(data.interior_view(), local_initial_condition(cfg, sub))

    def test_functional_unpack_requires_payload(self):
        cfg = make_cfg()
        sub = Decomposition(cfg.ntasks, cfg.domain).subdomain(0)
        data = RankData(cfg, sub)
        with pytest.raises(ValueError, match="payload"):
            data.unpack(0, -1, None)

    def test_core_and_boundary_partition(self):
        cfg = make_cfg()
        sub = Decomposition(cfg.ntasks, cfg.domain).subdomain(0)
        data = RankData(cfg, sub)
        assert data.core_points() + data.boundary_points() == sub.points

    def test_core_thirds_tile_core(self):
        cfg = make_cfg()
        sub = Decomposition(cfg.ntasks, cfg.domain).subdomain(0)
        data = RankData(cfg, sub)
        total = sum(
            (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2])
            for lo, hi in data.core_thirds()
        )
        assert total == data.core_points()

    def test_boundary_slabs_tile_boundary(self):
        cfg = make_cfg()
        sub = Decomposition(cfg.ntasks, cfg.domain).subdomain(0)
        data = RankData(cfg, sub)
        total = sum(
            (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2])
            for lo, hi in data.boundary_slabs()
        )
        assert total == data.boundary_points()

    def test_copy_region(self):
        cfg = make_cfg()
        sub = Decomposition(cfg.ntasks, cfg.domain).subdomain(0)
        data = RankData(cfg, sub)
        data.unew[...] = 7.0
        data.copy_region((0, 0, 0), (2, 2, 2))
        assert np.all(data.interior_view()[:2, :2, :2] == 7.0)
        assert data.interior_view()[3, 3, 3] != 7.0


class TestGpuCommonGeometry:
    def test_inner_slabs_disjoint_and_complete(self):
        box = BoxDecomposition((12, 14, 16), 2)
        for slabs, expected in (
            (inner_boundary_slabs(box), box.inner_boundary_points),
            (inner_halo_slabs(box), box.inner_halo_points),
        ):
            marked = np.zeros((20, 20, 20), dtype=int)
            total = 0
            for _, (lo, hi) in slabs:
                marked[lo[0] : hi[0], lo[1] : hi[1], lo[2] : hi[2]] += 1
                total += box_points((lo, hi))
            assert marked.max() == 1  # disjoint
            assert total == expected

    def test_slab_normal_split_sums(self):
        box = BoxDecomposition((12, 14, 16), 2)
        split = slab_normal_split(inner_boundary_slabs(box))
        assert sum(split.values()) == box.inner_boundary_points

    def test_host_dev_copy_roundtrip(self):
        box = BoxDecomposition((8, 8, 8), 2)
        rng = np.random.default_rng(0)
        host = rng.random((10, 10, 10))  # haloed 8^3
        dev = np.zeros([s + 2 for s in box.block_shape])
        slab = (box.block_lo, box.block_hi)
        copy_box_host_to_dev(host, dev, box, slab)
        host2 = np.zeros_like(host)
        copy_box_dev_to_host(dev, host2, box, slab)
        sl = tuple(slice(1 + l, 1 + h) for l, h in zip(*slab))
        assert np.array_equal(host2[sl], host[sl])

    def test_none_arrays_are_noop(self):
        box = BoxDecomposition((8, 8, 8), 2)
        copy_box_host_to_dev(None, None, box, (box.block_lo, box.block_hi))
