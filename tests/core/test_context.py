"""Unit tests for RankContext's cost helpers."""

import pytest

from repro.core.config import RunConfig
from repro.core.context import FACE_KERNEL_MULTIPLIER, RankContext
from repro.core.data import RankData
from repro.decomp.partition import Decomposition
from repro.des import Environment
from repro.machines import JAGUARPF, YONA
from repro.simgpu.device import Gpu
from repro.stencil.coefficients import FLOPS_PER_POINT


def make_ctx(machine=YONA, gpu=True, gpu_share=1, **cfg_kw):
    kw = dict(machine=machine, implementation="bulk", cores=machine.node.cores,
              threads_per_task=6, domain=(32, 32, 32))
    kw.update(cfg_kw)
    cfg = RunConfig(**kw)
    env = Environment()
    decomp = Decomposition(cfg.ntasks, cfg.domain)
    sub = decomp.subdomain(0)
    g = Gpu(env, machine.gpu) if (gpu and machine.gpu) else None
    return RankContext(env, cfg, sub, decomp, None, RankData(cfg, sub), g, gpu_share)


def run_for(ctx, gen):
    p = ctx.env.process(gen)
    ctx.env.run()
    return ctx.env.now


class TestCpuCosts:
    def test_compute_charges_phase(self):
        ctx = make_ctx(machine=JAGUARPF, gpu=False)

        def prog():
            yield ctx.compute(10_000)

        run_for(ctx, prog())
        assert ctx.phases["compute"] > 0

    def test_pieces_add_region_overheads(self):
        ctx1 = make_ctx(machine=JAGUARPF, gpu=False)
        ctx6 = make_ctx(machine=JAGUARPF, gpu=False)

        def prog(ctx, pieces):
            yield ctx.compute(10_000, boundary=True, pieces=pieces)

        t1 = run_for(ctx1, prog(ctx1, 1))
        t6 = run_for(ctx6, prog(ctx6, 6))
        assert t6 > t1

    def test_zero_points_free(self):
        ctx = make_ctx(machine=JAGUARPF, gpu=False)

        def prog():
            yield ctx.compute(0)

        assert run_for(ctx, prog()) == 0.0

    def test_compute_seconds_matches_compute(self):
        ctx = make_ctx(machine=JAGUARPF, gpu=False)
        expected = ctx.compute_seconds(50_000)

        def prog():
            yield ctx.compute(50_000, phase="x")

        # compute() adds the parallel-region overhead on top
        assert run_for(ctx, prog()) >= expected


class TestGpuCosts:
    def test_face_kernel_multipliers_ordered(self):
        """x faces slowest, z faces fastest (see FACE_KERNEL_MULTIPLIER)."""
        times = {}
        for dim in range(3):
            ctx = make_ctx()
            s = ctx.gpu.stream()

            def prog(ctx=ctx, s=s, dim=dim):
                ev = ctx.face_kernel(s, 100_000, dim)
                yield ev

            times[dim] = run_for(ctx, prog())
        assert times[0] > times[1] > times[2]
        assert times[0] / times[1] == pytest.approx(
            FACE_KERNEL_MULTIPLIER[1] / FACE_KERNEL_MULTIPLIER[0]
        )

    def test_thin_kernel_rate(self):
        ctx = make_ctx()
        s = ctx.gpu.stream()

        def prog():
            yield ctx.thin_kernel(s, 100_000)

        t = run_for(ctx, prog())
        spec = YONA.gpu
        expected = 100_000 * FLOPS_PER_POINT / (
            spec.stencil_gflops_best * spec.thin_slab_efficiency * 1e9
        )
        assert t == pytest.approx(expected)

    def test_gpu_share_scales_kernels(self):
        t1 = None
        for share, out in ((1, {}), (3, {})):
            ctx = make_ctx(gpu_share=share)
            s = ctx.gpu.stream()

            def prog(ctx=ctx, s=s):
                yield ctx.stencil_kernel(s, 1_000_000)

            t = run_for(ctx, prog())
            if t1 is None:
                t1 = t
            else:
                assert t == pytest.approx(3 * t1)

    def test_pcie_sync_serializes_on_lock(self):
        ctx = make_ctx()
        nbytes = int(1e-3 * YONA.gpu.pcie_unpinned_gbs * 1e9)

        def prog():
            a = ctx.pcie_sync(nbytes)
            b = ctx.pcie_sync(nbytes)
            yield ctx.env.all_of([a, b])

        t = run_for(ctx, prog())
        single = YONA.gpu.pcie_latency_s + 1e-3
        assert t == pytest.approx(2 * single, rel=0.01)

    def test_device_copy_strided_slower_than_plane(self):
        tx, tz = None, None
        for dim in (0, 2):
            ctx = make_ctx()
            s = ctx.gpu.stream()

            def prog(ctx=ctx, s=s, dim=dim):
                yield ctx.device_copy_kernel(s, 10**6, dim)

            t = run_for(ctx, prog())
            if dim == 0:
                tx = t
            else:
                tz = t
        assert tx > tz

    def test_require_gpu_error(self):
        ctx = make_ctx(machine=JAGUARPF, gpu=False)
        with pytest.raises(RuntimeError, match="no GPU"):
            ctx.launch_cost()

    def test_gpu_block_override(self):
        ctx = make_ctx(block=(32, 4))
        assert ctx.gpu_block == (32, 4)

    def test_gpu_block_default_is_device_best(self):
        ctx = make_ctx()
        from repro.simgpu.blockmodel import best_block

        assert ctx.gpu_block == best_block(YONA.gpu, ctx.sub.shape)

    def test_launch_cost_scales(self):
        ctx = make_ctx()

        def prog():
            yield ctx.launch_cost(5)

        t = run_for(ctx, prog())
        assert t == pytest.approx(5 * YONA.gpu.kernel_launch_us * 1e-6)


class TestTopologyHelpers:
    def test_neighbor_delegates_to_decomp(self):
        ctx = make_ctx(machine=JAGUARPF, gpu=False, cores=12, threads_per_task=2)
        assert ctx.neighbor(2, 1) == ctx.decomp.neighbor(0, 2, 1)

    def test_face_bytes(self):
        ctx = make_ctx(machine=JAGUARPF, gpu=False)
        from repro.decomp.halo import face_message_bytes

        for dim in range(3):
            assert ctx.face_bytes(dim) == face_message_bytes(ctx.sub.shape, dim)
