"""Tests for the overlap-channel ablations and multi-GPU nodes (§VI)."""

from dataclasses import replace

import numpy as np
import pytest

from repro import RunConfig, YONA, run


BASE = dict(machine=YONA, implementation="hybrid_overlap", cores=48,
            threads_per_task=12, box_thickness=2)


class TestOverlapAblations:
    def test_disabling_stream_overlap_costs_performance(self):
        full = run(RunConfig(**BASE)).gflops
        ablated = run(RunConfig(disable_stream_overlap=True, **BASE)).gflops
        assert ablated < 0.9 * full

    def test_disabling_mpi_overlap_costs_little_here(self):
        """At modest scale the walls hide MPI easily; losing the overlap is
        cheap — consistent with the paper's point that the win is the
        GPU-side decoupling, not the MPI interleave."""
        full = run(RunConfig(**BASE)).gflops
        ablated = run(RunConfig(disable_mpi_overlap=True, **BASE)).gflops
        assert ablated <= full + 1e-9
        assert ablated > 0.9 * full

    def test_double_ablation_worst(self):
        neither = run(RunConfig(disable_stream_overlap=True,
                                disable_mpi_overlap=True, **BASE)).gflops
        for kw in ({}, {"disable_stream_overlap": True},
                   {"disable_mpi_overlap": True}):
            assert neither <= run(RunConfig(**{**BASE, **kw})).gflops + 1e-9

    def test_ablations_preserve_numerics(self):
        """Switching overlap off must not change the computed field."""
        common = dict(machine=YONA, implementation="hybrid_overlap",
                      cores=12, threads_per_task=6, box_thickness=2,
                      steps=3, domain=(16, 16, 16),
                      functional=True, network="full")
        ref = run(RunConfig(**common)).global_field
        for kw in ({"disable_stream_overlap": True},
                   {"disable_mpi_overlap": True}):
            field = run(RunConfig(**common, **kw)).global_field
            assert np.array_equal(field, ref)


class TestMultiGpuNodes:
    def test_more_gpus_more_throughput(self):
        results = {}
        for g in (1, 2, 4):
            machine = replace(YONA, gpus_per_node=g)
            threads = 12 // g  # one task per GPU
            results[g] = run(
                RunConfig(machine=machine, implementation="hybrid_overlap",
                          cores=12, threads_per_task=threads, box_thickness=2)
            ).gflops
        assert results[2] > 1.4 * results[1]
        assert results[4] > results[2]

    def test_sublinear_returns(self):
        """Each extra GPU gets fewer CPU cores to feed it (paper §VI)."""
        machine2 = replace(YONA, gpus_per_node=2)
        machine4 = replace(YONA, gpus_per_node=4)
        g1 = run(RunConfig(machine=YONA, implementation="hybrid_overlap",
                           cores=12, threads_per_task=12, box_thickness=2)).gflops
        g4 = run(RunConfig(machine=machine4, implementation="hybrid_overlap",
                           cores=12, threads_per_task=3, box_thickness=2)).gflops
        assert g4 < 4 * g1

    def test_gpu_resident_unaffected_by_extra_gpus(self):
        """A single task uses one GPU regardless of how many exist."""
        machine = replace(YONA, gpus_per_node=4)
        base = run(RunConfig(machine=YONA, implementation="gpu_resident",
                             cores=12, threads_per_task=12)).gflops
        multi = run(RunConfig(machine=machine, implementation="gpu_resident",
                              cores=12, threads_per_task=12)).gflops
        assert multi == pytest.approx(base)

    def test_functional_with_private_gpus(self):
        """2 tasks with private GPUs still compute the exact field."""
        from repro.stencil.grid import Grid3D, allocate_field, gaussian_initial_condition
        from repro.stencil.kernels import advance, interior
        from repro.stencil.coefficients import max_stable_nu, tensor_product_coefficients

        vel = (1.0, 0.9, 0.8)
        coeffs = tensor_product_coefficients(vel, max_stable_nu(vel))
        u = allocate_field((16, 16, 16))
        interior(u)[...] = gaussian_initial_condition(Grid3D(16), sigma=0.08)
        u = advance(u, coeffs, steps=3)
        machine = replace(YONA, gpus_per_node=2)
        r = run(RunConfig(machine=machine, implementation="hybrid_overlap",
                          cores=12, threads_per_task=6, box_thickness=2,
                          steps=3, domain=(16, 16, 16), velocity=vel,
                          functional=True, network="full"))
        assert np.array_equal(r.global_field, interior(u))
