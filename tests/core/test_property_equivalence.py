"""Property-based cross-implementation equivalence.

For random velocities, CFL fractions, domains and decompositions, every
implementation must produce exactly the single-domain reference field —
the strongest statement that the nine programs implement one scheme.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RunConfig, JAGUARPF, YONA, run
from repro.stencil.coefficients import max_stable_nu, tensor_product_coefficients
from repro.stencil.grid import Grid3D, allocate_field, gaussian_initial_condition
from repro.stencil.kernels import advance, interior


def reference_field(domain, velocity, nu_fraction, steps, sigma):
    grid = Grid3D(domain)
    nu = nu_fraction * max_stable_nu(velocity)
    coeffs = tensor_product_coefficients(velocity, nu)
    u = allocate_field(grid.n)
    interior(u)[...] = gaussian_initial_condition(grid, sigma=sigma)
    u = advance(u, coeffs, steps=steps)
    return interior(u).copy()


nonzero = st.floats(0.2, 1.5).map(lambda v: round(v, 3))
signs = st.sampled_from([-1.0, 1.0])
velocities = st.tuples(
    st.tuples(nonzero, signs).map(lambda t: t[0] * t[1]),
    st.tuples(nonzero, signs).map(lambda t: t[0] * t[1]),
    st.tuples(nonzero, signs).map(lambda t: t[0] * t[1]),
)


class TestRandomizedEquivalence:
    @given(
        velocity=velocities,
        nu_fraction=st.floats(0.3, 1.0),
        threads=st.sampled_from([1, 2, 3, 6]),
        steps=st.integers(1, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_bulk_matches_reference(self, velocity, nu_fraction, threads, steps):
        domain = (12, 12, 12)
        ref = reference_field(domain, velocity, nu_fraction, steps, sigma=0.1)
        r = run(RunConfig(machine=JAGUARPF, implementation="bulk", cores=12,
                          threads_per_task=threads, steps=steps, domain=domain,
                          velocity=velocity, nu_fraction=nu_fraction, sigma=0.1,
                          functional=True, network="full"))
        assert np.array_equal(r.global_field, ref)

    @given(
        velocity=velocities,
        impl=st.sampled_from(["nonblocking", "thread_overlap"]),
        cores=st.sampled_from([12, 24]),
    )
    @settings(max_examples=10, deadline=None)
    def test_overlap_impls_match_reference(self, velocity, impl, cores):
        domain = (12, 12, 12)
        ref = reference_field(domain, velocity, 1.0, 2, sigma=0.1)
        r = run(RunConfig(machine=JAGUARPF, implementation=impl, cores=cores,
                          threads_per_task=3, steps=2, domain=domain,
                          velocity=velocity, sigma=0.1,
                          functional=True, network="full"))
        assert np.array_equal(r.global_field, ref)

    @given(
        velocity=velocities,
        impl=st.sampled_from(["gpu_bulk", "gpu_streams", "hybrid_bulk",
                              "hybrid_overlap"]),
        thickness=st.integers(1, 3),
    )
    @settings(max_examples=10, deadline=None)
    def test_gpu_impls_match_reference(self, velocity, impl, thickness):
        domain = (14, 14, 14)
        ref = reference_field(domain, velocity, 1.0, 2, sigma=0.1)
        r = run(RunConfig(machine=YONA, implementation=impl, cores=12,
                          threads_per_task=6, steps=2, domain=domain,
                          velocity=velocity, sigma=0.1,
                          box_thickness=thickness,
                          functional=True, network="full"))
        assert np.array_equal(r.global_field, ref)

    @given(domain=st.tuples(st.integers(9, 18), st.integers(9, 18),
                            st.integers(9, 18)))
    @settings(max_examples=10, deadline=None)
    def test_non_cubic_domains(self, domain):
        """Anisotropic grids exercise the near-cubic decomposition logic."""
        velocity = (1.0, 0.9, 0.8)
        ref = reference_field(domain, velocity, 1.0, 2, sigma=0.12)
        r = run(RunConfig(machine=JAGUARPF, implementation="bulk", cores=24,
                          threads_per_task=4, steps=2, domain=domain,
                          velocity=velocity, sigma=0.12,
                          functional=True, network="full"))
        assert np.array_equal(r.global_field, ref)
