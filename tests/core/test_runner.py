"""Tests for the runner: timing protocol, backends, and bookkeeping."""

import pytest

from repro.core.config import RunConfig
from repro.core.registry import IMPLEMENTATIONS
from repro.core.runner import run
from repro.machines import JAGUARPF, LENS, YONA


class TestTimingProtocol:
    def test_elapsed_positive_and_linear_in_steps(self):
        base = dict(machine=JAGUARPF, implementation="bulk", cores=24,
                    threads_per_task=6)
        t2 = run(RunConfig(steps=2, **base)).elapsed_s
        t4 = run(RunConfig(steps=4, **base)).elapsed_s
        assert t2 > 0
        # Steady-state: per-step time constant, so elapsed ~ doubles.
        assert t4 == pytest.approx(2 * t2, rel=0.05)

    def test_setup_outside_measurement(self):
        """GPU initial H2D must not count (the paper excludes it)."""
        cfg = RunConfig(machine=YONA, implementation="gpu_resident",
                        cores=12, threads_per_task=12, steps=2)
        per_step = run(cfg).seconds_per_step
        # 420^3 resident step at 86 GF is ~45.7 ms; a counted 1.2 GB H2D
        # at 4 GB/s would add ~150 ms/step.
        assert per_step < 0.060

    def test_deterministic(self):
        cfg = RunConfig(machine=YONA, implementation="hybrid_overlap",
                        cores=24, threads_per_task=6, box_thickness=2)
        assert run(cfg).elapsed_s == run(cfg).elapsed_s

    def test_phases_recorded(self):
        cfg = RunConfig(machine=JAGUARPF, implementation="bulk", cores=24,
                        threads_per_task=6)
        r = run(cfg)
        assert r.phases.get("compute", 0) > 0
        assert r.phases.get("copy", 0) > 0
        assert r.phases.get("pack", 0) > 0


class TestBackends:
    @pytest.mark.parametrize("impl", sorted(IMPLEMENTATIONS))
    def test_every_implementation_runs_on_both_backends(self, impl):
        machine = YONA if IMPLEMENTATIONS[impl].uses_gpu else JAGUARPF
        cores = machine.node.cores
        threads = cores if not IMPLEMENTATIONS[impl].uses_mpi else 6
        mirror = run(
            RunConfig(machine=machine, implementation=impl, cores=cores,
                      threads_per_task=threads, box_thickness=2,
                      domain=(64, 64, 64), network="mirror")
        )
        full = run(
            RunConfig(machine=machine, implementation=impl, cores=cores,
                      threads_per_task=threads, box_thickness=2,
                      domain=(64, 64, 64), network="full")
        )
        assert mirror.elapsed_s > 0 and full.elapsed_s > 0
        assert mirror.seconds_per_step == pytest.approx(
            full.seconds_per_step, rel=0.35
        )

    def test_mirror_handles_huge_rank_counts_fast(self):
        """49152 cores on Hopper completes (the point of the mirror)."""
        from repro.machines import HOPPER

        cfg = RunConfig(machine=HOPPER, implementation="bulk", cores=49152,
                        threads_per_task=6)
        r = run(cfg)
        assert r.gflops > 0

    def test_validation_single_task_multi_rank(self):
        with pytest.raises(ValueError, match="single-task"):
            run(RunConfig(machine=JAGUARPF, implementation="single",
                          cores=24, threads_per_task=6))

    def test_validation_gpu_on_cpu_machine(self):
        with pytest.raises(ValueError, match="GPU"):
            run(RunConfig(machine=JAGUARPF, implementation="gpu_resident",
                          cores=12, threads_per_task=12))


class TestGpuSharing:
    def test_more_tasks_per_gpu_slower_per_task_but_similar_total(self):
        """2 tasks sharing the GPU roughly matches 1 task (serialized)."""
        t1 = run(RunConfig(machine=YONA, implementation="gpu_resident",
                           cores=12, threads_per_task=12)).seconds_per_step
        t2 = run(RunConfig(machine=YONA, implementation="gpu_bulk",
                           cores=12, threads_per_task=6)).seconds_per_step
        t2b = run(RunConfig(machine=YONA, implementation="gpu_bulk",
                            cores=12, threads_per_task=12)).seconds_per_step
        # sharing the GPU between 2 tasks must not double throughput
        assert t2 > 0.8 * t2b
        assert t2 > t1  # bulk with MPI is slower than resident
