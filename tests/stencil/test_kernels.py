"""Tests for the vectorized stencil kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stencil.coefficients import tensor_product_coefficients
from repro.stencil.grid import Grid3D, allocate_field, gaussian_initial_condition
from repro.stencil.kernels import (
    advance,
    apply_stencil,
    apply_stencil_block,
    fill_periodic_halo,
    interior,
)


def make_field(n=8, seed=0):
    rng = np.random.default_rng(seed)
    u = allocate_field((n, n, n))
    interior(u)[...] = rng.random((n, n, n))
    return u


def roll_reference(ui, coeffs):
    """Reference: Equation 2 via np.roll on the periodic interior."""
    out = np.zeros_like(ui)
    for (i, j, k), a in coeffs.items():
        out += a * np.roll(ui, (-i, -j, -k), axis=(0, 1, 2))
    return out


class TestHaloFill:
    def test_wraps_each_dimension(self):
        u = make_field(6)
        fill_periodic_halo(u)
        assert np.array_equal(u[0], u[-2])
        assert np.array_equal(u[-1], u[1])
        assert np.array_equal(u[:, 0], u[:, -2])
        assert np.array_equal(u[:, :, -1], u[:, :, 1])

    def test_corner_propagation(self):
        """Serialized fill makes even the triple corners periodic-correct."""
        u = make_field(5)
        fill_periodic_halo(u)
        assert u[0, 0, 0] == u[-2, -2, -2]
        assert u[-1, -1, -1] == u[1, 1, 1]
        assert u[0, -1, 0] == u[-2, 1, -2]

    def test_partial_dims(self):
        u = make_field(5)
        before = u.copy()
        fill_periodic_halo(u, dims=[2])
        assert np.array_equal(u[:, :, 0], u[:, :, -2])
        # x halo untouched
        assert np.array_equal(u[0, :, 1:-1], before[0, :, 1:-1])


class TestApplyStencil:
    @pytest.mark.parametrize("velocity", [(1.0, 0.9, 0.8), (-0.5, 0.3, 1.0)])
    def test_matches_roll_reference(self, velocity):
        coeffs = tensor_product_coefficients(velocity, 0.7)
        u = make_field(8)
        fill_periodic_halo(u)
        out = apply_stencil(u, coeffs)
        ref = roll_reference(interior(u).copy(), coeffs)
        assert np.allclose(interior(out), ref, atol=1e-13)

    def test_mass_conservation(self):
        """Coefficients sum to 1, so the periodic field sum is conserved."""
        coeffs = tensor_product_coefficients((1.0, 0.9, 0.8), 1.0)
        u = make_field(10)
        total0 = interior(u).sum()
        u = advance(u, coeffs, steps=5)
        assert interior(u).sum() == pytest.approx(total0, rel=1e-12)

    def test_out_reused(self):
        coeffs = tensor_product_coefficients((1.0, 0.5, 0.25), 0.5)
        u = make_field(6)
        fill_periodic_halo(u)
        out = np.ones_like(u)
        result = apply_stencil(u, coeffs, out=out)
        assert result is out
        # halo of out untouched
        assert np.all(out[0] == 1.0)

    def test_zero_coefficients_skipped(self):
        """Axis-aligned velocity zeroes most coefficients; still correct."""
        coeffs = tensor_product_coefficients((1.0, 0.0, 0.0), 0.5)
        u = make_field(6)
        fill_periodic_halo(u)
        out = apply_stencil(u, coeffs)
        ref = roll_reference(interior(u).copy(), coeffs)
        assert np.allclose(interior(out), ref)


class TestApplyStencilBlock:
    @given(
        lo=st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
        span=st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
    )
    @settings(max_examples=40, deadline=None)
    def test_block_matches_full(self, lo, span):
        n = 10
        hi = tuple(min(n, l + s) for l, s in zip(lo, span))
        coeffs = tensor_product_coefficients((1.0, 0.9, 0.8), 0.6)
        u = make_field(n, seed=3)
        fill_periodic_halo(u)
        full = apply_stencil(u, coeffs)
        out = np.zeros_like(u)
        apply_stencil_block(u, coeffs, out, lo, hi)
        sl = tuple(slice(1 + a, 1 + b) for a, b in zip(lo, hi))
        assert np.allclose(out[sl], full[sl])

    def test_tiling_covers_interior(self):
        """Disjoint blocks tile to exactly the full sweep."""
        n = 9
        coeffs = tensor_product_coefficients((0.7, -0.4, 1.0), 0.8)
        u = make_field(n, seed=5)
        fill_periodic_halo(u)
        full = apply_stencil(u, coeffs)
        out = np.zeros_like(u)
        cuts = [0, 3, 6, 9]
        for a in range(3):
            for b in range(3):
                for c in range(3):
                    apply_stencil_block(
                        u, coeffs, out,
                        (cuts[a], cuts[b], cuts[c]),
                        (cuts[a + 1], cuts[b + 1], cuts[c + 1]),
                    )
        assert np.allclose(interior(out), interior(full))

    def test_out_of_range_rejected(self):
        coeffs = tensor_product_coefficients((1, 1, 1), 0.5)
        u = make_field(6)
        with pytest.raises(ValueError):
            apply_stencil_block(u, coeffs, np.zeros_like(u), (0, 0, 0), (7, 6, 6))

    def test_empty_block_is_noop(self):
        coeffs = tensor_product_coefficients((1, 1, 1), 0.5)
        u = make_field(6)
        out = np.zeros_like(u)
        apply_stencil_block(u, coeffs, out, (2, 2, 2), (2, 6, 6))
        assert out.sum() == 0.0


class TestAdvance:
    def test_multiple_steps_equal_repeated_single(self):
        coeffs = tensor_product_coefficients((1.0, 0.9, 0.8), 1.0)
        u1 = make_field(8, seed=7)
        u2 = u1.copy()
        u1 = advance(u1, coeffs, steps=3)
        for _ in range(3):
            u2 = advance(u2, coeffs, steps=1)
        assert np.array_equal(interior(u1), interior(u2))

    def test_returns_flip_buffer_without_copy(self):
        """Odd step counts return the scratch buffer, not ``u`` (no copy)."""
        coeffs = tensor_product_coefficients((1.0, 0.9, 0.8), 1.0)
        u = make_field(8, seed=9)
        scratch = np.zeros_like(u)
        out = advance(u, coeffs, steps=1, scratch=scratch)
        assert out is scratch
        out2 = advance(u, coeffs, steps=2, scratch=scratch)
        assert out2 is u

    def test_scratch_aliasing_input_is_replaced(self):
        """Passing ``scratch is u`` must not corrupt the step."""
        coeffs = tensor_product_coefficients((1.0, 0.9, 0.8), 1.0)
        u = make_field(8, seed=11)
        ref = advance(u.copy(), coeffs, steps=2)
        out = advance(u, coeffs, steps=2, scratch=u)
        assert np.array_equal(interior(out), interior(ref))
