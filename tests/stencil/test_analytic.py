"""Tests for the analytic solution, error norms, and the paper's oracles."""

import numpy as np
import pytest

from repro.stencil.analytic import analytic_solution, error_norms
from repro.stencil.grid import Grid3D, gaussian_initial_condition
from repro.stencil.verification import (
    convergence_order,
    exact_shift_steps,
    run_reference,
)


class TestAnalyticSolution:
    def test_time_zero_is_initial_condition(self):
        g = Grid3D(16)
        u0 = gaussian_initial_condition(g, sigma=0.1)
        assert np.allclose(analytic_solution(g, (1, 1, 1), 0.0, sigma=0.1), u0)

    def test_full_period_returns_to_start(self):
        g = Grid3D(16)
        u0 = analytic_solution(g, (1.0, 0.0, 0.0), 0.0)
        u1 = analytic_solution(g, (1.0, 0.0, 0.0), 1.0)  # c*t = L
        assert np.allclose(u0, u1)

    def test_half_period_shift(self):
        g = Grid3D(16)
        u = analytic_solution(g, (1.0, 0.0, 0.0), 0.5, sigma=0.1)
        u0 = gaussian_initial_condition(g, sigma=0.1)
        assert np.allclose(u, np.roll(u0, 8, axis=0), atol=1e-12)

    def test_velocity_direction(self):
        g = Grid3D(32)
        u = analytic_solution(g, (1.0, 0.0, 0.0), 0.25, sigma=0.05)
        peak = np.unravel_index(np.argmax(u), u.shape)
        assert peak[0] > 16  # moved in +x


class TestErrorNorms:
    def test_zero_for_identical(self):
        a = np.random.default_rng(0).random((5, 5, 5))
        norms = error_norms(a, a.copy())
        assert norms == {"l1": 0.0, "l2": 0.0, "linf": 0.0}

    def test_known_values(self):
        a = np.zeros((2, 2, 2))
        b = np.full((2, 2, 2), 0.5)
        norms = error_norms(a, b)
        assert norms["l1"] == pytest.approx(0.5)
        assert norms["l2"] == pytest.approx(0.5)
        assert norms["linf"] == pytest.approx(0.5)

    def test_ordering(self):
        rng = np.random.default_rng(1)
        a, b = rng.random((6, 6, 6)), rng.random((6, 6, 6))
        norms = error_norms(a, b)
        assert norms["l1"] <= norms["l2"] <= norms["linf"]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_norms(np.zeros((2, 2, 2)), np.zeros((3, 2, 2)))


class TestOracles:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    @pytest.mark.parametrize("sign", [1, -1])
    def test_unit_cfl_exact_shift(self, axis, sign):
        assert exact_shift_steps(12, axis, sign, steps=4) < 1e-14

    def test_convergence_is_second_order(self):
        order = convergence_order((1.0, 0.5, 0.25), resolutions=(16, 32, 64))
        assert order > 1.7

    def test_run_reference_error_small(self):
        _, norms = run_reference(32, (1.0, 0.9, 0.8), steps=8, sigma=0.15)
        assert norms["linf"] < 0.05

    def test_run_reference_deterministic(self):
        f1, _ = run_reference(12, (1.0, 0.9, 0.8), steps=3)
        f2, _ = run_reference(12, (1.0, 0.9, 0.8), steps=3)
        assert np.array_equal(f1, f2)
