"""Tests for Table I coefficients, stability, and the 1-D building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stencil.coefficients import (
    FLOPS_PER_POINT,
    StencilCoefficients,
    amplification_factor,
    lax_wendroff_1d,
    max_stable_nu,
    table1_coefficients,
    tensor_product_coefficients,
)

velocities = st.tuples(
    st.floats(-2.0, 2.0), st.floats(-2.0, 2.0), st.floats(-2.0, 2.0)
)
nus = st.floats(0.01, 1.5)


class TestLaxWendroff1D:
    def test_coefficients_sum_to_one(self):
        a = lax_wendroff_1d(0.7, 0.9)
        assert sum(a) == pytest.approx(1.0)

    def test_zero_velocity_is_identity(self):
        assert lax_wendroff_1d(0.0, 0.5) == (0.0, 1.0, 0.0)

    def test_unit_cfl_is_pure_shift(self):
        assert lax_wendroff_1d(1.0, 1.0) == (1.0, 0.0, 0.0)
        assert lax_wendroff_1d(-1.0, 1.0) == (0.0, 0.0, 1.0)

    @given(c=st.floats(-3, 3), nu=nus)
    def test_consistency_property(self, c, nu):
        a = lax_wendroff_1d(c, nu)
        assert sum(a) == pytest.approx(1.0, abs=1e-12)
        # First moment reproduces the advection distance -c*nu (in cells).
        first_moment = -a[0] + a[2]
        assert first_moment == pytest.approx(-c * nu, abs=1e-9)


class TestTable1:
    @given(velocity=velocities, nu=nus)
    @settings(max_examples=200)
    def test_literal_matches_tensor_product(self, velocity, nu):
        lit = table1_coefficients(velocity, nu)
        ten = tensor_product_coefficients(velocity, nu)
        assert np.allclose(lit.a, ten.a, atol=1e-14)

    @given(velocity=velocities, nu=nus)
    def test_consistency_sum_is_one(self, velocity, nu):
        assert tensor_product_coefficients(velocity, nu).consistency_sum == pytest.approx(
            1.0, abs=1e-10
        )

    def test_getitem_matches_array(self):
        c = tensor_product_coefficients((1.0, 0.5, 0.25), 0.8)
        for (i, j, k), v in c.items():
            assert c[(i, j, k)] == v

    def test_items_yields_27(self):
        c = tensor_product_coefficients((1.0, 0.5, 0.25), 0.8)
        assert len(list(c.items())) == 27

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            StencilCoefficients(a=np.zeros((2, 3, 3)), velocity=(1, 1, 1), nu=0.5)

    def test_axis_aligned_unit_cfl_collapses_to_shift(self):
        c = tensor_product_coefficients((1.0, 0.0, 0.0), 1.0)
        expected = np.zeros((3, 3, 3))
        expected[0, 1, 1] = 1.0  # a_{-1,0,0}
        assert np.allclose(c.a, expected)

    @given(velocity=velocities, nu=nus)
    def test_separability(self, velocity, nu):
        """Summing over two axes recovers the 1-D coefficients."""
        c = tensor_product_coefficients(velocity, nu)
        ax = c.a.sum(axis=(1, 2))
        assert np.allclose(ax, lax_wendroff_1d(velocity[0], nu), atol=1e-12)

    def test_flops_constant_is_papers(self):
        # 27 multiplications + 26 additions (paper §II).
        assert FLOPS_PER_POINT == 53


class TestStability:
    def test_max_stable_nu(self):
        assert max_stable_nu((2.0, 1.0, 0.5)) == pytest.approx(0.5)
        assert max_stable_nu((-2.0, 1.0, 0.5)) == pytest.approx(0.5)

    def test_zero_velocity_rejected(self):
        with pytest.raises(ValueError):
            max_stable_nu((0.0, 0.0, 0.0))

    @pytest.mark.parametrize("velocity", [(1.0, 0.5, 0.25), (0.3, -0.9, 0.7)])
    def test_stable_at_max_nu(self, velocity):
        nu = max_stable_nu(velocity)
        thetas = np.linspace(0, np.pi, 7)
        gmax = max(
            abs(amplification_factor(velocity, nu, (tx, ty, tz)))
            for tx in thetas
            for ty in thetas
            for tz in thetas
        )
        assert gmax <= 1.0 + 1e-12

    @pytest.mark.parametrize("velocity", [(1.0, 0.5, 0.25), (0.3, -0.9, 0.7)])
    def test_unstable_beyond_max_nu(self, velocity):
        nu = 1.2 * max_stable_nu(velocity)
        thetas = np.linspace(0, np.pi, 17)
        gmax = max(
            abs(amplification_factor(velocity, nu, (tx, ty, tz)))
            for tx in thetas
            for ty in thetas
            for tz in thetas
        )
        assert gmax > 1.0 + 1e-6

    def test_amplification_at_zero_wavenumber_is_one(self):
        g = amplification_factor((1.0, 0.9, 0.8), 0.7, (0.0, 0.0, 0.0))
        assert g == pytest.approx(1.0)

    @given(velocity=velocities, nu=st.floats(0.05, 1.0))
    @settings(max_examples=50)
    def test_amplification_consistent_with_coefficients(self, velocity, nu):
        """g(theta) equals the DFT of the coefficient stencil."""
        theta = (0.7, 1.1, 2.0)
        c = tensor_product_coefficients(velocity, nu)
        g_direct = 0.0 + 0.0j
        for (i, j, k), a in c.items():
            phase = i * theta[0] + j * theta[1] + k * theta[2]
            g_direct += a * np.exp(1j * phase)
        g_symbol = amplification_factor(velocity, nu, theta)
        assert g_direct == pytest.approx(g_symbol, abs=1e-9)
