"""Property tests: the separable engine ≡ the dense 27-point reference.

The separable path must agree with the dense kernel within ``rtol=1e-12``
on random CFL-valid velocities, and the separable *block* path must be
bit-identical to the separable full-field path (this is what preserves the
repo's cross-implementation bit-exactness oracle). Non-separable
coefficient tensors must fall back to the dense kernel.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stencil.arena import ScratchArena
from repro.stencil.coefficients import (
    StencilCoefficients,
    factor_rank1,
    max_stable_nu,
    table1_coefficients,
    tensor_product_coefficients,
)
from repro.stencil.grid import allocate_field
from repro.stencil.kernels import (
    advance,
    apply_stencil,
    apply_stencil_block,
    apply_stencil_block_dense,
    apply_stencil_dense,
    fill_periodic_halo,
    interior,
)


def make_field(shape, seed=0):
    rng = np.random.default_rng(seed)
    shape = (shape,) * 3 if isinstance(shape, int) else shape
    u = allocate_field(shape)
    interior(u)[...] = rng.random(shape)
    fill_periodic_halo(u)
    return u


nonzero = st.floats(0.1, 1.5).map(lambda v: round(v, 3))
signed = st.tuples(nonzero, st.sampled_from([-1.0, 1.0])).map(lambda t: t[0] * t[1])
velocities = st.tuples(signed, signed, signed)


class TestSeparableVsDense:
    @given(velocity=velocities, nu_fraction=st.floats(0.2, 1.0), seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_full_field_agreement(self, velocity, nu_fraction, seed):
        """Random CFL-valid velocities: separable ≡ dense at rtol 1e-12."""
        nu = nu_fraction * max_stable_nu(velocity)
        coeffs = tensor_product_coefficients(velocity, nu)
        assert coeffs.is_separable
        u = make_field((9, 8, 10), seed=seed)
        sep = apply_stencil(u, coeffs, method="separable")
        dense = apply_stencil_dense(u, coeffs)
        np.testing.assert_allclose(
            interior(sep), interior(dense), rtol=1e-12, atol=1e-14
        )

    @given(velocity=velocities, steps=st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_advance_agreement(self, velocity, steps):
        nu = 0.8 * max_stable_nu(velocity)
        coeffs = tensor_product_coefficients(velocity, nu)
        u_sep = make_field(8, seed=1)
        u_dense = u_sep.copy()
        r_sep = advance(u_sep, coeffs, steps=steps, method="separable")
        r_dense = advance(u_dense, coeffs, steps=steps, method="dense")
        np.testing.assert_allclose(
            interior(r_sep), interior(r_dense), rtol=1e-12, atol=1e-14
        )

    def test_axis_aligned_unit_cfl_exact(self):
        """Unit-CFL shift stays bit-exact on the separable path."""
        coeffs = tensor_product_coefficients((1.0, 0.0, 0.0), 1.0)
        u = make_field(8, seed=2)
        sep = apply_stencil(u, coeffs, method="separable")
        dense = apply_stencil_dense(u, coeffs)
        assert np.array_equal(interior(sep), interior(dense))


class TestBlockEquivalence:
    @given(
        lo=st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7)),
        span=st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7)),
        velocity=velocities,
    )
    @settings(max_examples=40, deadline=None)
    def test_block_bitwise_equals_full(self, lo, span, velocity):
        """Separable block path ≡ separable full path, bit for bit."""
        n = 10
        hi = tuple(min(n, l + s) for l, s in zip(lo, span))
        coeffs = tensor_product_coefficients(velocity, 0.5 * max_stable_nu(velocity))
        u = make_field(n, seed=4)
        full = apply_stencil(u, coeffs)
        out = np.zeros_like(u)
        apply_stencil_block(u, coeffs, out, lo, hi)
        sl = tuple(slice(1 + a, 1 + b) for a, b in zip(lo, hi))
        assert np.array_equal(out[sl], full[sl])

    @pytest.mark.parametrize(
        "lo,hi",
        [
            ((0, 0, 0), (1, 9, 9)),      # 1-thick, flush against -x face
            ((8, 0, 0), (9, 9, 9)),      # 1-thick, flush against +x face
            ((0, 0, 0), (9, 1, 9)),      # 1-thick, flush against -y face
            ((0, 8, 0), (9, 9, 9)),      # 1-thick, flush against +y face
            ((0, 0, 0), (9, 9, 1)),      # 1-thick, flush against -z face
            ((0, 0, 8), (9, 9, 9)),      # 1-thick, flush against +z face
            ((4, 4, 4), (5, 5, 5)),      # single point
            ((0, 0, 0), (9, 9, 9)),      # the whole interior
        ],
    )
    def test_edge_blocks(self, lo, hi):
        coeffs = tensor_product_coefficients((0.9, -0.6, 0.4), 0.8)
        u = make_field(9, seed=5)
        full = apply_stencil(u, coeffs)
        out = np.zeros_like(u)
        apply_stencil_block(u, coeffs, out, lo, hi)
        sl = tuple(slice(1 + a, 1 + b) for a, b in zip(lo, hi))
        assert np.array_equal(out[sl], full[sl])

    @pytest.mark.parametrize(
        "lo,hi",
        [
            ((3, 3, 3), (3, 6, 6)),  # empty (zero x-extent)
            ((5, 5, 5), (4, 6, 6)),  # degenerate (hi < lo)
            ((0, 0, 0), (0, 0, 0)),  # fully empty
        ],
    )
    def test_empty_and_degenerate_blocks_are_noops(self, lo, hi):
        coeffs = tensor_product_coefficients((1.0, 0.5, 0.25), 0.5)
        u = make_field(8, seed=6)
        out = np.zeros_like(u)
        apply_stencil_block(u, coeffs, out, lo, hi)
        assert out.sum() == 0.0

    def test_out_of_range_rejected_on_separable_path(self):
        coeffs = tensor_product_coefficients((1, 1, 1), 0.5)
        u = make_field(6)
        with pytest.raises(ValueError):
            apply_stencil_block(u, coeffs, np.zeros_like(u), (0, 0, 0), (7, 6, 6))

    def test_boundary_slab_tiling_bitwise(self):
        """The six 1-thick boundary slabs + core tile to the full sweep
        bit-for-bit — the exact partition the overlap implementations use."""
        n = 8
        coeffs = tensor_product_coefficients((1.0, 0.9, 0.8), 0.7)
        u = make_field(n, seed=7)
        full = apply_stencil(u, coeffs)
        out = np.zeros_like(u)
        slabs = [
            ((0, 0, 0), (1, n, n)), ((n - 1, 0, 0), (n, n, n)),
            ((1, 0, 0), (n - 1, 1, n)), ((1, n - 1, 0), (n - 1, n, n)),
            ((1, 1, 0), (n - 1, n - 1, 1)), ((1, 1, n - 1), (n - 1, n - 1, n)),
            ((1, 1, 1), (n - 1, n - 1, n - 1)),  # core
        ]
        for lo, hi in slabs:
            apply_stencil_block(u, coeffs, out, lo, hi)
        assert np.array_equal(interior(out), interior(full))


class TestDenseFallback:
    def _random_dense(self, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((3, 3, 3))
        return StencilCoefficients(a=a, velocity=(0.0, 0.0, 0.0), nu=0.5)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_random_tensors_not_separable(self, seed):
        coeffs = self._random_dense(seed)
        assert not coeffs.is_separable
        assert factor_rank1(coeffs.a) is None

    def test_auto_dispatch_uses_dense_reference(self):
        """Non-separable coefficients run the dense kernel bit-for-bit."""
        coeffs = self._random_dense(3)
        u = make_field(7, seed=8)
        auto = apply_stencil(u, coeffs)  # method="auto" → dense fallback
        dense = apply_stencil_dense(u, coeffs)
        assert np.array_equal(interior(auto), interior(dense))
        out_a = np.zeros_like(u)
        out_d = np.zeros_like(u)
        apply_stencil_block(u, coeffs, out_a, (1, 2, 0), (6, 7, 5))
        apply_stencil_block_dense(u, coeffs, out_d, (1, 2, 0), (6, 7, 5))
        assert np.array_equal(out_a, out_d)

    def test_forcing_separable_on_dense_tensor_raises(self):
        coeffs = self._random_dense(4)
        u = make_field(6)
        with pytest.raises(ValueError):
            apply_stencil(u, coeffs, method="separable")

    def test_unknown_method_rejected(self):
        coeffs = tensor_product_coefficients((1, 1, 1), 0.5)
        u = make_field(6)
        with pytest.raises(ValueError):
            apply_stencil(u, coeffs, method="magic")


class TestFactorization:
    @given(velocity=velocities, nu_fraction=st.floats(0.2, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_table1_literal_recovers_factors(self, velocity, nu_fraction):
        """The literal Table I transcription is recognized as separable via
        rank-1 recovery, and its factors reconstruct the tensor."""
        nu = nu_fraction * max_stable_nu(velocity)
        coeffs = table1_coefficients(velocity, nu)
        assert coeffs.is_separable
        fx, fy, fz = coeffs.factors
        recon = np.einsum("i,j,k->ijk", fx, fy, fz)
        np.testing.assert_allclose(recon, coeffs.a, rtol=1e-12, atol=1e-14)

    def test_zero_tensor_factors_to_zero(self):
        f = factor_rank1(np.zeros((3, 3, 3)))
        assert f is not None
        assert all(np.array_equal(x, np.zeros(3)) for x in f)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            factor_rank1(np.zeros((3, 3)))

    def test_explicit_factors_validated(self):
        with pytest.raises(ValueError):
            StencilCoefficients(
                a=np.zeros((3, 3, 3)), velocity=(0, 0, 0), nu=0.5,
                factors=(np.zeros(2), np.zeros(3), np.zeros(3)),
            )


class TestArenaZeroAllocation:
    def test_steady_state_is_allocation_free(self):
        """After the first step warms the arena, repeated applications lease
        the cached buffers (misses stop growing)."""
        arena = ScratchArena()
        coeffs = tensor_product_coefficients((1.0, 0.9, 0.8), 0.9)
        u = make_field(10, seed=9)
        out = np.zeros_like(u)
        apply_stencil(u, coeffs, out=out, arena=arena)
        warm_misses = arena.misses
        assert warm_misses > 0
        for _ in range(5):
            apply_stencil(u, coeffs, out=out, arena=arena)
            apply_stencil_block(u, coeffs, out, (0, 0, 0), (5, 10, 10), arena=arena)
        assert arena.misses == warm_misses
        assert arena.hits >= 3 * 6

    def test_advance_with_scratch_reuses_arena(self):
        arena = ScratchArena()
        coeffs = tensor_product_coefficients((1.0, 0.9, 0.8), 0.9)
        u = make_field(8, seed=10)
        scratch = np.zeros_like(u)
        u = advance(u, coeffs, steps=2, scratch=scratch, arena=arena)
        warm = arena.misses
        advance(u, coeffs, steps=4, scratch=scratch, arena=arena)
        assert arena.misses == warm

    def test_shape_change_retires_buffer(self):
        arena = ScratchArena()
        a = arena.get("t", (4, 4, 4))
        b = arena.get("t", (4, 4, 4))
        assert a is b
        c = arena.get("t", (5, 5, 5))
        assert c is not a and c.shape == (5, 5, 5)
        assert len(arena) == 1
