"""Tests for the grid and the Gaussian initial condition."""

import numpy as np
import pytest

from repro.stencil.grid import Grid3D, allocate_field, gaussian_initial_condition


class TestGrid3D:
    def test_int_becomes_cube(self):
        g = Grid3D(16)
        assert g.n == (16, 16, 16)

    def test_spacing(self):
        g = Grid3D((10, 20, 40), length=2.0)
        assert g.spacing == pytest.approx((0.2, 0.1, 0.05))
        assert g.min_spacing == pytest.approx(0.05)

    def test_total_points(self):
        assert Grid3D((4, 5, 6)).total_points == 120

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Grid3D(2)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            Grid3D(8, length=0.0)

    def test_coordinates_are_cell_centered(self):
        g = Grid3D(4, length=1.0)
        x, _, _ = g.coordinates()
        assert np.allclose(x, [0.125, 0.375, 0.625, 0.875])

    def test_mesh_broadcasts(self):
        g = Grid3D((4, 5, 6))
        x, y, z = g.mesh()
        assert (x + y + z).shape == (4, 5, 6)

    def test_paper_grid(self):
        g = Grid3D(420)
        assert g.total_points == 420**3


class TestAllocateField:
    def test_halo_shape(self):
        f = allocate_field((4, 5, 6))
        assert f.shape == (6, 7, 8)

    def test_zero_initialized(self):
        assert allocate_field((3, 3, 3)).sum() == 0.0


class TestGaussian:
    def test_peak_at_center(self):
        g = Grid3D(21)
        u = gaussian_initial_condition(g, sigma=0.1)
        # The center cell (10,10,10) is closest to (0.5,0.5,0.5).
        assert np.unravel_index(np.argmax(u), u.shape) == (10, 10, 10)

    def test_amplitude(self):
        g = Grid3D(21)
        u = gaussian_initial_condition(g, sigma=0.1, amplitude=3.0)
        assert 2.9 < u.max() <= 3.0

    def test_symmetry(self):
        g = Grid3D(16)
        u = gaussian_initial_condition(g, sigma=0.12)
        assert np.allclose(u, u[::-1, :, :])
        assert np.allclose(u, np.swapaxes(u, 0, 2))

    def test_periodic_wrap_center_on_boundary(self):
        """A Gaussian centered at the domain edge wraps around periodically."""
        g = Grid3D(16)
        u = gaussian_initial_condition(g, sigma=0.1, center=(0.0, 0.5, 0.5))
        # Maximum mass sits near x = 0 and equally near x = L.
        assert u[0].sum() == pytest.approx(u[-1].sum(), rel=1e-10)

    def test_decays_away_from_center(self):
        g = Grid3D(16)
        u = gaussian_initial_condition(g, sigma=0.05)
        assert u[0, 0, 0] < 1e-10 * u.max()
