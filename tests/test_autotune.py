"""Tests for the auto-tuning extension."""

import pytest

from repro.autotune import (
    TuningPoint,
    TuningSpace,
    exhaustive_search,
    greedy_search,
)
from repro.machines import JAGUARPF, YONA


class TestTuningSpace:
    def test_cpu_space_has_no_gpu_axes(self):
        space = TuningSpace(JAGUARPF, "bulk", 48)
        assert space.block_axis == [None]
        assert space.thickness_axis == [1]
        assert space.thread_axis == [1, 2, 3, 6, 12]

    def test_hybrid_space_has_all_axes(self):
        space = TuningSpace(YONA, "hybrid_overlap", 24)
        assert len(space.thickness_axis) > 1
        assert len(space.block_axis) > 1

    def test_single_task_space(self):
        space = TuningSpace(JAGUARPF, "single", 12)
        assert space.thread_axis == [12]

    def test_points_enumeration(self):
        space = TuningSpace(JAGUARPF, "bulk", 48)
        pts = list(space.points())
        assert len(pts) == len(space.thread_axis)
        assert all(isinstance(p, TuningPoint) for p in pts)


class TestSearches:
    def test_exhaustive_finds_thread_optimum(self):
        res = exhaustive_search(JAGUARPF, "bulk", 3072)
        # Fig. 5 regime: 6 threads/task wins at 3072 cores.
        assert res.best_point.threads_per_task == 6

    def test_greedy_close_to_exhaustive(self):
        ex = exhaustive_search(YONA, "hybrid_overlap", 24)
        gr = greedy_search(YONA, "hybrid_overlap", 24)
        assert gr.best_gflops >= 0.95 * ex.best_gflops

    def test_greedy_cheaper_than_exhaustive(self):
        ex = exhaustive_search(YONA, "hybrid_overlap", 24)
        gr = greedy_search(YONA, "hybrid_overlap", 24, sweeps=1)
        assert gr.evaluations < ex.evaluations

    def test_trace_recorded(self):
        res = greedy_search(JAGUARPF, "bulk", 48)
        assert res.best_point in res.trace
        assert res.trace[res.best_point] == res.best_gflops

    def test_gpu_block_tuning_picks_good_block(self):
        res = exhaustive_search(YONA, "gpu_resident", 12)
        blk = res.best_point.block
        # None (device best) or the paper's 32x8 both deliver the optimum.
        assert blk in (None, (32, 8))


class TestEvaluationCounting:
    """evaluations = real simulator calls; memoized revisits are free."""

    def test_evaluations_match_distinct_points(self):
        # Every counted evaluation produced exactly one trace entry.
        ex = exhaustive_search(YONA, "hybrid_overlap", 24)
        gr = greedy_search(YONA, "hybrid_overlap", 24, sweeps=2)
        assert ex.evaluations == len(ex.trace)
        assert gr.evaluations == len(gr.trace)

    def test_extra_sweeps_never_exceed_exhaustive(self):
        # Regression: revisits used to count as evaluations, so enough
        # greedy sweeps "cost" more than enumerating the whole space even
        # though they simulated strictly fewer configurations.
        ex = exhaustive_search(YONA, "hybrid_overlap", 24)
        gr = greedy_search(YONA, "hybrid_overlap", 24, sweeps=6)
        assert gr.evaluations <= ex.evaluations
        assert set(gr.trace) <= set(ex.trace)

    def test_extra_sweeps_are_free_once_converged(self):
        one = greedy_search(YONA, "hybrid_overlap", 24, sweeps=1)
        many = greedy_search(YONA, "hybrid_overlap", 24, sweeps=6)
        # Later sweeps revisit memoized neighbors of a stable optimum; at
        # most a handful of new points get simulated.
        assert many.evaluations >= one.evaluations
        assert many.evaluations == len(many.trace)

    def test_invalid_points_memoized_as_none(self):
        from dataclasses import replace

        from repro.autotune.search import _evaluate

        space = TuningSpace(JAGUARPF, "bulk", 48)
        bad = replace(space.default_point(), threads_per_task=5)  # 5 ∤ 12
        trace = {}
        gf, fresh = _evaluate(space, bad, trace)
        assert gf is None and fresh
        assert bad in trace and trace[bad] is None
        # Revisiting the invalid point neither re-simulates nor re-raises.
        gf2, fresh2 = _evaluate(space, bad, trace)
        assert gf2 is None and not fresh2
