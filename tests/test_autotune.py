"""Tests for the auto-tuning extension."""

import pytest

from repro.autotune import (
    TuningPoint,
    TuningSpace,
    exhaustive_search,
    greedy_search,
)
from repro.machines import JAGUARPF, YONA


class TestTuningSpace:
    def test_cpu_space_has_no_gpu_axes(self):
        space = TuningSpace(JAGUARPF, "bulk", 48)
        assert space.block_axis == [None]
        assert space.thickness_axis == [1]
        assert space.thread_axis == [1, 2, 3, 6, 12]

    def test_hybrid_space_has_all_axes(self):
        space = TuningSpace(YONA, "hybrid_overlap", 24)
        assert len(space.thickness_axis) > 1
        assert len(space.block_axis) > 1

    def test_single_task_space(self):
        space = TuningSpace(JAGUARPF, "single", 12)
        assert space.thread_axis == [12]

    def test_points_enumeration(self):
        space = TuningSpace(JAGUARPF, "bulk", 48)
        pts = list(space.points())
        assert len(pts) == len(space.thread_axis)
        assert all(isinstance(p, TuningPoint) for p in pts)


class TestSearches:
    def test_exhaustive_finds_thread_optimum(self):
        res = exhaustive_search(JAGUARPF, "bulk", 3072)
        # Fig. 5 regime: 6 threads/task wins at 3072 cores.
        assert res.best_point.threads_per_task == 6

    def test_greedy_close_to_exhaustive(self):
        ex = exhaustive_search(YONA, "hybrid_overlap", 24)
        gr = greedy_search(YONA, "hybrid_overlap", 24)
        assert gr.best_gflops >= 0.95 * ex.best_gflops

    def test_greedy_cheaper_than_exhaustive(self):
        ex = exhaustive_search(YONA, "hybrid_overlap", 24)
        gr = greedy_search(YONA, "hybrid_overlap", 24, sweeps=1)
        assert gr.evaluations < ex.evaluations

    def test_trace_recorded(self):
        res = greedy_search(JAGUARPF, "bulk", 48)
        assert res.best_point in res.trace
        assert res.trace[res.best_point] == res.best_gflops

    def test_gpu_block_tuning_picks_good_block(self):
        res = exhaustive_search(YONA, "gpu_resident", 12)
        blk = res.best_point.block
        # None (device best) or the paper's 32x8 both deliver the optimum.
        assert blk in (None, (32, 8))
