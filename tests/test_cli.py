"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "--machine", "yona", "--impl", "bulk", "--cores", "12"]
        )
        assert args.machine == "yona"
        assert args.threads == 1

    def test_bad_impl_rejected(self, capsys):
        # --impl is validated against the workload's registry at run time
        # (the static argparse choices could not span per-workload axes),
        # so a bad key exits 2 with a message naming both axes.
        rc = main(["run", "--machine", "yona", "--impl", "nope", "--cores", "12"])
        assert rc == 2
        captured = capsys.readouterr()
        text = captured.out + captured.err
        assert "nope" in text and "advection" in text

    def test_bad_workload_rejected(self, capsys):
        rc = main(["run", "--machine", "yona", "--impl", "bulk",
                   "--cores", "12", "--workload", "spvm"])
        assert rc == 2
        captured = capsys.readouterr()
        text = captured.out + captured.err
        assert "spvm" in text and "spmv" in text  # near-miss suggestion


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hybrid_overlap" in out and "JaguarPF" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table1" in out

    def test_run(self, capsys):
        rc = main(
            ["run", "--machine", "yona", "--impl", "gpu_resident",
             "--cores", "12", "--threads", "12"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "GF" in out

    def test_run_functional(self, capsys):
        rc = main(
            ["run", "--machine", "jaguarpf", "--impl", "bulk", "--cores", "12",
             "--threads", "6", "--domain", "16", "--functional"]
        )
        assert rc == 0
        assert "norms" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "Tesla C2050" in capsys.readouterr().out

    def test_experiment_fast(self, capsys):
        assert main(["experiment", "fig8", "--fast"]) == 0
        assert "32x8" in capsys.readouterr().out

    def test_experiment_multiple_ids(self, capsys):
        assert main(["experiment", "table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "Tesla C2050" in out

    def test_experiment_jobs_pool(self, capsys):
        """--jobs N regenerates independent experiments in a process pool."""
        assert main(["experiment", "table1", "table2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        # both results printed, in id order
        assert out.index("table1") < out.index("table2")

    def test_experiment_jobs_single_id(self, capsys):
        assert main(["experiment", "table2", "--jobs", "4"]) == 0
        assert "Tesla C2050" in capsys.readouterr().out

    def test_experiment_bad_id_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])

    def test_experiment_multi_export_suffixed(self, tmp_path, capsys):
        out_json = tmp_path / "exp.json"
        assert main(["experiment", "table2", "fig2", "--fast",
                     "--json", str(out_json)]) == 0
        assert (tmp_path / "exp-table2.json").exists()
        assert (tmp_path / "exp-fig2.json").exists()

    def test_tune(self, capsys):
        rc = main(
            ["tune", "--machine", "jaguarpf", "--impl", "bulk", "--cores", "48"]
        )
        assert rc == 0
        assert "best:" in capsys.readouterr().out


def _sweep_args(*extra):
    return ["sweep", "--machine", "lens", "--impl", "nonblocking",
            "--cores", "16", "--steps", "2", *extra]


class TestSweepModes:
    def test_dry_run_counts_and_runs_nothing(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        journal = tmp_path / "j.jsonl"
        rc = main(_sweep_args("--dry-run", "--cache-dir", str(cache_dir),
                              "--journal", str(journal)))
        assert rc == 0
        out = capsys.readouterr().out
        assert "dry-run: configs=" in out
        assert "warm=0" in out and "cold=" in out
        # a dry run probes but never creates cache or journal state
        assert not cache_dir.exists() and not journal.exists()

    def test_dry_run_sees_warm_entries(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(_sweep_args("--cache-dir", cache_dir)) == 0
        capsys.readouterr()
        assert main(_sweep_args("--dry-run", "--cache-dir", cache_dir)) == 0
        out = capsys.readouterr().out
        assert "cold=0" in out and "warm=0" not in out

    def test_fabric_table_matches_scheduled(self, tmp_path, capsys):
        assert main(_sweep_args("--no-cache")) == 0
        plain = [
            line for line in capsys.readouterr().out.splitlines()
            if not line.startswith(("scheduler:", "run cache:"))
        ]
        rc = main(_sweep_args(
            "--no-cache", "--fabric", str(tmp_path / "fab"),
            "--owner", "t", "--shards", "4",
        ))
        assert rc == 0
        out = capsys.readouterr().out
        fabric = [
            line for line in out.splitlines()
            if not line.startswith("fabric:")
        ]
        assert fabric == plain
        assert "fabric: owner=t" in out and "journal-torn=0" in out

    def test_fabric_bad_shards_rejected(self, tmp_path, capsys):
        rc = main(_sweep_args("--fabric", str(tmp_path / "fab"),
                              "--shards", "0"))
        assert rc == 2
