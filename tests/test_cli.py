"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "--machine", "yona", "--impl", "bulk", "--cores", "12"]
        )
        assert args.machine == "yona"
        assert args.threads == 1

    def test_bad_impl_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--machine", "yona", "--impl", "nope", "--cores", "12"]
            )


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hybrid_overlap" in out and "JaguarPF" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table1" in out

    def test_run(self, capsys):
        rc = main(
            ["run", "--machine", "yona", "--impl", "gpu_resident",
             "--cores", "12", "--threads", "12"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "GF" in out

    def test_run_functional(self, capsys):
        rc = main(
            ["run", "--machine", "jaguarpf", "--impl", "bulk", "--cores", "12",
             "--threads", "6", "--domain", "16", "--functional"]
        )
        assert rc == 0
        assert "norms" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "Tesla C2050" in capsys.readouterr().out

    def test_experiment_fast(self, capsys):
        assert main(["experiment", "fig8", "--fast"]) == 0
        assert "32x8" in capsys.readouterr().out

    def test_experiment_multiple_ids(self, capsys):
        assert main(["experiment", "table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "Tesla C2050" in out

    def test_experiment_jobs_pool(self, capsys):
        """--jobs N regenerates independent experiments in a process pool."""
        assert main(["experiment", "table1", "table2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        # both results printed, in id order
        assert out.index("table1") < out.index("table2")

    def test_experiment_jobs_single_id(self, capsys):
        assert main(["experiment", "table2", "--jobs", "4"]) == 0
        assert "Tesla C2050" in capsys.readouterr().out

    def test_experiment_bad_id_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nope"])

    def test_experiment_multi_export_suffixed(self, tmp_path, capsys):
        out_json = tmp_path / "exp.json"
        assert main(["experiment", "table2", "fig2", "--fast",
                     "--json", str(out_json)]) == 0
        assert (tmp_path / "exp-table2.json").exists()
        assert (tmp_path / "exp-fig2.json").exists()

    def test_tune(self, capsys):
        rc = main(
            ["tune", "--machine", "jaguarpf", "--impl", "bulk", "--cores", "48"]
        )
        assert rc == 0
        assert "best:" in capsys.readouterr().out
