"""Tests for the counter RNG: determinism, key sensitivity, distributions."""

import math

from repro.perturb.rng import (
    LANE_COMPUTE,
    LANE_STALL,
    Stream,
    counter_u64,
    counter_uniform,
    derive_seed,
)


class TestCounterGolden:
    """Pinned values: the RNG is part of the reproducibility contract.

    Any change to these draws silently invalidates every seeded result, so
    they are pinned like golden files; an intentional algorithm change must
    update them *and* bump the run-cache MODEL_VERSION.
    """

    def test_pinned_draws(self):
        assert counter_u64(0, 0, 0, 0) == 15119030185178241194
        assert counter_u64(1, 2, 3, 4) == 10438506675455265949
        assert counter_u64(2**63, 10**6, 8, 123456789) == 11903557234697290861
        assert repr(counter_uniform(42, 7, 3, 11)) == "0.29040301512949396"

    def test_pinned_replica_seeds(self):
        assert derive_seed(42, 0) == 42
        assert derive_seed(42, 1) == 5060312708075383794
        assert derive_seed(42, 2) == 6334752911250520250


class TestKeySensitivity:
    def test_each_key_word_matters(self):
        base = counter_u64(1, 2, 3, 4)
        assert base != counter_u64(2, 2, 3, 4)
        assert base != counter_u64(1, 3, 3, 4)
        assert base != counter_u64(1, 2, 4, 4)
        assert base != counter_u64(1, 2, 3, 5)

    def test_word_permutation_changes_output(self):
        # Naive xor folding would collide (a, b) with (b, a).
        assert counter_u64(5, 9, 0, 0) != counter_u64(9, 5, 0, 0)
        assert counter_u64(0, 5, 9, 0) != counter_u64(0, 9, 5, 0)

    def test_no_collisions_over_a_grid(self):
        vals = {
            counter_u64(s, g, ln, i)
            for s in range(4)
            for g in range(8)
            for ln in range(8)
            for i in range(16)
        }
        assert len(vals) == 4 * 8 * 8 * 16


class TestStream:
    def test_draws_advance_the_index(self):
        s = Stream(1, 2, 3)
        a, b = s.uniform(), s.uniform()
        assert a != b
        assert s.index == 2

    def test_streams_are_order_independent(self):
        # Stream A's sequence is the same whether or not stream B draws
        # in between — the core determinism property.
        a1 = Stream(7, 0, LANE_COMPUTE)
        seq1 = [a1.uniform() for _ in range(5)]
        a2 = Stream(7, 0, LANE_COMPUTE)
        b = Stream(7, 0, LANE_STALL)
        seq2 = []
        for _ in range(5):
            b.uniform()
            seq2.append(a2.uniform())
            b.uniform()
        assert seq1 == seq2

    def test_uniform_range(self):
        s = Stream(3, 1, 0)
        for _ in range(1000):
            u = s.uniform()
            assert 0.0 <= u < 1.0

    def test_normal_moments(self):
        s = Stream(11, 0, 0)
        xs = [s.normal() for _ in range(4000)]
        mean = sum(xs) / len(xs)
        var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
        assert abs(mean) < 0.06
        assert abs(var - 1.0) < 0.1

    def test_lognormal_factor_mean_preserving(self):
        s = Stream(13, 0, 0)
        sigma = 0.2
        xs = [s.lognormal_factor(sigma) for _ in range(8000)]
        assert all(x > 0 for x in xs)
        assert abs(sum(xs) / len(xs) - 1.0) < 0.02

    def test_lognormal_zero_sigma_is_exact_one(self):
        s = Stream(1, 1, 1)
        assert s.lognormal_factor(0.0) == 1.0
        assert s.index == 0  # no draw consumed

    def test_exponential_mean(self):
        s = Stream(17, 0, 0)
        mean = 5.0
        xs = [s.exponential(mean) for _ in range(6000)]
        assert all(x >= 0 for x in xs)
        assert abs(sum(xs) / len(xs) - mean) < 0.35

    def test_bernoulli_rate_and_edges(self):
        s = Stream(19, 0, 0)
        hits = sum(s.bernoulli(0.3) for _ in range(5000))
        assert abs(hits / 5000 - 0.3) < 0.03
        assert s.bernoulli(0.0) is False
        assert s.bernoulli(1.0) is True

    def test_bernoulli_edge_cases_consume_no_draw(self):
        s = Stream(23, 0, 0)
        s.bernoulli(0.0)
        s.bernoulli(1.0)
        assert s.index == 0


class TestDeriveSeed:
    def test_replica_zero_is_identity(self):
        for seed in (0, 1, 42, 2**40):
            assert derive_seed(seed, 0) == seed

    def test_replicas_are_distinct(self):
        seeds = {derive_seed(42, r) for r in range(64)}
        assert len(seeds) == 64

    def test_derived_seeds_fit_in_63_bits(self):
        for r in range(1, 32):
            assert 0 <= derive_seed(123, r) < 2**63


def test_normal_guard_against_log_zero():
    # u1 == 0 must not produce inf/nan (the +2^-53 guard).
    r = math.sqrt(-2.0 * math.log(0.0 + 1.0 / (1 << 53)))
    assert math.isfinite(r)
