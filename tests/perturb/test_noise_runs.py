"""End-to-end determinism of the perturbation layer.

Two contracts:

* ``seed=None`` is **bit-identical** to the pre-perturbation simulator —
  pinned elapsed times and cache keys below were captured on the commit
  before this layer existed;
* a fixed ``(seed, noise, config)`` triple is bit-identical across repeat
  runs, process restarts and pool-worker counts.
"""

import subprocess
import sys

import pytest

from repro.core.config import RunConfig
from repro.core.runner import run, run_replicated
from repro.machines import JAGUARPF, YONA
from repro.perturb import NoiseSpec, forced_noise
from repro.perturb.model import NOISE_LANE, Perturbation, build_perturbation

#: (config ctor kwargs are rebuilt per test: RunConfig is frozen/hashable)
PINNED = [
    # (machine, kwargs, pre-PR cache key, pre-PR repr(elapsed_s))
    (
        JAGUARPF,
        dict(implementation="bulk", cores=24, threads_per_task=6, steps=2),
        "0d95154ebc20e98d5346599c354c24708c8d5d524bb4c9f25d29c9632ff28f73",
        "0.24762685706149856",
    ),
    (
        YONA,
        dict(implementation="hybrid_overlap", cores=12, threads_per_task=6,
             box_thickness=3),
        "762b633fc45d660d804c12a3b1c675e3964b0baa8454c0f679d96783f02ee51a",
        "0.10746874136025578",
    ),
    (
        JAGUARPF,
        dict(implementation="nonblocking", cores=48, threads_per_task=1,
             steps=2),
        "522a9974e5ce8b907a3e94d012781bd15c5f77a99d2144e6b4b8863b6789768f",
        "0.12803816725061154",
    ),
]


def _configs():
    return [RunConfig(machine=m, **kw) for m, kw, _k, _e in PINNED]


class TestNoiselessBitIdentity:
    """seed=None must reproduce the pre-perturbation simulator exactly."""

    def test_pinned_elapsed(self):
        for (machine, kw, _key, elapsed) in PINNED:
            cfg = RunConfig(machine=machine, **kw)
            assert repr(run(cfg).elapsed_s) == elapsed

    def test_pinned_cache_keys(self):
        from repro.cache import config_key

        for (machine, kw, key, _elapsed) in PINNED:
            cfg = RunConfig(machine=machine, **kw)
            assert config_key(cfg) == key

    def test_null_noise_with_seed_matches_noiseless(self):
        # A seed with an all-off spec allocates no Perturbation at all.
        for cfg in _configs():
            base = run(cfg)
            nulled = run(cfg.with_(seed=123, noise=NoiseSpec()))
            assert nulled.elapsed_s == base.elapsed_s
            assert nulled.phases == base.phases

    def test_build_perturbation_null_paths(self):
        spec = NoiseSpec.preset("medium")
        assert build_perturbation(None, spec) is None
        assert build_perturbation(1, None) is None
        assert build_perturbation(1, NoiseSpec()) is None
        assert isinstance(build_perturbation(1, spec), Perturbation)


class TestSeededDeterminism:
    def test_same_seed_same_result(self):
        spec = NoiseSpec.preset("medium")
        for cfg in _configs():
            noisy = cfg.with_(seed=42, noise=spec)
            a, b = run(noisy), run(noisy)
            assert a.elapsed_s == b.elapsed_s
            assert a.phases == b.phases
            assert a.comm_stats == b.comm_stats

    def test_different_seeds_differ(self):
        spec = NoiseSpec.preset("medium")
        cfg = _configs()[0]
        assert (
            run(cfg.with_(seed=1, noise=spec)).elapsed_s
            != run(cfg.with_(seed=2, noise=spec)).elapsed_s
        )

    def test_noise_actually_perturbs(self):
        spec = NoiseSpec.preset("medium")
        for cfg in _configs():
            assert run(cfg.with_(seed=42, noise=spec)).elapsed_s != run(cfg).elapsed_s

    def test_bit_identical_across_process_restart(self):
        # The cross-process half of the determinism contract: re-derive one
        # seeded elapsed time in a fresh interpreter.
        code = (
            "from repro.core.config import RunConfig\n"
            "from repro.core.runner import run\n"
            "from repro.machines import JAGUARPF\n"
            "from repro.perturb import NoiseSpec\n"
            "cfg = RunConfig(machine=JAGUARPF, implementation='bulk',\n"
            "                cores=24, threads_per_task=6, steps=2,\n"
            "                seed=42, noise=NoiseSpec.preset('medium'))\n"
            "print(repr(run(cfg).elapsed_s))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            check=True,
        ).stdout.strip()
        cfg = _configs()[0].with_(seed=42, noise=NoiseSpec.preset("medium"))
        assert out == repr(run(cfg).elapsed_s)

    def test_bit_identical_across_worker_counts(self):
        # Same configs through pools of different sizes: Perturbation is
        # built per run from (seed, noise) alone, so placement can't matter.
        from concurrent.futures import ProcessPoolExecutor

        spec = NoiseSpec.preset("medium")
        cfgs = [c.with_(seed=7, noise=spec) for c in _configs()]
        serial = [run(c).elapsed_s for c in cfgs]
        for workers in (1, 2):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                parallel = list(pool.map(_pool_elapsed, cfgs))
            assert parallel == serial


def _pool_elapsed(cfg):
    """Top-level (picklable) pool worker."""
    return run(cfg).elapsed_s


class TestConfigValidation:
    def test_noise_requires_seed(self):
        with pytest.raises(ValueError, match="requires a seed"):
            RunConfig(
                machine=JAGUARPF, implementation="bulk", cores=24,
                threads_per_task=6, noise=NoiseSpec.preset("low"),
            )

    def test_null_noise_without_seed_is_fine(self):
        RunConfig(
            machine=JAGUARPF, implementation="bulk", cores=24,
            threads_per_task=6, noise=NoiseSpec(),
        )

    def test_noise_must_be_a_spec(self):
        with pytest.raises(ValueError, match="NoiseSpec"):
            RunConfig(
                machine=JAGUARPF, implementation="bulk", cores=24,
                threads_per_task=6, seed=1, noise={"os_jitter": 0.1},
            )

    def test_seed_must_be_integral(self):
        with pytest.raises(ValueError, match="integer"):
            RunConfig(
                machine=JAGUARPF, implementation="bulk", cores=24,
                threads_per_task=6, seed=1.5,
            )


class TestFaultModels:
    def test_straggler_is_rank_sticky(self):
        p = build_perturbation(3, NoiseSpec(straggler_prob=0.5))
        factors = {r: p.straggler_factor(r) for r in range(32)}
        # Re-querying returns the same designation.
        assert factors == {r: p.straggler_factor(r) for r in range(32)}
        assert set(factors.values()) == {1.0, 1.5}  # some of each at p=0.5

    def test_message_delay_stalls_and_retransmits(self):
        spec = NoiseSpec(stall_prob=1.0, stall_us=50.0, drop_prob=1.0,
                         retransmit_timeout_us=100.0, max_retries=3)
        p = build_perturbation(9, spec)
        delay = p.message_delay(0, now=0.0)
        # >= 3 retransmit timeouts with backoff (100+200+400 us) plus a
        # positive exponential stall.
        assert delay > 700e-6

    def test_message_delay_zero_when_off(self):
        p = build_perturbation(9, NoiseSpec(os_jitter=0.1))
        assert p.message_delay(0, now=0.0) == 0.0


class TestTraceUnderNoise:
    def test_noise_lane_and_invariants(self):
        from repro.obs.invariants import check_trace

        spec = NoiseSpec.preset("high").with_(stall_prob=0.5, drop_prob=0.2)
        cfg = RunConfig(
            machine=JAGUARPF, implementation="nonblocking", cores=48,
            threads_per_task=1, steps=2, network="full", trace=True,
            seed=11, noise=spec,
        )
        res = run(cfg)
        lanes = {ev.lane for ev in res.tracer.events}
        assert NOISE_LANE in lanes
        assert check_trace(res.tracer) == []

    def test_traced_seeded_run_matches_untraced(self):
        # Tracing must observe, never alter, the perturbed timeline.
        spec = NoiseSpec.preset("medium")
        cfg = _configs()[0].with_(seed=21, noise=spec)
        assert run(cfg).elapsed_s == run(cfg.with_(trace=True)).elapsed_s


class TestReplication:
    def test_stats_shape_and_determinism(self):
        cfg = _configs()[0].with_(seed=123, noise=NoiseSpec.preset("medium"))
        a = run_replicated(cfg, 6)
        b = run_replicated(cfg, 6)
        assert a.stats == b.stats
        assert a.stats["n"] == 6.0
        assert a.stats["min"] <= a.stats["p50"] <= a.stats["p95"] <= a.stats["max"]
        assert a.stats["std"] > 0.0

    def test_replica_zero_is_the_root_seed(self):
        cfg = _configs()[0].with_(seed=123, noise=NoiseSpec.preset("medium"))
        single = run_replicated(cfg, 1)
        assert single.elapsed_s == run(cfg).elapsed_s
        assert single.stats["std"] == 0.0

    def test_requires_seed_and_positive_replicas(self):
        cfg = _configs()[0]
        with pytest.raises(ValueError):
            run_replicated(cfg, 4)  # no seed
        with pytest.raises(ValueError):
            run_replicated(cfg.with_(seed=1), 0)


class TestForcedNoise:
    def test_override_applies_and_restores(self):
        from repro.perturb import forced_override

        spec = NoiseSpec.preset("medium")
        cfg = _configs()[0]
        base = run(cfg)
        assert forced_override() is None
        with forced_noise(99, spec):
            forced = run(cfg)
            assert forced.config.seed == 99
            assert forced.elapsed_s != base.elapsed_s
        assert forced_override() is None
        assert run(cfg).elapsed_s == base.elapsed_s

    def test_config_with_own_seed_keeps_it(self):
        spec = NoiseSpec.preset("medium")
        own = _configs()[0].with_(seed=5, noise=NoiseSpec.preset("low"))
        with forced_noise(99, spec):
            res = run(own)
        assert res.config.seed == 5
        assert res.config.noise == NoiseSpec.preset("low")
