"""Tests for NoiseSpec: validation, presets, scaling, CLI parsing."""

import pytest

from repro.perturb.spec import MACHINE_NOISE, PRESETS, NoiseSpec


class TestValidation:
    def test_default_is_null(self):
        assert NoiseSpec().is_null

    def test_negative_knob_rejected(self):
        with pytest.raises(ValueError):
            NoiseSpec(os_jitter=-0.1)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            NoiseSpec(stall_prob=1.5)
        NoiseSpec(stall_prob=1.0)  # boundary is fine

    def test_non_number_rejected(self):
        with pytest.raises(TypeError):
            NoiseSpec(os_jitter="big")
        with pytest.raises(TypeError):
            NoiseSpec(stall_prob=True)  # bools are not noise levels

    def test_shape_knob_bounds(self):
        with pytest.raises(ValueError):
            NoiseSpec(straggler_factor=0.5)
        with pytest.raises(ValueError):
            NoiseSpec(retransmit_backoff=0.9)
        with pytest.raises(ValueError):
            NoiseSpec(max_retries=2.5)


class TestPresetsAndCalibrations:
    def test_presets_exist_and_escalate(self):
        assert PRESETS["off"].is_null
        for name in ("low", "medium", "high"):
            assert not PRESETS[name].is_null
        assert PRESETS["low"].os_jitter < PRESETS["medium"].os_jitter
        assert PRESETS["medium"].os_jitter < PRESETS["high"].os_jitter

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            NoiseSpec.preset("nope")

    def test_every_machine_has_a_calibration(self):
        for name in ("jaguarpf", "hopper", "lens", "yona"):
            assert not NoiseSpec.for_machine(name).is_null

    def test_for_machine_is_case_insensitive(self):
        assert NoiseSpec.for_machine("Yona") == NoiseSpec.for_machine("yona")
        assert NoiseSpec.for_machine("JaguarPF") == MACHINE_NOISE["jaguarpf"]

    def test_cpu_machines_have_no_gpu_noise(self):
        assert NoiseSpec.for_machine("jaguarpf").kernel_jitter == 0.0
        assert NoiseSpec.for_machine("yona").kernel_jitter > 0.0

    def test_modern_machines_have_calibrations(self):
        for name in ("A100-SXM", "Milan-SS11", "EFA-Cloud"):
            assert not NoiseSpec.for_machine(name).is_null
        # the cloud fabric is far noisier than the dedicated Slingshot one
        assert (
            NoiseSpec.for_machine("efa-cloud").os_jitter
            > NoiseSpec.for_machine("milan-ss11").os_jitter
        )

    def test_unknown_machine_falls_back_to_off(self, caplog):
        """An uncalibrated machine gets the 'off' preset, not a KeyError:
        noise calibration is optional, a lookup miss is not a user error."""
        with caplog.at_level("INFO", logger="repro.perturb"):
            spec = NoiseSpec.for_machine("no-such-machine")
        assert spec == PRESETS["off"]
        assert spec.is_null
        assert any("no noise calibration" in r.message for r in caplog.records)


class TestScaling:
    def test_scaled_zero_is_null(self):
        assert NoiseSpec.preset("high").scaled(0.0).is_null

    def test_scaled_one_is_identity(self):
        spec = NoiseSpec.preset("medium")
        assert spec.scaled(1.0) == spec

    def test_scaled_multiplies_sigmas(self):
        spec = NoiseSpec.preset("medium").scaled(2.0)
        assert spec.os_jitter == 2 * PRESETS["medium"].os_jitter
        assert spec.stall_prob == 2 * PRESETS["medium"].stall_prob

    def test_probabilities_clamp_at_one(self):
        spec = NoiseSpec(stall_prob=0.6).scaled(5.0)
        assert spec.stall_prob == 1.0

    def test_shape_knobs_not_scaled(self):
        spec = NoiseSpec.preset("high").scaled(3.0)
        assert spec.stall_us == PRESETS["high"].stall_us
        assert spec.straggler_factor == PRESETS["high"].straggler_factor

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            NoiseSpec().scaled(-1.0)


class TestParse:
    def test_preset_name(self):
        assert NoiseSpec.parse("medium") == PRESETS["medium"]

    def test_preset_scaled(self):
        assert NoiseSpec.parse("medium*0.5") == PRESETS["medium"].scaled(0.5)

    def test_explicit_knobs(self):
        spec = NoiseSpec.parse("os_jitter=0.02,stall_prob=0.01,stall_us=80")
        assert spec.os_jitter == 0.02
        assert spec.stall_prob == 0.01
        assert spec.stall_us == 80.0

    def test_preset_with_overrides(self):
        spec = NoiseSpec.parse("medium,stall_prob=0.2")
        assert spec.stall_prob == 0.2
        assert spec.os_jitter == PRESETS["medium"].os_jitter

    def test_max_retries_coerced_to_int(self):
        spec = NoiseSpec.parse("drop_prob=0.1,max_retries=5")
        assert spec.max_retries == 5
        assert isinstance(spec.max_retries, int)

    def test_errors(self):
        with pytest.raises(ValueError):
            NoiseSpec.parse("")
        with pytest.raises(ValueError):
            NoiseSpec.parse("no_such_knob=1")
        with pytest.raises(ValueError):
            NoiseSpec.parse("os_jitter=lots")
        with pytest.raises(ValueError):
            NoiseSpec.parse("medium,high")  # preset not in lead position
        with pytest.raises(ValueError):
            NoiseSpec.parse("medium*x")
