"""Property tests of the wire protocol (framing, schema, fuzzing)."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import protocol
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    config_from_dict,
    decode_line,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)

# JSON-representable documents (finite floats only: NaN/Inf are not JSON).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=64),
)
_json_docs = st.dictionaries(
    st.text(max_size=32),
    st.recursive(
        _scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=16), children, max_size=4),
        ),
        max_leaves=16,
    ),
    max_size=8,
)


class TestRoundTrip:
    @given(doc=_json_docs)
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_round_trips(self, doc):
        line = encode_message(doc)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1], "framing torn by an embedded newline"
        out = decode_line(line)
        assert out == doc or _same_modulo_floats(out, doc)

    @given(doc=_json_docs)
    @settings(max_examples=100, deadline=None)
    def test_floats_survive_exactly(self, doc):
        """CPython json renders shortest-round-trip reprs: every float
        comes back as the same double, not an approximation."""
        out = decode_line(encode_message(doc))
        assert _floats_exact(doc, out)

    @given(
        kind=st.sampled_from(
            ["protocol", "bad-request", "invalid-config", "busy", "poisoned"]
        ),
        message=st.text(max_size=200),
        req_id=st.one_of(st.none(), st.integers(), st.text(max_size=32)),
    )
    @settings(max_examples=100, deadline=None)
    def test_error_payloads_round_trip(self, kind, message, req_id):
        doc = error_response(req_id, kind, message)
        out = decode_line(encode_message(doc))
        assert out == doc
        assert out["ok"] is False
        assert out["error"]["type"] == kind
        assert out["error"]["message"] == message

    @given(body=st.dictionaries(st.text(min_size=1, max_size=16),
                                _scalars, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_ok_envelope_round_trips(self, body):
        body.pop("id", None)
        body.pop("ok", None)
        doc = ok_response(7, body)
        out = decode_line(encode_message(doc))
        assert out["id"] == 7 and out["ok"] is True
        for k, v in body.items():
            assert _floats_exact(v, out[k])

    def test_unicode_payloads(self):
        doc = {"verb": "ping", "note": "νόησις 🛰️ Ω≠∅   "}
        assert decode_line(encode_message(doc)) == doc


def _same_modulo_floats(a, b):
    return json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def _floats_exact(a, b):
    """Recursive equality where floats must match bit-for-bit."""
    if isinstance(a, float):
        return isinstance(b, float) and (
            math.copysign(1, a) == math.copysign(1, b) and a == b
            if a == a else b != b
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and a.keys() == b.keys()
            and all(_floats_exact(a[k], b[k]) for k in a)
        )
    if isinstance(a, list):
        return (
            isinstance(b, list)
            and len(a) == len(b)
            and all(_floats_exact(x, y) for x, y in zip(a, b))
        )
    return a == b


class TestFraming:
    def test_oversize_line_rejected(self):
        line = b'{"verb": "ping", "pad": "' + b"x" * MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(ProtocolError) as exc:
            decode_line(line)
        assert exc.value.kind == "protocol"

    @given(junk=st.binary(max_size=512))
    @settings(max_examples=300, deadline=None)
    def test_garbage_lines_never_escape_protocol_error(self, junk):
        """Any byte junk either decodes to a dict or raises ProtocolError
        — never KeyError/UnicodeDecodeError/RecursionError/..."""
        try:
            out = decode_line(junk)
        except ProtocolError as exc:
            assert exc.kind == "protocol"
        else:
            assert isinstance(out, dict)

    @given(doc=_json_docs, cut=st.integers(min_value=1, max_value=64))
    @settings(max_examples=200, deadline=None)
    def test_torn_lines_never_escape_protocol_error(self, doc, cut):
        """A line torn anywhere mid-document parses or errors cleanly."""
        line = encode_message(doc)[:-1]  # strip the newline, then tear
        torn = line[: max(0, len(line) - cut)]
        try:
            out = decode_line(torn)
        except ProtocolError as exc:
            assert exc.kind == "protocol"
        else:
            assert isinstance(out, dict)

    @given(scalar=st.one_of(st.integers(), st.text(max_size=32),
                            st.lists(st.integers(), max_size=3)))
    @settings(max_examples=50, deadline=None)
    def test_non_object_documents_rejected(self, scalar):
        with pytest.raises(ProtocolError):
            decode_line(json.dumps(scalar).encode() + b"\n")


_BASE = {"machine": "lens", "impl": "nonblocking", "cores": 16,
         "domain": 16, "steps": 2}


class TestConfigSchema:
    def test_minimal_config_parses(self):
        cfg = config_from_dict(_BASE)
        assert cfg.machine.name == "Lens"
        assert cfg.implementation == "nonblocking"
        assert cfg.domain == (16, 16, 16)

    def test_implementation_alias(self):
        spelled = dict(_BASE)
        spelled["implementation"] = spelled.pop("impl")
        assert config_from_dict(spelled) == config_from_dict(_BASE)

    def test_conflicting_alias_rejected(self):
        with pytest.raises(ProtocolError):
            config_from_dict(dict(_BASE, implementation="single"))

    @given(extra=st.text(min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_unknown_fields_rejected(self, extra):
        from repro.serve.protocol import _CONFIG_KEYS

        if extra in _CONFIG_KEYS:
            return
        with pytest.raises(ProtocolError):
            config_from_dict(dict(_BASE, **{extra: 1}))

    @pytest.mark.parametrize("field", ["functional", "trace"])
    def test_non_servable_fields_rejected(self, field):
        with pytest.raises(ProtocolError) as exc:
            config_from_dict(dict(_BASE, **{field: True}))
        assert "not servable" in str(exc.value)

    def test_noise_requires_seed(self):
        with pytest.raises(ProtocolError) as exc:
            config_from_dict(dict(_BASE, noise="medium"))
        assert exc.value.kind == "invalid-config"

    def test_domain_forms(self):
        a = config_from_dict(dict(_BASE, domain=24))
        b = config_from_dict(dict(_BASE, domain=[24, 24, 24]))
        assert a.domain == b.domain == (24, 24, 24)
        with pytest.raises(ProtocolError):
            config_from_dict(dict(_BASE, domain=[24, 24]))
        with pytest.raises(ProtocolError):
            config_from_dict(dict(_BASE, domain="24"))

    def test_unknown_machine_is_invalid_config(self):
        with pytest.raises(ProtocolError) as exc:
            config_from_dict(dict(_BASE, machine="nonesuch"))
        assert exc.value.kind == "invalid-config"

    @given(
        doc=st.fixed_dictionaries(
            {},
            optional={
                "verb": _scalars,
                "config": st.one_of(_scalars, _json_docs),
                "configs": st.one_of(_scalars, st.lists(_json_docs,
                                                        max_size=3)),
                "replicas": _scalars,
                "timeout": _scalars,
                "stream": _scalars,
                "id": _scalars,
            },
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_parse_request_total_on_arbitrary_documents(self, doc):
        """parse_request either yields a Request or raises ProtocolError
        — arbitrary schemas can't crash the service layer."""
        try:
            req = parse_request(doc)
        except ProtocolError:
            return
        assert req.verb in protocol.VERBS
        assert req.replicas >= 1

    def test_replicas_require_seed(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request({"verb": "run", "config": dict(_BASE),
                           "replicas": 4})
        assert exc.value.kind == "invalid-config"

    def test_sweep_size_ceiling(self):
        docs = [dict(_BASE)] * (protocol.MAX_SWEEP_CONFIGS + 1)
        with pytest.raises(ProtocolError) as exc:
            parse_request({"verb": "sweep", "configs": docs})
        assert "limit" in str(exc.value)
