"""Fixtures for the serve suite: live daemon subprocesses.

``daemon`` is a shared module-scoped instance for cheap read-mostly
tests; ``daemon_factory`` spawns private daemons (own cache/journal,
custom flags) for tests that kill, drain or count things.  The helper
machinery lives in ``serve_helpers`` (importable by test modules —
conftest itself cannot be imported from non-package test dirs).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from serve_helpers import spawn_daemon  # noqa: E402


@pytest.fixture
def daemon_factory(tmp_path):
    """Spawn private daemons; all are torn down at test end."""
    spawned = []

    def factory(*extra_args, subdir="d", journal=True, cache=True):
        workdir = tmp_path / subdir
        workdir.mkdir(exist_ok=True)
        d = spawn_daemon(str(workdir), *extra_args,
                         journal=journal, cache=cache)
        spawned.append(d)
        return d

    yield factory
    for d in spawned:
        d.kill()


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """One shared daemon per test module (cheap, read-mostly tests)."""
    workdir = tmp_path_factory.mktemp("serve-daemon")
    d = spawn_daemon(str(workdir))
    yield d
    d.kill()
