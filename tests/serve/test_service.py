"""In-process SimulationService tests: admission, timeout, poisoning.

These drive the asyncio service directly (no subprocess) so timing can
be controlled exactly — slow jobs are injected by patching the worker
body, faults by the scheduler's fault injector.
"""

import asyncio
import threading

import pytest

from repro.cache import configure as cache_configure
from repro.sched import Scheduler, configure as sched_configure
from repro.serve.service import SimulationService

from serve_helpers import CFG_DOC


@pytest.fixture(autouse=True)
def _no_ambient_state():
    cache_configure(None)
    sched_configure(None)
    yield
    cache_configure(None)
    sched_configure(None)


def _doc(i=1, **cfg_overrides):
    return {
        "verb": "run",
        "id": i,
        "config": dict(CFG_DOC, **cfg_overrides),
    }


def _run(coro):
    return asyncio.run(coro)


@pytest.fixture
def service(tmp_path):
    svc = SimulationService(
        jobs=1,
        cache_dir=str(tmp_path / "cache"),
        journal=str(tmp_path / "journal.jsonl"),
        max_inflight=2,
        default_timeout_s=60.0,
    )
    yield svc
    svc.close()


class TestTiers:
    def test_cold_then_memo_then_cache(self, service, tmp_path):
        async def scenario():
            first = await service.handle(_doc(1))
            second = await service.handle(_doc(2))
            # A differently-spelled equivalent query bypasses the
            # signature memo but lands on the key memo.
            spelled = _doc(3)
            spelled["config"]["implementation"] = spelled["config"].pop(
                "impl"
            )
            third = await service.handle(spelled)
            return first, second, third

        first, second, third = _run(scenario())
        assert first["ok"] and first["source"] == "simulated"
        assert second["source"] == "memo"
        assert third["source"] == "memo"
        assert first["result"] == second["result"] == third["result"]

    def test_fresh_service_reads_the_run_cache(self, service, tmp_path):
        first = _run(service.handle(_doc(1)))
        service.close()
        svc2 = SimulationService(
            jobs=1, cache_dir=str(tmp_path / "cache"), max_inflight=2
        )
        try:
            second = _run(svc2.handle(_doc(2)))
        finally:
            svc2.close()
        assert second["source"] == "cache"
        assert second["result"] == first["result"]
        assert svc2.metrics.to_dict()["counters"]["warm_cache_hits"] == 1

    def test_journal_probe_answers_without_a_worker(self, service, tmp_path):
        _run(service.handle(_doc(1)))
        service.close()  # flushes the journal
        svc2 = SimulationService(
            jobs=1, cache_dir=None,
            journal=str(tmp_path / "journal.jsonl"), max_inflight=2,
        )
        try:
            resp = _run(svc2.handle(_doc(2)))
            snap = svc2.sched.snapshot()
        finally:
            svc2.close()
        assert resp["ok"] and resp["source"] == "journal"
        assert snap["counters"]["submitted"] == 0, "a worker was consulted"


class TestCoalescingExact:
    def test_n_waiters_one_job(self, service, monkeypatch):
        """Deterministic coalescing: the job blocks until every other
        query has joined, so exactly 1 admission + n-1 coalesced."""
        n = 5
        release = threading.Event()
        real = SimulationService._run_one

        def slow(self, cfg):
            assert release.wait(30), "waiters never arrived"
            return real(self, cfg)

        monkeypatch.setattr(SimulationService, "_run_one", slow)

        async def scenario():
            tasks = [
                asyncio.create_task(service.handle(_doc(i)))
                for i in range(n)
            ]
            # Wait until all n handlers either admitted or coalesced.
            while True:
                counters = service.metrics.to_dict()["counters"]
                if counters["admitted"] + counters["coalesced"] == n:
                    break
                await asyncio.sleep(0.01)
            release.set()
            return await asyncio.gather(*tasks)

        results = _run(scenario())
        counters = service.metrics.to_dict()["counters"]
        assert counters["admitted"] == 1
        assert counters["coalesced"] == n - 1
        snap = service.sched.snapshot()
        assert snap["counters"].get("inline", 0) + snap["counters"].get(
            "simulated", 0
        ) == 1
        base = results[0]["result"]
        assert all(r["result"] == base for r in results)
        sources = sorted(r["source"] for r in results)
        assert sources == ["coalesced"] * (n - 1) + ["simulated"]


class TestBackpressureExact:
    def test_admission_cap_rejects_excess_cold_queries(
        self, service, monkeypatch
    ):
        """max_inflight=2: with 2 jobs parked on a gate, every further
        distinct cold query gets a structured busy error immediately."""
        release = threading.Event()
        real = SimulationService._run_one

        def slow(self, cfg):
            assert release.wait(30)
            return real(self, cfg)

        monkeypatch.setattr(SimulationService, "_run_one", slow)

        async def scenario():
            blocked = [
                asyncio.create_task(service.handle(_doc(i, cores=16 * (i + 1))))
                for i in range(2)
            ]
            while service.metrics.to_dict()["counters"]["admitted"] < 2:
                await asyncio.sleep(0.01)
            rejected = [
                await service.handle(_doc(10 + i, cores=16 * (3 + i)))
                for i in range(3)
            ]
            release.set()
            done = await asyncio.gather(*blocked)
            return rejected, done

        rejected, done = _run(scenario())
        for resp in rejected:
            assert resp["ok"] is False
            assert resp["error"]["type"] == "busy"
        assert all(r["ok"] for r in done)
        counters = service.metrics.to_dict()["counters"]
        assert counters["rejected_busy"] == 3
        assert counters["admitted"] == 2
        gauges = service.metrics.to_dict()["gauges"]
        assert gauges["inflight"] == 0, "admission slot leaked"
        assert not service._inflight and not service._jobs

    def test_warm_queries_flow_past_a_full_admission_gate(
        self, service, monkeypatch
    ):
        release = threading.Event()
        real = SimulationService._run_one

        async def scenario():
            warm_prime = await service.handle(_doc(0))  # before the jam

            def slow(self, cfg):
                assert release.wait(30)
                return real(self, cfg)

            monkeypatch.setattr(SimulationService, "_run_one", slow)
            jam = [
                asyncio.create_task(
                    service.handle(_doc(i, cores=16 * (i + 2)))
                )
                for i in range(2)
            ]
            while service.metrics.to_dict()["counters"]["admitted"] < 3:
                await asyncio.sleep(0.01)
            warm = await service.handle(_doc(99))
            release.set()
            await asyncio.gather(*jam)
            return warm_prime, warm

        warm_prime, warm = _run(scenario())
        assert warm["ok"] and warm["source"] == "memo"
        assert warm["result"] == warm_prime["result"]


class TestTimeout:
    def test_timeout_detaches_the_requester_not_the_job(
        self, service, monkeypatch
    ):
        release = threading.Event()
        real = SimulationService._run_one

        def slow(self, cfg):
            assert release.wait(30)
            return real(self, cfg)

        monkeypatch.setattr(SimulationService, "_run_one", slow)

        async def scenario():
            doc = _doc(1)
            doc["timeout"] = 0.05
            timed_out = await service.handle(doc)
            release.set()
            # The detached job still completes and memoizes; await it.
            for task in list(service._inflight.values()):
                await task
            late = await service.handle(_doc(2))
            return timed_out, late

        timed_out, late = _run(scenario())
        assert timed_out["ok"] is False
        assert timed_out["error"]["type"] == "timeout"
        assert service.metrics.to_dict()["counters"]["timeouts"] == 1
        assert late["ok"] and late["source"] == "memo"


class TestPoisoned:
    def test_poisoned_config_returns_structured_error(self, tmp_path):
        sched = Scheduler(jobs=2, cache_dir=str(tmp_path / "cache"),
                          max_retries=1)
        sched.fault_injector = lambda cfg, attempts: True  # always crash
        svc = SimulationService(scheduler=sched, max_inflight=2)
        try:
            resp = _run(svc.handle(_doc(1)))
            counters = svc.metrics.to_dict()["counters"]
            gauges = svc.metrics.to_dict()["gauges"]
        finally:
            svc.close()
        assert resp["ok"] is False
        assert resp["error"]["type"] == "poisoned"
        assert "poisoned" in resp["error"]["message"]
        assert gauges["inflight"] == 0, "poisoning leaked the slot"
        assert counters["responses_error"] == 1

    def test_healthy_queries_unaffected_after_poisoning(self, tmp_path):
        sched = Scheduler(jobs=2, cache_dir=str(tmp_path / "cache"),
                          max_retries=1)
        sched.fault_injector = lambda cfg, attempts: cfg.cores == 32
        svc = SimulationService(scheduler=sched, max_inflight=2)
        try:
            bad = _run(svc.handle(_doc(1, cores=32)))
            good = _run(svc.handle(_doc(2, cores=16)))
        finally:
            svc.close()
        assert bad["ok"] is False and bad["error"]["type"] == "poisoned"
        assert good["ok"] is True


class TestDrainInProcess:
    def test_drain_refuses_new_finishes_old(self, service, monkeypatch):
        release = threading.Event()
        real = SimulationService._run_one

        def slow(self, cfg):
            assert release.wait(30)
            return real(self, cfg)

        monkeypatch.setattr(SimulationService, "_run_one", slow)

        async def scenario():
            inflight = asyncio.create_task(service.handle(_doc(1)))
            while not service.metrics.to_dict()["counters"]["admitted"]:
                await asyncio.sleep(0.01)
            service.begin_drain()
            refused = await service.handle(_doc(2, cores=32))
            release.set()
            finished = await inflight
            clean = await service.drain(grace_s=30)
            return refused, finished, clean

        refused, finished, clean = _run(scenario())
        assert refused["ok"] is False
        assert refused["error"]["type"] == "draining"
        assert finished["ok"] is True
        assert clean is True

    def test_stats_verb_reports_consistent_document(self, service):
        async def scenario():
            await service.handle(_doc(1))
            await service.handle(_doc(2))
            return await service.handle({"verb": "stats", "id": 3})

        stats = _run(scenario())
        assert stats["ok"]
        assert stats["version"] == 1
        assert stats["service"]["counters"]["warm_memo_hits"] == 1
        assert stats["scheduler"]["counters"]["submitted"] == 1
        assert stats["service"]["latency"]["warm"]["count"] >= 1
        assert (
            stats["service"]["latency"]["all"]["count"]
            >= stats["service"]["latency"]["warm"]["count"]
        )

    def test_metrics_render_parses_as_prometheus_text(self, service):
        _run(service.handle(_doc(1)))
        text = service.render_metrics()
        for line in text.strip().splitlines():
            name, value = line.rsplit(" ", 1)
            float(value)  # every sample value is numeric
            assert name.startswith(("repro_serve_", "repro_sched_",
                                    "repro_journal_", "repro_cache_"))
        assert "repro_serve_requests_total 1" in text
        assert 'repro_serve_latency_all_seconds_bucket{le="+Inf"} 1' in text
