"""Fuzz the live daemon's listener: garbage, torn lines, bad HTTP."""

import json
import socket

from serve_helpers import CFG_DOC


def _connect(daemon):
    s = socket.create_connection((daemon.host, daemon.port), timeout=30)
    return s, s.makefile("rb")


class TestGarbage:
    def test_garbage_lines_get_structured_errors_and_session_survives(
        self, daemon
    ):
        """Junk lines are answered with ok=false protocol errors on the
        SAME connection, and a valid request afterwards still works."""
        s, fh = _connect(daemon)
        try:
            for junk in (
                b"this is not json\n",
                b"\x00\xff\xfe garbage bytes \x80\n",
                b"[1, 2, 3]\n",
                b'"just a string"\n',
                b"{\n",
            ):
                s.sendall(junk)
                resp = json.loads(fh.readline())
                assert resp["ok"] is False
                assert resp["error"]["type"] == "protocol"
            s.sendall(b'{"verb": "ping", "id": 99}\n')
            resp = json.loads(fh.readline())
            assert resp["ok"] is True and resp["id"] == 99
        finally:
            s.close()

    def test_torn_line_then_disconnect_leaves_daemon_healthy(self, daemon):
        """Half a request then a hangup must not wedge the daemon."""
        s = socket.create_connection((daemon.host, daemon.port), timeout=30)
        s.sendall(b'{"verb": "run", "config": {"machine": "le')
        s.close()
        with daemon.client() as c:
            assert c.ping()["ok"]

    def test_interleaved_garbage_and_valid_requests(self, daemon):
        s, fh = _connect(daemon)
        try:
            s.sendall(
                b"garbage\n"
                + json.dumps({"verb": "ping", "id": 1}).encode() + b"\n"
                + b"{torn"  # no newline: torn tail, then hangup below
            )
            bad = json.loads(fh.readline())
            good = json.loads(fh.readline())
            assert bad["ok"] is False
            assert good["ok"] is True and good["id"] == 1
        finally:
            s.close()
        with daemon.client() as c:
            assert c.ping()["ok"]

    def test_oversize_line_rejected_then_connection_closed(self, daemon):
        from repro.serve.protocol import MAX_LINE_BYTES

        s, fh = _connect(daemon)
        try:
            s.sendall(b'{"pad": "' + b"x" * (MAX_LINE_BYTES + 1024))
            resp = json.loads(fh.readline())
            assert resp["ok"] is False
            assert resp["error"]["type"] == "protocol"
            # The stream is out of sync: the daemon hangs up after the
            # structured error rather than misparse the remainder.
            assert fh.readline() == b""
        finally:
            s.close()
        with daemon.client() as c:
            assert c.ping()["ok"]

    def test_empty_lines_are_skipped(self, daemon):
        s, fh = _connect(daemon)
        try:
            s.sendall(b"\n\n" + json.dumps({"verb": "ping", "id": 3}).encode()
                      + b"\n")
            resp = json.loads(fh.readline())
            assert resp["ok"] is True and resp["id"] == 3
        finally:
            s.close()


class TestHTTPEdge:
    def test_http_404(self, daemon):
        import urllib.error
        import urllib.request

        try:
            urllib.request.urlopen(
                f"http://{daemon.host}:{daemon.port}/nonesuch", timeout=30
            )
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        else:
            raise AssertionError("expected a 404")

    def test_http_bad_body_is_400(self, daemon):
        import urllib.error
        import urllib.request

        req = urllib.request.Request(
            f"http://{daemon.host}:{daemon.port}/run",
            data=b"this is not json", method="POST",
        )
        try:
            urllib.request.urlopen(req, timeout=30)
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
        else:
            raise AssertionError("expected a 400")

    def test_http_and_ndjson_share_the_listener(self, daemon):
        import urllib.request

        with daemon.client() as c:
            ndjson = c.run(CFG_DOC)
        req = urllib.request.Request(
            f"http://{daemon.host}:{daemon.port}/run",
            data=json.dumps({"config": CFG_DOC}).encode(), method="POST",
            headers={"Content-Type": "application/json"},
        )
        http = json.load(urllib.request.urlopen(req, timeout=30))
        assert http["ok"]
        assert http["result"] == ndjson["result"]
