"""Shared helpers for the serve suite: daemon subprocess management."""

import json
import os
import signal
import subprocess
import sys
import time

import repro

#: PYTHONPATH entry that makes ``-m repro.cli`` importable in children.
SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: The suite's canonical cheap config (16^3 on Lens, a few steps).
CFG_DOC = {
    "machine": "lens",
    "impl": "nonblocking",
    "cores": 16,
    "domain": 16,
    "steps": 4,
}


class Daemon:
    """A live ``advection-repro serve`` subprocess."""

    def __init__(self, proc, info, workdir):
        self.proc = proc
        self.host = info["host"]
        self.port = info["port"]
        self.workdir = workdir

    @property
    def journal_path(self):
        return os.path.join(self.workdir, "journal.jsonl")

    @property
    def cache_dir(self):
        return os.path.join(self.workdir, "cache")

    def client(self, **kw):
        from repro.serve.client import ServeClient

        kw.setdefault("timeout_s", 60.0)
        return ServeClient(self.host, self.port, **kw)

    def sigterm(self, timeout=60):
        """Graceful drain; returns (exit_code, stdout, stderr)."""
        self.proc.send_signal(signal.SIGTERM)
        out, err = self.proc.communicate(timeout=timeout)
        return self.proc.returncode, out, err

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.communicate(timeout=10)


def spawn_daemon(workdir, *extra_args, journal=True, cache=True,
                 timeout=30.0):
    """Launch a daemon on an ephemeral port; block until it is ready."""
    ready = os.path.join(workdir, "ready.json")
    if os.path.exists(ready):
        os.unlink(ready)
    args = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0", "--ready-file", ready,
    ]
    if journal:
        args += ["--journal", os.path.join(workdir, "journal.jsonl")]
    if cache:
        args += ["--cache-dir", os.path.join(workdir, "cache")]
    else:
        args += ["--no-cache"]
    args += list(extra_args)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        args, env=env, cwd=workdir,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + timeout
    while not os.path.exists(ready):
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise RuntimeError(
                f"daemon died before ready (rc={proc.returncode}):\n"
                f"stdout: {out}\nstderr: {err}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("daemon never wrote its ready file")
        time.sleep(0.02)
    with open(ready, encoding="utf-8") as fh:
        info = json.load(fh)
    return Daemon(proc, info, workdir)
