"""End-to-end daemon tests: identity, coalescing, drain, replication."""

import json
import signal
import socket
import threading
import time

import pytest

from repro.core.config import RunConfig
from repro.core.runner import run, run_replicated
from repro.machines import get_machine
from repro.perturb import NoiseSpec
from repro.serve.client import ServeClient, ServeError

from serve_helpers import CFG_DOC, spawn_daemon


def _direct_cfg(**kw):
    return RunConfig(
        machine=get_machine(CFG_DOC["machine"]),
        implementation=CFG_DOC["impl"],
        cores=CFG_DOC["cores"],
        domain=(CFG_DOC["domain"],) * 3,
        steps=CFG_DOC["steps"],
        **kw,
    )


class TestWarmIdentity:
    def test_served_result_identical_to_direct_run(self, daemon):
        """Warm or cold, the served floats == core.runner.run exactly."""
        ref = run(_direct_cfg())
        with daemon.client() as c:
            cold = c.run(CFG_DOC)
            warm = c.run(CFG_DOC)
        for resp in (cold, warm):
            assert resp["ok"]
            assert resp["result"]["elapsed_s"] == ref.elapsed_s
            assert resp["result"]["phases"] == ref.phases
            assert resp["result"]["comm_stats"] == ref.comm_stats
            assert resp["result"]["gflops"] == ref.gflops
        assert warm["source"] in ("memo", "cache", "journal")

    def test_warm_responses_byte_identical(self, daemon):
        """Two warm hits of the same query are the same bytes on the
        wire (modulo the echoed request id)."""
        with daemon.client() as c:
            c.run(CFG_DOC)  # prime
        buf = []
        sock = socket.create_connection((daemon.host, daemon.port), timeout=30)
        try:
            fh = sock.makefile("rb")
            line = json.dumps(
                {"verb": "run", "id": 0, "config": CFG_DOC}
            ).encode() + b"\n"
            for _ in range(2):
                sock.sendall(line)
                buf.append(fh.readline())
        finally:
            sock.close()
        assert buf[0] == buf[1]

    def test_equivalent_spellings_hit_the_same_entry(self, daemon):
        """'implementation' alias and explicit defaults key identically."""
        spelled = {
            "machine": CFG_DOC["machine"],
            "implementation": CFG_DOC["impl"],
            "cores": CFG_DOC["cores"],
            "threads": 1,
            "thickness": 1,
            "domain": [CFG_DOC["domain"]] * 3,
            "steps": CFG_DOC["steps"],
            "network": "mirror",
        }
        with daemon.client() as c:
            a = c.run(CFG_DOC)
            b = c.run(spelled)
        assert b["source"] in ("memo", "cache", "journal")
        assert a["result"] == b["result"]


class TestCoalescing:
    def test_concurrent_identical_cold_queries_one_scheduler_task(
        self, daemon_factory
    ):
        """N clients, same cold config -> exactly 1 admitted scheduler
        job; everyone else coalesces onto it or replays it warm."""
        d = daemon_factory(subdir="coalesce")
        n = 6
        # A replicated job is the slowest query the suite can ask for
        # (~hundreds of sequential sims), so the n-1 late arrivals land
        # while it is in flight and genuinely coalesce cross-connection.
        doc = {
            "verb": "run",
            "config": dict(CFG_DOC, seed=9, noise="medium"),
            "replicas": 300,
        }
        barrier = threading.Barrier(n)
        results = [None] * n

        def query(i):
            with d.client(timeout_s=120) as c:
                barrier.wait()
                results[i] = c.request(dict(doc))

        threads = [
            threading.Thread(target=query, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert all(r is not None for r in results), "a client hung"
        assert all(r["ok"] for r in results)
        base = results[0]["result"]
        for r in results[1:]:
            assert r["result"] == base

        with d.client() as c:
            stats = c.stats()
        counters = stats["service"]["counters"]
        # Exactly one admission; the other n-1 coalesced (or, had the
        # job somehow finished first, hit the memo) — never a second job.
        assert counters["admitted"] == 1
        assert counters["coalesced"] + counters["warm_memo_hits"] == n - 1
        assert counters["coalesced"] >= 1
        assert stats["scheduler"]["inflight"] == 0

    def test_replicated_query_matches_run_replicated(self, daemon):
        """Served replication stats == core.runner.run_replicated."""
        ref = run_replicated(
            _direct_cfg(seed=42, noise=NoiseSpec.parse("medium")), 8
        )
        with daemon.client() as c:
            resp = c.run(
                dict(CFG_DOC, seed=42, noise="medium"), replicas=8
            )
        assert resp["ok"]
        assert resp["result"]["elapsed_s"] == ref.elapsed_s
        assert resp["result"]["phases"] == ref.phases
        assert resp["result"]["stats"] == ref.stats


class TestSweep:
    def test_sweep_results_in_request_order(self, daemon):
        docs = [
            dict(CFG_DOC, cores=16),
            dict(CFG_DOC, cores=32),
            dict(CFG_DOC, cores=16),  # duplicate -> deduped in-flight
        ]
        refs = [
            run(_direct_cfg().with_(cores=doc["cores"])) for doc in docs
        ]
        with daemon.client(timeout_s=60) as c:
            resp = c.sweep(docs)
        assert resp["ok"]
        assert resp["total"] == 3 and resp["distinct"] == 2
        for slot, ref in zip(resp["results"], refs):
            assert slot["elapsed_s"] == ref.elapsed_s
            assert slot["phases"] == ref.phases

    def test_streamed_sweep_emits_progress(self, daemon_factory):
        d = daemon_factory(subdir="stream")
        docs = [dict(CFG_DOC, cores=c) for c in (16, 32, 48, 64)]
        events = []
        with d.client(timeout_s=60) as c:
            resp = c.sweep(docs, stream=True, on_progress=events.append)
        assert resp["ok"] and len(resp["results"]) == 4
        assert events, "no progress events on a cold streamed sweep"
        assert events[-1]["done"] == events[-1]["total"] == 4
        assert [e["done"] for e in events] == sorted(
            e["done"] for e in events
        )

    def test_infeasible_config_rejects_the_sweep_at_parse_time(self, daemon):
        docs = [dict(CFG_DOC), dict(CFG_DOC, cores=17)]  # 17: bad node fill
        with daemon.client() as c:
            with pytest.raises(ServeError) as exc:
                c.sweep(docs)
        assert exc.value.kind == "invalid-config"
        with daemon.client() as c:
            assert c.ping()["ok"]  # the daemon shrugged it off


class TestDrain:
    def test_sigterm_finishes_in_flight_and_journal_replays(
        self, daemon_factory
    ):
        """SIGTERM mid-job: the response still arrives, the daemon exits
        0, and a restart on the same journal replays the work warm."""
        d = daemon_factory(subdir="drain", cache=False)
        doc = {
            "verb": "run",
            "id": 1,
            "config": dict(CFG_DOC, seed=5, noise="medium"),
            "replicas": 300,
        }
        with d.client(timeout_s=120) as c:
            c._send(doc)
            # Give the daemon a beat to admit the job, then SIGTERM it.
            time.sleep(0.3)
            d.proc.send_signal(signal.SIGTERM)
            first = c._recv()
        assert first["ok"], first
        d.proc.communicate(timeout=60)
        assert d.proc.returncode == 0

        # Same workdir, same journal: the restarted daemon answers the
        # identical query from journal replay without simulating.
        d2 = spawn_daemon(d.workdir, cache=False)
        try:
            with d2.client(timeout_s=120) as c:
                resp = c.request(dict(doc, id=2))
                stats = c.stats()
        finally:
            d2.kill()
        assert resp["ok"]
        assert resp["result"] == first["result"]
        assert stats["scheduler"]["counters"]["journal_hits"] > 0
        assert stats["scheduler"]["counters"]["simulated"] == 0

    def test_draining_daemon_rejects_new_cold_queries(self, daemon_factory):
        """During drain the listener refuses new connections entirely."""
        d = daemon_factory(subdir="drain2")
        with d.client() as c:
            assert c.ping()["ok"]
        rc, _out, _err = d.sigterm()
        assert rc == 0
        with pytest.raises(OSError):
            socket.create_connection((d.host, d.port), timeout=2)


class TestBackpressure:
    def test_cold_miss_storm_hits_admission_cap(self, daemon_factory):
        """--max-inflight 1 + a storm of distinct cold queries: at most
        one job runs at a time, overflow gets a structured 'busy', the
        daemon stays healthy, and nothing leaks."""
        d = daemon_factory("--max-inflight", "1", subdir="storm")
        slow = {
            "verb": "run",
            "config": dict(CFG_DOC, seed=11, noise="medium"),
            "replicas": 200,
        }
        storm = [
            dict(slow, config=dict(slow["config"], seed=100 + i))
            for i in range(6)
        ]
        barrier = threading.Barrier(len(storm) + 1)
        outcomes = [None] * len(storm)

        def query(i):
            with d.client(timeout_s=120) as c:
                barrier.wait()
                try:
                    outcomes[i] = c.request(storm[i])["source"]
                except ServeError as exc:
                    outcomes[i] = exc.kind

        threads = [
            threading.Thread(target=query, args=(i,))
            for i in range(len(storm))
        ]
        for t in threads:
            t.start()
        barrier.wait()
        for t in threads:
            t.join(timeout=120)
        assert all(o is not None for o in outcomes), "a client hung"
        assert all(o in ("simulated", "coalesced", "busy") for o in outcomes)
        assert "busy" in outcomes, f"cap never tripped: {outcomes}"
        assert "simulated" in outcomes

        with d.client() as c:
            stats = c.stats()
        counters = stats["service"]["counters"]
        assert counters["rejected_busy"] == outcomes.count("busy")
        assert counters["admitted"] == outcomes.count("simulated")
        # No leaked admission slots or in-flight jobs after the storm.
        assert stats["service"]["gauges"]["inflight"] == 0
        assert stats["scheduler"]["inflight"] == 0
        # Warm traffic still flows while/after the storm.
        with d.client() as c:
            assert c.run(CFG_DOC)["ok"]
