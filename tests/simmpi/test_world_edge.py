"""Edge-case tests for the full MPI backend (matching, contention, barriers)."""

import numpy as np
import pytest

from repro.des import Environment
from repro.machines import JAGUARPF
from repro.simmpi.world import World


def make_world(env, nranks=2, tasks_per_node=1):
    return World(env, nranks, JAGUARPF.interconnect, JAGUARPF.node, tasks_per_node)


def run_ranks(env, programs):
    procs = [env.process(p) for p in programs]
    env.run()
    return [p.value for p in procs]


class TestWaitall:
    def test_returns_payloads_in_order(self):
        env = Environment()
        w = make_world(env)
        out = {}

        def sender():
            comm = w.comm(0)
            reqs = []
            for i in range(4):
                reqs.append((yield from comm.isend(1, tag=i, nbytes=64, payload=i * 11)))
            yield from comm.waitall(reqs)

        def receiver():
            comm = w.comm(1)
            reqs = []
            for i in range(4):
                reqs.append((yield from comm.irecv(0, tag=i, nbytes=64)))
            out["vals"] = yield from comm.waitall(reqs)

        run_ranks(env, [sender(), receiver()])
        assert out["vals"] == [0, 11, 22, 33]

    def test_wait_idempotent(self):
        env = Environment()
        w = make_world(env)

        def sender():
            comm = w.comm(0)
            req = yield from comm.isend(1, tag=1, nbytes=64, payload="x")
            yield from comm.wait(req)
            yield from comm.wait(req)  # second wait is a no-op

        def receiver():
            comm = w.comm(1)
            req = yield from comm.irecv(0, tag=1, nbytes=64)
            v1 = yield from comm.wait(req)
            v2 = yield from comm.wait(req)
            return (v1, v2)

        vals = run_ranks(env, [sender(), receiver()])
        assert vals[1] == ("x", "x")


class TestNicContention:
    def test_concurrent_offnode_transfers_share_nic(self):
        """Two big rendezvous messages from one node take ~2x one message."""

        def exchange_time(n_streams):
            env = Environment()
            # 2*n_streams ranks: node 0 hosts senders, node 1 receivers.
            w = World(env, 2 * n_streams, JAGUARPF.interconnect, JAGUARPF.node,
                      tasks_per_node=n_streams)
            nbytes = 5_000_000

            def sender(r):
                comm = w.comm(r)
                req = yield from comm.isend(r + n_streams, tag=9, nbytes=nbytes)
                yield from comm.wait(req)

            def receiver(r):
                comm = w.comm(r)
                req = yield from comm.irecv(r - n_streams, tag=9, nbytes=nbytes)
                yield from comm.wait(req)

            progs = [sender(r) for r in range(n_streams)] + [
                receiver(r) for r in range(n_streams, 2 * n_streams)
            ]
            run_ranks(env, progs)
            return env.now

        t1 = exchange_time(1)
        t2 = exchange_time(2)
        assert t2 > 1.6 * t1  # shared injection bandwidth

    def test_different_nodes_do_not_contend(self):
        def pair_time(pairs):
            env = Environment()
            # one sender+receiver per node pair; tasks_per_node=1
            w = World(env, 2 * pairs, JAGUARPF.interconnect, JAGUARPF.node, 1)
            nbytes = 5_000_000

            def sender(r):
                comm = w.comm(r)
                req = yield from comm.isend(r + pairs, tag=3, nbytes=nbytes)
                yield from comm.wait(req)

            def receiver(r):
                comm = w.comm(r)
                req = yield from comm.irecv(r - pairs, tag=3, nbytes=nbytes)
                yield from comm.wait(req)

            progs = [sender(r) for r in range(pairs)] + [
                receiver(r) for r in range(pairs, 2 * pairs)
            ]
            run_ranks(env, progs)
            return env.now

        assert pair_time(3) == pytest.approx(pair_time(1), rel=0.05)


class TestBarrierGenerations:
    def test_sequential_barriers_isolate(self):
        """A slow rank in barrier N must not release barrier N+1 early."""
        env = Environment()
        w = make_world(env, nranks=3)
        hits = []

        def prog(rank, delays):
            comm = w.comm(rank)
            for i, d in enumerate(delays):
                yield env.timeout(d)
                yield from comm.barrier()
                hits.append((i, rank, env.now))

        run_ranks(env, [prog(0, [0.0, 0.0]), prog(1, [2.0, 0.0]), prog(2, [0.0, 3.0])])
        # Within each barrier generation, all ranks resume together.
        for gen in (0, 1):
            times = {t for g, _, t in hits if g == gen}
            assert len(times) == 1
        t0 = next(t for g, _, t in hits if g == 0)
        t1 = next(t for g, _, t in hits if g == 1)
        assert t1 > t0


class TestRendezvousDeadlockFreedom:
    def test_head_to_head_large_sends_complete(self):
        """Both ranks isend large before posting recvs; waits still resolve
        (the foreground transfer is started by whichever wait comes first)."""
        env = Environment()
        w = make_world(env)
        done = []

        def prog(rank):
            comm = w.comm(rank)
            peer = 1 - rank
            sreq = yield from comm.isend(peer, tag=5, nbytes=10_000_000)
            rreq = yield from comm.irecv(peer, tag=5, nbytes=10_000_000)
            yield from comm.wait(sreq)
            yield from comm.wait(rreq)
            done.append(rank)

        run_ranks(env, [prog(0), prog(1)])
        assert sorted(done) == [0, 1]
