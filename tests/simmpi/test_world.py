"""Tests for the full multi-rank MPI backend."""

import numpy as np
import pytest

from repro.des import Environment
from repro.machines import JAGUARPF
from repro.simmpi import World, halo_tag
from repro.simmpi.api import HALO_TAGS


@pytest.fixture
def env():
    return Environment()


def make_world(env, nranks=2, tasks_per_node=1):
    return World(env, nranks, JAGUARPF.interconnect, JAGUARPF.node, tasks_per_node)


def run_ranks(env, world, programs):
    """Run one generator program per rank; returns their return values."""
    procs = [env.process(p) for p in programs]
    env.run()
    return [p.value for p in procs]


class TestHaloTags:
    def test_six_tags_distinct(self):
        assert len(set(HALO_TAGS)) == 6

    def test_bad_travel(self):
        with pytest.raises(ValueError):
            halo_tag(0, 0)


class TestPointToPoint:
    def test_payload_delivery(self, env):
        w = make_world(env)
        out = {}

        def sender():
            comm = w.comm(0)
            req = yield from comm.isend(1, tag=5, nbytes=800, payload=np.arange(100.0))
            yield from comm.wait(req)

        def receiver():
            comm = w.comm(1)
            req = yield from comm.irecv(0, tag=5, nbytes=800)
            out["data"] = yield from comm.wait(req)

        run_ranks(env, w, [sender(), receiver()])
        assert np.array_equal(out["data"], np.arange(100.0))

    def test_send_before_recv_posted(self, env):
        w = make_world(env)
        out = {}

        def sender():
            comm = w.comm(0)
            req = yield from comm.isend(1, tag=1, nbytes=100, payload="hello")
            yield from comm.wait(req)

        def receiver():
            comm = w.comm(1)
            yield env.timeout(1e-3)  # post late
            req = yield from comm.irecv(0, tag=1, nbytes=100)
            out["v"] = yield from comm.wait(req)

        run_ranks(env, w, [sender(), receiver()])
        assert out["v"] == "hello"

    def test_fifo_matching_same_tag(self, env):
        w = make_world(env)
        out = []

        def sender():
            comm = w.comm(0)
            reqs = []
            for i in range(3):
                reqs.append((yield from comm.isend(1, tag=9, nbytes=64, payload=i)))
            yield from comm.waitall(reqs)

        def receiver():
            comm = w.comm(1)
            for _ in range(3):
                req = yield from comm.irecv(0, tag=9, nbytes=64)
                out.append((yield from comm.wait(req)))

        run_ranks(env, w, [sender(), receiver()])
        assert out == [0, 1, 2]

    def test_tags_do_not_cross(self, env):
        w = make_world(env)
        out = {}

        def sender():
            comm = w.comm(0)
            r1 = yield from comm.isend(1, tag=1, nbytes=64, payload="one")
            r2 = yield from comm.isend(1, tag=2, nbytes=64, payload="two")
            yield from comm.waitall([r1, r2])

        def receiver():
            comm = w.comm(1)
            req2 = yield from comm.irecv(0, tag=2, nbytes=64)
            req1 = yield from comm.irecv(0, tag=1, nbytes=64)
            out["two"] = yield from comm.wait(req2)
            out["one"] = yield from comm.wait(req1)

        run_ranks(env, w, [sender(), receiver()])
        assert out == {"one": "one", "two": "two"}

    def test_self_send(self, env):
        w = make_world(env, nranks=1)
        out = {}

        def prog():
            comm = w.comm(0)
            rreq = yield from comm.irecv(0, tag=3, nbytes=128)
            sreq = yield from comm.isend(0, tag=3, nbytes=128, payload="self")
            out["v"] = yield from comm.wait(rreq)
            yield from comm.wait(sreq)

        run_ranks(env, w, [prog()])
        assert out["v"] == "self"

    def test_rank_bounds(self, env):
        w = make_world(env)
        with pytest.raises(ValueError):
            w.comm(2)


class TestTiming:
    def _exchange_time(self, env_factory, nbytes, compute_between=0.0, tasks_per_node=1):
        env = Environment()
        w = make_world(env, nranks=2, tasks_per_node=tasks_per_node)
        times = {}

        def prog(rank):
            comm = w.comm(rank)
            peer = 1 - rank
            rreq = yield from comm.irecv(peer, tag=1, nbytes=nbytes)
            sreq = yield from comm.isend(peer, tag=1, nbytes=nbytes)
            if compute_between:
                yield env.timeout(compute_between)
            yield from comm.wait(rreq)
            yield from comm.wait(sreq)
            times[rank] = env.now

        run_ranks(env, w, [prog(0), prog(1)])
        return max(times.values())

    def test_bigger_messages_take_longer(self):
        t_small = self._exchange_time(Environment, 100_000)
        t_big = self._exchange_time(Environment, 1_000_000)
        assert t_big > t_small

    def test_overlap_credit_reduces_wait(self):
        """Computing between post and wait hides part of a rendezvous wire."""
        nbytes = 4_000_000  # rendezvous
        t_blocked = self._exchange_time(Environment, nbytes, compute_between=0.0)
        wire = nbytes / JAGUARPF.interconnect.bandwidth_bps
        t_overlap = self._exchange_time(Environment, nbytes, compute_between=2 * wire)
        # A no-overlap model would give t_blocked + 2*wire; background
        # progress must hide a visible chunk of the wire time.
        assert t_overlap < t_blocked + 2 * wire - 0.3 * wire

    def test_onnode_faster_than_offnode(self):
        t_off = self._exchange_time(Environment, 500_000, tasks_per_node=1)
        t_on = self._exchange_time(Environment, 500_000, tasks_per_node=2)
        assert t_on < t_off

    def test_eager_no_background_progress(self):
        """Small (eager) messages gain nothing from compute between."""
        nbytes = 4096
        t0 = self._exchange_time(Environment, nbytes, compute_between=0.0)
        t1 = self._exchange_time(Environment, nbytes, compute_between=1e-4)
        # the compute is simply added; no hiding
        assert t1 == pytest.approx(t0 + 1e-4, rel=0.2)


class TestCollectives:
    def test_barrier_synchronizes(self, env):
        w = make_world(env, nranks=3)
        after = {}

        def prog(rank, delay):
            comm = w.comm(rank)
            yield env.timeout(delay)
            yield from comm.barrier()
            after[rank] = env.now

        run_ranks(env, w, [prog(0, 0.0), prog(1, 5.0), prog(2, 1.0)])
        assert len(set(after.values())) == 1
        assert min(after.values()) > 5.0  # waited for the slowest

    def test_barrier_reusable(self, env):
        w = make_world(env, nranks=2)
        counts = []

        def prog(rank):
            comm = w.comm(rank)
            for _ in range(3):
                yield from comm.barrier()
            counts.append(rank)

        run_ranks(env, w, [prog(0), prog(1)])
        assert sorted(counts) == [0, 1]

    def test_allreduce_max(self, env):
        w = make_world(env, nranks=3)
        results = {}

        def prog(rank, value):
            comm = w.comm(rank)
            results[rank] = yield from comm.allreduce_max(value)

        run_ranks(env, w, [prog(0, 1.5), prog(1, 7.25), prog(2, -3.0)])
        assert all(v == 7.25 for v in results.values())
