"""Progress-model semantics on both MPI backends.

The paper's machines only advance wire work inside MPI calls (manual
poll); modern fabrics progress it autonomously. These tests pin the
contract of :meth:`InterconnectSpec.background_fraction` and its effect
on both backends: hardware offload never waits longer than manual poll,
background wire time moves to the "progress" lane, and multi-NIC nodes
build one wire per NIC.
"""

from dataclasses import replace

import pytest

from repro.des import Environment
from repro.machines import JAGUARPF, YONA
from repro.machines.spec import InterconnectSpec, ProgressModel
from repro.obs import Tracer
from repro.simmpi import World
from repro.simmpi.mirror import MirrorComm, MirrorProfile


@pytest.fixture
def env():
    return Environment()


def with_progress(ic, model, **kw):
    return replace(ic, progress=model, **kw)


RENDEZVOUS_BYTES = 10_000_000  # far above every eager threshold


def elapsed_nonblocking_full(ic, nbytes=RENDEZVOUS_BYTES, overlap_s=5e-3):
    """Time for isend/irecv + simulated compute + wait on the full backend."""
    env = Environment()
    w = World(env, 2, ic, JAGUARPF.node, tasks_per_node=1)

    def sender():
        comm = w.comm(0)
        req = yield from comm.isend(1, tag=1, nbytes=nbytes)
        yield env.timeout(overlap_s)  # compute while the wire works
        yield from comm.wait(req)

    def receiver():
        comm = w.comm(1)
        req = yield from comm.irecv(0, tag=1, nbytes=nbytes)
        yield env.timeout(overlap_s)
        yield from comm.wait(req)

    procs = [env.process(p()) for p in (sender, receiver)]
    env.run()
    return env.now


def elapsed_nonblocking_mirror(ic, nbytes=RENDEZVOUS_BYTES, overlap_s=5e-3):
    env = Environment()
    profile = MirrorProfile(
        interconnect=ic, node=JAGUARPF.node, nranks=2, tasks_per_node=1
    )
    comm = MirrorComm(env, profile)

    def program():
        req = yield from comm.irecv(0, tag=1, nbytes=nbytes)
        sreq = yield from comm.isend(0, tag=1, nbytes=nbytes)
        yield env.timeout(overlap_s)
        yield from comm.wait(req)
        yield from comm.wait(sreq)

    env.process(program())
    env.run()
    return env.now


class TestBackgroundFraction:
    def test_manual_poll_matches_legacy(self):
        ic = JAGUARPF.interconnect
        assert ic.progress is ProgressModel.MANUAL_POLL
        assert ic.background_fraction(eager=True) == 0.0
        assert ic.background_fraction(eager=False) == ic.overlap_fraction

    def test_progress_thread(self):
        ic = with_progress(
            JAGUARPF.interconnect, ProgressModel.PROGRESS_THREAD,
            progress_overlap_fraction=0.9,
        )
        assert ic.background_fraction(eager=True) == 0.9
        assert ic.background_fraction(eager=False) == 0.9
        assert ic.progress_tax == ic.progress_host_tax > 0.0

    def test_hardware_offload(self):
        ic = with_progress(JAGUARPF.interconnect, ProgressModel.HARDWARE_OFFLOAD)
        assert ic.background_fraction(eager=True) == 1.0
        assert ic.background_fraction(eager=False) == 1.0
        assert ic.progress_tax == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            replace(JAGUARPF.interconnect, progress_overlap_fraction=1.5)
        with pytest.raises(ValueError):
            replace(JAGUARPF.interconnect, progress_host_tax=-0.1)
        with pytest.raises(ValueError):
            replace(JAGUARPF.interconnect, nics_per_node=0)
        with pytest.raises(ValueError):
            replace(JAGUARPF.interconnect, progress="polling-harder")

    def test_string_coerces_to_enum(self):
        ic = replace(JAGUARPF.interconnect, progress="hardware-offload")
        assert ic.progress is ProgressModel.HARDWARE_OFFLOAD


class TestOffloadNeverSlower:
    """Hardware offload hides at least as much wire time as manual poll."""

    def test_full_backend(self):
        manual = elapsed_nonblocking_full(JAGUARPF.interconnect)
        offload = elapsed_nonblocking_full(
            with_progress(JAGUARPF.interconnect, ProgressModel.HARDWARE_OFFLOAD)
        )
        assert offload <= manual

    def test_full_backend_strict_when_overlap_imperfect(self):
        ic = replace(JAGUARPF.interconnect, overlap_fraction=0.3)
        manual = elapsed_nonblocking_full(ic)
        offload = elapsed_nonblocking_full(
            with_progress(ic, ProgressModel.HARDWARE_OFFLOAD)
        )
        assert offload < manual

    def test_mirror_backend(self):
        manual = elapsed_nonblocking_mirror(JAGUARPF.interconnect)
        offload = elapsed_nonblocking_mirror(
            with_progress(JAGUARPF.interconnect, ProgressModel.HARDWARE_OFFLOAD)
        )
        assert offload <= manual

    def test_eager_messages_hidden_only_with_progress(self):
        """Eager sends are fully exposed under manual poll (the library
        moves the bytes inside the wait) but hidden under offload."""
        ic = JAGUARPF.interconnect
        nbytes = ic.eager_threshold_bytes  # at the threshold: still eager
        manual = elapsed_nonblocking_full(ic, nbytes=nbytes)
        offload = elapsed_nonblocking_full(
            with_progress(ic, ProgressModel.HARDWARE_OFFLOAD), nbytes=nbytes
        )
        assert offload <= manual


class TestProgressLane:
    def run_traced(self, ic):
        env = Environment()
        w = World(env, 2, ic, JAGUARPF.node, tasks_per_node=1)
        tracer = Tracer()
        w.tracer = tracer

        def sender():
            comm = w.comm(0)
            req = yield from comm.isend(1, tag=1, nbytes=RENDEZVOUS_BYTES)
            yield from comm.wait(req)

        def receiver():
            comm = w.comm(1)
            req = yield from comm.irecv(0, tag=1, nbytes=RENDEZVOUS_BYTES)
            yield from comm.wait(req)

        for p in (sender, receiver):
            env.process(p())
        env.run()
        return tracer

    def test_manual_poll_has_no_progress_lane(self):
        tracer = self.run_traced(JAGUARPF.interconnect)
        lanes = {lane for _, lane in tracer.lane_keys()}
        assert "progress" not in lanes
        assert "mpi" in lanes

    def test_offload_moves_background_to_progress_lane(self):
        tracer = self.run_traced(
            with_progress(JAGUARPF.interconnect, ProgressModel.HARDWARE_OFFLOAD)
        )
        lanes = {lane for _, lane in tracer.lane_keys()}
        assert "progress" in lanes

    def test_local_messages_stay_on_mpi_lane(self):
        """Intra-node traffic is a memcpy; no NIC ever progresses it."""
        ic = with_progress(JAGUARPF.interconnect, ProgressModel.HARDWARE_OFFLOAD)
        env = Environment()
        w = World(env, 2, ic, JAGUARPF.node, tasks_per_node=2)  # same node
        tracer = Tracer()
        w.tracer = tracer

        def sender():
            comm = w.comm(0)
            req = yield from comm.isend(1, tag=1, nbytes=RENDEZVOUS_BYTES)
            yield from comm.wait(req)

        def receiver():
            comm = w.comm(1)
            req = yield from comm.irecv(0, tag=1, nbytes=RENDEZVOUS_BYTES)
            yield from comm.wait(req)

        for p in (sender, receiver):
            env.process(p())
        env.run()
        lanes = {lane for _, lane in tracer.lane_keys()}
        assert "progress" not in lanes


class TestMultiNic:
    def test_one_wire_per_nic(self, env):
        ic = replace(JAGUARPF.interconnect, nics_per_node=4)
        w = World(env, 4, ic, JAGUARPF.node, tasks_per_node=2)  # 2 nodes
        names = [nic.name for nic in w._nics]
        assert names == [
            "nic0:0", "nic0:1", "nic0:2", "nic0:3",
            "nic1:0", "nic1:1", "nic1:2", "nic1:3",
        ]

    def test_single_nic_keeps_legacy_names(self, env):
        w = World(env, 4, JAGUARPF.interconnect, JAGUARPF.node, tasks_per_node=2)
        assert [nic.name for nic in w._nics] == ["nic0", "nic1"]

    def test_more_nics_relieve_congestion(self):
        """Two same-node senders share one NIC but get a rail each at npn=2."""
        def elapsed(npn):
            ic = replace(JAGUARPF.interconnect, nics_per_node=npn)
            env = Environment()
            w = World(env, 4, ic, JAGUARPF.node, tasks_per_node=2)

            def sender(rank, peer):
                comm = w.comm(rank)
                req = yield from comm.isend(peer, tag=1, nbytes=RENDEZVOUS_BYTES)
                yield from comm.wait(req)

            def receiver(rank, peer):
                comm = w.comm(rank)
                req = yield from comm.irecv(peer, tag=1, nbytes=RENDEZVOUS_BYTES)
                yield from comm.wait(req)

            # both node-0 ranks send cross-node concurrently
            env.process(sender(0, 2))
            env.process(sender(1, 3))
            env.process(receiver(2, 0))
            env.process(receiver(3, 1))
            env.run()
            return env.now

        # wire-dominated rendezvous transfers: a private rail is strictly
        # faster than sharing the node's single NIC
        assert elapsed(2) < elapsed(1)

    def test_mirror_divides_nic_share(self):
        from types import SimpleNamespace

        xfer = SimpleNamespace(local=False, tag=1)
        ic = replace(YONA.interconnect, nics_per_node=2)
        base = MirrorProfile(
            interconnect=YONA.interconnect, node=YONA.node, nranks=8,
            tasks_per_node=4,
        )
        multi = MirrorProfile(interconnect=ic, node=YONA.node, nranks=8,
                              tasks_per_node=4)
        env1, env2 = Environment(), Environment()
        c1 = MirrorComm(env1, base)
        c2 = MirrorComm(env2, multi)
        # halving the contenders per rail raises the per-rank wire rate
        assert c2._wire_rate(xfer) > c1._wire_rate(xfer)
