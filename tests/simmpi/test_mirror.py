"""Tests for the mirror backend and its cross-validation against the full one."""

import pytest

from repro.core.config import RunConfig
from repro.core.runner import run
from repro.decomp.partition import Decomposition
from repro.des import Environment
from repro.machines import JAGUARPF, HOPPER
from repro.simmpi import MirrorComm, MirrorProfile, halo_tag


def make_comm(ntasks=64, tasks_per_node=4):
    env = Environment()
    d = Decomposition(ntasks, (420, 420, 420))
    profile = MirrorProfile.for_decomposition(JAGUARPF, d, tasks_per_node)
    return env, MirrorComm(env, profile), profile


class TestProfile:
    def test_onnode_x_neighbors(self):
        _, _, prof = make_comm(64, 4)  # grid (4,4,4); 4 x-ranks per node
        assert not prof.is_offnode(halo_tag(0, -1))
        assert prof.is_offnode(halo_tag(1, -1))
        assert prof.is_offnode(halo_tag(2, 1))

    def test_nic_share_counts_concurrent_senders(self):
        _, _, prof = make_comm(64, 4)
        # all 4 node ranks send both y sides -> 8 concurrent transfers
        assert prof.nic_share(halo_tag(1, -1)) == 8.0

    def test_single_task_per_node_all_offnode(self):
        _, _, prof = make_comm(64, 1)
        assert all(prof.is_offnode(halo_tag(d, s)) for d in range(3) for s in (-1, 1))

    def test_representative_is_comm_heaviest(self):
        _, _, prof = make_comm(64, 4)
        assert 0 <= prof.representative_rank < 4


class TestMirrorComm:
    def test_payload_rejected(self):
        env, comm, _ = make_comm()

        def prog():
            yield from comm.isend(1, halo_tag(0, -1), 100, payload=[1])

        env.process(prog())
        with pytest.raises(ValueError, match="payload"):
            env.run()

    def test_exchange_completes(self):
        env, comm, _ = make_comm()

        def prog():
            t = halo_tag(1, -1)
            rreq = yield from comm.irecv(7, t, 50_000)
            sreq = yield from comm.isend(8, t, 50_000)
            yield from comm.wait(rreq)
            yield from comm.wait(sreq)
            return env.now

        p = env.process(prog())
        assert env.run(until=p) > 0

    def test_repeated_steps_fifo_pairing(self):
        """Multiple steps reuse the same tags without cross-talk."""
        env, comm, _ = make_comm()
        times = []

        def prog():
            t = halo_tag(2, 1)
            for _ in range(4):
                rreq = yield from comm.irecv(7, t, 100_000)
                sreq = yield from comm.isend(8, t, 100_000)
                yield from comm.wait(rreq)
                yield from comm.wait(sreq)
                times.append(env.now)

        env.process(prog())
        env.run()
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d == pytest.approx(deltas[0], rel=1e-6) for d in deltas)

    def test_onnode_cheaper_than_offnode(self):
        env, comm, prof = make_comm(64, 4)
        durations = {}

        def prog():
            for name, tag in (("on", halo_tag(0, -1)), ("off", halo_tag(1, -1))):
                t0 = env.now
                rreq = yield from comm.irecv(7, tag, 200_000)
                sreq = yield from comm.isend(8, tag, 200_000)
                yield from comm.wait(rreq)
                yield from comm.wait(sreq)
                durations[name] = env.now - t0

        env.process(prog())
        env.run()
        assert durations["on"] < durations["off"]

    def test_barrier_and_allreduce_cost_scale_with_ranks(self):
        def barrier_time(ntasks):
            env, comm, _ = make_comm(ntasks, 4)

            def prog():
                yield from comm.barrier()
                return env.now

            return env.run(until=env.process(prog()))

        assert barrier_time(4096) > barrier_time(8)

    def test_allreduce_returns_own_value(self):
        env, comm, _ = make_comm()

        def prog():
            v = yield from comm.allreduce_max(3.5)
            return v

        assert env.run(until=env.process(prog())) == 3.5


class TestCrossValidation:
    """Mirror per-step times must track the full backend."""

    @pytest.mark.parametrize(
        "machine,cores,threads",
        [
            (JAGUARPF, 48, 6),
            (JAGUARPF, 96, 12),
            (HOPPER, 96, 12),
        ],
    )
    @pytest.mark.parametrize("impl", ["bulk", "nonblocking", "bulk_direct"])
    def test_mirror_vs_full(self, machine, cores, threads, impl):
        common = dict(
            machine=machine, implementation=impl, cores=cores,
            threads_per_task=threads, steps=2,
        )
        t_full = run(RunConfig(network="full", **common)).seconds_per_step
        t_mirror = run(RunConfig(network="mirror", **common)).seconds_per_step
        # The mirror models NIC contention statically and takes the
        # worst-case rank, so it may sit above the ensemble average; it must
        # stay within a tight band of the full simulation.
        assert t_mirror == pytest.approx(t_full, rel=0.30)
