"""Tests for the message-passing collective algorithms."""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment
from repro.machines import JAGUARPF
from repro.simmpi.collectives import (
    allreduce,
    broadcast,
    gather_to_root,
    reduce_to_root,
)
from repro.simmpi.world import World


def run_collective(nranks, program_factory, tasks_per_node=4):
    env = Environment()
    world = World(env, nranks, JAGUARPF.interconnect, JAGUARPF.node, tasks_per_node)
    results = {}

    def main(rank):
        comm = world.comm(rank)
        results[rank] = yield from program_factory(comm, rank)

    for r in range(nranks):
        env.process(main(r))
    env.run()
    return results, env.now


class TestBroadcast:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 7, 8, 13])
    @pytest.mark.parametrize("root", [0, 1])
    def test_all_ranks_get_root_value(self, nranks, root):
        if root >= nranks:
            pytest.skip("root out of range")

        def prog(comm, rank):
            return (yield from broadcast(comm, rank * 10 if rank == root else None,
                                         root=root))

        results, _ = run_collective(nranks, prog)
        assert all(v == root * 10 for v in results.values())

    def test_log_depth_timing(self):
        def prog(comm, rank):
            return (yield from broadcast(comm, 42 if rank == 0 else None))

        _, t8 = run_collective(8, prog)
        _, t64 = run_collective(64, prog)
        # binomial tree: 3 vs 6 rounds -> roughly 2x, certainly not 8x
        assert t64 < 4 * t8


class TestReduce:
    @pytest.mark.parametrize("nranks", [1, 2, 5, 8, 11])
    def test_sum_to_root(self, nranks):
        def prog(comm, rank):
            return (yield from reduce_to_root(comm, rank + 1, operator.add))

        results, _ = run_collective(nranks, prog)
        assert results[0] == nranks * (nranks + 1) // 2
        assert all(v is None for r, v in results.items() if r != 0)

    def test_max(self):
        def prog(comm, rank):
            return (yield from reduce_to_root(comm, float(rank % 5), max))

        results, _ = run_collective(9, prog)
        assert results[0] == 4.0


class TestAllreduce:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8, 16])
    def test_recursive_doubling_powers_of_two(self, nranks):
        def prog(comm, rank):
            return (yield from allreduce(comm, rank + 1, operator.add))

        results, _ = run_collective(nranks, prog)
        expected = nranks * (nranks + 1) // 2
        assert all(v == expected for v in results.values())

    @pytest.mark.parametrize("nranks", [3, 5, 6, 7, 12])
    def test_non_power_of_two(self, nranks):
        def prog(comm, rank):
            return (yield from allreduce(comm, rank + 1, operator.add))

        results, _ = run_collective(nranks, prog)
        expected = nranks * (nranks + 1) // 2
        assert all(v == expected for v in results.values())

    @given(values=st.lists(st.integers(-100, 100), min_size=2, max_size=9))
    @settings(max_examples=15, deadline=None)
    def test_property_max_allreduce(self, values):
        def prog(comm, rank):
            return (yield from allreduce(comm, values[rank], max))

        results, _ = run_collective(len(values), prog)
        assert all(v == max(values) for v in results.values())

    def test_matches_builtin_shortcut(self):
        """The algorithmic allreduce agrees with the analytic-cost one."""
        def prog(comm, rank):
            real = yield from allreduce(comm, float(rank), max)
            magic = yield from comm.allreduce_max(float(rank))
            return (real, magic)

        results, _ = run_collective(8, prog)
        for real, magic in results.values():
            assert real == magic == 7.0


class TestGather:
    @pytest.mark.parametrize("nranks", [1, 3, 8])
    def test_rank_order(self, nranks):
        def prog(comm, rank):
            return (yield from gather_to_root(comm, rank * rank))

        results, _ = run_collective(nranks, prog)
        assert results[0] == [r * r for r in range(nranks)]


class TestGlobalNormUseCase:
    def test_distributed_error_norm(self):
        """The paper's verification: a global norm from per-rank pieces."""
        import numpy as np

        local_sq = {0: 1.0, 1: 4.0, 2: 9.0, 3: 2.0}

        def prog(comm, rank):
            total = yield from allreduce(comm, local_sq[rank], operator.add)
            return np.sqrt(total)

        results, _ = run_collective(4, prog)
        assert all(v == pytest.approx(4.0) for v in results.values())
