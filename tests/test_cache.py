"""Tests for the content-addressed run-result cache."""

import json
import os

import pytest

from repro import cache as run_cache
from repro.cache import MODEL_VERSION, RunCache, cacheable, config_key
from repro.core.config import RunConfig
from repro.core.runner import run
from repro.machines import JAGUARPF, YONA


@pytest.fixture
def cfg():
    return RunConfig(machine=JAGUARPF, implementation="bulk", cores=24,
                     threads_per_task=6, steps=2)


@pytest.fixture
def cache(tmp_path):
    c = run_cache.configure(str(tmp_path / "cache"))
    yield c
    run_cache.configure(None)


class TestKey:
    def test_stable_across_equal_configs(self, cfg):
        assert config_key(cfg) == config_key(cfg.with_())

    def test_differs_across_any_field(self, cfg):
        assert config_key(cfg) != config_key(cfg.with_(steps=3))
        assert config_key(cfg) != config_key(cfg.with_(threads_per_task=12))
        assert config_key(cfg) != config_key(cfg.with_(domain=(64, 64, 64)))

    def test_machine_spec_is_part_of_the_key(self, cfg):
        import dataclasses

        warped_node = dataclasses.replace(
            cfg.machine.node, memcpy_bandwidth_gbs=cfg.machine.node.memcpy_bandwidth_gbs * 2
        )
        warped = dataclasses.replace(cfg.machine, node=warped_node)
        assert config_key(cfg) != config_key(cfg.with_(machine=warped))

    def test_model_version_is_part_of_the_key(self, cfg):
        assert config_key(cfg) != config_key(cfg, model_version="other-version")

    def test_functional_and_trace_runs_are_not_cacheable(self, cfg):
        assert cacheable(cfg)
        assert not cacheable(cfg.with_(trace=True))
        assert not cacheable(
            cfg.with_(functional=True, network="full", domain=(12, 12, 12))
        )


class TestRoundTrip:
    def test_hit_is_bit_identical(self, cfg, cache):
        cold = run(cfg)
        assert cache.stats() == {"hits": 0, "misses": 1, "stores": 1}
        warm = run(cfg)
        assert cache.stats()["hits"] == 1
        assert warm.elapsed_s == cold.elapsed_s  # exact, not approx
        assert warm.phases == cold.phases
        assert warm.comm_stats == cold.comm_stats
        assert warm.config == cold.config

    def test_gpu_run_round_trips(self, cache):
        cfg = RunConfig(machine=YONA, implementation="hybrid_overlap",
                        cores=12, threads_per_task=6, box_thickness=2)
        cold = run(cfg)
        warm = run(cfg)
        assert cache.stats()["hits"] == 1
        assert warm.elapsed_s == cold.elapsed_s
        assert warm.gflops == cold.gflops

    def test_uncacheable_runs_bypass(self, cfg, cache):
        traced = cfg.with_(trace=True)
        r = run(traced)
        assert r.tracer is not None
        assert cache.stats() == {"hits": 0, "misses": 0, "stores": 0}
        r2 = run(traced)
        assert r2.tracer is not None  # simulated again, artifacts intact

    def test_no_cache_installed_means_no_files(self, cfg, tmp_path):
        assert run_cache.active_cache() is None
        run(cfg)
        assert list(tmp_path.iterdir()) == []


class TestInvalidation:
    def test_model_version_bump_invalidates(self, cfg, cache, monkeypatch):
        run(cfg)
        assert cache.stats()["stores"] == 1
        monkeypatch.setattr(run_cache, "MODEL_VERSION", "pr999-bumped")
        run(cfg)
        # Different version -> different key -> miss + fresh store.
        assert cache.stats()["misses"] == 2
        assert cache.stats()["stores"] == 2

    def test_prune_removes_foreign_versions(self, cfg, cache):
        run(cfg)
        # Forge an entry from an older model version.
        stale = os.path.join(cache.directory, "deadbeef.json")
        with open(stale, "w") as fh:
            json.dump({"model_version": "pr0-ancient", "elapsed_s": 1.0,
                       "phases": {}, "comm_stats": {}}, fh)
        assert len(cache) == 2
        assert cache.prune() == 1
        assert len(cache) == 1
        assert not os.path.exists(stale)

    def test_corrupt_entry_is_a_miss(self, cfg, cache):
        run(cfg)
        key = config_key(cfg)
        path = cache._path(key)  # sharded location
        with open(path, "w") as fh:
            fh.write("{not json")
        r = run(cfg)  # falls back to simulation, re-stores
        assert r.elapsed_s > 0
        assert cache.stats()["stores"] == 2
        with open(path) as fh:
            assert json.load(fh)["model_version"] == MODEL_VERSION

    def test_wrong_version_payload_is_a_miss(self, cfg, cache):
        run(cfg)
        key = config_key(cfg)
        path = cache._path(key)  # sharded location
        with open(path) as fh:
            payload = json.load(fh)
        payload["model_version"] = "pr0-forged"
        with open(path, "w") as fh:
            json.dump(payload, fh)
        run(cfg)
        assert cache.stats()["hits"] == 0


class TestExperimentIntegration:
    def test_warm_regeneration_is_identical_and_hits(self, tmp_path):
        from repro.experiments import run_experiment

        run_cache.configure(str(tmp_path / "c"))
        try:
            cold = run_experiment("sec5e", fast=True)
            stats_cold = run_cache.stats()
            assert stats_cold["hits"] == 0 and stats_cold["stores"] > 0
            run_cache.reset_stats()
            warm = run_experiment("sec5e", fast=True)
            stats_warm = run_cache.stats()
            assert stats_warm["hits"] > 0 and stats_warm["stores"] == 0
            assert cold.rows == warm.rows
            assert cold.series == warm.series
        finally:
            run_cache.configure(None)

    def test_cross_experiment_sharing(self, tmp_path):
        """Configs shared between experiments hit on the second figure."""
        from repro.experiments import run_experiment

        run_cache.configure(str(tmp_path / "c"))
        try:
            run_experiment("fig9", fast=True)
            run_cache.reset_stats()
            run_experiment("fig11", fast=True)  # Lens again: shared configs
            assert run_cache.stats()["hits"] > 0
        finally:
            run_cache.configure(None)

    def test_run_experiments_parallel_uses_cache(self, tmp_path):
        from repro.experiments import run_experiments

        d = str(tmp_path / "c")
        a = run_experiments(["fig9", "sec5e"], fast=True, jobs=2, cache_dir=d)
        warm_stats_before = run_cache.stats()
        assert warm_stats_before["stores"] > 0  # merged from workers
        b = run_experiments(["fig9", "sec5e"], fast=True, jobs=2, cache_dir=d)
        assert run_cache.stats()["hits"] > warm_stats_before["hits"]
        assert [r.rows for r in a] == [r.rows for r in b]
        run_cache.configure(None)


class TestCanonicalErrors:
    def test_type_error_names_the_field_path(self):
        from repro.cache import _canonical

        class Opaque:
            pass

        with pytest.raises(TypeError) as exc:
            _canonical({"outer": [1, {"inner": Opaque()}]})
        msg = str(exc.value)
        assert "Opaque" in msg
        assert "config['outer'][1]['inner']" in msg

    def test_dataclass_field_in_path(self):
        import dataclasses

        from repro.cache import _canonical

        @dataclasses.dataclass
        class Holder:
            payload: object

        with pytest.raises(TypeError) as exc:
            _canonical(Holder(payload=object()))
        assert "config.payload" in str(exc.value)


class TestCorruptEntries:
    def _entry_path(self, cache, cfg):
        return cache._path(config_key(cfg))

    def test_truncated_json_is_a_miss(self, cfg, cache):
        run(cfg)  # store
        path = self._entry_path(cache, cfg)
        blob = open(path).read()
        with open(path, "w") as fh:
            fh.write(blob[: len(blob) // 2])  # torn write
        run_cache.reset_stats()
        result = run(cfg)  # must re-simulate, not crash
        assert cache.stats()["misses"] == 1
        assert cache.stats()["stores"] == 1  # rewritten
        assert result.elapsed_s > 0

    def test_garbage_bytes_are_a_miss(self, cfg, cache):
        run(cfg)
        path = self._entry_path(cache, cfg)
        with open(path, "wb") as fh:
            fh.write(b"\x00\xff\x00 not json")
        run_cache.reset_stats()
        assert run(cfg).elapsed_s > 0
        assert cache.stats()["misses"] == 1

    def test_wrong_shape_json_is_a_miss(self, cfg, cache):
        run(cfg)
        path = self._entry_path(cache, cfg)
        for payload in (
            [1, 2, 3],  # not a dict
            {"model_version": MODEL_VERSION},  # missing fields
            {"model_version": MODEL_VERSION, "elapsed_s": "NaN?",
             "phases": 7, "comm_stats": {}},  # phases not a mapping
        ):
            with open(path, "w") as fh:
                json.dump(payload, fh)
            run_cache.reset_stats()
            assert run(cfg).elapsed_s > 0
            assert cache.stats()["misses"] == 1

    def test_entry_matching_baseline_still_hits(self, cfg, cache):
        cold = run(cfg)
        run_cache.reset_stats()
        warm = run(cfg)
        assert cache.stats()["hits"] == 1
        assert warm.elapsed_s == cold.elapsed_s


class TestShardedLayout:
    def test_entries_land_in_prefix_shards(self, cfg, cache):
        run(cfg)
        key = config_key(cfg)
        shard = os.path.join(cache.directory, key[:2])
        assert os.path.isdir(shard)
        assert os.path.exists(os.path.join(shard, f"{key}.json"))
        # Nothing at the old flat location.
        assert not os.path.exists(os.path.join(cache.directory, f"{key}.json"))

    def test_len_counts_across_shards(self, cfg, cache):
        run(cfg)
        run(cfg.with_(steps=3))
        run(cfg.with_(steps=4))
        assert len(cache) == 3

    def test_v1_flat_layout_still_readable(self, cfg, tmp_path):
        """A pre-shard cache directory is a warm cache, not an empty one."""
        d = str(tmp_path / "c")
        # Populate through the current layout, then flatten to v1 by hand.
        c1 = run_cache.configure(d)
        cold = run(cfg)
        key = config_key(cfg)
        os.replace(c1._path(key), os.path.join(d, f"{key}.json"))
        os.rmdir(os.path.dirname(c1._path(key)))
        # A fresh handle on the flat directory must hit, bit-identically.
        c2 = run_cache.configure(d)
        assert len(c2) == 1
        warm = run(cfg)
        assert c2.stats()["hits"] == 1
        assert warm.elapsed_s == cold.elapsed_s
        assert warm.phases == cold.phases
        run_cache.configure(None)

    def test_v1_entry_migrates_into_shard_on_hit(self, cfg, tmp_path):
        d = str(tmp_path / "c")
        c1 = run_cache.configure(d)
        run(cfg)
        key = config_key(cfg)
        flat = os.path.join(d, f"{key}.json")
        os.replace(c1._path(key), flat)
        c2 = run_cache.configure(d)
        assert run(cfg).elapsed_s > 0
        assert c2.stats()["hits"] == 1
        assert not os.path.exists(flat), "hit should migrate the v1 entry"
        assert os.path.exists(c2._path(key))
        run_cache.configure(None)

    def test_prune_covers_both_layouts(self, cfg, cache):
        run(cfg)  # sharded, current version
        flat_stale = os.path.join(cache.directory, "deadbeef.json")
        with open(flat_stale, "w") as fh:
            json.dump({"model_version": "pr0-ancient"}, fh)
        sharded_stale = os.path.join(cache.directory, "ab")
        os.makedirs(sharded_stale, exist_ok=True)
        with open(os.path.join(sharded_stale, "ab123.json"), "w") as fh:
            json.dump({"model_version": "pr0-ancient"}, fh)
        assert len(cache) == 3
        assert cache.prune() == 2
        assert len(cache) == 1

    def test_probe_keys_counts_existence_without_counters(self, cfg, cache):
        run(cfg)
        key = config_key(cfg)
        run_cache.reset_stats()
        assert cache.probe_keys([key, "0" * 64]) == 1
        assert cache.stats() == {"hits": 0, "misses": 0, "stores": 0}


class TestHalfMigratedEntries:
    """A key present in BOTH layouts is one entry, not two.

    A crash between the shard copy and the flat unlink of the v1
    migration leaves the same key in both places.  The walk used to
    report it twice (``len``/``stats``) and ``prune`` removed only one
    copy of a stale pair; now entries are deduplicated by key — the
    shard copy is authoritative — and prune retires a stale key's files
    in both layouts at once.
    """

    def _duplicate_into_flat(self, cache, cfg):
        """Forge the half-migrated state: shard copy + flat copy."""
        key = config_key(cfg)
        sharded = cache._path(key)
        flat = os.path.join(cache.directory, f"{key}.json")
        with open(sharded) as src, open(flat, "w") as dst:
            dst.write(src.read())
        return key, sharded, flat

    def test_duplicated_key_counts_once(self, cfg, cache):
        run(cfg)
        self._duplicate_into_flat(cache, cfg)
        assert len(cache) == 1  # was 2: both layout walks reported it

    def test_prune_keeps_current_version_but_drops_the_flat_copy(
        self, cfg, cache
    ):
        run(cfg)
        key, sharded, flat = self._duplicate_into_flat(cache, cfg)
        assert cache.prune() == 0  # current version: nothing stale
        assert os.path.exists(sharded)
        assert not os.path.exists(flat)  # housekeeping: duplicate gone
        run_cache.reset_stats()
        run(cfg)
        assert cache.stats()["hits"] == 1

    def test_prune_removes_both_copies_of_a_stale_key(self, cfg, cache):
        run(cfg)
        key, sharded, flat = self._duplicate_into_flat(cache, cfg)
        for path in (sharded, flat):
            with open(path) as fh:
                payload = json.load(fh)
            payload["model_version"] = "pr0-ancient"
            with open(path, "w") as fh:
                json.dump(payload, fh)
        assert cache.prune() == 1  # one key retired, not two
        assert not os.path.exists(sharded)  # was: only one copy removed
        assert not os.path.exists(flat)
        assert len(cache) == 0


class TestWorkloadKeys:
    """The workload axis vs the cache key.

    At the default workload the key must equal the pre-workload-layer
    key bit for bit (``_KEY_OMIT_DEFAULTS``): the four pinned digests
    below were computed on the pre-refactor tree.
    """

    # (config kwargs beyond machine, expected sha256) — machines by name.
    PINS = [
        (dict(machine="jaguarpf", implementation="bulk", cores=1536,
              threads_per_task=6),
         "0a81d49b9427fde1af567a036720b763ed1911e1731700e275ca587e832cef35"),
        (dict(machine="yona", implementation="hybrid_overlap", cores=12,
              threads_per_task=6, box_thickness=3),
         "762b633fc45d660d804c12a3b1c675e3964b0baa8454c0f679d96783f02ee51a"),
        (dict(machine="jaguarpf", implementation="nonblocking", cores=384,
              threads_per_task=1, seed=11),
         "f600e096d8cb30406e097b6626a7d4dde3ba23a8601a87c2ac3dbdeaf9020252"),
        (dict(machine="a100-sxm", implementation="gpu_streams", cores=64,
              threads_per_task=16),
         "5977cf28ed1a8d7b34235f2cfb1e06bfc7674aa27bcee87cfdc623a300e6f8f1"),
    ]

    @pytest.mark.parametrize("kwargs,expect", PINS)
    def test_pre_workload_keys_unchanged(self, kwargs, expect):
        from repro.machines import get_machine

        kwargs = dict(kwargs, machine=get_machine(kwargs["machine"]))
        assert config_key(RunConfig(**kwargs)) == expect

    def test_explicit_default_workload_hashes_identically(self, cfg):
        assert config_key(cfg) == config_key(
            cfg.with_(workload="advection", workload_params=())
        )

    def test_non_default_workload_enters_the_key(self, cfg):
        spmv = cfg.with_(workload="spmv")
        assert config_key(spmv) != config_key(cfg)
        assert config_key(spmv) != config_key(
            spmv.with_(workload_params=(("rows", 1 << 16),))
        )

    def test_spmv_runs_round_trip(self, cache):
        cfg = RunConfig(machine=JAGUARPF, implementation="nonblocking",
                        cores=24, threads_per_task=6, steps=2,
                        workload="spmv",
                        workload_params=(("rows", 1 << 15),))
        cold = run(cfg)
        warm = run(cfg)
        assert cache.stats()["hits"] == 1
        assert warm.elapsed_s == cold.elapsed_s
        assert warm.phases == cold.phases


class TestKeyMemoization:
    def test_key_memoized_on_the_instance(self, cfg):
        k1 = config_key(cfg)
        memo = cfg.__dict__.get("_key_memo")
        assert memo == (MODEL_VERSION, k1)
        assert config_key(cfg) is memo[1]  # returned without rehashing

    def test_with_builds_a_fresh_memo(self, cfg):
        config_key(cfg)
        derived = cfg.with_(steps=cfg.steps + 1)
        assert "_key_memo" not in derived.__dict__
        assert config_key(derived) != config_key(cfg)

    def test_model_version_override_bypasses_memo(self, cfg):
        k_default = config_key(cfg)
        k_other = config_key(cfg, model_version="other")
        assert k_other != k_default
        # And the default version still resolves correctly afterwards.
        assert config_key(cfg) == k_default

    def test_machine_canonical_memoized_at_catalog_load(self):
        # warm_machine_digests ran at repro.machines import, so every
        # registry spec already carries its canonical form.
        from repro.machines import MACHINES

        for spec in MACHINES.values():
            assert "_canonical_memo" in spec.__dict__

    def test_memo_does_not_leak_into_equality_or_repr(self, cfg):
        config_key(cfg)
        assert cfg == cfg.with_()
        assert "_key_memo" not in repr(cfg)


class TestSeedNoiseKeys:
    def test_noiseless_key_ignores_new_fields(self, cfg):
        # seed=None must hash exactly like the pre-perturbation config so
        # existing cache entries stay addressable.
        canon_key = config_key(cfg)
        assert canon_key == config_key(cfg.with_(seed=None, noise=None))

    def test_seed_and_noise_enter_the_key(self, cfg):
        from repro.perturb import NoiseSpec

        spec = NoiseSpec.preset("medium")
        k0 = config_key(cfg)
        k1 = config_key(cfg.with_(seed=1, noise=spec))
        k2 = config_key(cfg.with_(seed=2, noise=spec))
        k3 = config_key(cfg.with_(seed=1, noise=spec.scaled(0.5)))
        assert len({k0, k1, k2, k3}) == 4

    def test_seeded_runs_cache_and_replay_bit_identically(self, cfg, cache):
        from repro.perturb import NoiseSpec

        noisy = cfg.with_(seed=7, noise=NoiseSpec.preset("medium"))
        cold = run(noisy)
        warm = run(noisy)
        assert cache.stats()["hits"] == 1
        assert warm.elapsed_s == cold.elapsed_s
        assert warm.phases == cold.phases
