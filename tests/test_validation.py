"""Tests for the high-level validation module."""

import pytest

from repro.machines import JAGUARPF, YONA
from repro.validation import validate_implementation


class TestValidateImplementation:
    @pytest.mark.parametrize("key", ["bulk", "hybrid_overlap"])
    def test_oracles_pass(self, key):
        report = validate_implementation(key)
        assert report.passed
        assert report.bit_exact_max_diff == 0.0
        assert report.shift_max_error < 1e-12
        assert report.analytic_norms["linf"] < 0.1

    def test_machine_autoselection(self):
        assert validate_implementation("single").machine == "JaguarPF"
        assert validate_implementation("gpu_resident").machine == "Yona"

    def test_explicit_machine(self):
        report = validate_implementation("bulk", machine=YONA)
        assert report.machine == "Yona"
        assert report.passed

    def test_report_text(self):
        report = validate_implementation("nonblocking")
        text = report.to_text()
        assert "PASS" in text
        assert "nonblocking" in text

    def test_three_checks(self):
        report = validate_implementation("gpu_streams")
        assert len(report.checks) == 3


class TestCliIntegration:
    def test_validate_command(self, capsys):
        from repro.cli import main

        assert main(["validate", "--impl", "thread_overlap"]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 3

    def test_plot_flag(self, capsys):
        from repro.cli import main

        assert main(["experiment", "fig8", "--fast", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "x=32" in out and "|" in out

    def test_trace_flag(self, capsys):
        from repro.cli import main

        rc = main(["run", "--machine", "yona", "--impl", "hybrid_overlap",
                   "--cores", "12", "--threads", "12", "--thickness", "2",
                   "--trace"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gpu-kernel" in out and "overlapped" in out
