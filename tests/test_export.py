"""Tests for the CSV/JSON exporters."""

import csv
import io
import json

import pytest

from repro.experiments import run_experiment
from repro.experiments.common import ExperimentResult
from repro.export import to_csv, to_json, write_csv, write_json


@pytest.fixture(scope="module")
def result():
    return ExperimentResult(
        exp_id="demo", title="Demo", paper_claim="claim",
        columns=["a", "b"], rows=[[1, 2.5], [3, "x"]],
        series={"s1": {12: 10.0, 24: 20.0}, "s2": {12: 1.0}},
        notes="n",
    )


class TestJson:
    def test_roundtrip(self, result):
        doc = json.loads(to_json(result))
        assert doc["experiment"] == "demo"
        assert doc["rows"] == [[1, 2.5], [3, "x"]]
        assert doc["series"]["s1"]["24"] == 20.0

    def test_write(self, result, tmp_path):
        p = tmp_path / "out.json"
        write_json(result, str(p))
        assert json.loads(p.read_text())["title"] == "Demo"


class TestCsv:
    def test_long_form(self, result):
        rows = list(csv.reader(io.StringIO(to_csv(result))))
        assert rows[0] == ["series", "x", "y"]
        assert ["s1", "12", "10.0"] in rows
        assert len(rows) == 1 + 3

    def test_write(self, result, tmp_path):
        p = tmp_path / "out.csv"
        write_csv(result, str(p))
        assert p.read_text().startswith("series,x,y")

    def test_numeric_abscissae_sort_numerically(self):
        """Regression: rows used to sort as strings (1536 < 24 < 384)."""
        res = ExperimentResult(
            exp_id="d", title="t", paper_claim="c", columns=[], rows=[],
            series={"gf": {1536: 3.0, 24: 1.0, 384: 2.0}},
        )
        rows = list(csv.reader(io.StringIO(to_csv(res))))
        assert [r[1] for r in rows[1:]] == ["24", "384", "1536"]

    def test_mixed_abscissae_fall_back_to_string_order(self):
        res = ExperimentResult(
            exp_id="d", title="t", paper_claim="c", columns=[], rows=[],
            series={"gf": {"x=8": 1.0, 16: 2.0, "x=128": 3.0}},
        )
        rows = list(csv.reader(io.StringIO(to_csv(res))))
        assert [r[1] for r in rows[1:]] == sorted(["x=8", "16", "x=128"], key=str)

    def test_float_abscissae_sort_numerically(self):
        res = ExperimentResult(
            exp_id="d", title="t", paper_claim="c", columns=[], rows=[],
            series={"gf": {10.5: 1.0, 2: 2.0, 100: 3.0}},
        )
        rows = list(csv.reader(io.StringIO(to_csv(res))))
        assert [r[1] for r in rows[1:]] == ["2", "10.5", "100"]


class TestCliIntegration:
    def test_experiment_export_flags(self, tmp_path, capsys):
        from repro.cli import main

        j = tmp_path / "fig8.json"
        c = tmp_path / "fig8.csv"
        rc = main(["experiment", "fig8", "--fast", "--json", str(j),
                   "--csv", str(c)])
        assert rc == 0
        doc = json.loads(j.read_text())
        assert doc["experiment"] == "fig8"
        assert "series,x,y" in c.read_text()

    def test_real_experiment_exports(self, tmp_path):
        res = run_experiment("fig8", fast=True)
        doc = json.loads(to_json(res))
        assert any(k.startswith("x=32") for k in doc["series"])
