"""End-to-end properties of the progress models.

The golden-dump test pins manual-poll (the default on every paper
machine) bit-identically; these tests pin the *ordering* the models must
obey on real runs: a NIC that progresses messages autonomously can only
hide more communication than a library that moves bytes inside calls.
"""

from dataclasses import replace

import pytest

from repro.core.config import RunConfig
from repro.core.runner import run
from repro.machines import A100_SXM, JAGUARPF, YONA
from repro.machines.spec import ProgressModel
from repro.obs.invariants import check_trace

#: (machine, impl, cores) grid: CPU-only nonblocking, hybrid, and the
#: GPU-staging implementations, on full and mirror backends.
GRID = [
    (JAGUARPF, "nonblocking", 4, "full"),
    (JAGUARPF, "nonblocking", 4, "mirror"),
    (YONA, "hybrid_overlap", 4, "full"),
    (YONA, "gpu_streams", 4, "mirror"),
]


def traced(machine, impl, cores, network, model):
    m = replace(
        machine, interconnect=replace(machine.interconnect, progress=model)
    )
    cfg = RunConfig(
        machine=m, implementation=impl, cores=cores, threads_per_task=1,
        domain=(48, 48, 48), steps=2, network=network, trace=True,
    )
    return run(cfg)


@pytest.mark.parametrize("machine,impl,cores,network", GRID)
def test_offload_overlap_fraction_never_below_manual(machine, impl, cores, network):
    manual = traced(machine, impl, cores, network, ProgressModel.MANUAL_POLL)
    offload = traced(machine, impl, cores, network, ProgressModel.HARDWARE_OFFLOAD)
    assert offload.overlap.overlap_fraction >= manual.overlap.overlap_fraction - 1e-12


@pytest.mark.parametrize("machine,impl,cores,network", GRID)
def test_offload_never_slower(machine, impl, cores, network):
    manual = traced(machine, impl, cores, network, ProgressModel.MANUAL_POLL)
    offload = traced(machine, impl, cores, network, ProgressModel.HARDWARE_OFFLOAD)
    assert offload.elapsed_s <= manual.elapsed_s + 1e-15


@pytest.mark.parametrize("model", list(ProgressModel))
@pytest.mark.parametrize("machine,impl,cores,network", GRID)
def test_invariants_hold_under_every_model(machine, impl, cores, network, model):
    result = traced(machine, impl, cores, network, model)
    assert check_trace(result.tracer) == []
    assert result.tracer.meta["progress"] == model.value


def test_manual_poll_trace_has_no_progress_lane():
    # 24 cores = 2 JaguarPF nodes, so halo traffic crosses the wire
    result = traced(JAGUARPF, "nonblocking", 24, "full", ProgressModel.MANUAL_POLL)
    lanes = {lane for _, lane in result.tracer.lane_keys()}
    assert "progress" not in lanes


def test_offload_trace_moves_rendezvous_to_progress_lane():
    result = traced(
        JAGUARPF, "nonblocking", 24, "full", ProgressModel.HARDWARE_OFFLOAD
    )
    lanes = {lane for _, lane in result.tracer.lane_keys()}
    assert "progress" in lanes


def test_a100_run_passes_invariants_with_nvlink_meta():
    cfg = RunConfig(
        machine=A100_SXM, implementation="gpu_streams", cores=8,
        threads_per_task=1, domain=(48, 48, 48), steps=2, network="full",
        trace=True,
    )
    result = run(cfg)
    assert check_trace(result.tracer) == []
    gpus_meta = result.tracer.meta["gpus"]
    assert gpus_meta and all(g["nvlink"] == 1 for g in gpus_meta.values())


def test_progress_thread_taxes_host_compute():
    """Stealing a core slice for the progress thread slows compute-bound
    steps; the tax only applies when an MPI comm is attached."""
    manual = traced(JAGUARPF, "nonblocking", 4, "full", ProgressModel.MANUAL_POLL)
    thread = traced(
        JAGUARPF, "nonblocking", 4, "full", ProgressModel.PROGRESS_THREAD
    )
    manual_host = manual.tracer.busy_time("host")
    thread_host = thread.tracer.busy_time("host")
    assert thread_host > manual_host


def test_single_rank_pays_no_progress_tax():
    """The 'single' implementation has no comm; no thread, no tax."""
    def elapsed(model):
        m = replace(
            JAGUARPF,
            interconnect=replace(JAGUARPF.interconnect, progress=model),
        )
        cfg = RunConfig(
            machine=m, implementation="single", cores=1, threads_per_task=1,
            domain=(48, 48, 48), steps=2, network="full",
        )
        return run(cfg).elapsed_s

    assert elapsed(ProgressModel.PROGRESS_THREAD) == elapsed(
        ProgressModel.MANUAL_POLL
    )
