"""Shape tests for the extension experiments (convergence, future, weak)."""

import pytest

from repro.experiments import run_experiment


class TestConvergence:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("convergence")

    def test_second_order(self, result):
        order = next(r[2] for r in result.rows if r[0] == "fitted order")
        assert 1.7 < order < 2.3

    def test_errors_shrink_with_resolution(self, result):
        errs = result.series["l2_error"]
        ns = sorted(errs)
        for a, b in zip(ns, ns[1:]):
            assert errs[b] < errs[a]

    def test_stability_boundary(self, result):
        g = result.series["amplification"]
        assert g[0.5] <= 1 + 1e-9
        assert g[1.0] <= 1 + 1e-9
        assert g[1.1] > 1 + 1e-6
        assert g[1.25] > g[1.1]


class TestFutureMachines:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("future", fast=True)

    def test_more_gpus_help(self, result):
        g = result.series["gpus_per_node"]
        ks = sorted(g)
        assert g[ks[-1]] > 1.3 * g[ks[0]]

    def test_pcie_speedup_helps_bulk_most(self, result):
        bulk = result.series["pcie_gpu_bulk"]
        hybrid = result.series["pcie_hybrid"]
        fs = sorted(bulk)
        bulk_gain = bulk[fs[-1]] / bulk[fs[0]]
        hybrid_gain = hybrid[fs[-1]] / hybrid[fs[0]]
        # The serialized code gains more from a faster link than the
        # overlap code, which had already hidden its transfers.
        assert bulk_gain > hybrid_gain

    def test_hybrid_stays_ahead(self, result):
        for f, v in result.series["pcie_hybrid"].items():
            assert v > result.series["pcie_gpu_streams"][f]


class TestWeakScaling:
    def test_near_constant_per_core_rate(self):
        res = run_experiment("weak")
        bulk = res.series["bulk"]
        per_core = {c: v / c for c, v in bulk.items()}
        vals = list(per_core.values())
        # Weak scaling holds the per-core rate within a modest band.
        assert max(vals) < 1.5 * min(vals)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("sensitivity")

    def test_mostly_robust(self, result):
        for claim, frac in result.series["robustness"].items():
            assert frac >= 0.85

    def test_all_constants_covered_both_ways(self, result):
        from repro.experiments.sensitivity import PERTURBED

        assert len(result.rows) == 2 * len(PERTURBED)

    def test_ladder_fully_robust(self, result):
        """The §V-E ordering survives every +/-20% perturbation."""
        assert result.series["robustness"]["ladder"] == 1.0


class TestText5BThreads:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("text5b")

    def test_yona_best_increases_with_cores(self, result):
        yona = [(r[1], int(r[2].split()[0])) for r in result.rows if r[0] == "Yona"]
        yona.sort()
        assert yona[-1][1] > yona[0][1]

    def test_yona_best_in_paper_set(self, result):
        for r in result.rows:
            if r[0] == "Yona":
                assert int(r[2].split()[0]) in (1, 2, 3, 6)

    def test_yona_never_max_threads(self, result):
        for r in result.rows:
            if r[0] == "Yona":
                assert int(r[2].split()[0]) != 12

    def test_lens_spread_is_small(self, result):
        """Paper: 'no clear correlation' — the thread choice barely matters
        on Lens. Among 1-8 threads the model's spread stays within ~12%;
        the 16-thread (4-NUMA-spanning) option trails by design. The
        paper's occasional 16-thread wins are a documented partial
        reproduction (see the experiment docstring)."""
        lens_series = {k: v for k, v in result.series.items()
                       if k.startswith("Lens") and not k.endswith("16 thr")}
        cores = sorted(next(iter(lens_series.values())))
        for c in cores:
            vals = [pts[c] for pts in lens_series.values() if c in pts]
            assert max(vals) < 1.12 * min(vals)


class TestProtocols:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("protocols", fast=True)

    def test_both_protocols_produce_series(self, result):
        assert len(result.series) == 4

    def test_direct_moves_fewer_bytes(self, result):
        msg_row = next(r for r in result.rows if r[0].startswith("bytes"))
        assert msg_row[3] < msg_row[2]  # direct < serialized volume

    def test_message_counts(self, result):
        msg_row = next(r for r in result.rows if r[0].startswith("messages"))
        assert (msg_row[2], msg_row[3]) == (6, 26)


class TestNoiseSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("noise", fast=True)

    def test_zero_scale_reproduces_noiseless_fig3(self, result):
        # The x0 block must be the bit-exact noiseless tuning sweep.
        from repro.machines import JAGUARPF
        from repro.perf.sweep import best_over_threads

        row0 = next(r for r in result.rows if r[0] == "x0")
        cores = row0[1]
        base = best_over_threads(JAGUARPF, "bulk", cores)
        assert row0[2] == base.gflops

    def test_deterministic_regeneration(self, result):
        again = run_experiment("noise", fast=True)
        assert again.rows == result.rows
        assert again.series == result.series
        assert again.notes == result.notes

    def test_crossover_reported_per_scale(self, result):
        assert "last core count where nonblocking >= bulk" in result.notes
        # One crossover entry per jitter scale.
        from repro.experiments.noise_sensitivity import FAST_SCALES

        assert result.notes.count(";") == len(FAST_SCALES) - 1

    def test_rows_cover_all_scales(self, result):
        scales = {r[0] for r in result.rows}
        assert scales == {"x0", "x1", "x4"}

    def test_every_point_replicated_with_stats(self, result):
        # Winner column present whenever both impls produced a mean.
        for row in result.rows:
            if all(isinstance(v, float) for v in row[2:4]):
                assert row[4] in ("bulk", "nonblocking")
