"""Tests for the table experiments and the experiment plumbing."""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentResult, run_experiment


class TestRegistry:
    def test_every_table_and_figure_covered(self):
        expected = {"table1", "table2", "fig2"} | {f"fig{i}" for i in range(3, 13)}
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table1")

    def test_27_rows(self, result):
        assert len(result.rows) == 27

    def test_transcription_agrees(self, result):
        for _, _, diff in result.rows:
            assert abs(diff) < 1e-14

    def test_consistency_sum(self, result):
        assert result.series["consistency_sum"][0] == pytest.approx(1.0)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table2")

    def test_four_machines(self, result):
        assert result.columns == ["property", "JaguarPF", "Hopper II", "Lens", "Yona"]

    def test_published_values(self, result):
        rows = {r[0]: r[1:] for r in result.rows}
        assert rows["Compute nodes"] == [18688, 6392, 31, 16]
        assert rows["Opteron clock (GHz)"] == [2.6, 2.1, 2.3, 2.6]
        assert rows["NVIDIA Tesla GPU"] == ["-", "-", "Tesla C1060", "Tesla C2050"]
        assert rows["GPU memory (GB)"] == ["-", "-", 4, 3]


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig2")

    def test_both_languages_reported(self, result):
        assert "fortran" in result.series and "python" in result.series

    def test_python_complexity_ordering_matches_paper(self, result):
        """Relative complexity holds for this repo's Python too: the
        hybrid-overlap code is the largest implementation module."""
        py = result.series["python"]
        assert py["hybrid_overlap"] == max(py.values())
        assert py["single"] == min(py.values())

    def test_to_text_renders(self, result):
        text = result.to_text()
        assert "860" in text and "215" in text


class TestWeakScalingExtension:
    def test_runs_and_hybrid_wins(self):
        res = run_experiment("weak", fast=True)
        for cores, pts in res.series["hybrid_overlap"].items():
            assert pts > res.series["bulk"][cores]


class TestExperimentResult:
    def test_best_series_at(self):
        r = ExperimentResult(
            exp_id="x", title="t", paper_claim="c",
            columns=["a"], rows=[],
            series={"s1": {1: 5.0}, "s2": {1: 7.0}},
        )
        assert r.best_series_at(1) == "s2"
        with pytest.raises(KeyError):
            r.best_series_at(2)


class TestExperimentResultRobustness:
    """Regression tests for ragged rows and tie-breaking."""

    def _ragged(self):
        return ExperimentResult(
            exp_id="x", title="t", paper_claim="c",
            columns=["a", "bb", "ccc"],
            rows=[[1, 2, 3], [4], [5, 6, 7, 8]],  # short and long rows
        )

    def test_to_text_tolerates_ragged_rows(self):
        text = self._ragged().to_text()  # used to raise IndexError
        lines = text.splitlines()
        assert any("4" in ln for ln in lines)
        assert any("8" in ln for ln in lines)  # extra cell still rendered

    def test_to_text_unchanged_for_well_formed_tables(self):
        r = ExperimentResult(
            exp_id="x", title="t", paper_claim="c",
            columns=["cores", "GF"], rows=[[12, 1.5], [24, 30.25]],
        )
        text = r.to_text()
        assert "cores  GF" in text
        assert "12     1.50" in text
        assert "24     30.25" in text

    def test_to_text_empty_rows(self):
        r = ExperimentResult(
            exp_id="x", title="t", paper_claim="c", columns=["a"], rows=[],
        )
        assert "== x: t" in r.to_text()

    def test_best_series_tie_breaks_by_name(self):
        r = ExperimentResult(
            exp_id="x", title="t", paper_claim="c", columns=[], rows=[],
            series={"zeta": {1: 7.0}, "alpha": {1: 7.0}, "mid": {1: 3.0}},
        )
        assert r.best_series_at(1) == "alpha"
        # Insertion order must not matter.
        r2 = ExperimentResult(
            exp_id="x", title="t", paper_claim="c", columns=[], rows=[],
            series={"alpha": {1: 7.0}, "zeta": {1: 7.0}},
        )
        assert r2.best_series_at(1) == r.best_series_at(1)

    def test_best_series_still_prefers_higher_value(self):
        r = ExperimentResult(
            exp_id="x", title="t", paper_claim="c", columns=[], rows=[],
            series={"alpha": {1: 5.0}, "zeta": {1: 7.0}},
        )
        assert r.best_series_at(1) == "zeta"
