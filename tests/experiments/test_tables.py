"""Tests for the table experiments and the experiment plumbing."""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentResult, run_experiment


class TestRegistry:
    def test_every_table_and_figure_covered(self):
        expected = {"table1", "table2", "fig2"} | {f"fig{i}" for i in range(3, 13)}
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table1")

    def test_27_rows(self, result):
        assert len(result.rows) == 27

    def test_transcription_agrees(self, result):
        for _, _, diff in result.rows:
            assert abs(diff) < 1e-14

    def test_consistency_sum(self, result):
        assert result.series["consistency_sum"][0] == pytest.approx(1.0)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table2")

    def test_four_machines(self, result):
        assert result.columns == ["property", "JaguarPF", "Hopper II", "Lens", "Yona"]

    def test_published_values(self, result):
        rows = {r[0]: r[1:] for r in result.rows}
        assert rows["Compute nodes"] == [18688, 6392, 31, 16]
        assert rows["Opteron clock (GHz)"] == [2.6, 2.1, 2.3, 2.6]
        assert rows["NVIDIA Tesla GPU"] == ["-", "-", "Tesla C1060", "Tesla C2050"]
        assert rows["GPU memory (GB)"] == ["-", "-", 4, 3]


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig2")

    def test_both_languages_reported(self, result):
        assert "fortran" in result.series and "python" in result.series

    def test_python_complexity_ordering_matches_paper(self, result):
        """Relative complexity holds for this repo's Python too: the
        hybrid-overlap code is the largest implementation module."""
        py = result.series["python"]
        assert py["hybrid_overlap"] == max(py.values())
        assert py["single"] == min(py.values())

    def test_to_text_renders(self, result):
        text = result.to_text()
        assert "860" in text and "215" in text


class TestWeakScalingExtension:
    def test_runs_and_hybrid_wins(self):
        res = run_experiment("weak", fast=True)
        for cores, pts in res.series["hybrid_overlap"].items():
            assert pts > res.series["bulk"][cores]


class TestExperimentResult:
    def test_best_series_at(self):
        r = ExperimentResult(
            exp_id="x", title="t", paper_claim="c",
            columns=["a"], rows=[],
            series={"s1": {1: 5.0}, "s2": {1: 7.0}},
        )
        assert r.best_series_at(1) == "s2"
        with pytest.raises(KeyError):
            r.best_series_at(2)
