"""Shape assertions: every qualitative claim of the paper's evaluation.

Each fixture runs one experiment (full sweep — the simulator is fast) and
the tests assert the claims listed in DESIGN.md §4.
"""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig3():
    return run_experiment("fig3")


@pytest.fixture(scope="module")
def fig4():
    return run_experiment("fig4")


@pytest.fixture(scope="module")
def fig5():
    return run_experiment("fig5")


@pytest.fixture(scope="module")
def fig6():
    return run_experiment("fig6")


@pytest.fixture(scope="module")
def fig9():
    return run_experiment("fig9")


@pytest.fixture(scope="module")
def fig10():
    return run_experiment("fig10")


@pytest.fixture(scope="module")
def fig11():
    return run_experiment("fig11")


@pytest.fixture(scope="module")
def fig12():
    return run_experiment("fig12")


class TestFig3JaguarPF:
    def test_nonblocking_wins_somewhere_below_4000(self, fig3):
        s = fig3.series
        assert any(
            s["nonblocking"][c] > s["bulk"][c]
            for c in s["bulk"]
            if c < 4000 and c in s["nonblocking"]
        )

    def test_bulk_wins_at_6000_plus(self, fig3):
        s = fig3.series
        for c in s["bulk"]:
            if c >= 6000:
                assert s["bulk"][c] > s["nonblocking"][c]

    def test_bulk_advantage_grows_with_scale(self, fig3):
        s = fig3.series
        cores = sorted(s["bulk"])
        ratio_top = s["nonblocking"][cores[-1]] / s["bulk"][cores[-1]]
        ratio_mid = s["nonblocking"][cores[3]] / s["bulk"][cores[3]]
        assert ratio_top < ratio_mid

    def test_thread_overlap_consistently_lags(self, fig3):
        s = fig3.series
        for c in s["thread_overlap"]:
            assert s["thread_overlap"][c] < max(s["bulk"][c], s["nonblocking"][c])

    def test_scaling_is_monotonic(self, fig3):
        vals = [fig3.series["bulk"][c] for c in sorted(fig3.series["bulk"])]
        assert vals == sorted(vals)


class TestFig4Hopper:
    def test_crossover_an_order_of_magnitude_higher(self, fig3, fig4):
        def crossover(series):
            cores = sorted(series["bulk"])
            for c in cores:
                if c in series["nonblocking"] and series["nonblocking"][c] > series["bulk"][c]:
                    last_win = c
            wins = [
                c for c in cores
                if c in series["nonblocking"]
                and series["nonblocking"][c] > series["bulk"][c]
            ]
            return max(wins) if wins else 0

        assert crossover(fig4.series) >= 4 * crossover(fig3.series)

    def test_scales_to_49152(self, fig4):
        s = fig4.series["bulk"]
        assert 49152 in s
        assert s[49152] > s[24576]

    def test_thread_overlap_lags(self, fig4):
        s = fig4.series
        for c in s["thread_overlap"]:
            assert s["thread_overlap"][c] < max(s["bulk"][c], s["nonblocking"][c])


class TestFig5Fig6Threads:
    def _winners(self, result):
        out = {}
        for cores in sorted(next(iter(result.series.values()))):
            out[cores] = result.best_series_at(cores)
        return out

    def test_jaguarpf_each_count_best_somewhere(self, fig5):
        winners = set(self._winners(fig5).values())
        assert winners == {"1 thr", "2 thr", "3 thr", "6 thr", "12 thr"} or len(winners) >= 4

    def test_jaguarpf_best_increases_with_cores(self, fig5):
        winners = self._winners(fig5)
        cores = sorted(winners)
        first = int(winners[cores[0]].split()[0])
        last = int(winners[cores[-1]].split()[0])
        assert last > first

    def test_hopper_24_never_best(self, fig6):
        winners = self._winners(fig6)
        assert "24 thr" not in winners.values()

    def test_hopper_large_counts_best_at_scale(self, fig6):
        winners = self._winners(fig6)
        top = max(winners)
        assert int(winners[top].split()[0]) >= 6


class TestFig9Lens:
    def test_hybrid_overlap_best_at_every_count(self, fig9):
        s = fig9.series
        for cores in s["hybrid_overlap"]:
            best = max(
                pts[cores] for key, pts in s.items() if cores in pts
            )
            assert s["hybrid_overlap"][cores] == best

    def test_sum_property_holds_somewhere(self, fig9):
        s = fig9.series
        found = False
        for cores in s["hybrid_overlap"]:
            cpu = max(s[k].get(cores, 0) for k in ("bulk", "nonblocking", "thread_overlap"))
            gpu = max(s[k].get(cores, 0) for k in ("gpu_bulk", "gpu_streams"))
            if s["hybrid_overlap"][cores] > cpu + gpu:
                found = True
        assert found

    def test_cpu_overlap_benefit_small(self, fig9):
        """Paper: 'CPU-only implementations benefit little from overlap'."""
        s = fig9.series
        for cores in s["bulk"]:
            assert s["nonblocking"][cores] < 1.1 * s["bulk"][cores]

    def test_streams_beat_gpu_bulk(self, fig9):
        s = fig9.series
        wins = sum(
            1 for c in s["gpu_streams"] if s["gpu_streams"][c] > s["gpu_bulk"][c]
        )
        assert wins >= len(s["gpu_streams"]) - 1


class TestFig10Yona:
    def test_hybrid_over_4x_cpu_at_full_machine(self, fig10):
        s = fig10.series
        top = max(s["hybrid_overlap"])
        cpu = max(s[k][top] for k in ("bulk", "nonblocking", "thread_overlap"))
        assert s["hybrid_overlap"][top] > 4.0 * cpu

    def test_hybrid_best_everywhere(self, fig10):
        s = fig10.series
        for cores in s["hybrid_overlap"]:
            others = [pts[cores] for k, pts in s.items()
                      if k != "hybrid_overlap" and cores in pts]
            assert s["hybrid_overlap"][cores] > max(others)

    def test_gpu_larger_fraction_than_lens(self, fig9, fig10):
        """Paper: GPUs are a larger share of Yona's power than Lens's."""
        def gpu_to_cpu(result):
            s = result.series
            c = min(s["bulk"])
            return s["hybrid_overlap"][c] / s["bulk"][c]

        assert gpu_to_cpu(fig10) > gpu_to_cpu(fig9)


class TestFig11Fig12Balance:
    def test_lens_thickness_decreases_with_cores(self, fig11):
        rows = fig11.rows  # [cores, best threads, tasks/node, best T, GF]
        first_T = rows[0][3]
        last_T = rows[-1][3]
        assert last_T < first_T

    def test_yona_few_tasks_per_node(self, fig12):
        for row in fig12.rows:
            assert row[2] <= 2  # tasks/node

    def test_yona_thin_box_at_scale(self, fig12):
        top = max(fig12.rows, key=lambda r: r[0])
        assert top[3] <= 2  # veneer

    def test_winning_combos_are_reported_as_series(self, fig12):
        assert len(fig12.series) >= 1
        for name in fig12.series:
            assert name.startswith("thr=")


class TestSec5E:
    def test_all_ratios_within_band(self):
        res = run_experiment("sec5e")
        for _, paper, measured, ratio in res.rows:
            assert 0.75 <= ratio <= 1.25, f"paper {paper} vs measured {measured}"
