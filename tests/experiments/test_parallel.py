"""The parallel experiment driver: pure-function regeneration in a pool."""

import pytest

from repro.experiments import run_experiments
from repro.experiments.common import run_experiment

IDS = ["table1", "table2"]


class TestRunExperiments:
    def test_order_preserved(self):
        results = run_experiments(IDS)
        assert [r.exp_id for r in results] == IDS

    def test_pool_matches_serial(self):
        """Experiments are pure functions of their id: a process pool must
        reproduce the serial results exactly."""
        serial = run_experiments(IDS, jobs=1)
        pooled = run_experiments(IDS, jobs=2)
        for a, b in zip(serial, pooled):
            assert a.exp_id == b.exp_id
            assert a.columns == b.columns
            assert a.rows == b.rows
            assert a.series == b.series

    def test_fast_flag_propagates(self):
        (r,) = run_experiments(["fig2"], fast=True, jobs=1)
        assert r.exp_id == "fig2"
        assert r.rows == run_experiment("fig2", fast=True).rows

    def test_unknown_id_raises_before_dispatch(self):
        with pytest.raises(KeyError):
            run_experiments(["table1", "nope"], jobs=2)

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_experiments(IDS, jobs=0)
