"""Every experiment bit-identical to the committed full-precision dump.

The golden (``golden_dump_fast.json``) is the ``tools/dump_experiments.py
--fast`` output — every row and series value at ``repr`` precision — and
is the contract that engine refactors (the flat event core, the callback
slots before it) change *nothing* observable. Regenerate it only when the
performance model itself changes (``MODEL_VERSION`` bumps)::

    PYTHONPATH=src python tools/dump_experiments.py --fast \
        tests/experiments/golden_dump_fast.json
"""

import json
import os

import pytest

from repro.experiments import EXPERIMENTS, run_experiment

_GOLDEN = os.path.join(os.path.dirname(__file__), "golden_dump_fast.json")

with open(_GOLDEN) as _fh:
    _golden = json.load(_fh)


def test_golden_covers_every_experiment():
    assert sorted(_golden) == sorted(EXPERIMENTS)


@pytest.mark.parametrize("eid", sorted(EXPERIMENTS))
def test_experiment_bit_identical_to_golden(eid):
    r = run_experiment(eid, fast=True)
    want = _golden[eid]
    assert r.columns == want["columns"]
    assert [[repr(v) for v in row] for row in r.rows] == want["rows"]
    assert {
        name: {repr(k): repr(v) for k, v in pts.items()}
        for name, pts in r.series.items()
    } == want["series"]
