"""Peer-to-peer copies: NVLink fast path vs host-staged fallback, and
GPUDirect registration accounting."""

import pytest

from repro.des import Environment, SharedBandwidth
from repro.machines import A100_SXM, YONA
from repro.obs import Tracer
from repro.simgpu.device import Gpu


@pytest.fixture
def env():
    return Environment()


def make_pair(env, spec, linked):
    a = Gpu(env, spec, name="gpuA")
    b = Gpu(env, spec, name="gpuB")
    if linked:
        link = SharedBandwidth(env, spec.nvlink_bandwidth_bps, name="nvlink0")
        a.nvlink = link
        b.nvlink = link
    return a, b


NBYTES = 64 * 1024 * 1024


class TestNvlinkPath:
    def test_nvlink_much_faster_than_staged(self, env):
        a1, b1 = make_pair(env, A100_SXM.gpu, linked=True)
        a1.peer_copy(a1.stream(), b1, NBYTES)
        env.run()
        t_link = env.now

        env2 = Environment()
        a2, b2 = make_pair(env2, A100_SXM.gpu, linked=False)
        a2.peer_copy(a2.stream(), b2, NBYTES)
        env2.run()
        t_staged = env2.now

        # two PCIe hops vs one NVLink hop at ~10x the bandwidth
        assert t_link < t_staged / 4

    def test_nvlink_traced_on_nvlink_lane(self, env):
        a, b = make_pair(env, A100_SXM.gpu, linked=True)
        tracer = Tracer()
        a.tracer = tracer
        a.peer_copy(a.stream(), b, NBYTES)
        env.run()
        events = [ev for ev in tracer.events if ev.lane == "nvlink"]
        assert len(events) == 1
        assert events[0].args["src"] == "gpuA"
        assert events[0].args["dst"] == "gpuB"
        assert events[0].args["nbytes"] == NBYTES

    def test_byte_counter(self, env):
        a, b = make_pair(env, A100_SXM.gpu, linked=True)
        a.peer_copy(a.stream(), b, NBYTES)
        env.run()
        assert a.bytes_p2p == NBYTES
        assert b.bytes_p2p == 0

    def test_action_runs_on_completion(self, env):
        a, b = make_pair(env, A100_SXM.gpu, linked=True)
        seen = []
        a.peer_copy(a.stream(), b, NBYTES, action=lambda: seen.append(env.now))
        env.run()
        assert seen == [env.now]

    def test_different_fabrics_fall_back_to_staging(self, env):
        """Sharing *a* link object is what makes peers NVLink-reachable."""
        a, b = make_pair(env, A100_SXM.gpu, linked=False)
        a.nvlink = SharedBandwidth(env, 1e12, name="nvlink0")
        b.nvlink = SharedBandwidth(env, 1e12, name="nvlink1")  # other node
        tracer = Tracer()
        a.tracer = tracer
        b.tracer = tracer
        a.peer_copy(a.stream(), b, NBYTES)
        env.run()
        assert not [ev for ev in tracer.events if ev.lane == "nvlink"]
        assert [ev for ev in tracer.events if ev.lane == "gpu-copy"]


class TestStagedFallback:
    def test_two_hops_traced(self, env):
        a, b = make_pair(env, YONA.gpu, linked=False)
        tracer = Tracer()
        a.tracer = tracer
        b.tracer = tracer
        b.trace_group = a.trace_group + 1
        a.peer_copy(a.stream(), b, NBYTES)
        env.run()
        copies = [ev for ev in tracer.events if ev.lane == "gpu-copy"]
        assert [(ev.args["dir"], ev.group) for ev in copies] == [
            ("d2h", a.trace_group),
            ("h2d", b.trace_group),
        ]
        # hops are sequential: the H2D starts after the D2H ends
        assert copies[1].start >= copies[0].end

    def test_staged_time_is_two_pcie_hops(self, env):
        a, b = make_pair(env, YONA.gpu, linked=False)
        a.peer_copy(a.stream(), b, NBYTES)
        env.run()
        spec = YONA.gpu
        expected = 2 * (spec.pcie_latency_s + NBYTES / spec.pcie_bandwidth_bps)
        assert env.now == pytest.approx(expected)


class TestValidation:
    def test_self_copy_rejected(self, env):
        a, _ = make_pair(env, YONA.gpu, linked=False)
        with pytest.raises(ValueError):
            a.peer_copy(a.stream(), a, 100)

    def test_negative_bytes_rejected(self, env):
        a, b = make_pair(env, YONA.gpu, linked=False)
        with pytest.raises(ValueError):
            a.peer_copy(a.stream(), b, -1)


class TestRegisteredMemory:
    def test_registered_accounting(self, env):
        gpu = Gpu(env, A100_SXM.gpu)
        r = gpu.memory.allocate("halo", (64, 64), registered=True)
        gpu.memory.allocate("scratch", (64, 64))
        assert r.registered
        assert gpu.memory.registered_bytes == r.nbytes
        gpu.memory.free(r)
        assert gpu.memory.registered_bytes == 0

    def test_default_is_unregistered(self, env):
        gpu = Gpu(env, YONA.gpu)
        arr = gpu.memory.allocate("u", (8, 8, 8))
        assert not arr.registered
