"""Tests for stream ordering, kernel slots, copy engines, and PCIe."""

import pytest

from repro.des import Environment
from repro.machines import LENS, YONA
from repro.simgpu.device import Gpu


@pytest.fixture
def env():
    return Environment()


def run_until_idle(env):
    env.run()
    return env.now


class TestStreamOrdering:
    def test_same_stream_serializes(self, env):
        gpu = Gpu(env, YONA.gpu)
        s = gpu.stream()
        order = []
        gpu.launch_kernel(s, 1e-3, action=lambda: order.append(("k1", env.now)))
        gpu.launch_kernel(s, 2e-3, action=lambda: order.append(("k2", env.now)))
        run_until_idle(env)
        assert order == [("k1", pytest.approx(1e-3)), ("k2", pytest.approx(3e-3))]

    def test_actions_follow_issue_order(self, env):
        gpu = Gpu(env, YONA.gpu)
        s = gpu.stream()
        log = []
        for i in range(5):
            gpu.launch_kernel(s, 1e-4, action=lambda i=i: log.append(i))
        run_until_idle(env)
        assert log == [0, 1, 2, 3, 4]

    def test_zero_duration_kernel(self, env):
        gpu = Gpu(env, YONA.gpu)
        s = gpu.stream()
        ev = gpu.launch_kernel(s, 0.0)
        run_until_idle(env)
        assert ev.processed

    def test_negative_duration_rejected(self, env):
        gpu = Gpu(env, YONA.gpu)
        with pytest.raises(ValueError):
            gpu.launch_kernel(gpu.stream(), -1.0)


class TestKernelSlot:
    def test_kernels_from_different_streams_serialize(self, env):
        """Neither device overlaps kernels (full-occupancy workloads)."""
        gpu = Gpu(env, YONA.gpu)
        s1, s2 = gpu.stream(), gpu.stream()
        gpu.launch_kernel(s1, 5e-3)
        gpu.launch_kernel(s2, 5e-3)
        assert run_until_idle(env) == pytest.approx(10e-3)

    def test_copy_overlaps_kernel(self, env):
        """A copy engine moves data while a kernel runs."""
        gpu = Gpu(env, YONA.gpu)
        s1, s2 = gpu.stream(), gpu.stream()
        gpu.launch_kernel(s1, 5e-3)
        nbytes = int(4e-3 * YONA.gpu.pcie_bandwidth_bps)  # ~4 ms transfer
        gpu.memcpy_h2d(s2, nbytes)
        total = run_until_idle(env)
        assert total == pytest.approx(5e-3, rel=0.05)  # hidden under the kernel


class TestCopyEngines:
    def test_c1060_single_engine_serializes_copies(self, env):
        gpu = Gpu(env, LENS.gpu)
        s1, s2 = gpu.stream(), gpu.stream()
        nbytes = int(2e-3 * LENS.gpu.pcie_bandwidth_bps)
        gpu.memcpy_h2d(s1, nbytes)
        gpu.memcpy_d2h(s2, nbytes)
        total = run_until_idle(env)
        # one engine: latency + t, then latency + t again
        expected = 2 * (LENS.gpu.pcie_latency_s + 2e-3)
        assert total == pytest.approx(expected, rel=0.05)

    def test_c2050_dual_engines_share_bus(self, env):
        gpu = Gpu(env, YONA.gpu)
        s1, s2 = gpu.stream(), gpu.stream()
        nbytes = int(2e-3 * YONA.gpu.pcie_bandwidth_bps)
        gpu.memcpy_h2d(s1, nbytes)
        gpu.memcpy_d2h(s2, nbytes)
        total = run_until_idle(env)
        # two engines run concurrently but share PCIe bandwidth: ~2x one
        # transfer, which still beats strict serialization with latencies.
        assert total == pytest.approx(YONA.gpu.pcie_latency_s + 4e-3, rel=0.05)

    def test_byte_counters(self, env):
        gpu = Gpu(env, YONA.gpu)
        s = gpu.stream()
        gpu.memcpy_h2d(s, 1000)
        gpu.memcpy_d2h(s, 500)
        run_until_idle(env)
        assert gpu.bytes_h2d == 1000
        assert gpu.bytes_d2h == 500
        assert gpu.kernels_launched == 0


class TestSynchronize:
    def test_synchronize_waits_for_all_streams(self, env):
        gpu = Gpu(env, YONA.gpu)
        s1, s2 = gpu.stream(), gpu.stream()
        gpu.launch_kernel(s1, 1e-3)
        gpu.launch_kernel(s2, 3e-3)
        done = {}

        def host():
            yield gpu.synchronize()
            done["t"] = env.now

        env.process(host())
        run_until_idle(env)
        assert done["t"] == pytest.approx(4e-3)  # kernels serialized 1+3

    def test_synchronize_empty_is_immediate(self, env):
        gpu = Gpu(env, YONA.gpu)
        done = {}

        def host():
            yield gpu.synchronize()
            done["t"] = env.now

        env.process(host())
        run_until_idle(env)
        assert done["t"] == 0.0

    def test_synchronize_specific_stream(self, env):
        gpu = Gpu(env, YONA.gpu)
        s1, s2 = gpu.stream(), gpu.stream()
        gpu.launch_kernel(s1, 1e-3)
        # stream2 kernel queued behind s1's on the kernel slot
        gpu.launch_kernel(s2, 3e-3)
        done = {}

        def host():
            yield gpu.synchronize([s1])
            done["t1"] = env.now
            yield gpu.synchronize([s2])
            done["t2"] = env.now

        env.process(host())
        run_until_idle(env)
        assert done["t1"] == pytest.approx(1e-3)
        assert done["t2"] == pytest.approx(4e-3)

    def test_host_launch_cost(self, env):
        gpu = Gpu(env, YONA.gpu)
        assert gpu.host_launch_cost_s == pytest.approx(7e-6)
