"""Tests for the 2-D thread-block performance model (Figs. 7/8)."""

import pytest

from repro.machines import LENS, YONA
from repro.simgpu.blockmodel import (
    X_CANDIDATES,
    admissible_blocks,
    best_block,
    block_efficiency,
    kernel_rate_gflops,
    stencil_kernel_time,
)


class TestAdmissibleBlocks:
    def test_respects_max_threads(self):
        for gpu, limit in ((LENS.gpu, 512), (YONA.gpu, 1024)):
            for bx, by in admissible_blocks(gpu):
                assert bx * by <= limit
                assert bx in X_CANDIDATES

    def test_c2050_has_larger_space(self):
        n_lens = sum(1 for _ in admissible_blocks(LENS.gpu))
        n_yona = sum(1 for _ in admissible_blocks(YONA.gpu))
        assert n_yona > n_lens


class TestPaperOptima:
    def test_lens_best_is_32x11(self):
        assert best_block(LENS.gpu) == (32, 11)

    def test_yona_best_is_32x8(self):
        assert best_block(YONA.gpu) == (32, 8)

    def test_x32_column_dominates(self):
        """Paper: 'an x dimension of 32 ... tends to provide the best'."""
        for gpu in (LENS.gpu, YONA.gpu):
            best_per_x = {}
            for bx in X_CANDIDATES:
                best_per_x[bx] = max(
                    block_efficiency(gpu, (bx, by))
                    for by in range(1, gpu.max_threads_per_block // bx + 1)
                )
            assert max(best_per_x, key=best_per_x.get) == 32

    def test_calibrated_peaks(self):
        assert kernel_rate_gflops(YONA.gpu, (32, 8)) == pytest.approx(86.0, rel=1e-6)
        assert kernel_rate_gflops(LENS.gpu, (32, 11)) == pytest.approx(22.0, rel=1e-6)

    def test_best_block_is_argmax_of_rate(self):
        for gpu in (LENS.gpu, YONA.gpu):
            bb = best_block(gpu)
            rate_bb = kernel_rate_gflops(gpu, bb)
            for blk in admissible_blocks(gpu):
                assert kernel_rate_gflops(gpu, blk) <= rate_bb + 1e-9


class TestEfficiencyShape:
    def test_half_warp_penalized(self):
        assert block_efficiency(YONA.gpu, (16, 8)) < block_efficiency(YONA.gpu, (32, 8))

    def test_wide_blocks_penalized(self):
        assert block_efficiency(YONA.gpu, (128, 4)) < block_efficiency(YONA.gpu, (32, 8))

    def test_inadmissible_block_zero(self):
        assert block_efficiency(LENS.gpu, (32, 32)) == 0.0  # 1024 > 512
        assert block_efficiency(LENS.gpu, (0, 8)) == 0.0

    def test_inadmissible_block_rate_raises(self):
        with pytest.raises(ValueError):
            kernel_rate_gflops(LENS.gpu, (32, 32))

    def test_remainder_waste(self):
        """A y extent not divisible by the block's y wastes threads."""
        e_even = block_efficiency(YONA.gpu, (32, 10), (420, 420, 420))
        e_odd = block_efficiency(YONA.gpu, (32, 10), (420, 421, 420))
        assert e_odd < e_even


class TestKernelTime:
    def test_zero_points(self):
        assert stencil_kernel_time(YONA.gpu, 0) == 0.0

    def test_linear_in_points(self):
        t1 = stencil_kernel_time(YONA.gpu, 10**6)
        t2 = stencil_kernel_time(YONA.gpu, 2 * 10**6)
        assert t2 == pytest.approx(2 * t1)

    def test_default_block_is_best(self):
        t_default = stencil_kernel_time(YONA.gpu, 10**6)
        t_best = stencil_kernel_time(YONA.gpu, 10**6, block=best_block(YONA.gpu))
        assert t_default == t_best

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            best_block(YONA.gpu, (420, 420))

    def test_resident_420_step_time(self):
        """Whole-domain step at 86 GF: 420^3 * 53 / 86e9 seconds."""
        t = stencil_kernel_time(YONA.gpu, 420**3)
        assert t == pytest.approx(420**3 * 53 / 86e9, rel=1e-6)
