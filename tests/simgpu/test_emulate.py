"""The tiled-kernel emulation must match the plain vectorized sweep."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgpu.emulate import emulate_tiled_kernel
from repro.stencil.coefficients import tensor_product_coefficients
from repro.stencil.grid import allocate_field
from repro.stencil.kernels import (
    apply_stencil,
    apply_stencil_dense,
    fill_periodic_halo,
    interior,
)


def make_field(shape, seed=0):
    rng = np.random.default_rng(seed)
    u = allocate_field(shape)
    interior(u)[...] = rng.random(shape)
    fill_periodic_halo(u)
    return u


COEFFS = tensor_product_coefficients((1.0, 0.9, 0.8), 0.7)


class TestTiledKernel:
    @pytest.mark.parametrize("block", [(4, 4), (8, 2), (3, 5), (16, 1)])
    def test_matches_vectorized_sweep(self, block):
        u = make_field((12, 12, 12))
        ref = apply_stencil_dense(u, COEFFS)
        out = emulate_tiled_kernel(u, COEFFS, block)
        assert np.allclose(interior(out), interior(ref), atol=1e-14)

    def test_remainder_tiles(self):
        """Domain not divisible by the block: clipped tiles still correct."""
        u = make_field((13, 11, 9), seed=2)
        ref = apply_stencil_dense(u, COEFFS)
        out = emulate_tiled_kernel(u, COEFFS, (5, 4))
        assert np.allclose(interior(out), interior(ref), atol=1e-14)

    def test_block_bigger_than_domain(self):
        u = make_field((6, 6, 6), seed=3)
        ref = apply_stencil_dense(u, COEFFS)
        out = emulate_tiled_kernel(u, COEFFS, (32, 32))
        assert np.allclose(interior(out), interior(ref), atol=1e-14)

    def test_bad_block(self):
        u = make_field((6, 6, 6))
        with pytest.raises(ValueError):
            emulate_tiled_kernel(u, COEFFS, (0, 4))

    @given(
        bx=st.integers(1, 9),
        by=st.integers(1, 9),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_any_block_shape(self, bx, by, seed):
        u = make_field((8, 9, 7), seed=seed)
        ref = apply_stencil_dense(u, COEFFS)
        out = emulate_tiled_kernel(u, COEFFS, (bx, by))
        assert np.allclose(interior(out), interior(ref), atol=1e-14)

    def test_periodic_resident_step_matches_reference(self):
        """A full resident step (halo threads + tiled kernel) agrees to
        roundoff (the staged kernel sums the 27 terms in a different order,
        so bitwise equality is not expected)."""
        u = make_field((10, 10, 10), seed=5)
        # halo already filled by make_field (the halo threads' job)
        ref = apply_stencil_dense(u, COEFFS)
        out = emulate_tiled_kernel(u, COEFFS, (32, 8))
        assert np.allclose(interior(out), interior(ref), rtol=0, atol=5e-16)

    def test_matches_separable_production_path(self):
        """The production (separable) sweep agrees with the emulated dense
        kernel to roundoff — looser than the dense-vs-dense bound because
        the separable engine factors the sum entirely differently."""
        u = make_field((10, 10, 10), seed=6)
        ref = apply_stencil(u, COEFFS)  # dispatches to the separable engine
        out = emulate_tiled_kernel(u, COEFFS, (8, 8))
        assert np.allclose(interior(out), interior(ref), rtol=1e-12, atol=1e-14)
