"""Tests for device memory accounting."""

import pytest

from repro.simgpu.memory import DeviceArray, DeviceMemory, DeviceMemoryError


class TestDeviceMemory:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DeviceMemory(0)

    def test_allocation_accounting(self):
        mem = DeviceMemory(10_000)
        a = mem.allocate("a", (10, 10, 10))
        assert a.nbytes == 8000
        assert mem.used_bytes == 8000
        assert mem.free_bytes == 2000

    def test_oom(self):
        mem = DeviceMemory(1000)
        with pytest.raises(DeviceMemoryError, match="exceeds device"):
            mem.allocate("big", (10, 10, 10))

    def test_free_returns_capacity(self):
        mem = DeviceMemory(10_000)
        a = mem.allocate("a", (10, 10, 10))
        mem.free(a)
        assert mem.used_bytes == 0
        mem.allocate("b", (10, 10, 10))  # fits again

    def test_double_free(self):
        mem = DeviceMemory(10_000)
        a = mem.allocate("a", (5, 5, 5))
        mem.free(a)
        with pytest.raises(DeviceMemoryError, match="double free"):
            mem.free(a)

    def test_use_after_free(self):
        mem = DeviceMemory(10_000)
        a = mem.allocate("a", (5, 5, 5), functional=True)
        mem.free(a)
        with pytest.raises(DeviceMemoryError, match="use-after-free"):
            a.require_data()

    def test_live_arrays(self):
        mem = DeviceMemory(100_000)
        a = mem.allocate("a", (5, 5, 5))
        b = mem.allocate("b", (5, 5, 5))
        mem.free(a)
        assert mem.live_arrays() == (b,)

    def test_paper_sizing_fits_both_devices(self):
        """The paper's two 420^3 state arrays fit both GPUs' memories."""
        for gb in (3, 4):  # C2050, C1060
            mem = DeviceMemory(int(gb * 1e9))
            mem.allocate("u", (422, 422, 422))
            mem.allocate("unew", (422, 422, 422))

    def test_larger_domain_does_not_fit_c2050(self):
        """Doubling each dimension (8x memory) blows the 3 GB budget."""
        mem = DeviceMemory(int(3e9))
        mem.allocate("u", (674, 674, 674))  # ~2.45 GB
        with pytest.raises(DeviceMemoryError):
            mem.allocate("unew", (674, 674, 674))


class TestDeviceArray:
    def test_shadow_has_no_payload(self):
        mem = DeviceMemory(10_000)
        a = mem.allocate("a", (4, 4, 4), functional=False)
        assert not a.functional
        with pytest.raises(DeviceMemoryError, match="shadow"):
            a.require_data()

    def test_functional_payload(self):
        mem = DeviceMemory(10_000)
        a = mem.allocate("a", (4, 4, 4), functional=True)
        assert a.functional
        assert a.require_data().shape == (4, 4, 4)
        assert a.require_data().sum() == 0.0
