"""Tests for the Fig. 2 line-counting rule."""

from repro.loc import count_loc_text, fortran_loc, implementation_loc


class TestCountingRule:
    def test_blank_lines_excluded(self):
        assert count_loc_text("a = 1\n\n\nb = 2\n") == 2

    def test_comment_only_lines_excluded(self):
        assert count_loc_text("# comment\na = 1  # trailing ok\n#x\n") == 1

    def test_docstrings_excluded(self):
        src = '"""Module\ndocstring.\n"""\nx = 1\n'
        assert count_loc_text(src) == 1

    def test_single_line_docstring(self):
        src = '"""one-liner"""\nx = 1\n'
        assert count_loc_text(src) == 1

    def test_empty(self):
        assert count_loc_text("") == 0


class TestImplementationLoc:
    def test_all_implementations_counted(self):
        from repro.core.registry import IMPLEMENTATIONS

        locs = implementation_loc()
        assert set(locs) == set(IMPLEMENTATIONS)
        assert all(v > 10 for v in locs.values())

    def test_relative_complexity_matches_paper_direction(self):
        """The paper's complexity ordering holds in this repo's Python:
        hybrid overlap is the biggest, single-task the smallest, and the
        GPU+MPI codes sit well above the CPU ones."""
        locs = implementation_loc()
        assert locs["hybrid_overlap"] > locs["gpu_bulk"] > locs["bulk"]
        assert min(locs, key=locs.get) == "single"

    def test_fortran_loc_matches_registry(self):
        f = fortran_loc()
        assert f["single"] == 215
        assert f["hybrid_overlap"] == 860
