"""Unit tests for the structured tracer (lanes, validation, analysis, ASCII)."""

import math

import pytest

from repro.obs.tracer import (
    GPU_GROUP_BASE,
    CounterSample,
    TraceEvent,
    Tracer,
    intervals_intersection,
)


class TestRecordValidation:
    def test_empty_lane_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError, match="lane"):
            t.record("", "x", 0.0, 1.0)

    def test_empty_name_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError, match="name"):
            t.record("host", "", 0.0, 1.0)

    def test_non_string_lane_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.record(3, "x", 0.0, 1.0)  # type: ignore[arg-type]

    def test_non_finite_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError, match="finite"):
            t.record("host", "x", 0.0, math.inf)
        with pytest.raises(ValueError, match="finite"):
            t.record("host", "x", math.nan, 1.0)

    def test_backwards_interval_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError, match="ends before"):
            t.record("host", "x", 2.0, 1.0)

    def test_counter_validation(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.counter("", 0.0, 1.0)
        with pytest.raises(ValueError):
            t.counter("n", math.inf, 1.0)

    def test_mark_is_zero_length(self):
        t = Tracer()
        t.mark("mpi", "isend", 1.5, group=2, args={"tag": 7})
        (ev,) = t.events
        assert ev.start == ev.end == 1.5
        assert ev.duration == 0.0
        assert ev.group == ev.rank == 2


class TestLaneOrdering:
    def test_single_group_first_appearance_order(self):
        t = Tracer()
        t.record("gpu", "k", 0.0, 1.0)
        t.record("host", "c", 0.0, 1.0)
        assert t.lanes() == ["gpu", "host"]

    def test_multi_rank_interleaving_is_stable(self):
        """Same lanes, different recording interleavings -> same ordering."""
        a = Tracer()
        a.record("host", "c", 0.0, 1.0, group=0)
        a.record("host", "c", 0.0, 1.0, group=1)
        a.record("mpi", "m", 1.0, 2.0, group=0)
        a.record("mpi", "m", 1.0, 2.0, group=1)

        b = Tracer()  # rank 1 lands first in recording order
        b.record("host", "c", 0.0, 1.0, group=1)
        b.record("host", "c", 0.0, 1.0, group=0)
        b.record("mpi", "m", 1.0, 2.0, group=1)
        b.record("mpi", "m", 1.0, 2.0, group=0)

        assert a.lane_keys() == b.lane_keys()
        assert a.lanes() == b.lanes()
        assert a.lanes() == ["r0:host", "r0:mpi", "r1:host", "r1:mpi"]

    def test_single_rank_label_is_bare(self):
        t = Tracer()
        t.record("host", "c", 0.0, 1.0, group=0)
        assert t.lane_label(0, "host") == "host"

    def test_device_label_prefixed_only_on_collision(self):
        t = Tracer()
        t.set_group_name(GPU_GROUP_BASE, "gpu0")
        t.set_group_name(GPU_GROUP_BASE + 1, "gpu1")
        t.record("gpu-kernel", "k", 0.0, 1.0, group=GPU_GROUP_BASE)
        assert t.lane_label(GPU_GROUP_BASE, "gpu-kernel") == "gpu-kernel"
        t.record("gpu-kernel", "k", 0.0, 1.0, group=GPU_GROUP_BASE + 1)
        assert t.lane_label(GPU_GROUP_BASE, "gpu-kernel") == "gpu0:gpu-kernel"
        assert t.lane_label(GPU_GROUP_BASE + 1, "gpu-kernel") == "gpu1:gpu-kernel"


class TestAnalysis:
    def test_merged_intervals_merge_and_drop_marks(self):
        t = Tracer()
        t.record("host", "a", 0.0, 2.0)
        t.record("host", "b", 1.0, 3.0)  # overlaps a
        t.record("host", "c", 5.0, 6.0)
        t.mark("host", "m", 4.0)  # zero-length: no busy time
        assert t.merged_intervals("host") == [(0.0, 3.0), (5.0, 6.0)]
        assert t.busy_time("host") == pytest.approx(4.0)

    def test_group_restriction(self):
        t = Tracer()
        t.record("host", "a", 0.0, 1.0, group=0)
        t.record("host", "a", 2.0, 3.0, group=1)
        assert t.busy_time("host") == pytest.approx(2.0)
        assert t.busy_time("host", group=0) == pytest.approx(1.0)
        assert t.merged_intervals("host", group=1) == [(2.0, 3.0)]

    def test_overlap_time(self):
        t = Tracer()
        t.record("host", "c", 0.0, 4.0)
        t.record("mpi", "m", 3.0, 6.0)
        assert t.overlap_time("host", "mpi") == pytest.approx(1.0)

    def test_span(self):
        t = Tracer()
        assert t.span() == (0.0, 0.0)
        t.record("host", "a", 1.0, 2.0)
        t.record("gpu", "b", 0.5, 1.5)
        assert t.span() == (0.5, 2.0)

    def test_counter_series(self):
        t = Tracer()
        t.counter("nic.in_flight", 0.0, 1, group=3)
        t.counter("nic.in_flight", 1.0, 2, group=3)
        t.counter("other", 0.5, 9, group=3)
        assert t.counter_series("nic.in_flight") == [(0.0, 1.0), (1.0, 2.0)]
        assert t.counter_series("nic.in_flight", group=4) == []

    def test_intervals_intersection(self):
        a = [(0.0, 2.0), (4.0, 6.0)]
        b = [(1.0, 5.0)]
        assert intervals_intersection(a, b) == pytest.approx(2.0)
        assert intervals_intersection(a, []) == 0.0


class TestAsciiRenderer:
    def test_empty(self):
        assert Tracer().timeline_text() == "(no trace events)"

    def test_rows_and_names(self):
        t = Tracer()
        t.record("host", "compute", 0.0, 1.0)
        t.record("gpu-kernel", "stencil", 0.0, 0.5)
        out = t.timeline_text(width=40)
        lines = out.splitlines()
        assert len(lines) == 3  # header + two lanes
        assert lines[1].startswith("host")
        assert lines[2].startswith("gpu-kernel")
        assert "compute" in lines[1]
        assert "st" in lines[2]  # truncated activity name fills the bar

    def test_window_clips(self):
        t = Tracer()
        t.record("host", "early", 0.0, 1.0)
        t.record("host", "late", 10.0, 11.0)
        out = t.timeline_text(width=20, window=(10.0, 11.0))
        assert "late" in out
        assert "early" not in out

    def test_degenerate_window(self):
        t = Tracer()
        t.record("host", "a", 1.0, 2.0)
        assert t.timeline_text(window=(1.0, 1.0)) == "(empty window)"

    def test_bar_length_scales(self):
        t = Tracer()
        t.record("host", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx", 0.0, 1.0)
        t.record("gpu", "y", 0.0, 0.25)
        out = t.timeline_text(width=40, window=(0.0, 1.0))
        host_row = next(l for l in out.splitlines() if l.startswith("host"))
        gpu_row = next(l for l in out.splitlines() if l.startswith("gpu"))
        assert len(host_row.split(maxsplit=1)[1]) >= 40  # full-width bar
        # the gpu bar covers ~10 of 40 columns
        assert len(gpu_row.rstrip()) - len("gpu ") <= 12

    def test_same_label_lanes_collapse(self):
        t = Tracer()
        t.record("pcie", "a", 0.0, 1.0, group=0)
        t.record("pcie", "b", 2.0, 3.0, group=0)
        out = t.timeline_text(width=30)
        assert sum(1 for l in out.splitlines() if l.startswith("pcie")) == 1


class TestDataclasses:
    def test_trace_event_frozen(self):
        ev = TraceEvent("host", "x", 0.0, 1.0)
        with pytest.raises(AttributeError):
            ev.lane = "other"  # type: ignore[misc]

    def test_counter_sample_fields(self):
        c = CounterSample("n", 1.0, 2.0, group=5)
        assert (c.name, c.time, c.value, c.group) == ("n", 1.0, 2.0, 5)
