"""§V-E: the overlap fraction reproduces the paper's single-node ordering.

On one Yona node the paper measures hybrid_overlap >> gpu_streams >
gpu_bulk (82 vs ~30 vs 24 GF). The *mechanism* behind that ordering is how
much communication (PCIe + MPI) each implementation hides behind
computation — which is exactly what :func:`repro.obs.metrics.overlap_fraction`
measures from the trace. This test asserts the mechanism, not just the
throughput: the overlap fractions must order the same way as the GF numbers.
"""

import pytest

from repro.core.config import RunConfig
from repro.core.runner import run
from repro.machines import get_machine


@pytest.fixture(scope="module")
def section5e_results():
    """Paper-scale (420^3) single-node Yona runs of the three §V GPU codes."""
    yona = get_machine("yona")
    out = {}
    for impl in ("hybrid_overlap", "gpu_streams", "gpu_bulk"):
        cfg = RunConfig(
            machine=yona, implementation=impl, cores=12, threads_per_task=12,
            steps=2, domain=(420, 420, 420), network="mirror", trace=True,
        )
        out[impl] = run(cfg)
    return out


class TestSection5EOrdering:
    def test_overlap_fraction_ordering(self, section5e_results):
        ov = {k: r.overlap.overlap_fraction for k, r in section5e_results.items()}
        assert ov["hybrid_overlap"] > ov["gpu_streams"] > ov["gpu_bulk"], ov

    def test_hybrid_hides_most_communication(self, section5e_results):
        assert section5e_results["hybrid_overlap"].overlap.overlap_fraction > 0.5

    def test_gpu_bulk_hides_almost_nothing(self, section5e_results):
        """§IV-F stages everything synchronously: nothing is overlapped."""
        assert section5e_results["gpu_bulk"].overlap.overlap_fraction < 0.1

    def test_throughput_orders_the_same_way(self, section5e_results):
        gf = {k: r.gflops for k, r in section5e_results.items()}
        assert gf["hybrid_overlap"] > gf["gpu_streams"] > gf["gpu_bulk"], gf

    def test_gpu_bulk_pcie_time_is_exposed(self, section5e_results):
        """The bulk code's critical path is dominated by exposed transfers."""
        cp = section5e_results["gpu_bulk"].overlap.critical_path
        assert cp["exposed_comm_s"] > 0.2 * cp["window_s"]
