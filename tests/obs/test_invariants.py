"""Trace-invariant checker: synthetic violations + every implementation."""

import math

import pytest

from repro.core.registry import IMPLEMENTATIONS, get_implementation
from repro.core.runner import run
from repro.obs.invariants import (
    TraceInvariantError,
    assert_invariants,
    check_trace,
)
from repro.obs.tracer import GPU_GROUP_BASE, Tracer

from conftest import tiny_config


def _violations(t: Tracer):
    return check_trace(t)


class TestWellFormed:
    def test_clean_trace_passes(self):
        t = Tracer()
        t.record("host", "c", 0.0, 1.0)
        assert _violations(t) == []

    def test_non_finite_detected(self):
        from repro.obs.tracer import TraceEvent

        t = Tracer()
        # append directly, bypassing record() validation, to simulate a
        # corrupted trace reaching the checker
        t.events.append(TraceEvent("host", "c", 0.0, math.inf))
        assert any("non-finite" in v for v in _violations(t))

    def test_negative_start_detected(self):
        from repro.obs.tracer import TraceEvent

        t = Tracer()
        t.events.append(TraceEvent("host", "c", -1.0, 1.0))
        assert any("before t=0" in v for v in _violations(t))


class TestHostExclusive:
    def test_double_booked_host_detected(self):
        t = Tracer()
        t.record("host", "a", 0.0, 2.0, group=0)
        t.record("host", "b", 1.0, 3.0, group=0)  # overlaps on one CPU
        assert any("double-booked" in v for v in _violations(t))

    def test_different_ranks_may_overlap(self):
        t = Tracer()
        t.record("host", "a", 0.0, 2.0, group=0)
        t.record("host", "b", 1.0, 3.0, group=1)
        assert _violations(t) == []

    def test_touching_intervals_are_fine(self):
        t = Tracer()
        t.record("host", "a", 0.0, 1.0)
        t.record("host", "b", 1.0, 2.0)  # back-to-back, not concurrent
        assert _violations(t) == []


class TestGpuLanes:
    def test_kernel_slots_respected(self):
        t = Tracer()
        t.meta["gpus"] = {GPU_GROUP_BASE: {"kernel_slots": 1, "copy_engines": 2}}
        t.record("gpu-kernel", "k1", 0.0, 2.0, group=GPU_GROUP_BASE)
        t.record("gpu-kernel", "k2", 1.0, 3.0, group=GPU_GROUP_BASE)
        assert any("kernel slot" in v for v in _violations(t))

    def test_concurrent_kernels_allowed_with_slots(self):
        t = Tracer()
        t.meta["gpus"] = {GPU_GROUP_BASE: {"kernel_slots": 16, "copy_engines": 2}}
        t.record("gpu-kernel", "k1", 0.0, 2.0, group=GPU_GROUP_BASE)
        t.record("gpu-kernel", "k2", 1.0, 3.0, group=GPU_GROUP_BASE)
        assert _violations(t) == []

    def test_same_direction_copies_detected(self):
        t = Tracer()
        t.record("gpu-copy", "h2d", 0.0, 2.0, group=GPU_GROUP_BASE,
                 args={"dir": "h2d"})
        t.record("gpu-copy", "h2d", 1.0, 3.0, group=GPU_GROUP_BASE,
                 args={"dir": "h2d"})
        assert any("h2d" in v and "per direction" in v for v in _violations(t))

    def test_opposite_directions_may_overlap(self):
        t = Tracer()
        t.record("gpu-copy", "h2d", 0.0, 2.0, group=GPU_GROUP_BASE,
                 args={"dir": "h2d"})
        t.record("gpu-copy", "d2h", 1.0, 3.0, group=GPU_GROUP_BASE,
                 args={"dir": "d2h"})
        assert _violations(t) == []

    def test_engine_total_respected(self):
        t = Tracer()
        t.meta["gpus"] = {GPU_GROUP_BASE: {"kernel_slots": 16, "copy_engines": 1}}
        t.record("gpu-copy", "h2d", 0.0, 2.0, group=GPU_GROUP_BASE,
                 args={"dir": "h2d"})
        t.record("gpu-copy", "d2h", 1.0, 3.0, group=GPU_GROUP_BASE,
                 args={"dir": "d2h"})
        assert any("copy engine" in v for v in _violations(t))

    def test_direction_falls_back_to_name_prefix(self):
        t = Tracer()
        t.record("gpu-copy", "h2d halo", 0.0, 2.0, group=GPU_GROUP_BASE)
        t.record("gpu-copy", "h2d halo", 1.0, 3.0, group=GPU_GROUP_BASE)
        assert any("per direction" in v for v in _violations(t))

    def test_blocking_pageable_serialized(self):
        t = Tracer()
        t.record("pcie", "sync", 0.0, 2.0, group=0, args={"dev": "gpu"})
        t.record("pcie", "sync", 1.0, 3.0, group=1, args={"dev": "gpu"})
        assert any("pageable" in v for v in _violations(t))


class TestMpiMatching:
    def test_matched_traffic_passes(self):
        t = Tracer()
        t.mark("mpi", "isend", 0.0, group=0,
               args={"src": 0, "dst": 1, "tag": 3, "nbytes": 64})
        t.mark("mpi", "irecv", 0.0, group=1,
               args={"src": 0, "dst": 1, "tag": 3, "nbytes": 64})
        assert _violations(t) == []

    def test_unmatched_send_detected(self):
        t = Tracer()
        t.mark("mpi", "isend", 0.0, group=0,
               args={"src": 0, "dst": 1, "tag": 3, "nbytes": 64})
        assert any("matching broken" in v for v in _violations(t))

    def test_byte_mismatch_detected(self):
        t = Tracer()
        t.mark("mpi", "isend", 0.0, group=0,
               args={"src": 0, "dst": 1, "tag": 3, "nbytes": 64})
        t.mark("mpi", "irecv", 0.0, group=1,
               args={"src": 0, "dst": 1, "tag": 3, "nbytes": 32})
        assert any("byte mismatch" in v for v in _violations(t))

    def test_mirror_mode_matches_per_tag(self):
        t = Tracer()
        t.meta["network"] = "mirror"
        t.mark("mpi", "isend", 0.0, group=0, args={"tag": 3, "nbytes": 64})
        t.mark("mpi", "irecv", 0.0, group=0, args={"tag": 3, "nbytes": 64})
        assert _violations(t) == []


class TestSpan:
    def _base(self):
        t = Tracer()
        t.record("host", "c", 0.0, 1.0)
        t.meta.update({"t0": 0.0, "t1": 1.0, "elapsed_s": 1.0})
        return t

    def test_consistent_passes(self):
        assert _violations(self._base()) == []

    def test_elapsed_mismatch_detected(self):
        t = self._base()
        t.meta["elapsed_s"] = 2.0
        assert any("disagree" in v for v in _violations(t))

    def test_trace_shorter_than_window_detected(self):
        t = self._base()
        t.meta["t1"] = 5.0
        t.meta["elapsed_s"] = 5.0
        assert any("before the measurement ended" in v for v in _violations(t))

    def test_trace_starting_late_detected(self):
        t = Tracer()
        t.record("host", "c", 0.5, 1.0)
        t.meta.update({"t0": 0.0, "t1": 1.0, "elapsed_s": 1.0})
        assert any("after the measurement began" in v for v in _violations(t))

    def test_idle_window_detected(self):
        t = Tracer()
        t.record("host", "setup", 0.0, 1.0)
        t.meta.update({"t0": 5.0, "t1": 6.0, "elapsed_s": 1.0})
        out = _violations(t)
        assert any("no lane is ever busy" in v for v in out)


class TestAssertInvariants:
    def test_raises_with_violation_list(self):
        t = Tracer()
        t.record("host", "a", 0.0, 2.0)
        t.record("host", "b", 1.0, 3.0)
        with pytest.raises(TraceInvariantError) as exc:
            assert_invariants(t)
        assert exc.value.violations
        assert "double-booked" in str(exc.value)

    def test_clean_trace_ok(self):
        t = Tracer()
        t.record("host", "c", 0.0, 1.0)
        assert_invariants(t)  # no raise


def _impl_params():
    out = []
    for key in sorted(IMPLEMENTATIONS):
        impl = get_implementation(key)
        machine = "yona" if impl.uses_gpu else "jaguarpf"
        threads = 3 if impl.uses_mpi else 12  # non-MPI impls are single-task
        out.append(pytest.param(key, machine, threads, id=key))
    return out


@pytest.mark.parametrize("key,machine,threads", _impl_params())
class TestRealRuns:
    def test_every_implementation_obeys_physics(self, key, machine, threads):
        cfg = tiny_config(key, machine=machine, threads_per_task=threads)
        result = run(cfg)
        assert_invariants(result.tracer)  # raises on violation

    def test_mirror_backend_obeys_physics(self, key, machine, threads):
        cfg = tiny_config(key, machine=machine, threads_per_task=threads,
                          network="mirror")
        result = run(cfg)
        assert_invariants(result.tracer)
