"""Chrome-trace exporter: schema unit tests + a real-run round trip."""

import json

import pytest

from repro.obs.export import ascii_timeline, chrome_trace, write_chrome_trace
from repro.obs.tracer import GPU_GROUP_BASE, Tracer

#: Chrome-trace phases this exporter may emit.
_PHASES = {"X", "i", "C", "M"}


def _synthetic_tracer() -> Tracer:
    t = Tracer()
    t.set_group_name(0, "rank 0")
    t.set_group_name(GPU_GROUP_BASE, "gpu0")
    t.record("host", "compute", 0.0, 1e-3, group=0, cat="host")
    t.record("gpu-kernel", "stencil", 0.5e-3, 2e-3, group=GPU_GROUP_BASE,
             cat="kernel")
    t.mark("mpi", "isend", 0.2e-3, group=0, cat="comm",
           args={"src": 0, "dst": 1, "tag": 3, "nbytes": 64})
    t.counter("nic.in_flight", 0.1e-3, 2, group=0)
    t.meta["machine"] = "Yona"
    return t


class TestChromeTraceSchema:
    def test_document_shape(self):
        doc = chrome_trace(_synthetic_tracer())
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_every_event_well_formed(self):
        doc = chrome_trace(_synthetic_tracer())
        for ev in doc["traceEvents"]:
            assert ev["ph"] in _PHASES
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            assert isinstance(ev["name"], str) and ev["name"]
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
                assert ev["ts"] >= 0
            if ev["ph"] == "i":
                assert ev["s"] in ("t", "p", "g")
            if ev["ph"] == "C":
                assert "value" in ev["args"]

    def test_microsecond_conversion(self):
        doc = chrome_trace(_synthetic_tracer())
        host = next(e for e in doc["traceEvents"]
                    if e["ph"] == "X" and e["name"] == "compute")
        assert host["ts"] == pytest.approx(0.0)
        assert host["dur"] == pytest.approx(1e3)  # 1 ms = 1000 us

    def test_process_and_thread_metadata(self):
        doc = chrome_trace(_synthetic_tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["pid"]): e["args"]["name"] for e in meta}
        assert names[("process_name", 0)] == "rank 0"
        assert names[("process_name", GPU_GROUP_BASE)] == "gpu0"
        assert ("thread_name", 0) in names

    def test_distinct_lanes_get_distinct_tids(self):
        t = _synthetic_tracer()
        t.record("mpi", "bg", 0.0, 1e-3, group=0)
        doc = chrome_trace(t)
        tids = {
            (e["pid"], e["args"]["name"]): e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        rank0 = [tid for (pid, _), tid in tids.items() if pid == 0]
        assert len(rank0) == len(set(rank0))

    def test_run_metadata_rides_along(self):
        doc = chrome_trace(_synthetic_tracer(), metadata={"extra": 1})
        assert doc["metadata"]["machine"] == "Yona"
        assert doc["metadata"]["extra"] == 1

    def test_json_serializable_even_with_odd_meta(self):
        t = _synthetic_tracer()
        t.meta["weird"] = {("a", "b"): object()}
        json.dumps(chrome_trace(t))  # must not raise


class TestWriteChromeTrace:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_synthetic_tracer(), str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_real_run_export(self, tmp_path, traced_hybrid_overlap):
        """The acceptance-criterion path: a traced run emits valid JSON."""
        result = traced_hybrid_overlap
        path = tmp_path / "hybrid.json"
        write_chrome_trace(result.tracer, str(path))
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "M" in phases and "i" in phases
        assert doc["metadata"]["implementation"] == "hybrid_overlap"
        assert doc["metadata"]["network"] == "full"
        # window metadata present and consistent
        assert doc["metadata"]["elapsed_s"] == pytest.approx(
            doc["metadata"]["t1"] - doc["metadata"]["t0"]
        )


class TestAsciiTimeline:
    def test_delegates_to_tracer(self):
        t = _synthetic_tracer()
        assert ascii_timeline(t, width=30) == t.timeline_text(width=30)
