"""Shared fixtures and golden-trace helpers for the observability suite."""

from collections import Counter

import pytest

from repro.core.config import RunConfig
from repro.core.registry import IMPLEMENTATIONS, get_implementation
from repro.core.runner import run
from repro.machines import get_machine


def tiny_config(impl: str, machine: str = "yona", **kw) -> RunConfig:
    """A 16^3 full-network config that runs in milliseconds."""
    defaults = dict(
        machine=get_machine(machine),
        implementation=impl,
        cores=12,
        threads_per_task=3,
        steps=2,
        domain=(16, 16, 16),
        network="full",
        trace=True,
    )
    defaults.update(kw)
    return RunConfig(**defaults)


@pytest.fixture(scope="session")
def make_tiny_config():
    """Factory fixture exposing :func:`tiny_config` to test modules."""
    return tiny_config


@pytest.fixture(scope="session")
def traced_hybrid_overlap():
    """One traced full-network hybrid_overlap run, shared across tests."""
    return run(tiny_config("hybrid_overlap"))


# -- golden traces (shared with tools/update_golden_traces.py) ---------------

def golden_config(key: str) -> RunConfig:
    """The committed-golden configuration of one implementation."""
    impl = get_implementation(key)
    return tiny_config(
        key,
        machine="yona" if impl.uses_gpu else "jaguarpf",
        threads_per_task=3 if impl.uses_mpi else 12,
    )


def golden_keys():
    """Implementation keys covered by the golden traces (all of them)."""
    return sorted(IMPLEMENTATIONS)


def golden_summary(result) -> dict:
    """The committed per-run trace summary (counts exact, floats to rtol)."""
    tracer = result.tracer
    lanes = Counter(ev.lane for ev in tracer.events)
    marks = Counter(
        ev.name for ev in tracer.events
        if ev.lane == "mpi" and ev.name in ("isend", "irecv")
    )
    return {
        "n_events": len(tracer.events),
        "events_per_lane": dict(sorted(lanes.items())),
        "mpi_posts": dict(sorted(marks.items())),
        "n_counter_samples": len(tracer.counters),
        "overlap_fraction": result.overlap.overlap_fraction,
        "elapsed_s": result.elapsed_s,
    }
