"""Tracing must only observe: bit-identical results, capture semantics."""

import pytest

from repro.core.runner import run
from repro.obs.capture import active_capture, capture_traces

from conftest import tiny_config


class TestBitIdentical:
    """A traced run is bit-identical to an untraced one (tracing never
    schedules anything — it only appends records and callbacks)."""

    @pytest.mark.parametrize("impl,threads", [
        ("hybrid_overlap", 3),
        ("gpu_streams", 3),
        ("bulk", 3),
        ("nonblocking", 3),
        ("gpu_resident", 12),
    ])
    def test_trace_on_off_identical(self, impl, threads):
        machine = "yona" if impl != "bulk" and impl != "nonblocking" else "jaguarpf"
        cfg = tiny_config(impl, machine=machine, threads_per_task=threads,
                          trace=False)
        plain = run(cfg)
        traced = run(cfg.with_(trace=True))
        assert traced.elapsed_s == plain.elapsed_s  # exact, not approx
        assert traced.phases == plain.phases
        assert traced.comm_stats == plain.comm_stats
        assert plain.tracer is None and traced.tracer is not None

    def test_mirror_backend_identical_too(self):
        cfg = tiny_config("hybrid_overlap", network="mirror", trace=False)
        plain = run(cfg)
        traced = run(cfg.with_(trace=True))
        assert traced.elapsed_s == plain.elapsed_s


class TestCapture:
    def test_inactive_by_default(self):
        assert active_capture() is None

    def test_forces_tracing_and_feeds_callback(self):
        cfg = tiny_config("bulk", machine="jaguarpf", trace=False)
        seen = []
        with capture_traces(seen.append):
            result = run(cfg)
        assert len(seen) == 1
        assert seen[0] is result
        assert result.tracer is not None  # trace was forced on
        assert active_capture() is None  # uninstalled afterwards

    def test_captured_scalars_match_uncaptured(self):
        cfg = tiny_config("hybrid_overlap", trace=False)
        plain = run(cfg)
        seen = []
        with capture_traces(seen.append):
            captured = run(cfg)
        assert captured.elapsed_s == plain.elapsed_s
        assert captured.phases == plain.phases

    def test_nesting_rejected(self):
        with capture_traces(lambda r: None):
            with pytest.raises(RuntimeError, match="already active"):
                with capture_traces(lambda r: None):
                    pass  # pragma: no cover

    def test_uninstalled_after_exception(self):
        with pytest.raises(ValueError):
            with capture_traces(lambda r: None):
                raise ValueError("boom")
        assert active_capture() is None
