"""Golden trace regression: every implementation's timeline is pinned.

Each implementation's tiny-grid full-network run must reproduce the
committed trace summary exactly (event counts) / to tight relative
tolerance (timings, fractions). A diff here means the instrumentation or
the performance model changed; if intentional, regenerate with::

    PYTHONPATH=src python tools/update_golden_traces.py

and bump ``repro.cache.MODEL_VERSION`` when timings moved.
"""

import json
from pathlib import Path

import pytest

from repro.core.runner import run

from conftest import golden_config, golden_keys, golden_summary

GOLDEN_PATH = Path(__file__).parent / "golden_traces.json"

#: Relative tolerance on golden floats. The simulator is deterministic, so
#: this only absorbs JSON round-off of the committed values.
RTOL = 1e-9


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())["impls"]


class TestGoldenCoverage:
    def test_all_implementations_covered(self, golden):
        assert sorted(golden) == golden_keys()


@pytest.mark.parametrize("key", golden_keys())
class TestGoldenTraces:
    def test_summary_matches(self, key, golden):
        assert key in golden, (
            f"no golden entry for {key!r}; run tools/update_golden_traces.py"
        )
        expect = golden[key]
        got = golden_summary(run(golden_config(key)))
        assert got["n_events"] == expect["n_events"]
        assert got["events_per_lane"] == expect["events_per_lane"]
        assert got["mpi_posts"] == expect["mpi_posts"]
        assert got["n_counter_samples"] == expect["n_counter_samples"]
        assert got["overlap_fraction"] == pytest.approx(
            expect["overlap_fraction"], rel=RTOL, abs=1e-12
        )
        assert got["elapsed_s"] == pytest.approx(expect["elapsed_s"], rel=RTOL)
