"""Progress-model awareness and the known-lane registry of the checker."""

import pytest

from repro.obs.invariants import KNOWN_LANES, TraceInvariantError, assert_invariants, check_trace
from repro.obs.tracer import GPU_GROUP_BASE, LINK_GROUP_BASE, Tracer


class TestKnownLanes:
    def test_registry_covers_the_simulator(self):
        assert {"host", "gpu-kernel", "gpu-copy", "mpi", "pcie", "mpi-sync",
                "noise", "progress", "nvlink"} <= KNOWN_LANES

    def test_unknown_lane_fails_loudly(self):
        t = Tracer()
        t.record("warp-drive", "x", 0.0, 1.0, group=0)
        violations = check_trace(t)
        assert any("unknown lane 'warp-drive'" in v for v in violations)
        with pytest.raises(TraceInvariantError):
            assert_invariants(t)

    def test_link_wire_lanes_are_exempt(self):
        """Links trace on their own name; the group id marks them."""
        t = Tracer()
        t.record("nic0:3", "xfer", 0.0, 1.0, group=LINK_GROUP_BASE)
        t.record("gpu0-pcie", "xfer", 0.0, 1.0, group=LINK_GROUP_BASE + 1)
        t.record("nvlink0", "xfer", 0.0, 1.0, group=LINK_GROUP_BASE + 2)
        assert check_trace(t) == []


class TestProgressModelRule:
    def test_progress_lane_under_manual_poll_is_a_violation(self):
        t = Tracer()
        t.meta["progress"] = "manual-poll"
        t.record("progress", "bg d1 t1", 0.0, 1.0, group=0)
        violations = check_trace(t)
        assert any("manual-poll" in v for v in violations)

    def test_missing_meta_defaults_to_manual_poll(self):
        t = Tracer()
        t.record("progress", "bg d1 t1", 0.0, 1.0, group=0)
        assert check_trace(t)

    @pytest.mark.parametrize("model", ["progress-thread", "hardware-offload"])
    def test_progress_lane_allowed_with_engine(self, model):
        t = Tracer()
        t.meta["progress"] = model
        t.record("progress", "bg d1 t1", 0.0, 1.0, group=0)
        assert check_trace(t) == []


class TestNvlinkRule:
    def _meta(self, t, nvlink):
        t.meta["gpus"] = {
            GPU_GROUP_BASE: {"kernel_slots": 16, "copy_engines": 2,
                             "nvlink": nvlink}
        }

    def test_peer_copy_on_linked_device_passes(self):
        t = Tracer()
        self._meta(t, nvlink=1)
        t.record("nvlink", "p2p", 0.0, 1.0, group=GPU_GROUP_BASE)
        assert check_trace(t) == []

    def test_peer_copy_without_fabric_is_a_violation(self):
        t = Tracer()
        self._meta(t, nvlink=0)
        t.record("nvlink", "p2p", 0.0, 1.0, group=GPU_GROUP_BASE)
        assert any("without an NVLink fabric" in v for v in check_trace(t))

    def test_peer_copy_from_rank_group_is_a_violation(self):
        t = Tracer()
        t.record("nvlink", "p2p", 0.0, 1.0, group=0)
        assert any("non-GPU group" in v for v in check_trace(t))

    def test_concurrent_outbound_copies_are_a_violation(self):
        t = Tracer()
        self._meta(t, nvlink=1)
        t.record("nvlink", "p2p", 0.0, 2.0, group=GPU_GROUP_BASE)
        t.record("nvlink", "p2p", 1.0, 3.0, group=GPU_GROUP_BASE)
        assert any("concurrent outbound" in v for v in check_trace(t))

    def test_back_to_back_copies_pass(self):
        t = Tracer()
        self._meta(t, nvlink=1)
        t.record("nvlink", "p2p", 0.0, 1.0, group=GPU_GROUP_BASE)
        t.record("nvlink", "p2p", 1.0, 2.0, group=GPU_GROUP_BASE)
        assert check_trace(t) == []
