"""Overlap-metric tests: synthetic timelines with known answers + real runs."""

import json

import pytest

from repro.obs.metrics import (
    OverlapMetrics,
    compute_metrics,
    critical_path,
    lane_occupancy,
    overlap_fraction,
    overlap_matrix,
)
from repro.obs.tracer import Tracer


def _tracer(window=(0.0, 10.0)) -> Tracer:
    t = Tracer()
    t.meta["t0"], t.meta["t1"] = window
    return t


class TestLaneOccupancy:
    def test_simple(self):
        t = _tracer()
        t.record("host", "c", 0.0, 5.0)
        t.record("mpi", "m", 2.0, 4.0)
        occ = lane_occupancy(t)
        assert occ["host"] == pytest.approx(0.5)
        assert occ["mpi"] == pytest.approx(0.2)

    def test_clipped_to_window(self):
        t = _tracer()
        t.record("host", "setup", -5.0, 2.0)  # setup outside the window
        assert lane_occupancy(t)["host"] == pytest.approx(0.2)

    def test_groups_merged(self):
        t = _tracer()
        t.record("host", "c", 0.0, 5.0, group=0)
        t.record("host", "c", 0.0, 5.0, group=1)  # same instants: not double
        assert lane_occupancy(t)["host"] == pytest.approx(0.5)

    def test_empty(self):
        assert lane_occupancy(Tracer()) == {}


class TestOverlapMatrix:
    def test_pairwise_and_diagonal(self):
        t = _tracer()
        t.record("host", "c", 0.0, 6.0)
        t.record("gpu-kernel", "k", 4.0, 8.0)
        m = overlap_matrix(t)
        assert m[("host", "host")] == pytest.approx(6.0)
        assert m[("gpu-kernel", "gpu-kernel")] == pytest.approx(4.0)
        assert m[("gpu-kernel", "host")] == pytest.approx(2.0)

    def test_keys_sorted(self):
        t = _tracer()
        t.record("zeta", "z", 0.0, 1.0)
        t.record("alpha", "a", 0.0, 1.0)
        m = overlap_matrix(t)
        assert ("alpha", "zeta") in m
        assert ("zeta", "alpha") not in m


class TestOverlapFraction:
    def test_fully_hidden(self):
        t = _tracer()
        t.record("host", "c", 0.0, 10.0)
        t.record("mpi", "m", 2.0, 4.0)
        assert overlap_fraction(t) == pytest.approx(1.0)

    def test_fully_exposed(self):
        t = _tracer()
        t.record("host", "c", 0.0, 2.0)
        t.record("mpi", "m", 5.0, 7.0)
        assert overlap_fraction(t) == pytest.approx(0.0)

    def test_half_hidden(self):
        t = _tracer()
        t.record("gpu-kernel", "k", 0.0, 5.0)
        t.record("gpu-copy", "h2d", 4.0, 6.0)
        assert overlap_fraction(t) == pytest.approx(0.5)

    def test_no_comm_at_all(self):
        t = _tracer()
        t.record("host", "c", 0.0, 10.0)
        assert overlap_fraction(t) == 0.0

    def test_sync_lane_not_counted_as_comm(self):
        """Barriers live on "mpi-sync" and must not dilute the fraction."""
        t = _tracer()
        t.record("host", "c", 0.0, 5.0)
        t.record("mpi", "m", 0.0, 2.0)
        t.record("mpi-sync", "barrier", 8.0, 10.0)  # exposed, but not comm
        assert overlap_fraction(t) == pytest.approx(1.0)


class TestCriticalPath:
    def test_decomposition_sums_to_window(self):
        t = _tracer()
        t.record("host", "c", 0.0, 4.0)
        t.record("mpi", "m", 3.0, 7.0)  # 1 s hidden, 3 s exposed
        cp = critical_path(t)
        assert cp["window_s"] == pytest.approx(10.0)
        assert cp["compute_s"] == pytest.approx(4.0)
        assert cp["exposed_comm_s"] == pytest.approx(3.0)
        assert cp["idle_s"] == pytest.approx(3.0)
        assert cp["compute_s"] + cp["exposed_comm_s"] + cp["idle_s"] == (
            pytest.approx(cp["window_s"])
        )


class TestOverlapMetricsObject:
    def test_to_dict_json_serializable(self):
        t = _tracer()
        t.record("host", "c", 0.0, 5.0)
        t.record("mpi", "m", 1.0, 2.0)
        m = compute_metrics(t)
        d = m.to_dict()
        json.dumps(d)  # must not raise
        assert d["overlap_fraction"] == pytest.approx(1.0)
        assert "host+mpi" in d["overlap_s"]

    def test_summary_mentions_fraction(self):
        m = OverlapMetrics(overlap_fraction=0.5,
                           critical_path={"compute_s": 1.0})
        assert "50.0%" in m.summary()


class TestRealRun:
    def test_metrics_attached_to_result(self, traced_hybrid_overlap):
        r = traced_hybrid_overlap
        assert r.overlap is not None
        assert 0.0 <= r.overlap.overlap_fraction <= 1.0
        cp = r.overlap.critical_path
        assert cp["window_s"] == pytest.approx(r.elapsed_s)
        assert cp["compute_s"] + cp["exposed_comm_s"] + cp["idle_s"] == (
            pytest.approx(cp["window_s"])
        )
        # the host is the busiest lane of this CPU-driven implementation
        assert r.overlap.occupancy["host"] > 0.3
