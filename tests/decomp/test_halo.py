"""Tests for the serialized halo-exchange pack/unpack protocol."""

import numpy as np
import pytest

from repro.decomp.halo import (
    HaloExchangePlan,
    face_message_bytes,
    pack_face,
    unpack_face,
)
from repro.stencil.grid import allocate_field
from repro.stencil.kernels import fill_periodic_halo, interior


def make_field(shape, seed=0):
    rng = np.random.default_rng(seed)
    u = allocate_field(shape)
    interior(u)[...] = rng.random(shape)
    return u


class TestPackUnpack:
    @pytest.mark.parametrize("dim", [0, 1, 2])
    @pytest.mark.parametrize("side", [-1, 1])
    def test_roundtrip_shapes(self, dim, side):
        u = make_field((4, 5, 6))
        buf = pack_face(u, dim, side)
        expected = [6, 7, 8]
        del expected[dim]
        assert buf.shape == tuple(expected)
        assert buf.flags["C_CONTIGUOUS"]

    def test_pack_reads_boundary_plane(self):
        u = make_field((4, 4, 4))
        assert np.array_equal(pack_face(u, 0, -1), u[1])
        assert np.array_equal(pack_face(u, 0, 1), u[-2])

    def test_unpack_writes_halo_plane(self):
        u = make_field((4, 4, 4))
        buf = np.full((6, 6), 9.0)
        unpack_face(u, 1, -1, buf)
        assert np.all(u[:, 0, :] == 9.0)
        unpack_face(u, 1, 1, buf * 2)
        assert np.all(u[:, -1, :] == 18.0)

    def test_bad_side(self):
        u = make_field((4, 4, 4))
        with pytest.raises(ValueError):
            pack_face(u, 0, 0)
        with pytest.raises(ValueError):
            unpack_face(u, 0, 0, np.zeros((6, 6)))

    def test_unpack_shape_mismatch(self):
        u = make_field((4, 4, 4))
        with pytest.raises(ValueError):
            unpack_face(u, 0, -1, np.zeros((5, 6)))

    def test_self_exchange_equals_periodic_fill(self):
        """Serialized pack/unpack against oneself == fill_periodic_halo."""
        u1 = make_field((5, 6, 7), seed=3)
        u2 = u1.copy()
        fill_periodic_halo(u1)
        for dim in range(3):
            lo = pack_face(u2, dim, -1)
            hi = pack_face(u2, dim, 1)
            # my -side boundary becomes my +side halo (periodic self).
            unpack_face(u2, dim, 1, lo)
            unpack_face(u2, dim, -1, hi)
        assert np.array_equal(u1, u2)


class TestMessageBytes:
    def test_includes_rims(self):
        assert face_message_bytes((4, 5, 6), 0) == 7 * 8 * 8
        assert face_message_bytes((4, 5, 6), 2) == 6 * 7 * 8

    def test_matches_pack(self):
        u = make_field((4, 5, 6))
        for dim in range(3):
            assert pack_face(u, dim, -1).nbytes == face_message_bytes((4, 5, 6), dim)

    def test_plan_totals(self):
        plan = HaloExchangePlan((4, 5, 6))
        total = 2 * sum(plan.message_bytes(d) for d in range(3))
        assert plan.total_bytes == total
        assert plan.pack_points(0) == 7 * 8
