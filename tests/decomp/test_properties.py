"""Property-based tests (hypothesis) for the decomposition layer.

These assert the §IV-B contracts over *random* task counts and domains
rather than the handful of hand-picked cases in the example-based tests:

* the partition covers every global cell exactly once (no gaps, no overlap);
* subdomain sizes differ by at most one point per dimension;
* the 26-neighbor relation is symmetric and halo regions pair up
  (what rank a sends toward ``d`` is what its ``d``-neighbor receives);
* the CPU-box decomposition conserves points and respects the thin-box
  thickness constraints.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.decomp.boxdecomp import BoxDecomposition
from repro.decomp.halo26 import (
    OFFSETS26,
    offset_tag,
    pack_region,
    region_points,
    total_exchange_bytes,
    unpack_region,
)
from repro.decomp.partition import Decomposition, block_range, choose_task_grid

# Small-but-irregular spaces: primes, perfect cubes, and everything between.
_ntasks = st.integers(min_value=1, max_value=64)
_dim = st.integers(min_value=4, max_value=40)
_domains = st.tuples(_dim, _dim, _dim)


@st.composite
def _decomps(draw):
    domain = draw(_domains)
    ntasks = draw(_ntasks)
    try:
        return Decomposition(ntasks, domain)
    except ValueError:
        # no factor triple of ntasks fits this domain (e.g. a large prime):
        # infeasible input, not a decomposition bug.
        assume(False)


class TestPartitionCoversExactlyOnce:
    @given(_decomps())
    @settings(max_examples=60, deadline=None)
    def test_every_cell_owned_exactly_once(self, decomp):
        cover = np.zeros(decomp.domain, dtype=np.int32)
        for rank in range(decomp.ntasks):
            sub = decomp.subdomain(rank)
            sl = tuple(
                slice(o, o + s) for o, s in zip(sub.offset, sub.shape)
            )
            cover[sl] += 1
        assert cover.min() == 1 and cover.max() == 1

    @given(_decomps())
    @settings(max_examples=60, deadline=None)
    def test_no_empty_subdomain(self, decomp):
        for rank in range(decomp.ntasks):
            assert decomp.subdomain(rank).points >= 1

    @given(_decomps())
    @settings(max_examples=60, deadline=None)
    def test_imbalance_at_most_one_point_per_dimension(self, decomp):
        big = decomp.max_subdomain_shape()
        small = decomp.min_subdomain_shape()
        for b, s in zip(big, small):
            assert 0 <= b - s <= 1

    @given(_decomps())
    @settings(max_examples=60, deadline=None)
    def test_task_grid_ordering_matches_paper(self, decomp):
        """Fewest cuts in x, most in z -> subdomains largest in x."""
        px, py, pz = decomp.task_grid
        assert px <= py <= pz


class TestBlockRange:
    @given(st.integers(min_value=1, max_value=500),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_blocks_tile_the_axis(self, n, p):
        if p > n:
            with pytest.raises(ValueError):
                block_range(n, p, 0)
            return
        end = 0
        for i in range(p):
            start, size = block_range(n, p, i)
            assert start == end and size >= 1
            end = start + size
        assert end == n


class TestNeighborSymmetry:
    @given(_decomps())
    @settings(max_examples=60, deadline=None)
    def test_face_neighbors_are_mutual(self, decomp):
        for rank in range(decomp.ntasks):
            for dim in range(3):
                for side in (-1, 1):
                    nbr = decomp.neighbor(rank, dim, side)
                    assert decomp.neighbor(nbr, dim, -side) == rank

    @given(_decomps())
    @settings(max_examples=40, deadline=None)
    def test_26_neighborhood_is_symmetric(self, decomp):
        for rank in range(decomp.ntasks):
            for nbr in decomp.all_neighbors(rank):
                assert rank in decomp.all_neighbors(nbr)

    @given(_decomps())
    @settings(max_examples=60, deadline=None)
    def test_coords_roundtrip(self, decomp):
        for rank in range(decomp.ntasks):
            assert decomp.rank_of(decomp.coords_of(rank)) == rank


_shapes = st.tuples(
    st.integers(min_value=3, max_value=16),
    st.integers(min_value=3, max_value=16),
    st.integers(min_value=3, max_value=16),
)


class TestHalo26Regions:
    @given(_shapes)
    @settings(max_examples=60, deadline=None)
    def test_opposite_offsets_carry_equal_points(self, shape):
        """Send toward d and receive from d are the same-shaped region."""
        for d in OFFSETS26:
            opp = tuple(-c for c in d)
            assert region_points(shape, d) == region_points(shape, opp)

    @given(_shapes)
    @settings(max_examples=60, deadline=None)
    def test_total_bytes_matches_region_sum(self, shape):
        total = sum(region_points(shape, d) for d in OFFSETS26) * 8
        assert total_exchange_bytes(shape, itemsize=8) == total

    @given(_shapes)
    @settings(max_examples=30, deadline=None)
    def test_pack_unpack_roundtrip(self, shape):
        """A periodic self-exchange reconstructs the array's own halo."""
        nx, ny, nz = shape
        field = np.arange((nx + 2) * (ny + 2) * (nz + 2), dtype=float).reshape(
            nx + 2, ny + 2, nz + 2
        )
        interior = field[1:-1, 1:-1, 1:-1].copy()
        for d in OFFSETS26:
            buf = pack_region(field, d)
            assert buf.size == region_points(shape, d)
            unpack_region(field, tuple(-c for c in d), buf.copy())
        # interior untouched by halo writes
        np.testing.assert_array_equal(field[1:-1, 1:-1, 1:-1], interior)

    def test_tags_unique(self):
        tags = [offset_tag(d) for d in OFFSETS26]
        assert len(set(tags)) == len(tags)


@st.composite
def _boxes(draw):
    t = draw(st.integers(min_value=1, max_value=5))
    lo = 2 * t + 1  # smallest shape leaving a non-empty GPU block
    shape = draw(st.tuples(*[st.integers(min_value=lo, max_value=32)] * 3))
    return shape, t


class TestBoxDecomposition:
    @given(_boxes())
    @settings(max_examples=80, deadline=None)
    def test_walls_and_block_conserve_points(self, box):
        shape, t = box
        bd = BoxDecomposition(shape, t)
        assert bd.gpu_points + bd.cpu_points == bd.total_points
        assert sum(w.points for w in bd.walls()) == bd.cpu_points

    @given(_boxes())
    @settings(max_examples=80, deadline=None)
    def test_walls_do_not_overlap(self, box):
        shape, t = box
        bd = BoxDecomposition(shape, t)
        cover = np.zeros(shape, dtype=np.int32)
        for w in bd.walls():
            sl = tuple(slice(l, h) for l, h in zip(w.lo, w.hi))
            cover[sl] += 1
        block = tuple(slice(l, h) for l, h in zip(bd.block_lo, bd.block_hi))
        cover[block] += 1
        assert cover.min() == 1 and cover.max() == 1

    @given(_boxes())
    @settings(max_examples=80, deadline=None)
    def test_block_shape_respects_thickness(self, box):
        shape, t = box
        bd = BoxDecomposition(shape, t)
        for n, lo, hi in zip(shape, bd.block_lo, bd.block_hi):
            assert lo == t and hi == n - t and hi - lo >= 1

    @given(st.tuples(*[st.integers(min_value=3, max_value=12)] * 3),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_too_thick_box_rejected(self, shape, t):
        if min(shape) <= 2 * t:
            with pytest.raises(ValueError):
                BoxDecomposition(shape, t)
        else:
            BoxDecomposition(shape, t)  # must not raise

    @given(_boxes())
    @settings(max_examples=40, deadline=None)
    def test_cpu_fraction_in_unit_interval(self, box):
        shape, t = box
        bd = BoxDecomposition(shape, t)
        assert 0.0 < bd.cpu_fraction < 1.0


class TestChooseTaskGrid:
    @given(st.integers(min_value=1, max_value=128), _domains)
    @settings(max_examples=80, deadline=None)
    def test_grid_factors_ntasks_and_fits(self, ntasks, domain):
        from repro.decomp.partition import _factor_triples

        try:
            px, py, pz = choose_task_grid(ntasks, domain)
        except ValueError:
            # must only happen when genuinely no sorted factor triple fits
            assert all(
                p1 > domain[0] or p2 > domain[1] or p3 > domain[2]
                for p1, p2, p3 in _factor_triples(ntasks)
            )
            return
        assert px * py * pz == ntasks
        assert px <= domain[0] and py <= domain[1] and pz <= domain[2]
