"""Tests for the direct 26-neighbor exchange regions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomp.halo26 import (
    OFFSETS26,
    offset_tag,
    pack_region,
    region_bytes,
    region_points,
    total_exchange_bytes,
    unpack_region,
)
from repro.stencil.grid import allocate_field
from repro.stencil.kernels import fill_periodic_halo, interior


def make_field(shape, seed=0):
    rng = np.random.default_rng(seed)
    u = allocate_field(shape)
    interior(u)[...] = rng.random(shape)
    return u


class TestOffsets:
    def test_26_offsets(self):
        assert len(OFFSETS26) == 26
        assert (0, 0, 0) not in OFFSETS26

    def test_faces_edges_corners(self):
        by_order = {}
        for d in OFFSETS26:
            by_order.setdefault(sum(map(abs, d)), []).append(d)
        assert len(by_order[1]) == 6  # faces
        assert len(by_order[2]) == 12  # edges
        assert len(by_order[3]) == 8  # corners

    def test_tags_unique(self):
        tags = [offset_tag(d) for d in OFFSETS26]
        assert len(set(tags)) == 26

    def test_tag_symmetry_distinct(self):
        for d in OFFSETS26:
            assert offset_tag(d) != offset_tag(tuple(-x for x in d))


class TestRegions:
    def test_face_region_size(self):
        assert region_points((10, 12, 14), (1, 0, 0)) == 12 * 14
        assert region_points((10, 12, 14), (0, 0, -1)) == 10 * 12

    def test_edge_and_corner_sizes(self):
        assert region_points((10, 12, 14), (1, 1, 0)) == 14
        assert region_points((10, 12, 14), (1, -1, 1)) == 1

    def test_total_bytes_counts_everything(self):
        shape = (5, 6, 7)
        total = total_exchange_bytes(shape)
        manual = sum(region_bytes(shape, d) for d in OFFSETS26)
        assert total == manual

    def test_direct_volume_below_serialized(self):
        """No rims -> strictly fewer bytes than the 6-plane protocol."""
        from repro.decomp.halo import face_message_bytes

        shape = (20, 20, 20)
        serialized = 2 * sum(face_message_bytes(shape, d) for d in range(3))
        assert total_exchange_bytes(shape) < serialized


class TestPackUnpack:
    @given(d=st.sampled_from(OFFSETS26))
    @settings(max_examples=26, deadline=None)
    def test_self_exchange_equals_periodic_fill(self, d):
        """Packing toward d and unpacking at -d reproduces periodicity."""
        u1 = make_field((5, 6, 7), seed=4)
        u2 = u1.copy()
        fill_periodic_halo(u1)
        neg = tuple(-x for x in d)
        buf = pack_region(u2, d)
        unpack_region(u2, neg, buf)
        # the halo region at -d must now match the periodic fill
        from repro.decomp.halo26 import _recv_slices

        sl = _recv_slices((5, 6, 7), neg)
        assert np.array_equal(u1[sl], u2[sl])

    def test_all_26_self_exchanges_fill_entire_halo(self):
        u1 = make_field((6, 6, 6), seed=9)
        u2 = u1.copy()
        fill_periodic_halo(u1)
        for d in OFFSETS26:
            buf = pack_region(u2, d)
            unpack_region(u2, tuple(-x for x in d), buf)
        assert np.array_equal(u1, u2)

    def test_unpack_shape_mismatch(self):
        u = make_field((6, 6, 6))
        with pytest.raises(ValueError):
            unpack_region(u, (1, 0, 0), np.zeros((3, 3)))
