"""Tests for task grids, block ranges, and subdomain/neighbor maps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomp.partition import (
    Decomposition,
    _factor_triples,
    block_range,
    choose_task_grid,
)


def _min_largest_factor(n):
    """Largest factor of the triple minimizing the largest factor."""
    return min((t for t in _factor_triples(n)), key=lambda t: t[2])


class TestBlockRange:
    @given(n=st.integers(1, 2000), p=st.integers(1, 200))
    @settings(max_examples=150)
    def test_partition_properties(self, n, p):
        if p > n:
            with pytest.raises(ValueError):
                block_range(n, p, 0)
            return
        sizes, starts = [], []
        for i in range(p):
            s, sz = block_range(n, p, i)
            starts.append(s)
            sizes.append(sz)
        # covers exactly [0, n)
        assert sum(sizes) == n
        assert starts[0] == 0
        for i in range(1, p):
            assert starts[i] == starts[i - 1] + sizes[i - 1]
        # paper guarantee: sizes differ by at most one, none empty
        assert max(sizes) - min(sizes) <= 1
        assert min(sizes) >= 1

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            block_range(10, 3, 3)
        with pytest.raises(ValueError):
            block_range(10, 3, -1)


class TestChooseTaskGrid:
    def test_perfect_cube(self):
        # Paper: cube-count tasks whose root divides 420 give equal cubes.
        assert choose_task_grid(64) == (4, 4, 4)
        assert choose_task_grid(27) == (3, 3, 3)

    def test_single_task(self):
        assert choose_task_grid(1) == (1, 1, 1)

    def test_prime_count(self):
        px, py, pz = choose_task_grid(31)
        assert px * py * pz == 31
        assert (px, py, pz) == (1, 1, 31)

    @given(ntasks=st.integers(1, 5000))
    @settings(max_examples=120)
    def test_product_and_ordering(self, ntasks):
        try:
            px, py, pz = choose_task_grid(ntasks)
        except ValueError:
            # No aligned factorization can avoid empty subdomains (e.g. a
            # prime count with a factor exceeding the domain edge); the
            # paper's no-empty-domain constraint makes this an error.
            assert max(f for f in _min_largest_factor(ntasks)) > 420
            return
        assert px * py * pz == ntasks
        # fewest cuts in x -> subdomain largest in x, smallest in z (paper)
        assert px <= py <= pz

    def test_no_empty_subdomains(self):
        # 1000 tasks on a tiny domain must still give everyone points.
        grid = choose_task_grid(1000, (10, 10, 10))
        assert all(p <= 10 for p in grid)

    def test_too_many_tasks_rejected(self):
        with pytest.raises(ValueError):
            choose_task_grid(1001, (10, 10, 10))

    def test_zero_tasks_rejected(self):
        with pytest.raises(ValueError):
            choose_task_grid(0)


class TestDecomposition:
    @given(ntasks=st.integers(1, 600))
    @settings(max_examples=60, deadline=None)
    def test_subdomains_tile_domain(self, ntasks):
        domain = (20, 24, 28)
        if ntasks > 20 * 24 * 28:
            return
        try:
            d = Decomposition(ntasks, domain)
        except ValueError:
            return
        cover = np.zeros(domain, dtype=int)
        for r in range(ntasks):
            sub = d.subdomain(r)
            sl = tuple(slice(o, o + s) for o, s in zip(sub.offset, sub.shape))
            cover[sl] += 1
        assert (cover == 1).all()  # exact tiling, no gaps, no overlap

    def test_rank_coords_roundtrip(self):
        d = Decomposition(24, (420, 420, 420))
        for r in range(24):
            assert d.rank_of(d.coords_of(r)) == r

    def test_neighbor_symmetry(self):
        d = Decomposition(36, (60, 60, 60))
        for r in range(36):
            for dim in range(3):
                for side in (-1, 1):
                    nbr = d.neighbor(r, dim, side)
                    assert d.neighbor(nbr, dim, -side) == r

    def test_neighbor_bad_side(self):
        d = Decomposition(8)
        with pytest.raises(ValueError):
            d.neighbor(0, 0, 2)

    def test_self_neighbor_for_small_counts(self):
        """A task may be its own neighbor (paper §IV-B)."""
        d = Decomposition(2, (420, 420, 420))
        # 2 tasks -> grid (1,1,2): x and y neighbors are self.
        assert d.neighbor(0, 0, 1) == 0
        assert d.neighbor(0, 2, 1) == 1

    def test_all_neighbors_at_most_26(self):
        d = Decomposition(64, (64, 64, 64))
        for r in (0, 21, 63):
            nbrs = d.all_neighbors(r)
            assert len(nbrs) <= 26
            assert r not in nbrs or d.ntasks < 27

    def test_26_neighbors_for_large_grid(self):
        d = Decomposition(4 * 4 * 4, (64, 64, 64))
        assert len(d.all_neighbors(0)) == 26

    def test_max_min_shapes(self):
        d = Decomposition(8, (10, 10, 10))
        mx = d.max_subdomain_shape()
        mn = d.min_subdomain_shape()
        assert all(a - b <= 1 for a, b in zip(mx, mn))
        assert mx == (5, 5, 5)

    def test_subdomain_rank_bounds(self):
        d = Decomposition(8)
        with pytest.raises(ValueError):
            d.subdomain(8)

    def test_face_points(self):
        d = Decomposition(1, (10, 12, 14))
        sub = d.subdomain(0)
        assert sub.face_points(0) == 12 * 14
        assert sub.face_points(2) == 10 * 12
        assert sub.points == 10 * 12 * 14

    def test_node_mapping(self):
        d = Decomposition(8)
        assert d.node_of(0, 4) == 0
        assert d.node_of(7, 4) == 1
        with pytest.raises(ValueError):
            d.node_of(0, 0)

    def test_offnode_dims_slab(self):
        """With one task per node every off-self neighbor is off-node."""
        d = Decomposition(8, (40, 40, 40))  # (2,2,2)
        off = d.offnode_dims(0, tasks_per_node=1)
        assert all(all(v) for v in off.values())

    def test_offnode_dims_x_on_node(self):
        """Consecutive x ranks share a node under contiguous placement."""
        d = Decomposition(64, (64, 64, 64))  # (4,4,4), x fastest
        off = d.offnode_dims(1, tasks_per_node=4)
        assert off[0] == (False, False)  # both x neighbors on node
        assert off[1] == (True, True)
        assert off[2] == (True, True)
