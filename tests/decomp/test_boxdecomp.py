"""Tests for the Fig. 1 CPU-box / GPU-block decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomp.boxdecomp import BoxDecomposition

shapes = st.tuples(st.integers(5, 30), st.integers(5, 30), st.integers(5, 30))


def brute_force_cover(box):
    """Mark each interior point by who computes it."""
    owner = np.full(box.shape, " ", dtype="U1")
    lo, hi = box.block_lo, box.block_hi
    owner[lo[0] : hi[0], lo[1] : hi[1], lo[2] : hi[2]] = "G"
    for w in box.walls():
        region = owner[w.lo[0] : w.hi[0], w.lo[1] : w.hi[1], w.lo[2] : w.hi[2]]
        assert (region == " ").all(), "walls overlap block or each other"
        region[...] = "C"
    return owner


class TestConstruction:
    def test_thickness_validation(self):
        with pytest.raises(ValueError):
            BoxDecomposition((10, 10, 10), 0)
        with pytest.raises(ValueError):
            BoxDecomposition((10, 10, 10), 5)  # no block left

    def test_block_geometry(self):
        box = BoxDecomposition((10, 12, 14), 2)
        assert box.block_lo == (2, 2, 2)
        assert box.block_hi == (8, 10, 12)
        assert box.block_shape == (6, 8, 10)

    @given(shape=shapes, t=st.integers(1, 4))
    @settings(max_examples=60)
    def test_partition_is_exact(self, shape, t):
        if min(shape) <= 2 * t:
            return
        box = BoxDecomposition(shape, t)
        owner = brute_force_cover(box)
        assert (owner != " ").all()  # every point owned
        assert (owner == "G").sum() == box.gpu_points
        assert (owner == "C").sum() == box.cpu_points
        assert box.gpu_points + box.cpu_points == box.total_points

    def test_cpu_fraction(self):
        box = BoxDecomposition((10, 10, 10), 1)
        assert box.cpu_fraction == pytest.approx((1000 - 512) / 1000)


class TestExchangeSurfaces:
    @given(shape=shapes, t=st.integers(1, 3))
    @settings(max_examples=40)
    def test_layer_counts_match_brute_force(self, shape, t):
        if min(shape) <= 2 * t + 2:
            return
        box = BoxDecomposition(shape, t)
        bx, by, bz = box.block_shape
        # block's outermost layer
        inner_boundary = bx * by * bz - max(0, bx - 2) * max(0, by - 2) * max(0, bz - 2)
        assert box.inner_boundary_points == inner_boundary
        # one-point shell just outside the block
        outer = (bx + 2) * (by + 2) * (bz + 2) - bx * by * bz
        assert box.inner_halo_points == outer

    def test_exchange_bytes(self):
        box = BoxDecomposition((12, 12, 12), 2)
        h2d, d2h = box.inner_exchange_bytes()
        assert h2d == box.inner_halo_points * 8
        assert d2h == box.inner_boundary_points * 8


class TestWallInterior:
    @given(shape=shapes, t=st.integers(1, 3))
    @settings(max_examples=40)
    def test_interiors_plus_outer_cover_walls(self, shape, t):
        if min(shape) <= 2 * t:
            return
        box = BoxDecomposition(shape, t)
        interiors = sum(box.wall_interior_points_for(w) for w in box.walls())
        assert interiors + box.wall_outer_boundary_points() == box.cpu_points

    def test_interior_boxes_avoid_outer_surface(self):
        box = BoxDecomposition((10, 10, 10), 2)
        nx, ny, nz = box.shape
        for w in box.walls():
            lo, hi = box.wall_interior_box(w)
            assert all(l >= 1 for l in lo)
            assert all(h <= n - 1 for h, n in zip(hi, (nx, ny, nz)))

    def test_thickness_one_walls_are_all_outer(self):
        box = BoxDecomposition((10, 10, 10), 1)
        assert all(box.wall_interior_points_for(w) == 0 for w in box.walls())

    def test_walls_for_dim(self):
        box = BoxDecomposition((10, 10, 10), 2)
        for dim in range(3):
            walls = box.walls_for_dim(dim)
            assert len(walls) == 2
            assert {w.side for w in walls} == {-1, 1}
