"""Calibration anchors: the paper's quantitative results, with bands.

These tests pin the simulator to the paper's reported numbers so model
refactors cannot silently drift the reproduction. Anchors from §V-E are
held within +/-25%; structural optima (block sizes) are exact.
"""

import pytest

from repro.core.config import RunConfig
from repro.core.runner import run
from repro.machines import LENS, YONA
from repro.perf.sweep import best_over_threads
from repro.simgpu.blockmodel import best_block, kernel_rate_gflops


def band(measured, paper, tol=0.25):
    assert paper * (1 - tol) <= measured <= paper * (1 + tol), (
        f"measured {measured:.1f} GF outside +/-{tol:.0%} of paper {paper} GF"
    )


class TestSec5EAnchors:
    """§V-E single-node Yona: 86 / 24 / 35 / 82 GF."""

    def test_gpu_resident_86(self):
        r = run(RunConfig(machine=YONA, implementation="gpu_resident",
                          cores=12, threads_per_task=12))
        assert r.gflops == pytest.approx(86.0, rel=0.02)

    def test_gpu_bulk_24(self):
        r = best_over_threads(YONA, "gpu_bulk", 12)
        band(r.gflops, 24.0)

    def test_gpu_streams_35(self):
        r = best_over_threads(YONA, "gpu_streams", 12)
        band(r.gflops, 35.0)

    def test_hybrid_overlap_82(self):
        r = best_over_threads(YONA, "hybrid_overlap", 12)
        band(r.gflops, 82.0)

    def test_ordering(self):
        """resident > hybrid >> streams > bulk (the section's storyline)."""
        resident = run(RunConfig(machine=YONA, implementation="gpu_resident",
                                 cores=12, threads_per_task=12)).gflops
        bulk = best_over_threads(YONA, "gpu_bulk", 12).gflops
        streams = best_over_threads(YONA, "gpu_streams", 12).gflops
        hybrid = best_over_threads(YONA, "hybrid_overlap", 12).gflops
        assert bulk < streams < hybrid <= resident
        # hybrid "nearly matches" resident:
        assert hybrid > 0.85 * resident
        # moving the boundary exchange to the CPUs costs > 2x:
        assert resident / bulk > 2.0


class TestBlockAnchors:
    def test_lens_block_32x11(self):
        assert best_block(LENS.gpu) == (32, 11)

    def test_yona_block_32x8(self):
        assert best_block(YONA.gpu) == (32, 8)

    def test_yona_peak_86(self):
        assert kernel_rate_gflops(YONA.gpu, (32, 8)) == pytest.approx(86.0)


class TestHeadlineClaims:
    def test_abstract_factor_of_two(self):
        """Abstract: overlap 'can provide improvements of more than 2x'."""
        cores = 48
        hybrid = best_over_threads(YONA, "hybrid_overlap", cores).gflops
        others = [
            best_over_threads(YONA, key, cores).gflops
            for key in ("bulk", "nonblocking", "thread_overlap", "gpu_bulk", "gpu_streams")
        ]
        assert hybrid > 2.0 * max(others)

    def test_yona_hybrid_over_4x_cpu(self):
        """§V-D: best CPU-GPU > 4x best CPU-only on Yona (full machine)."""
        cores = 192
        hybrid = best_over_threads(YONA, "hybrid_overlap", cores).gflops
        cpu = max(
            best_over_threads(YONA, k, cores).gflops
            for k in ("bulk", "nonblocking", "thread_overlap")
        )
        assert hybrid > 4.0 * cpu

    def test_lens_sum_property(self):
        """§V-D: best CPU-GPU exceeds best-CPU + best-GPU-only on Lens."""
        satisfied = False
        for cores in (128, 256):
            hybrid = best_over_threads(LENS, "hybrid_overlap", cores).gflops
            cpu = max(
                best_over_threads(LENS, k, cores).gflops
                for k in ("bulk", "nonblocking")
            )
            gpu = max(
                best_over_threads(LENS, k, cores).gflops
                for k in ("gpu_bulk", "gpu_streams")
            )
            if hybrid > cpu + gpu:
                satisfied = True
        assert satisfied
