"""Table II transcription checks and catalog lookups."""

import pytest

from repro.machines import (
    A100_SXM,
    EFA_CLOUD,
    HOPPER,
    JAGUARPF,
    LENS,
    MACHINES,
    MILAN_SS11,
    YONA,
    ProgressModel,
    get_machine,
    normalize_machine_name,
)


class TestTable2Transcription:
    """Every published Table II value, verbatim."""

    @pytest.mark.parametrize(
        "machine,nodes,mem,sockets,cps,clock",
        [
            (JAGUARPF, 18688, 16, 2, 6, 2.6),
            (HOPPER, 6392, 32, 2, 12, 2.1),
            (LENS, 31, 64, 4, 4, 2.3),
            (YONA, 16, 32, 2, 6, 2.6),
        ],
    )
    def test_node_rows(self, machine, nodes, mem, sockets, cps, clock):
        assert machine.compute_nodes == nodes
        assert machine.node.memory_gb == mem
        assert machine.node.sockets == sockets
        assert machine.node.cores_per_socket == cps
        assert machine.node.clock_ghz == clock

    @pytest.mark.parametrize(
        "machine,interconnect,mpi",
        [
            (JAGUARPF, "Cray SeaStar 2+", "Cray MPT 4.0.0"),
            (HOPPER, "Cray Gemini", "Cray MPT 5.1.3"),
            (LENS, "DDR Infiniband", "OpenMPI 1.3.3"),
            (YONA, "QDR Infiniband", "OpenMPI 1.7a1"),
        ],
    )
    def test_interconnect_rows(self, machine, interconnect, mpi):
        assert machine.interconnect.name == interconnect
        assert machine.interconnect.mpi_name == mpi

    def test_gpu_rows(self):
        assert JAGUARPF.gpu is None and HOPPER.gpu is None
        assert LENS.gpu.name == "Tesla C1060" and LENS.gpu.memory_gb == 4
        assert YONA.gpu.name == "Tesla C2050" and YONA.gpu.memory_gb == 3

    def test_cores_per_gpu(self):
        """Paper: one GPU per 16 cores on Lens, per 12 on Yona."""
        assert LENS.cores_per_gpu == 16
        assert YONA.cores_per_gpu == 12
        with pytest.raises(ValueError):
            JAGUARPF.cores_per_gpu

    def test_thread_options_match_section_vb(self):
        assert JAGUARPF.thread_options == (1, 2, 3, 6, 12)
        assert HOPPER.thread_options == (1, 2, 3, 6, 12, 24)
        assert LENS.thread_options == (1, 2, 4, 8, 16)
        assert YONA.thread_options == (1, 2, 3, 6, 12)

    def test_gpu_generations(self):
        """§V-C: C1060 max 512 threads/block, C2050 max 1024; warp 32."""
        assert LENS.gpu.max_threads_per_block == 512
        assert YONA.gpu.max_threads_per_block == 1024
        assert LENS.gpu.warp_size == YONA.gpu.warp_size == 32
        assert LENS.gpu.copy_engines == 1
        assert YONA.gpu.copy_engines == 2

    def test_yona_pcie_faster_than_lens(self):
        """§III: Yona has 'a faster PCIe bus'."""
        assert YONA.gpu.pcie_bandwidth_gbs > LENS.gpu.pcie_bandwidth_gbs


class TestLookup:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("yona", YONA),
            ("Yona", YONA),
            ("jaguarpf", JAGUARPF),
            ("jaguar", JAGUARPF),
            ("hopper", HOPPER),
            ("Hopper II", HOPPER),
            ("LENS", LENS),
        ],
    )
    def test_get_machine(self, name, expected):
        assert get_machine(name) is expected

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            get_machine("bluegene")

    def test_nodes_for_cores(self):
        assert YONA.nodes_for_cores(12) == 1
        assert YONA.nodes_for_cores(48) == 4
        with pytest.raises(ValueError):
            YONA.nodes_for_cores(18)

    def test_total_cores(self):
        assert JAGUARPF.total_cores == 18688 * 12
        assert HOPPER.total_cores == 6392 * 24

    def test_validate_threads(self):
        YONA.validate_threads(6)
        with pytest.raises(ValueError):
            YONA.validate_threads(13)


class TestKeyNormalization:
    """Regression: registration stripped only spaces while lookup stripped
    spaces and hyphens, so any hyphenated catalog name ("A100-SXM") was
    registered under a key ("a100-sxm") no lookup could ever produce."""

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("A100-SXM", A100_SXM),
            ("a100-sxm", A100_SXM),
            ("a100sxm", A100_SXM),
            ("A100 SXM", A100_SXM),
            ("a100", A100_SXM),
            ("Milan-SS11", MILAN_SS11),
            ("milan", MILAN_SS11),
            ("EFA-Cloud", EFA_CLOUD),
            ("efa", EFA_CLOUD),
        ],
    )
    def test_hyphenated_names_resolve(self, name, expected):
        assert get_machine(name) is expected

    def test_every_display_name_resolves(self):
        """The invariant the bug broke: a machine's own name looks it up."""
        for machine in set(MACHINES.values()):
            assert get_machine(machine.name) is machine

    def test_normalize_machine_name(self):
        assert normalize_machine_name("A100-SXM") == "a100sxm"
        assert normalize_machine_name(" Hopper II ") == "hopperii"
        assert normalize_machine_name("yona") == "yona"


class TestModernMachines:
    def test_a100_progress_and_gpu_aware(self):
        ic = A100_SXM.interconnect
        assert ic.progress is ProgressModel.HARDWARE_OFFLOAD
        assert ic.gpudirect and ic.nics_per_node == 4
        assert A100_SXM.gpu.has_nvlink
        assert A100_SXM.gpu.nvlink_bandwidth_gbs > A100_SXM.gpu.pcie_bandwidth_gbs

    def test_paper_machines_keep_manual_poll(self):
        for m in (JAGUARPF, HOPPER, LENS, YONA):
            ic = m.interconnect
            assert ic.progress is ProgressModel.MANUAL_POLL
            assert not ic.gpudirect and ic.nics_per_node == 1
            if m.gpu is not None:
                assert not m.gpu.has_nvlink

    def test_efa_uses_progress_thread(self):
        ic = EFA_CLOUD.interconnect
        assert ic.progress is ProgressModel.PROGRESS_THREAD
        assert ic.progress_tax > 0.0

    def test_milan_is_cpu_only(self):
        assert MILAN_SS11.gpu is None
        assert MILAN_SS11.interconnect.progress is ProgressModel.HARDWARE_OFFLOAD
