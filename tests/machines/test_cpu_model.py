"""Tests for the CPU roofline/OpenMP/NUMA timing model."""

import pytest

from repro.machines import HOPPER, JAGUARPF
from repro.machines.cpu_model import (
    boundary_compute_time,
    copy_state_time,
    memcpy_time,
    omp_region_overhead,
    task_compute_time,
    task_memory_bandwidth,
)


class TestMemoryBandwidth:
    def test_scales_with_threads_within_numa(self):
        node = JAGUARPF.node
        bw1 = task_memory_bandwidth(node, 1)
        bw6 = task_memory_bandwidth(node, 6)
        assert bw6 == pytest.approx(6 * bw1)

    def test_numa_penalty_when_spanning(self):
        node = JAGUARPF.node  # 6 cores per NUMA domain
        bw12 = task_memory_bandwidth(node, 12)
        assert bw12 < 2 * task_memory_bandwidth(node, 6)

    def test_hopper_spans_four_domains_at_24(self):
        node = HOPPER.node  # 6-core dies
        per_core = task_memory_bandwidth(node, 1)
        bw24 = task_memory_bandwidth(node, 24)
        assert bw24 < 24 * per_core * 0.7  # three extra domains of penalty

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            task_memory_bandwidth(JAGUARPF.node, 0)


class TestComputeTime:
    def test_zero_points(self):
        assert task_compute_time(JAGUARPF.node, 4, 0) == 0.0

    def test_linear_in_points(self):
        node = JAGUARPF.node
        t1 = task_compute_time(node, 1, 10**6, region_overhead=False)
        t2 = task_compute_time(node, 1, 2 * 10**6, region_overhead=False)
        assert t2 == pytest.approx(2 * t1)

    def test_more_threads_faster_but_sublinear(self):
        node = JAGUARPF.node
        t1 = task_compute_time(node, 1, 10**7)
        t6 = task_compute_time(node, 6, 10**7)
        assert t6 < t1
        assert t6 > t1 / 6  # parallel inefficiency + region overhead

    def test_guided_slower_than_static(self):
        node = JAGUARPF.node
        ts = task_compute_time(node, 6, 10**6)
        tg = task_compute_time(node, 6, 10**6, guided=True)
        assert tg > ts

    def test_boundary_slower_than_interior(self):
        node = JAGUARPF.node
        assert boundary_compute_time(node, 6, 10**5) > task_compute_time(
            node, 6, 10**5
        )

    def test_region_overhead_only_for_parallel(self):
        node = JAGUARPF.node
        assert omp_region_overhead(node, 1) == 0.0
        assert omp_region_overhead(node, 6) > 0.0
        assert omp_region_overhead(node, 12) > omp_region_overhead(node, 2)

    def test_copy_state_cheaper_than_sweep(self):
        node = JAGUARPF.node
        assert copy_state_time(node, 6, 10**6) < task_compute_time(node, 6, 10**6)


class TestMemcpy:
    def test_zero_bytes(self):
        assert memcpy_time(JAGUARPF.node, 0) == 0.0

    def test_stride_penalty(self):
        node = JAGUARPF.node
        fast = memcpy_time(node, 10**6, 4, stride_penalty=1.0)
        slow = memcpy_time(node, 10**6, 4, stride_penalty=0.5)
        assert slow == pytest.approx(2 * fast)

    def test_threads_speed_up_copies(self):
        node = JAGUARPF.node
        assert memcpy_time(node, 10**6, 6) < memcpy_time(node, 10**6, 1)
