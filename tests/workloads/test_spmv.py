"""SpMV workload tests: pattern determinism, functional exactness,
the SS V-E overlap ordering, and trace invariants."""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.runner import run
from repro.machines import A100_SXM, JAGUARPF, YONA
from repro.obs.invariants import assert_invariants
from repro.workloads import get_workload
from repro.workloads.spmv import (
    DEFAULT_SPMV_PARAMS,
    SpmvProblem,
    gather_tag,
    initial_x,
    spmv_params,
)

SMALL = (("rows", 1 << 12), ("band", 8), ("extras", 2))
#: the fast-experiment problem size: enough interior work that overlap
#: has something to hide the gather under (the SS V-E regime).
MEDIUM = (("rows", 1 << 17),)


def _cfg(machine, impl, cores, threads, **kw):
    kw.setdefault("workload_params", SMALL)
    return RunConfig(machine=machine, implementation=impl, cores=cores,
                     threads_per_task=threads, steps=2, workload="spmv", **kw)


class TestProblem:
    """The matrix pattern is a pure function of (params, row) alone."""

    def test_pattern_identical_across_task_counts(self):
        # A rank's stream is band-entries-then-extras for *its block*, so
        # streams are compared in the canonical per-row order: a stable
        # sort by global row preserves each row's internal order (band
        # ascending, then extras in draw order) in both streams.
        def canonical(rws, cols, vals):
            order = np.argsort(rws, kind="stable")
            return rws[order], cols[order], vals[order]

        rows, band, extras, pseed = 4096, 8, 2, 1
        one = SpmvProblem(rows, band, extras, pseed, 1)
        rws1, cols1, vals1 = canonical(*one.triplets(0))
        for ntasks in (2, 3, 7):
            parts = SpmvProblem(rows, band, extras, pseed, ntasks)
            rws, cols, vals = [], [], []
            for r in range(ntasks):
                row0, _ = parts.block(r)
                a, b, c = parts.triplets(r)
                rws.append(a + row0)
                cols.append(b)
                vals.append(c)
            got = canonical(
                np.concatenate(rws), np.concatenate(cols), np.concatenate(vals)
            )
            assert np.array_equal(got[0], rws1)
            assert np.array_equal(got[1], cols1)
            # bitwise, not approx: the value stream is keyed globally
            assert np.array_equal(got[2], vals1)

    def test_nnz_split_is_consistent(self):
        pr = SpmvProblem(4096, 8, 2, 1, 4)
        total = 0
        for r in range(4):
            c = pr.coupling(r)
            assert c.nnz_interior + c.nnz_boundary == c.nnz
            assert c.nnz_interior >= 0 and c.nnz_boundary >= 0
            total += c.nnz
        assert total == pr.nnz_total

    def test_interior_dominates_at_scale(self):
        # The point of the workload: the non-local matrix part is a small
        # slice, so there is compute to hide the gather under.
        pr = SpmvProblem(1 << 16, 48, 4, 1, 8)
        c = pr.coupling(3)
        assert c.nnz_interior > 10 * c.nnz_boundary

    def test_gather_plan_covers_exactly_the_remote_columns(self):
        pr = SpmvProblem(4096, 8, 2, 1, 4)
        for r in range(4):
            c = pr.coupling(r)
            row0, nrows = pr.block(r)
            _, cols, _ = pr.triplets(r)
            remote = np.unique(cols[(cols < row0) | (cols >= row0 + nrows)])
            planned = np.concatenate(
                [c.gather_cols[p] for p in c.peers]
            ) if c.peers else np.empty(0, dtype=np.int64)
            assert np.array_equal(np.sort(planned), remote)
            owners = pr.owner_of(planned)
            for p, cs in c.gather_cols.items():
                lo, n = pr.block(p)
                assert ((cs >= lo) & (cs < lo + n)).all()
            assert (owners != r).all()

    def test_pair_tags_are_symmetric_and_disjoint(self):
        n = 7
        tags = set()
        for a in range(n):
            for b in range(a + 1, n):
                assert gather_tag(a, b, n) == gather_tag(b, a, n)
                tags.add(gather_tag(a, b, n))
        assert len(tags) == n * (n - 1) // 2  # no pair collisions

    def test_initial_x_is_partition_independent(self):
        full = initial_x(1, 0, 1000)
        assert np.array_equal(
            np.concatenate([initial_x(1, 0, 400), initial_x(1, 400, 1000)]),
            full,
        )


class TestParams:
    def test_defaults_applied(self):
        cfg = _cfg(JAGUARPF, "bulk", 12, 6, workload_params=())
        assert spmv_params(cfg) == tuple(
            DEFAULT_SPMV_PARAMS[k] for k in ("rows", "band", "extras", "pseed")
        )

    def test_unknown_param_rejected(self):
        cfg = _cfg(JAGUARPF, "bulk", 12, 6,
                   workload_params=(("cols", 7),))
        with pytest.raises(ValueError, match="unknown spmv workload_params"):
            spmv_params(cfg)

    def test_stencil_axes_rejected(self):
        with pytest.raises(ValueError, match="no box_thickness axis"):
            run(_cfg(YONA, "hybrid_overlap", 12, 6, box_thickness=2))

    def test_too_many_tasks_rejected(self):
        cfg = _cfg(JAGUARPF, "bulk", 384, 1,
                   workload_params=(("rows", 100),))
        with pytest.raises(ValueError, match="non-empty row blocks"):
            run(cfg)

    def test_gpu_variant_rejects_functional(self):
        with pytest.raises(ValueError, match="functional verification"):
            run(_cfg(YONA, "hybrid_overlap", 12, 6, functional=True,
                     network="full"))


class TestDeterminism:
    def test_repeat_runs_bit_identical(self):
        cfg = _cfg(JAGUARPF, "nonblocking", 24, 6)
        a, b = run(cfg), run(cfg)
        assert a.elapsed_s == b.elapsed_s
        assert a.phases == b.phases
        assert a.comm_stats == b.comm_stats

    def test_scheduler_workers_bit_identical(self):
        """jobs=2 worker processes reproduce the serial results exactly."""
        from repro.sched import scheduled

        cfgs = [
            _cfg(JAGUARPF, impl, cores, 6)
            for impl in ("bulk", "nonblocking")
            for cores in (24, 48)
        ]
        serial = [run(c) for c in cfgs]
        with scheduled(2) as sched:
            parallel = sched.map(cfgs)
        assert [r.elapsed_s for r in parallel] == \
            [r.elapsed_s for r in serial]
        assert [r.phases for r in parallel] == [r.phases for r in serial]

    def test_noise_seed_enters_spmv_runs(self):
        from repro.perturb import NoiseSpec

        base = _cfg(JAGUARPF, "bulk", 24, 6)
        noise = NoiseSpec.preset("medium")
        a = run(base.with_(seed=1, noise=noise))
        b = run(base.with_(seed=2, noise=noise))
        a2 = run(base.with_(seed=1, noise=noise))
        assert a.elapsed_s != b.elapsed_s  # seeds perturb
        assert a.elapsed_s == a2.elapsed_s  # reproducibly


class TestFunctional:
    def _functional(self, impl, cores, threads):
        cfg = _cfg(JAGUARPF, impl, cores, threads, functional=True,
                   network="full")
        return run(cfg)

    def test_exact_vs_global_oracle(self):
        r = self._functional("bulk", 24, 6)
        assert r.norms["l2"] == 0.0
        assert r.norms["linf"] == 0.0

    def test_iterate_bitwise_identical_across_partitions(self):
        fields = [
            self._functional("bulk", cores, 6).global_field
            for cores in (12, 24, 48)
        ]
        assert np.array_equal(fields[0], fields[1])
        assert np.array_equal(fields[0], fields[2])

    def test_variants_agree_bitwise(self):
        bulk = self._functional("bulk", 24, 6).global_field
        nonb = self._functional("nonblocking", 24, 6).global_field
        assert np.array_equal(bulk, nonb)


class TestOverlapOrdering:
    """The SS V-E analysis on the SpMV workload: the GPU task mode hides
    the most communication, the naive nonblocking variant some, and
    vector mode none by construction."""

    @pytest.fixture(scope="class")
    def fractions(self):
        out = {}
        for impl in ("bulk", "nonblocking", "hybrid_overlap"):
            r = run(_cfg(YONA, impl, 48, 6, trace=True,
                         workload_params=MEDIUM))
            assert_invariants(r.tracer)
            out[impl] = r.overlap.overlap_fraction
        return out

    def test_ordering_pinned(self, fractions):
        assert fractions["hybrid_overlap"] > fractions["nonblocking"]
        assert fractions["nonblocking"] > fractions["bulk"]

    def test_vector_mode_hides_nothing(self, fractions):
        assert fractions["bulk"] == 0.0


class TestTraceInvariants:
    @pytest.mark.parametrize("machine,impl,cores,threads", [
        (JAGUARPF, "bulk", 24, 6),
        (JAGUARPF, "nonblocking", 24, 6),
        (YONA, "hybrid_overlap", 24, 6),
        (A100_SXM, "hybrid_overlap", 256, 16),
    ])
    def test_traced_runs_pass(self, machine, impl, cores, threads):
        r = run(_cfg(machine, impl, cores, threads, trace=True))
        assert_invariants(r.tracer)

    def test_full_backend_traced_run_passes(self):
        r = run(_cfg(JAGUARPF, "nonblocking", 24, 6, trace=True,
                     network="full"))
        assert_invariants(r.tracer)

    def test_trace_meta_names_the_workload(self):
        r = run(_cfg(JAGUARPF, "bulk", 24, 6, trace=True))
        assert r.tracer.meta["workload"] == "spmv"
        assert r.tracer.meta["workload_params"] == dict(SMALL)
        adv = RunConfig(machine=JAGUARPF, implementation="bulk", cores=24,
                        threads_per_task=6, steps=2, trace=True)
        t = run(adv).tracer
        # default workload leaves the pre-PR meta untouched (golden traces)
        assert "workload" not in t.meta


class TestAccounting:
    def test_gflops_uses_the_workload_flops(self):
        cfg = _cfg(JAGUARPF, "bulk", 24, 6)
        r = run(cfg)
        wl = get_workload("spmv")
        expect = wl.total_flops(cfg) / r.elapsed_s / 1e9
        assert r.gflops == pytest.approx(expect)

    def test_gpu_task_mode_wins_on_the_gpu_machine(self):
        gf = {
            impl: run(_cfg(A100_SXM, impl, 256, 16,
                           workload_params=MEDIUM)).gflops
            for impl in ("bulk", "nonblocking", "hybrid_overlap")
        }
        assert gf["hybrid_overlap"] > gf["bulk"]
        assert gf["hybrid_overlap"] > gf["nonblocking"]
