"""Shard lease protocol: atomic acquire, expiry steal, renew, release."""

import json
import time

from repro.sched import ShardLeases


class TestAcquire:
    def test_fresh_lease_goes_to_one_owner(self, tmp_path):
        a = ShardLeases(str(tmp_path), owner="a", ttl=30.0)
        b = ShardLeases(str(tmp_path), owner="b", ttl=30.0)
        assert a.acquire("shard-000") is True
        assert b.acquire("shard-000") is False
        assert a.held() == ["shard-000"]
        assert b.held() == []
        assert a.holder("shard-000") == "a"

    def test_independent_shards_do_not_conflict(self, tmp_path):
        a = ShardLeases(str(tmp_path), owner="a", ttl=30.0)
        b = ShardLeases(str(tmp_path), owner="b", ttl=30.0)
        assert a.acquire("shard-000")
        assert b.acquire("shard-001")
        assert a.holder("shard-001") == "b"

    def test_malformed_lease_is_stealable(self, tmp_path):
        (tmp_path / "shard-000.lease").write_text("not json {")
        b = ShardLeases(str(tmp_path), owner="b", ttl=30.0)
        assert b.acquire("shard-000") is True
        assert b.holder("shard-000") == "b"


class TestExpiry:
    def test_expired_lease_is_stolen(self, tmp_path):
        a = ShardLeases(str(tmp_path), owner="a", ttl=0.2)
        b = ShardLeases(str(tmp_path), owner="b", ttl=30.0)
        assert a.acquire("shard-000")
        assert b.acquire("shard-000") is False  # still live
        time.sleep(0.25)
        assert b.acquire("shard-000") is True  # a "died": stop renewing
        assert b.holder("shard-000") == "b"

    def test_loser_renew_does_not_clobber_thief(self, tmp_path):
        a = ShardLeases(str(tmp_path), owner="a", ttl=0.2)
        b = ShardLeases(str(tmp_path), owner="b", ttl=30.0)
        assert a.acquire("shard-000")
        time.sleep(0.25)
        assert b.acquire("shard-000")
        assert a.renew("shard-000") is False
        assert a.held() == []
        assert b.holder("shard-000") == "b"

    def test_renew_keeps_the_lease_alive(self, tmp_path):
        a = ShardLeases(str(tmp_path), owner="a", ttl=0.4)
        b = ShardLeases(str(tmp_path), owner="b", ttl=30.0)
        assert a.acquire("shard-000")
        for _ in range(4):
            time.sleep(0.15)
            assert a.renew("shard-000") is True
            assert b.acquire("shard-000") is False
        # 0.6s elapsed > ttl: without the renews b would have stolen it.

    def test_expires_field_moves_forward_on_renew(self, tmp_path):
        a = ShardLeases(str(tmp_path), owner="a", ttl=5.0)
        assert a.acquire("shard-000")
        first = json.loads((tmp_path / "shard-000.lease").read_text())
        time.sleep(0.05)
        assert a.renew("shard-000")
        second = json.loads((tmp_path / "shard-000.lease").read_text())
        assert second["expires"] > first["expires"]


class TestRelease:
    def test_release_frees_the_shard(self, tmp_path):
        a = ShardLeases(str(tmp_path), owner="a", ttl=30.0)
        b = ShardLeases(str(tmp_path), owner="b", ttl=30.0)
        assert a.acquire("shard-000")
        a.release("shard-000")
        assert a.held() == []
        assert b.acquire("shard-000") is True

    def test_release_after_steal_keeps_the_thiefs_lease(self, tmp_path):
        a = ShardLeases(str(tmp_path), owner="a", ttl=0.2)
        b = ShardLeases(str(tmp_path), owner="b", ttl=30.0)
        assert a.acquire("shard-000")
        time.sleep(0.25)
        assert b.acquire("shard-000")
        a.release("shard-000")  # must not unlink b's lease
        assert b.holder("shard-000") == "b"
        assert b.renew("shard-000") is True

    def test_release_not_held_is_a_noop(self, tmp_path):
        a = ShardLeases(str(tmp_path), owner="a", ttl=30.0)
        a.release("shard-000")  # never held: no error, no file
        assert a.holder("shard-000") is None
