"""Completion hooks and the single-lock summary snapshot.

The serve daemon bridges scheduler completions onto an event loop, so
the hook contract is load-bearing: hooks fire exactly once per record
going terminal, OUTSIDE the scheduler lock (a hook may call back into
``stats()``/``snapshot()`` from any thread without deadlocking), and
``snapshot()`` is one consistent single-mutex read — ``/metrics`` can
never observe ``coalesced > submitted``-style torn counters.
"""

import threading

import pytest

from repro.cache import configure as cache_configure
from repro.core.config import RunConfig
from repro.machines import LENS
from repro.sched import Scheduler, configure


@pytest.fixture(autouse=True)
def _no_ambient_state():
    cache_configure(None)
    configure(None)
    yield
    cache_configure(None)
    configure(None)


def _cfgs(n=4, start=0):
    return [
        RunConfig(machine=LENS, implementation="nonblocking",
                  cores=2 ** (i % 5), steps=2 + (start + i) // 5,
                  domain=(24, 24, 24))
        for i in range(start, start + n)
    ]


class TestCompletionHooks:
    def test_hook_fires_once_per_terminal_record(self, tmp_path):
        seen = []
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c")) as sched:
            sched.add_completion_hook(lambda rec: seen.append(rec.key))
            cfgs = _cfgs(3)
            sched.map(cfgs + cfgs)  # in-batch duplicates coalesce
            assert sorted(seen) == sorted(set(seen))
            assert len(seen) == 3
            sched.map(cfgs)  # memoized batch: no record goes terminal
            assert len(seen) == 3

    def test_hook_fires_for_warm_short_circuits(self, tmp_path):
        """Cache and journal hits are terminal records too — the serve
        layer streams their progress like any simulated task."""
        cfgs = _cfgs(3)
        with Scheduler(jobs=1, cache_dir=str(tmp_path / "c")) as sched:
            sched.map(cfgs)
        seen = []
        with Scheduler(jobs=1, cache_dir=str(tmp_path / "c")) as sched:
            sched.add_completion_hook(lambda rec: seen.append(rec.state.value))
            sched.map(cfgs)
        assert len(seen) == 3
        assert set(seen) == {"cached"}

    def test_remove_hook(self, tmp_path):
        seen = []
        with Scheduler(jobs=1, cache_dir=str(tmp_path / "c")) as sched:
            hook = sched.add_completion_hook(lambda rec: seen.append(rec.key))
            sched.map(_cfgs(2))
            sched.remove_completion_hook(hook)
            sched.map(_cfgs(2, start=10))
        assert len(seen) == 2

    def test_hook_exception_does_not_break_the_batch(self, tmp_path):
        ok = []
        with Scheduler(jobs=1, cache_dir=str(tmp_path / "c")) as sched:
            def bomb(rec):
                raise RuntimeError("hook bug")

            sched.add_completion_hook(bomb)
            sched.add_completion_hook(lambda rec: ok.append(rec.key))
            results = sched.map(_cfgs(2))
        assert len(results) == 2
        assert len(ok) == 2, "the second hook was starved by the first"

    def test_hook_may_reenter_scheduler_from_worker_threads(self, tmp_path):
        """The deadlock regression: hooks fire on pool done-callback
        threads during ``map()`` assembly; a hook that calls back into
        the locked API (``stats``/``snapshot``) must not deadlock or
        drop notifications."""
        seen = []
        lock = threading.Lock()

        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c")) as sched:
            def reentrant(rec):
                snap = sched.snapshot()  # takes the scheduler mutex
                with lock:
                    seen.append((rec.key, snap["counters"]["submitted"]))

            sched.add_completion_hook(reentrant)

            batches = [_cfgs(6, start=6 * i) for i in range(4)]
            errs = []

            def mapper(batch):
                try:
                    sched.map(batch)
                except BaseException as exc:  # pragma: no cover
                    errs.append(exc)

            threads = [
                threading.Thread(target=mapper, args=(b,)) for b in batches
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            hung = [t for t in threads if t.is_alive()]
            assert not hung, "map() deadlocked with a reentrant hook"
            assert not errs

            distinct = {  # the union of all batches, deduplicated
                (c.implementation, c.cores, c.steps)
                for b in batches for c in b
            }
            keys = [k for k, _ in seen]
            assert len(keys) == len(set(keys)), "a record fired twice"
            assert len(keys) == len(distinct), (
                "dropped notifications from non-main threads"
            )


class TestSnapshotConsistency:
    def test_snapshot_shape(self, tmp_path):
        with Scheduler(jobs=1, cache_dir=str(tmp_path / "c"),
                       journal=str(tmp_path / "j.jsonl")) as sched:
            sched.map(_cfgs(3))
            snap = sched.snapshot()
        assert snap["jobs"] == 1
        assert snap["inflight"] == 0
        assert snap["memoized"] == 3
        assert snap["counters"]["submitted"] == 3
        assert snap["journal"] is not None
        assert snap["wall"]["count"] == 3
        assert snap["wall"]["total_s"] >= snap["wall"]["max_s"] >= 0.0

    def test_no_torn_reads_under_concurrent_maps(self, tmp_path):
        """Hammer snapshot() while 4 threads map overlapping batches:
        every snapshot must satisfy the cross-counter invariants that a
        torn (two-acquire) read could violate."""
        stop = threading.Event()
        violations = []

        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c")) as sched:
            def hammer():
                while not stop.is_set():
                    s = sched.snapshot()
                    c = s["counters"]
                    submitted = c["submitted"]
                    terminal = (
                        c["simulated"] + c["cache_hits"]
                        + c["journal_hits"] + c["coalesced"]
                        + c["failed"] + c["poisoned"] + c["inline"]
                    )
                    if c["coalesced"] > submitted:
                        violations.append(("coalesced>submitted", dict(c)))
                    if terminal > submitted:
                        violations.append(("terminal>submitted", dict(c)))
                    if s["memoized"] > submitted:
                        violations.append(("memoized>submitted", dict(c)))
                    if s["wall"]["count"] > submitted:
                        violations.append(("wall>submitted", dict(c)))

            hammers = [threading.Thread(target=hammer) for _ in range(2)]
            for h in hammers:
                h.start()
            batches = [_cfgs(8, start=4 * i) for i in range(4)]
            mappers = [
                threading.Thread(target=sched.map, args=(b,))
                for b in batches
            ]
            for m in mappers:
                m.start()
            for m in mappers:
                m.join(timeout=120)
            stop.set()
            for h in hammers:
                h.join(timeout=30)
            assert not violations, violations[:5]

    def test_summary_built_from_one_snapshot(self, tmp_path):
        """summary() renders from a single snapshot() acquire — spot
        check that its numbers agree with a quiesced snapshot."""
        with Scheduler(jobs=1, cache_dir=str(tmp_path / "c")) as sched:
            sched.map(_cfgs(4) * 2)
            snap = sched.snapshot()
            text = sched.summary()
        assert f"submitted={snap['counters']['submitted']}" in text
        assert f"coalesced={snap['counters']['coalesced']}" in text
