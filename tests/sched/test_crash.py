"""Worker-crash recovery: bounded retry, quarantine and poisoning."""

import logging

import pytest

from repro.cache import configure as cache_configure
from repro.core.config import RunConfig
from repro.machines import LENS
from repro.sched import PoisonedConfigError, Scheduler, configure


@pytest.fixture(autouse=True)
def _quiet_and_clean():
    cache_configure(None)
    configure(None)
    logging.getLogger("repro.sched").setLevel(logging.ERROR)
    yield
    logging.getLogger("repro.sched").setLevel(logging.NOTSET)
    cache_configure(None)
    configure(None)


def _cfgs(n=4):
    return [
        RunConfig(machine=LENS, implementation="nonblocking", cores=2**i,
                  steps=2, domain=(24, 24, 24))
        for i in range(n)
    ]


class TestCrashRetry:
    def test_transient_crash_is_retried(self, tmp_path):
        cfgs = _cfgs(4)
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c")) as sched:
            sched.fault_injector = (
                lambda cfg, attempts: cfg.cores == 2 and attempts == 0
            )
            results = sched.map(cfgs)
            s = sched.stats()
        assert len(results) == 4
        assert s["crashes"] >= 1
        assert s["retries"] >= 1
        assert s["poisoned"] == 0

    def test_deterministic_crasher_poisoned_innocents_survive(self, tmp_path):
        """Only the config that crashes *solo* is poisoned.

        Co-scheduled innocents accumulate suspicion from ambiguous pool
        breaks but are exonerated by their solo confirmation run.
        """
        cfgs = _cfgs(4)
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c"),
                       max_retries=2) as sched:
            sched.fault_injector = lambda cfg, attempts: cfg.cores == 4
            out = sched.map(cfgs, return_exceptions=True)
            s = sched.stats()
            poisoned_log = list(sched.poisoned)
        kinds = [type(r).__name__ for r in out]
        assert kinds == [
            "RunResult", "RunResult", "PoisonedConfigError", "RunResult"
        ]
        assert s["poisoned"] == 1
        assert len(poisoned_log) == 1
        assert poisoned_log[0]["cores"] == 4
        assert poisoned_log[0]["state"] == "poisoned"

    def test_poisoned_raises_by_default(self, tmp_path):
        cfgs = _cfgs(2)
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c"),
                       max_retries=0) as sched:
            sched.fault_injector = lambda cfg, attempts: cfg.cores == 1
            with pytest.raises(PoisonedConfigError):
                sched.map(cfgs)

    def test_batch_survives_and_results_match_serial(self, tmp_path):
        """Crash recovery must not alter surviving results."""
        from repro.core.runner import run

        cfgs = _cfgs(4)
        serial = [run(c) for c in cfgs]
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c")) as sched:
            sched.fault_injector = (
                lambda cfg, attempts: cfg.cores == 8 and attempts == 0
            )
            out = sched.map(cfgs)
        for a, b in zip(out, serial):
            assert a.elapsed_s == b.elapsed_s
            assert a.phases == b.phases

    def test_poisoned_error_names_the_config(self):
        cfg = _cfgs(1)[0]
        err = PoisonedConfigError(cfg, attempts=3)
        msg = str(err)
        assert "nonblocking" in msg and "Lens" in msg
        assert err.cfg is cfg and err.attempts == 3

    def test_crash_results_still_journaled(self, tmp_path):
        """Survivors of a crashy batch land in the journal for resume."""
        from repro.sched import Journal

        cfgs = _cfgs(3)
        jp = str(tmp_path / "j.jsonl")
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c"), journal=jp,
                       max_retries=1) as sched:
            sched.fault_injector = lambda cfg, attempts: cfg.cores == 2
            sched.map(cfgs, return_exceptions=True)
        j = Journal(jp)
        assert len(j) == 2  # the two survivors; the poisoned one is absent
        j.close()
