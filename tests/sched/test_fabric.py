"""Multi-scheduler fabric: sharding, bit-identity, resume, lease handover."""

import os
import subprocess
import sys
import time

import pytest

from repro.cache import config_key, configure as cache_configure
from repro.core.config import RunConfig
from repro.core.runner import run
from repro.machines import LENS
from repro.sched import (
    SchedulerError,
    ShardLeases,
    ShardedJournal,
    configure,
    run_fabric,
    shard_of,
)


@pytest.fixture(autouse=True)
def _no_ambient_state():
    cache_configure(None)
    configure(None)
    yield
    cache_configure(None)
    configure(None)


def _cfgs(n=8):
    return [
        RunConfig(machine=LENS, implementation="nonblocking", cores=4,
                  steps=2 + i, domain=(24, 24, 24))
        for i in range(n)
    ]


class TestShardOf:
    def test_alignment_with_journal_prefix(self):
        # Every key of one journal prefix lands in one task shard, so a
        # shard's lease holder is the only writer of its journal inodes.
        for nshards in (1, 7, 16, 256):
            for prefix in ("00", "0f", "a3", "ff"):
                shards = {
                    shard_of(prefix + tail, nshards)
                    for tail in ("0" * 62, "f" * 62, "abc123")
                }
                assert len(shards) == 1
                assert 0 <= shards.pop() < nshards

    def test_bad_nshards_rejected(self):
        for bad in (0, -1, 257):
            with pytest.raises(ValueError):
                shard_of("ab" + "0" * 62, bad)


class TestFabricRuns:
    def test_bit_identical_to_serial(self, tmp_path):
        cfgs = _cfgs(6)
        serial = [run(c) for c in cfgs]
        fr = run_fabric(cfgs, str(tmp_path / "fab"), owner="t", jobs=2,
                        nshards=4)
        assert len(fr.results) == len(cfgs)
        for a, b in zip(serial, fr.results):
            assert a.elapsed_s == b.elapsed_s
            assert a.phases == b.phases
            assert a.comm_stats == b.comm_stats
        assert fr.shards_run and fr.shards_replayed == 0
        assert fr.journal_counts["entries"] == len(cfgs)
        assert "owner=t" in fr.summary()

    def test_second_run_replays_from_the_journal(self, tmp_path):
        cfgs = _cfgs(6)
        root = str(tmp_path / "fab")
        first = run_fabric(cfgs, root, owner="a", jobs=1, nshards=4)
        second = run_fabric(cfgs, root, owner="b", jobs=1, nshards=4)
        assert second.stats.get("simulated", 0) == 0
        assert second.shards_run == []
        assert second.shards_replayed == len(set(first.shards_run))
        for a, b in zip(first.results, second.results):
            assert a.elapsed_s == b.elapsed_s and a.phases == b.phases

    def test_duplicate_configs_dedup_but_results_align(self, tmp_path):
        cfgs = _cfgs(3)
        batch = cfgs + cfgs[::-1]
        fr = run_fabric(batch, str(tmp_path / "fab"), jobs=1, nshards=2)
        assert len(fr.results) == len(batch)
        assert fr.journal_counts["entries"] == len(cfgs)
        for a, b in zip(fr.results[:3], fr.results[:2:-1]):
            assert a.elapsed_s == b.elapsed_s

    def test_non_cacheable_config_rejected(self, tmp_path):
        cfg = RunConfig(machine=LENS, implementation="nonblocking", cores=4,
                        steps=2, domain=(24, 24, 24), functional=True,
                        network="full")
        with pytest.raises(SchedulerError, match="cacheable"):
            run_fabric([cfg], str(tmp_path / "fab"))


class TestLeaseHandover:
    def test_dead_peer_shard_is_stolen_after_ttl(self, tmp_path):
        # A "dead" scheduler holds every shard lease and never renews:
        # the live fabric must wait out the ttl, steal, and finish.
        cfgs = _cfgs(4)
        root = tmp_path / "fab"
        nshards = 4
        dead = ShardLeases(str(root / "leases"), owner="dead", ttl=0.5)
        held = {shard_of(config_key(c), nshards) for c in cfgs}
        for s in held:
            assert dead.acquire(f"shard-{s:03d}")
        t0 = time.monotonic()
        fr = run_fabric(cfgs, str(root), owner="live", jobs=1,
                        nshards=nshards, ttl=5.0, timeout=60.0)
        assert time.monotonic() - t0 >= 0.5  # waited for the expiry
        assert len(fr.results) == len(cfgs)
        assert set(fr.shards_run) == held

    def test_timeout_on_perpetually_held_shard(self, tmp_path):
        cfgs = _cfgs(2)
        root = tmp_path / "fab"
        peer = ShardLeases(str(root / "leases"), owner="peer", ttl=120.0)
        for c in cfgs:
            s = shard_of(config_key(c), 2)
            peer.acquire(f"shard-{s:03d}")
        with pytest.raises(SchedulerError, match="timed out"):
            run_fabric(cfgs, str(root), owner="live", jobs=1, nshards=2,
                       ttl=120.0, poll_interval=0.01, timeout=0.5)


_PEER = """
import sys
from repro.core.config import RunConfig
from repro.machines import LENS
from repro.sched import run_fabric

root, owner, n = sys.argv[1], sys.argv[2], int(sys.argv[3])
cfgs = [
    RunConfig(machine=LENS, implementation="nonblocking", cores=4,
              steps=2 + i, domain=(24, 24, 24))
    for i in range(n)
]
fr = run_fabric(cfgs, root, owner=owner, jobs=2, nshards=8, ttl=10.0)
for r in fr.results:
    print(f"RESULT {r.config.steps} {r.elapsed_s!r}")
print(fr.summary())
"""


class TestTwoProcesses:
    def test_concurrent_peers_split_work_and_agree(self, tmp_path):
        n = 12
        driver = tmp_path / "peer.py"
        driver.write_text(_PEER)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        root = str(tmp_path / "fab")
        procs = [
            subprocess.Popen(
                [sys.executable, str(driver), root, owner, str(n)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True,
            )
            for owner in ("a", "b")
        ]
        outs = []
        for p in procs:
            out, err = p.communicate(timeout=300)
            assert p.returncode == 0, err
            outs.append(out)
        results = [
            [line for line in out.splitlines() if line.startswith("RESULT")]
            for out in outs
        ]
        assert len(results[0]) == n
        assert results[0] == results[1]  # bit-identical across peers
        serial = [
            f"RESULT {c.steps} {run(c).elapsed_s!r}" for c in _cfgs(n)
        ]
        assert results[0] == serial  # and to a serial run
        journal = ShardedJournal(os.path.join(root, "journal"))
        assert len(journal) == n and journal.corrupt_lines == 0
        journal.close()
