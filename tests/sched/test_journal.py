"""Journal durability: roundtrip, corruption tolerance, SIGKILL resume."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.sched import Journal
from repro.sched.journal import JOURNAL_VERSION


PAYLOAD = {
    "elapsed_s": 0.125,
    "phases": {"compute": 0.1, "pack": 0.025},
    "comm_stats": {"messages_sent": 12, "bytes_sent": 4096},
}


class TestJournalFile:
    def test_roundtrip(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        with Journal(p) as j:
            j.record("k1", PAYLOAD)
            j.record("k2", dict(PAYLOAD, elapsed_s=0.25))
        j2 = Journal(p)
        assert len(j2) == 2
        assert "k1" in j2 and "k2" in j2
        assert j2.get("k1")["elapsed_s"] == 0.125
        assert j2.get("k2")["elapsed_s"] == 0.25
        assert j2.get("k1")["phases"] == PAYLOAD["phases"]
        assert j2.corrupt_lines == 0
        j2.close()

    def test_floats_roundtrip_exactly(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        value = 0.1 + 0.2  # 0.30000000000000004: repr round-trips
        with Journal(p) as j:
            j.record("k", dict(PAYLOAD, elapsed_s=value))
        j2 = Journal(p)
        assert j2.get("k")["elapsed_s"] == value
        j2.close()

    def test_torn_trailing_line_skipped(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        with Journal(p) as j:
            j.record("k1", PAYLOAD)
        with open(p, "a") as fh:
            fh.write('{"v": 1, "key": "k2", "elapsed')  # torn write
        j2 = Journal(p)
        assert len(j2) == 1 and "k1" in j2
        assert j2.corrupt_lines == 1
        j2.close()

    def test_wrong_version_skipped(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        doc = {"v": JOURNAL_VERSION + 1, "key": "k", **PAYLOAD}
        with open(p, "w") as fh:
            fh.write(json.dumps(doc) + "\n")
        j = Journal(p)
        assert len(j) == 0 and j.corrupt_lines == 1
        j.close()

    def test_ill_shaped_payload_skipped(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        with open(p, "w") as fh:
            fh.write(json.dumps({"v": JOURNAL_VERSION, "key": "k"}) + "\n")
            fh.write("[1, 2, 3]\n")
        j = Journal(p)
        assert len(j) == 0 and j.corrupt_lines == 2
        j.close()

    def test_duplicate_keys_last_wins(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        with Journal(p) as j:
            j.record("k", PAYLOAD)
            j.record("k", dict(PAYLOAD, elapsed_s=9.0))
        j2 = Journal(p)
        assert len(j2) == 1 and j2.get("k")["elapsed_s"] == 9.0
        j2.close()


_DRIVER = """
import sys
from repro.core.config import RunConfig
from repro.machines import LENS
from repro.sched import Journal, Scheduler

journal_path, cache_dir, n = sys.argv[1], sys.argv[2], int(sys.argv[3])
cfgs = [
    RunConfig(machine=LENS, implementation="nonblocking", cores=4,
              steps=2 + i, domain=(24, 24, 24))
    for i in range(n)
]
sched = Scheduler(jobs=2, cache_dir=cache_dir, journal=Journal(journal_path))
sched.map(cfgs)
print("SUMMARY " + sched.summary(), flush=True)
sched.close()
"""


def _journal_lines(path):
    try:
        with open(path) as fh:
            return sum(1 for line in fh if line.strip())
    except OSError:
        return 0


class TestSigkillResume:
    def test_resume_after_sigkill_mid_batch(self, tmp_path):
        """A SIGKILLed batch restarts from its journaled tasks."""
        jp = str(tmp_path / "resume.jsonl")
        cache_dir = str(tmp_path / "cache")
        driver = tmp_path / "driver.py"
        driver.write_text(_DRIVER)
        n = 120
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )

        proc = subprocess.Popen(
            [sys.executable, str(driver), jp, cache_dir, str(n)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        )
        # Kill as soon as a few results are durably journaled.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if _journal_lines(jp) >= 3 or proc.poll() is not None:
                break
            time.sleep(0.005)
        killed = proc.poll() is None
        if killed:
            proc.send_signal(signal.SIGKILL)
        proc.wait()
        done_at_kill = _journal_lines(jp)
        assert done_at_kill >= 3, "driver finished nothing before the kill"

        # Second run against the same journal resumes, not restarts.
        out = subprocess.run(
            [sys.executable, str(driver), jp, cache_dir, str(n)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert out.returncode == 0, out.stderr
        summary = [
            line for line in out.stdout.splitlines()
            if line.startswith("SUMMARY")
        ][0]
        fields = dict(
            kv.split("=") for kv in summary.split() if "=" in kv
        )
        journal_hits = int(fields["journal-hits"])
        cache_hits = int(fields["cache-hits"])
        simulated = int(fields["simulated"])
        # Everything journaled before the kill is replayed; results a
        # worker cached but the parent never journaled (the kill window)
        # come back as cache hits; the remainder is simulated.  Together
        # they cover the whole batch.
        assert journal_hits >= min(done_at_kill, n) - 1  # minus a torn line
        assert journal_hits + cache_hits + simulated == n
        if killed:
            assert simulated > 0, "kill landed after the batch completed"
        # Third run: the journal now covers the batch completely.
        out2 = subprocess.run(
            [sys.executable, str(driver), jp, cache_dir, str(n)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert "journal-hits=%d" % n in out2.stdout
