"""Journal durability: roundtrip, corruption tolerance, SIGKILL resume."""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.sched import Journal, ShardedJournal, open_journal
from repro.sched.journal import JOURNAL_VERSION


PAYLOAD = {
    "elapsed_s": 0.125,
    "phases": {"compute": 0.1, "pack": 0.025},
    "comm_stats": {"messages_sent": 12, "bytes_sent": 4096},
}


class TestJournalFile:
    def test_roundtrip(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        with Journal(p) as j:
            j.record("k1", PAYLOAD)
            j.record("k2", dict(PAYLOAD, elapsed_s=0.25))
        j2 = Journal(p)
        assert len(j2) == 2
        assert "k1" in j2 and "k2" in j2
        assert j2.get("k1")["elapsed_s"] == 0.125
        assert j2.get("k2")["elapsed_s"] == 0.25
        assert j2.get("k1")["phases"] == PAYLOAD["phases"]
        assert j2.corrupt_lines == 0
        j2.close()

    def test_floats_roundtrip_exactly(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        value = 0.1 + 0.2  # 0.30000000000000004: repr round-trips
        with Journal(p) as j:
            j.record("k", dict(PAYLOAD, elapsed_s=value))
        j2 = Journal(p)
        assert j2.get("k")["elapsed_s"] == value
        j2.close()

    def test_torn_trailing_line_skipped(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        with Journal(p) as j:
            j.record("k1", PAYLOAD)
        with open(p, "a") as fh:
            fh.write('{"v": 1, "key": "k2", "elapsed')  # torn write
        j2 = Journal(p)
        assert len(j2) == 1 and "k1" in j2
        assert j2.corrupt_lines == 1
        j2.close()

    def test_wrong_version_skipped(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        doc = {"v": JOURNAL_VERSION + 1, "key": "k", **PAYLOAD}
        with open(p, "w") as fh:
            fh.write(json.dumps(doc) + "\n")
        j = Journal(p)
        assert len(j) == 0 and j.corrupt_lines == 1
        j.close()

    def test_ill_shaped_payload_skipped(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        with open(p, "w") as fh:
            fh.write(json.dumps({"v": JOURNAL_VERSION, "key": "k"}) + "\n")
            fh.write("[1, 2, 3]\n")
        j = Journal(p)
        assert len(j) == 0 and j.corrupt_lines == 2
        j.close()

    def test_duplicate_keys_last_wins(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        with Journal(p) as j:
            j.record("k", PAYLOAD)
            j.record("k", dict(PAYLOAD, elapsed_s=9.0))
        j2 = Journal(p)
        assert len(j2) == 1 and j2.get("k")["elapsed_s"] == 9.0
        j2.close()

    def test_corruption_tallied_by_kind(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        with open(p, "w") as fh:
            fh.write(json.dumps(
                {"v": JOURNAL_VERSION, "key": "good", **PAYLOAD}) + "\n")
            fh.write('{"v": 1, "key": "torn...\n')
            fh.write(json.dumps(
                {"v": JOURNAL_VERSION + 9, "key": "old", **PAYLOAD}) + "\n")
            fh.write(json.dumps({"v": JOURNAL_VERSION, "key": "bad"}) + "\n")
        j = Journal(p)
        assert len(j) == 1
        assert j.torn_lines == 1
        assert j.wrong_version_lines == 1
        assert j.ill_shaped_lines == 1
        assert j.corrupt_lines == 3
        counts = j.counts()
        assert counts["entries"] == 1 and counts["pending"] == 0
        assert counts["torn"] == counts["wrong_version"] == 1
        assert counts["ill_shaped"] == 1
        j.close()


class TestGroupCommit:
    def test_pending_records_visible_but_not_durable(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        j = Journal(p, flush_max_records=100, flush_interval=3600.0)
        j.record("k1", PAYLOAD)
        assert "k1" in j and j.get("k1")["elapsed_s"] == 0.125
        assert j.counts()["pending"] == 1
        assert _journal_lines(p) == 0  # buffered, not yet committed
        j.flush()
        assert j.counts()["pending"] == 0
        assert _journal_lines(p) == 1
        j.close()

    def test_auto_flush_on_max_records(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        j = Journal(p, flush_max_records=4, flush_interval=3600.0)
        for i in range(3):
            j.record(f"k{i}", PAYLOAD)
        assert _journal_lines(p) == 0
        j.record("k3", PAYLOAD)  # hits the batch bound
        assert _journal_lines(p) == 4
        j.close()

    def test_auto_flush_on_interval(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        j = Journal(p, flush_max_records=1000, flush_interval=0.05)
        j.record("k0", PAYLOAD)
        time.sleep(0.08)
        j.record("k1", PAYLOAD)  # aged past the interval: commits both
        assert _journal_lines(p) == 2
        j.close()

    def test_flush_max_one_restores_per_line_commit(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        j = Journal(p, flush_max_records=1)
        for i in range(3):
            j.record(f"k{i}", PAYLOAD)
            assert _journal_lines(p) == i + 1
        j.close()

    def test_close_flushes_pending(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        j = Journal(p, flush_max_records=1000, flush_interval=3600.0)
        j.record("k", PAYLOAD)
        j.close()
        assert _journal_lines(p) == 1
        j2 = Journal(p)
        assert "k" in j2
        j2.close()

    def test_record_threadsafe_under_flush_pressure(self, tmp_path):
        p = str(tmp_path / "j.jsonl")
        j = Journal(p, flush_max_records=7, flush_interval=3600.0)

        def _write(base):
            for i in range(50):
                j.record(f"{base}-{i}", PAYLOAD)

        threads = [
            threading.Thread(target=_write, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        j.close()
        j2 = Journal(p)
        assert len(j2) == 200 and j2.corrupt_lines == 0
        j2.close()


K1 = "00" + "a" * 62
K2 = "01" + "b" * 62
K3 = "ff" + "c" * 62


class TestShardedJournal:
    def test_roundtrip_across_shard_files(self, tmp_path):
        root = str(tmp_path / "j")
        j = ShardedJournal(root)
        j.record(K1, PAYLOAD)
        j.record(K2, dict(PAYLOAD, elapsed_s=0.5))
        j.record(K3, dict(PAYLOAD, elapsed_s=1.5))
        j.close()
        assert sorted(os.listdir(root)) == ["00.jsonl", "01.jsonl", "ff.jsonl"]
        j2 = ShardedJournal(root)
        assert len(j2) == 3 and set(j2.keys()) == {K1, K2, K3}
        assert j2.get(K2)["elapsed_s"] == 0.5
        assert j2.corrupt_lines == 0
        j2.close()

    def test_non_hex_key_rejected(self, tmp_path):
        j = ShardedJournal(str(tmp_path / "j"))
        with pytest.raises(ValueError, match="hex"):
            j.record("zz-not-hex", PAYLOAD)
        j.close()

    def test_refresh_sees_a_peer_commit(self, tmp_path):
        # The peer appends to a shard this journal has *already loaded*
        # (a never-loaded shard would be read fresh on first access).
        root = str(tmp_path / "j")
        mine = ShardedJournal(root)
        mine.record(K3, PAYLOAD)
        mine.flush()
        peer = ShardedJournal(root)
        peer_key = "ff" + "d" * 62
        peer.record(peer_key, dict(PAYLOAD, elapsed_s=2.0))
        peer.flush()
        assert peer_key not in mine  # not yet observed
        mine.refresh()
        assert peer_key in mine and mine.get(peer_key)["elapsed_s"] == 2.0
        assert K3 in mine  # own entries survive the refresh
        peer.close()
        mine.close()

    def test_refresh_keeps_own_pending_records(self, tmp_path):
        root = str(tmp_path / "j")
        mine = ShardedJournal(root, flush_max_records=100,
                              flush_interval=3600.0)
        mine.record(K1, PAYLOAD)  # pending, not durable
        peer = ShardedJournal(root)
        peer.record("00" + "d" * 62, dict(PAYLOAD, elapsed_s=3.0))
        peer.flush()  # same shard file as K1
        mine.refresh()
        assert K1 in mine  # pending overlay survives the shard re-read
        assert mine.get("00" + "d" * 62)["elapsed_s"] == 3.0
        peer.close()
        mine.close()

    def test_corruption_tallied_across_shards(self, tmp_path):
        root = tmp_path / "j"
        j = ShardedJournal(str(root))
        j.record(K1, PAYLOAD)
        j.close()
        with open(root / "00.jsonl", "a") as fh:
            fh.write('{"torn')
        with open(root / "ff.jsonl", "w") as fh:
            fh.write(json.dumps(
                {"v": JOURNAL_VERSION + 1, "key": K3, **PAYLOAD}) + "\n")
        j2 = ShardedJournal(str(root))
        assert len(j2) == 1
        assert j2.torn_lines == 1 and j2.wrong_version_lines == 1
        assert j2.counts()["entries"] == 1
        assert j2.corrupt_lines == 2
        j2.close()


class TestOpenJournal:
    def test_jsonl_suffix_is_flat(self, tmp_path):
        j = open_journal(str(tmp_path / "j.jsonl"))
        assert isinstance(j, Journal)
        j.close()

    def test_directory_is_sharded(self, tmp_path):
        j = open_journal(str(tmp_path / "jdir"))
        assert isinstance(j, ShardedJournal)
        j.close()

    def test_existing_flat_file_stays_flat(self, tmp_path):
        p = tmp_path / "legacy"  # no telling suffix
        with Journal(str(p)) as j:
            j.record("k", PAYLOAD)
        j2 = open_journal(str(p))
        assert isinstance(j2, Journal) and "k" in j2
        j2.close()


_DRIVER = """
import sys
from repro.core.config import RunConfig
from repro.machines import LENS
from repro.sched import Journal, Scheduler

journal_path, cache_dir, n = sys.argv[1], sys.argv[2], int(sys.argv[3])
cfgs = [
    RunConfig(machine=LENS, implementation="nonblocking", cores=4,
              steps=2 + i, domain=(24, 24, 24))
    for i in range(n)
]
sched = Scheduler(jobs=2, cache_dir=cache_dir, journal=Journal(journal_path))
sched.map(cfgs)
print("SUMMARY " + sched.summary(), flush=True)
sched.close()
"""


def _journal_lines(path):
    try:
        with open(path) as fh:
            return sum(1 for line in fh if line.strip())
    except OSError:
        return 0


class TestSigkillResume:
    def test_resume_after_sigkill_mid_batch(self, tmp_path):
        """A SIGKILLed batch restarts from its journaled tasks."""
        jp = str(tmp_path / "resume.jsonl")
        cache_dir = str(tmp_path / "cache")
        driver = tmp_path / "driver.py"
        driver.write_text(_DRIVER)
        n = 120
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )

        proc = subprocess.Popen(
            [sys.executable, str(driver), jp, cache_dir, str(n)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        )
        # Kill as soon as a few results are durably journaled.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if _journal_lines(jp) >= 3 or proc.poll() is not None:
                break
            time.sleep(0.005)
        killed = proc.poll() is None
        if killed:
            proc.send_signal(signal.SIGKILL)
        proc.wait()
        done_at_kill = _journal_lines(jp)
        assert done_at_kill >= 3, "driver finished nothing before the kill"

        # Second run against the same journal resumes, not restarts.
        out = subprocess.run(
            [sys.executable, str(driver), jp, cache_dir, str(n)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert out.returncode == 0, out.stderr
        summary = [
            line for line in out.stdout.splitlines()
            if line.startswith("SUMMARY")
        ][0]
        fields = dict(
            kv.split("=") for kv in summary.split() if "=" in kv
        )
        journal_hits = int(fields["journal-hits"])
        cache_hits = int(fields["cache-hits"])
        simulated = int(fields["simulated"])
        # Everything journaled before the kill is replayed; results a
        # worker cached but the parent never journaled (the kill window)
        # come back as cache hits; the remainder is simulated.  Together
        # they cover the whole batch.
        assert journal_hits >= min(done_at_kill, n) - 1  # minus a torn line
        assert journal_hits + cache_hits + simulated == n
        if killed:
            assert simulated > 0, "kill landed after the batch completed"
        # Third run: the journal now covers the batch completely.
        out2 = subprocess.run(
            [sys.executable, str(driver), jp, cache_dir, str(n)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert "journal-hits=%d" % n in out2.stdout


_ACK_DRIVER = """
import sys
from repro.cache import config_key
from repro.core.config import RunConfig
from repro.machines import LENS
from repro.sched import Journal, Scheduler

journal_path, n = sys.argv[1], int(sys.argv[2])
cfgs = [
    RunConfig(machine=LENS, implementation="nonblocking", cores=4,
              steps=2 + i, domain=(24, 24, 24))
    for i in range(n)
]
# Wide group-commit bounds: only map()'s surface-time flush commits, so
# durability rests entirely on the invariant under test.
sched = Scheduler(
    jobs=2,
    journal=Journal(journal_path, flush_max_records=10_000,
                    flush_interval=3600.0),
)
for i in range(0, n, 4):
    batch = cfgs[i:i + 4]
    sched.map(batch)
    # A result is in hand: its record must already be durable.
    for c in batch:
        print("ACK " + config_key(c), flush=True)
sched.close()
"""


class TestSigkillBetweenFlushes:
    def test_acknowledged_results_survive_the_kill(self, tmp_path):
        """Group commit loses only records never surfaced to a caller."""
        jp = str(tmp_path / "ack.jsonl")
        driver = tmp_path / "driver.py"
        driver.write_text(_ACK_DRIVER)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [sys.executable, str(driver), jp, "64"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True,
        )
        acked = []

        def _collect():
            for line in proc.stdout:
                if line.startswith("ACK "):
                    acked.append(line.split()[1])

        reader = threading.Thread(target=_collect, daemon=True)
        reader.start()
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if len(acked) >= 8 or proc.poll() is not None:
                break
            time.sleep(0.005)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait()
        reader.join(timeout=10.0)
        assert len(acked) >= 8, "driver surfaced nothing before the kill"

        survivor = Journal(jp)
        missing = [k for k in acked if k not in survivor]
        assert not missing, (
            f"{len(missing)} acknowledged records lost by the kill"
        )
        survivor.close()
