"""Tests for the shared task scheduler: dedup, coalescing, identity."""

import threading

import pytest

from repro.cache import RunCache, config_key, configure as cache_configure
from repro.core.config import RunConfig
from repro.core.runner import run
from repro.machines import JAGUARPF, LENS, YONA
from repro.sched import (
    Scheduler,
    SchedulerError,
    active_scheduler,
    configure,
    scheduled,
)


@pytest.fixture(autouse=True)
def _no_ambient_state():
    """Each test starts without a process-wide cache or scheduler."""
    cache_configure(None)
    configure(None)
    yield
    cache_configure(None)
    configure(None)


def _cfgs(n=4, machine=LENS, impl="nonblocking"):
    return [
        RunConfig(machine=machine, implementation=impl, cores=2**i, steps=2,
                  domain=(24, 24, 24))
        for i in range(n)
    ]


class TestDedup:
    def test_identical_configs_simulated_once(self, tmp_path):
        cfg = _cfgs(1)[0]
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c")) as sched:
            results = sched.map([cfg] * 5)
            assert len(results) == 5
            s = sched.stats()
            assert s["submitted"] == 5
            assert s["simulated"] == 1
            assert s["coalesced"] == 4
            assert len({r.elapsed_s for r in results}) == 1

    def test_dedup_across_batches(self, tmp_path):
        cfgs = _cfgs(3)
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c")) as sched:
            a = sched.map(cfgs)
            b = sched.map(cfgs)
            s = sched.stats()
            assert s["simulated"] == 3  # second batch fully memoized
            assert s["coalesced"] == 3
            assert [r.elapsed_s for r in a] == [r.elapsed_s for r in b]

    def test_threads_coalesce_on_one_simulation(self, tmp_path):
        """N concurrent requesters -> one simulation per distinct config."""
        cfgs = _cfgs(4)
        outs = {}
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c")) as sched:
            def worker(tid):
                outs[tid] = sched.map(cfgs)

            threads = [
                threading.Thread(target=worker, args=(t,)) for t in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sched.stats()["simulated"] == len(cfgs)
        base = [r.elapsed_s for r in outs[0]]
        for tid in range(1, 4):
            assert [r.elapsed_s for r in outs[tid]] == base

    def test_jobs_one_is_inline_with_dedup(self):
        cfg = _cfgs(1)[0]
        with Scheduler(jobs=1) as sched:
            results = sched.map([cfg, cfg])
            s = sched.stats()
            assert s["simulated"] == 1 and s["coalesced"] == 1
            assert results[0].elapsed_s == results[1].elapsed_s


class TestCacheShortCircuit:
    def test_warm_entries_skip_the_pool(self, tmp_path):
        cache_dir = str(tmp_path / "c")
        cfgs = _cfgs(3)
        cache = cache_configure(cache_dir)
        for cfg in cfgs:
            cache.put(cfg, run(cfg))
        with Scheduler(jobs=2, cache_dir=cache_dir) as sched:
            results = sched.map(cfgs)
            s = sched.stats()
            assert s["cache_hits"] == 3
            assert s["simulated"] == 0
        serial = [run(c) for c in cfgs]
        for a, b in zip(results, serial):
            assert a.elapsed_s == b.elapsed_s

    def test_cold_misses_counted_once(self, tmp_path):
        """The parent probe must not double-charge worker misses."""
        cache_dir = str(tmp_path / "c")
        cache = cache_configure(cache_dir)
        cfgs = _cfgs(3)
        with Scheduler(jobs=2, cache_dir=cache_dir) as sched:
            sched.map(cfgs)
        assert cache.misses == 3
        assert cache.stores == 3


class TestBitIdentity:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_scheduled_equals_serial(self, tmp_path, jobs):
        cfgs = _cfgs(4, machine=JAGUARPF, impl="bulk")
        serial = [run(c) for c in cfgs]
        with Scheduler(jobs=jobs, cache_dir=str(tmp_path / f"c{jobs}")) as sched:
            scheduled_results = sched.map(cfgs)
        for a, b in zip(scheduled_results, serial):
            assert a.elapsed_s == b.elapsed_s
            assert a.phases == b.phases
            assert a.comm_stats == b.comm_stats

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_seeded_noise_is_deterministic(self, tmp_path, jobs):
        cfgs = [
            RunConfig(machine=YONA, implementation="hybrid_overlap", cores=12,
                      threads_per_task=12, box_thickness=2, seed=s)
            for s in (11, 12, 13)
        ]
        serial = [run(c) for c in cfgs]
        with Scheduler(jobs=jobs, cache_dir=str(tmp_path / f"c{jobs}")) as sched:
            out = sched.map(cfgs)
        for a, b in zip(out, serial):
            assert a.elapsed_s == b.elapsed_s
            assert a.phases == b.phases

    def test_journal_replay_is_bit_identical(self, tmp_path):
        cfgs = _cfgs(3)
        jp = str(tmp_path / "j.jsonl")
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c"),
                       journal=jp) as sched:
            first = sched.map(cfgs)
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c2"),
                       journal=jp) as sched:
            second = sched.map(cfgs)
            assert sched.stats()["journal_hits"] == 3
            assert sched.stats()["simulated"] == 0
        for a, b in zip(first, second):
            assert a.elapsed_s == b.elapsed_s
            assert a.phases == b.phases
            assert a.comm_stats == b.comm_stats


class TestInlineRuns:
    def test_functional_runs_inline(self, tmp_path):
        """Non-cacheable configs never travel through the pool."""
        cfg = RunConfig(machine=LENS, implementation="nonblocking", cores=2,
                        steps=2, domain=(16, 16, 16), network="full",
                        functional=True)
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c")) as sched:
            [result] = sched.map([cfg])
            s = sched.stats()
            assert s["inline"] == 1 and s["simulated"] == 0
        assert result.global_field is not None

    def test_traced_runs_inline_and_keep_tracer(self, tmp_path):
        cfg = RunConfig(machine=YONA, implementation="hybrid_overlap",
                        cores=12, threads_per_task=12, box_thickness=2,
                        trace=True)
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c")) as sched:
            [result] = sched.map([cfg])
            assert sched.stats()["inline"] == 1
        assert result.tracer is not None


class TestErrors:
    def test_simulator_errors_propagate(self, tmp_path):
        good = _cfgs(1)[0]
        # An infeasible config (thickness too thick) raises in the worker.
        infeasible = RunConfig(machine=YONA, implementation="hybrid_overlap",
                               cores=192, threads_per_task=2,
                               box_thickness=200)
        with Scheduler(jobs=2, cache_dir=str(tmp_path / "c")) as sched:
            with pytest.raises(ValueError):
                sched.map([good, infeasible])
            out = sched.map([good, infeasible], return_exceptions=True)
            assert isinstance(out[1], ValueError)
            assert out[0].elapsed_s > 0
            assert sched.stats()["failed"] == 1  # memoized, not re-failed

    def test_closed_scheduler_rejects_work(self):
        sched = Scheduler(jobs=1)
        sched.close()
        with pytest.raises(SchedulerError):
            sched.map(_cfgs(1))


class TestModuleState:
    def test_configure_and_active(self):
        assert active_scheduler() is None
        sched = configure(1)
        assert active_scheduler() is sched
        configure(None)
        assert active_scheduler() is None

    def test_scheduled_restores_previous(self):
        outer = configure(1)
        with scheduled(2) as inner:
            assert active_scheduler() is inner
        assert active_scheduler() is outer

    def test_telemetry_names_complete(self):
        from repro.sched.scheduler import COUNTER_NAMES

        with Scheduler(jobs=1) as sched:
            s = sched.stats()
            assert set(s) == set(COUNTER_NAMES)
            line = sched.summary()
            for name in COUNTER_NAMES:
                assert f"{name.replace('_', '-')}=" in line


class TestKeying:
    def test_task_key_is_the_cache_key(self, tmp_path):
        """Dedup and cache short-circuit address the same content hash."""
        cfg = _cfgs(1)[0]
        cache_dir = str(tmp_path / "c")
        with Scheduler(jobs=1, cache_dir=cache_dir) as sched:
            sched.map([cfg])
        cache = RunCache(cache_dir)
        assert cache.get(cfg) is not None
        key = config_key(cfg)
        assert (tmp_path / "c" / key[:2] / f"{key}.json").exists()
