"""Eager feasibility validation mirrors what the simulator would reject."""

import pytest

from repro.core.config import RunConfig
from repro.machines import JAGUARPF, LENS, YONA
from repro.sched import validate_config


class TestValidateConfig:
    def test_feasible_config_passes(self):
        validate_config(
            RunConfig(machine=LENS, implementation="nonblocking", cores=4,
                      steps=2, domain=(24, 24, 24))
        )

    def test_thickness_too_thick_rejected(self):
        cfg = RunConfig(machine=YONA, implementation="hybrid_overlap",
                        cores=192, threads_per_task=2, box_thickness=200)
        with pytest.raises(ValueError):
            validate_config(cfg)

    def test_gpu_impl_on_cpu_machine_rejected(self):
        cfg = RunConfig(machine=JAGUARPF, implementation="gpu_bulk", cores=12)
        with pytest.raises(ValueError):
            validate_config(cfg)

    def test_single_task_beyond_node_rejected(self):
        # 24 cores as two 12-thread tasks: "single" demands exactly one.
        cfg = RunConfig(machine=JAGUARPF, implementation="single", cores=24,
                        threads_per_task=12)
        with pytest.raises(ValueError):
            validate_config(cfg)

    def test_inadmissible_gpu_block_rejected(self):
        cfg = RunConfig(machine=YONA, implementation="gpu_bulk", cores=12,
                        block=(1000, 1, 1))
        with pytest.raises(ValueError, match="not admissible"):
            validate_config(cfg)

    def test_admissible_gpu_block_passes(self):
        from repro.simgpu.blockmodel import admissible_blocks

        block = next(iter(admissible_blocks(YONA.gpu)))
        validate_config(
            RunConfig(machine=YONA, implementation="gpu_bulk", cores=12,
                      block=tuple(block))
        )

    def test_validation_agrees_with_the_simulator(self):
        """A config that passes must simulate without ValueError."""
        from repro.core.runner import run

        cfg = RunConfig(machine=YONA, implementation="hybrid_overlap",
                        cores=12, threads_per_task=12, box_thickness=2)
        validate_config(cfg)
        assert run(cfg).elapsed_s > 0
