"""Fig. 10 (Yona all-implementation scaling) regeneration benchmark."""

from repro.experiments import run_experiment


def test_bench_fig10(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "fig10")
    s = result.series
    top = max(s["hybrid_overlap"])
    cpu_best = max(s[k][top] for k in ("bulk", "nonblocking", "thread_overlap"))
    assert s["hybrid_overlap"][top] > 4 * cpu_best  # the paper's >4x claim
    with capsys.disabled():
        print()
        print(result.to_text())
