"""Serve daemon hot path: warm cached-query throughput and latency.

The serve PR's contract (docs/MODEL.md §14) is that a warm query —
one whose config key is already memoized — never touches a scheduler
worker: the listener answers straight from the in-memory memo.  That
makes warm throughput a pure protocol + event-loop number, gated by
``tools/perf_smoke.py`` for ``BENCH_PR8.json`` at >= 10k queries/s
with 8 concurrent pipelined clients.  The asserts here are soft
(progress over absolutes) so a loaded benchmark machine does not
flake the suite; the hard floor lives in perf_smoke.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time

import pytest

import repro
from repro.serve.client import ServeClient

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

CFG_DOC = {"machine": "lens", "impl": "nonblocking", "cores": 16,
           "domain": 16, "steps": 4}

#: Concurrent pipelined clients (matches the perf_smoke gate).
N_CLIENTS = 8

#: Warm queries issued per client per benchmark round.
QUERIES_PER_CLIENT = 1024

#: Pipelining window: docs written before reading responses back.
PIPELINE_WINDOW = 32


def _spawn_daemon(workdir):
    ready = os.path.join(workdir, "ready.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--ready-file", ready, "--cache-dir",
         os.path.join(workdir, "cache")],
        env=env, cwd=workdir,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 30
    while not os.path.exists(ready):
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise RuntimeError(f"daemon died: {out}\n{err}")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("daemon never became ready")
        time.sleep(0.02)
    with open(ready, encoding="utf-8") as fh:
        info = json.load(fh)
    return proc, info["host"], info["port"]


@pytest.fixture(scope="module")
def daemon():
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as workdir:
        proc, host, port = _spawn_daemon(workdir)
        with ServeClient(host, port, timeout_s=60) as c:
            assert c.run(CFG_DOC)["ok"]  # prime the memo
        yield host, port
        proc.kill()
        proc.communicate(timeout=10)


def _client_burst(host, port, n_queries, latencies=None):
    """Issue n warm queries over one connection, pipelined in windows."""
    doc = {"verb": "run", "config": CFG_DOC}
    done = 0
    with ServeClient(host, port, timeout_s=60) as c:
        while done < n_queries:
            window = min(PIPELINE_WINDOW, n_queries - done)
            t0 = time.perf_counter()
            docs = [dict(doc, id=done + i) for i in range(window)]
            for resp in c.pipeline(docs):
                assert resp["ok"]
            if latencies is not None:
                # Per-window wall time amortized over the window.
                latencies.append((time.perf_counter() - t0) / window)
            done += window
    return done


def test_bench_serve_warm_throughput(benchmark, daemon):
    """8 pipelined clients hammering one warm config concurrently."""
    host, port = daemon

    def storm():
        counts = [0] * N_CLIENTS
        errs = []

        def worker(i):
            try:
                counts[i] = _client_burst(host, port, QUERIES_PER_CLIENT)
            except BaseException as exc:  # pragma: no cover
                errs.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errs, errs
        return sum(counts)

    n = benchmark(storm)
    if getattr(benchmark, "stats", None):
        qps = n / benchmark.stats.stats.min
    else:
        t0 = time.perf_counter()
        n = storm()
        qps = n / (time.perf_counter() - t0)
    benchmark.extra_info["warm_qps_8_clients"] = round(qps)
    assert qps > 0  # the gated 10k/s floor lives in perf_smoke


def test_bench_serve_warm_latency(benchmark, daemon):
    """Sequential warm round-trips: p50/p99 per-query latency."""
    host, port = daemon
    latencies = []

    def burst():
        return _client_burst(host, port, 512, latencies=latencies)

    n = benchmark(burst)
    assert n == 512
    latencies.sort()
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    benchmark.extra_info["warm_p50_us"] = round(p50 * 1e6, 1)
    benchmark.extra_info["warm_p99_us"] = round(p99 * 1e6, 1)
    assert p99 < 1.0, "a warm query took over a second"
