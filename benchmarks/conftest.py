"""Shared benchmark fixtures and helpers.

Each ``bench_*`` module regenerates one of the paper's tables or figures
through the simulator and reports the harness runtime via pytest-benchmark.
The regenerated data is also shape-checked, so the benchmark run doubles as
an end-to-end validation of the reproduction — and prints the same
rows/series the paper reports.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic regenerator exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
