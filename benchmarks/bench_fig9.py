"""Fig. 9 (Lens all-implementation scaling) regeneration benchmark."""

from repro.experiments import run_experiment


def test_bench_fig9(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "fig9")
    s = result.series
    for cores in s["hybrid_overlap"]:
        others = [p[cores] for k, p in s.items()
                  if k != "hybrid_overlap" and cores in p]
        assert s["hybrid_overlap"][cores] >= max(others)
    with capsys.disabled():
        print()
        print(result.to_text())
