"""DES engine throughput: flat-core scheduler vs the pre-PR legacy engine.

The sweep engine pumps millions of events through ``repro.des`` per
report regeneration, so its hot path has been rebuilt twice: PR 2
introduced bare callback slots and callback-chained transfers, and the
flat event core (docs/MODEL.md §12) replaced the merged heap+deque with
time-bucket cohorts, tombstone cancellation, and allocation-free
steady-state scheduling. This benchmark simulates the same
halo-transfer workload both ways — the seed idiom on a faithful copy
of the seed engine, the callback-slot idiom on the production engine —
and asserts the new stack moves at least :data:`MIN_SPEEDUP` times as
many events per second, plus an *absolute* events/s floor recorded in
``BENCH_PR6.json`` (gated by ``tools/perf_smoke.py --check``).

Two auxiliary workloads exercise the flat core's new machinery where
the transfer shape does not: a cancellation-heavy workload (bandwidth-
style wakeup reschedules, ~90% of entries tombstoned before firing)
and a same-time-burst workload (wide cohorts drained with the heap
touched once per distinct time).

The *legacy* engine below is a trimmed copy of the seed scheduler
(single heapq for everything, a bootstrap Event per process, and a
fresh relay Event allocated whenever a process yields an
already-processed event). It exists only as the comparison baseline;
the production engine lives in :mod:`repro.des.engine`.
"""

from __future__ import annotations

import heapq
import time
import tracemalloc
from typing import Any, Callable, Generator, Optional

from repro.des import Environment

#: Acceptance floor: new engine events/s over legacy events/s.
MIN_SPEEDUP = 2.0

#: Workload shape (kept moderate so the benchmark suite stays quick).
N_TRANSFERS = 20_000

#: Nominal scheduler operations per simulated transfer (hops + triggers
#: + waiter resumes), used to express throughput in events/s. The same
#: constant applies to both engines, so the *ratio* is exact regardless
#: of this nominal value.
OPS_PER_TRANSFER = 8


# --------------------------------------------------------------------------
# Legacy engine (seed behaviour): one heap, relay events, bootstrap events.
# --------------------------------------------------------------------------

_PENDING, _TRIGGERED, _PROCESSED = 0, 1, 2


class _LegacyEvent:
    __slots__ = ("env", "callbacks", "_state", "_ok", "_value")

    def __init__(self, env: "_LegacyEnvironment"):
        self.env = env
        self.callbacks: list[Callable[["_LegacyEvent"], None]] = []
        self._state = _PENDING
        self._ok = True
        self._value: Any = None

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    def succeed(self, value: Any = None) -> "_LegacyEvent":
        if self._state != _PENDING:
            raise RuntimeError("event already triggered")
        self._state = _TRIGGERED
        self._ok = True
        self._value = value
        self.env._enqueue(self)
        return self

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class _LegacyTimeout(_LegacyEvent):
    __slots__ = ()

    def __init__(self, env: "_LegacyEnvironment", delay: float, value: Any = None):
        super().__init__(env)
        self._state = _TRIGGERED
        self._value = value
        env._enqueue(self, delay)


class _LegacyProcess(_LegacyEvent):
    __slots__ = ("_generator",)

    def __init__(self, env: "_LegacyEnvironment", generator: Generator):
        super().__init__(env)
        self._generator = generator
        bootstrap = _LegacyEvent(env)  # per-process bootstrap allocation
        bootstrap._state = _TRIGGERED
        bootstrap.callbacks.append(self._resume)
        env._enqueue(bootstrap)

    def _resume(self, trigger: "_LegacyEvent") -> None:
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if target._state == _PROCESSED:
            # Seed behaviour: allocate a fresh relay event per stale yield.
            relay = _LegacyEvent(self.env)
            relay._state = _TRIGGERED
            relay._ok = target._ok
            relay._value = target._value
            relay.callbacks.append(self._resume)
            self.env._enqueue(relay)
        else:
            target.callbacks.append(self._resume)


class _LegacyEnvironment:
    """Seed scheduler: every occurrence is an Event pushed on one heap."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, _LegacyEvent]] = []
        self._counter = 0

    @property
    def now(self) -> float:
        return self._now

    def event(self) -> _LegacyEvent:
        return _LegacyEvent(self)

    def timeout(self, delay: float, value: Any = None) -> _LegacyTimeout:
        return _LegacyTimeout(self, delay, value)

    def process(self, generator: Generator) -> _LegacyProcess:
        return _LegacyProcess(self, generator)

    def _enqueue(self, event: _LegacyEvent, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._counter, event))
        self._counter += 1

    def run(self) -> None:
        queue = self._queue
        while queue:
            when, _, event = heapq.heappop(queue)
            self._now = when
            event._run_callbacks()


# --------------------------------------------------------------------------
# Workload: N simulated halo transfers (the exchange machinery's shape)
# --------------------------------------------------------------------------

#: Per-hop constants of the simulated transfer (values are irrelevant to
#: the comparison; both engines advance the same simulated clock).
_LAT, _WIRE = 1e-6, 3e-6


def _drive_legacy(env: "_LegacyEnvironment", n: int = N_TRANSFERS) -> int:
    """Seed idiom: one generator process (``mover``) per transfer.

    This is exactly how the pre-PR ``World._wire`` moved bytes: spawn a
    process, yield a latency timeout, yield a wire timeout, trigger the
    completion event. Each transfer costs a Process + bootstrap Event +
    two Timeouts + generator resumes, all through one heap.
    """

    def mover(done):
        yield env.timeout(_LAT)
        yield env.timeout(_WIRE)
        done.succeed()

    def waiter(done):
        yield done
        yield env.timeout(0.0)  # zero-delay turnaround after completion

    for _ in range(n):
        done = env.event()
        env.process(mover(done))
        env.process(waiter(done))
    env.run()
    return n * OPS_PER_TRANSFER


def _drive_fast(env: Environment, n: int = N_TRANSFERS) -> int:
    """Post-PR idiom: callback-chained slots, no mover process.

    Matches the rewritten ``World._wire``/``_start_background``: the
    latency hop is a bare ``schedule`` slot whose callback schedules the
    wire hop, which triggers the completion event — no generator, no
    bootstrap, and the zero-delay turnaround joins the live cohort.
    """

    def waiter(done):
        yield done
        yield env.timeout(0.0)

    for _ in range(n):
        done = env.event()

        def after_latency(_arg, done=done):
            env.schedule(_WIRE, done.succeed)

        env.schedule(_LAT, after_latency)
        env.process(waiter(done))
    env.run()
    return n * OPS_PER_TRANSFER


def _events_per_second(env_factory, drive, repeats: int = 3) -> float:
    best = 0.0
    for _ in range(repeats):
        env = env_factory()
        t0 = time.perf_counter()
        ops = drive(env)
        best = max(best, ops / (time.perf_counter() - t0))
    return best


def legacy_events_per_second() -> float:
    """Throughput of the embedded seed-era engine + seed transfer idiom."""
    return _events_per_second(_LegacyEnvironment, _drive_legacy)


def engine_events_per_second() -> float:
    """Throughput of :mod:`repro.des` + the callback-slot transfer idiom."""
    return _events_per_second(Environment, _drive_fast)


# --------------------------------------------------------------------------
# Flat-core auxiliary workloads: tombstones and wide cohorts
# --------------------------------------------------------------------------

#: Cancellation workload shape: rounds of reschedule-then-cancel, the
#: SharedBandwidth wakeup pattern under membership churn.
N_CANCEL_ROUNDS = 5_000
CANCELS_PER_ROUND = 9  # 9 tombstoned + 1 fired per round

#: Same-time burst shape: distinct times × entries per cohort.
N_BURSTS = 50
BURST_WIDTH = 2_000


def _drive_cancellation(env: Environment, rounds: int = N_CANCEL_ROUNDS) -> int:
    """Cancellation-heavy: each round parks CANCELS_PER_ROUND wakeups and
    tombstones them all before scheduling the one that fires — the
    processor-sharing link's reschedule pattern, amplified. Exercises the
    slot pool freelist and tombstone skipping in the drain loop."""
    fired = [0]

    def wake(_arg):
        fired[0] += 1

    t = 0.0
    for _ in range(rounds):
        t += 1e-6
        dead = [env.schedule_cancellable(t - env.now, wake) for _ in range(CANCELS_PER_ROUND)]
        for h in dead:
            env.cancel(h)
        env.schedule_cancellable(t - env.now, wake)
    env.run()
    assert fired[0] == rounds
    return rounds * (CANCELS_PER_ROUND + 1)


def _drive_same_time_burst(env: Environment, bursts: int = N_BURSTS) -> int:
    """Wide cohorts: BURST_WIDTH same-time slots per distinct time, so the
    heap is consulted once per cohort and the drain loop dominates."""
    hits = [0]

    def hit(_arg):
        hits[0] += 1

    for b in range(1, bursts + 1):
        t = float(b)
        for _ in range(BURST_WIDTH):
            env.schedule(t - env.now, hit)
    env.run()
    assert hits[0] == bursts * BURST_WIDTH
    return bursts * BURST_WIDTH


def cancellation_events_per_second() -> float:
    """Throughput of the cancellation-heavy workload on the flat core."""
    return _events_per_second(Environment, _drive_cancellation)


def burst_events_per_second() -> float:
    """Throughput of the same-time-burst workload on the flat core."""
    return _events_per_second(Environment, _drive_same_time_burst)


# --------------------------------------------------------------------------
# Benchmarks
# --------------------------------------------------------------------------


def test_engines_agree_on_final_time():
    """Same workload, same simulated clock on both engines (sanity)."""
    legacy, new = _LegacyEnvironment(), Environment()
    _drive_legacy(legacy, n=500)
    _drive_fast(new, n=500)
    assert legacy.now == new.now == _LAT + _WIRE


def test_bench_des_event_throughput(benchmark):
    """Fast-path engine ≥2x the legacy engine on the transfer workload."""
    legacy = legacy_events_per_second()

    def regenerate():
        return _drive_fast(Environment())

    ops = benchmark(regenerate)
    if getattr(benchmark, "stats", None):
        new = ops / benchmark.stats.stats.min
    else:  # --benchmark-disable: fall back to a direct measurement
        new = engine_events_per_second()
    benchmark.extra_info["legacy_events_per_s"] = round(legacy)
    benchmark.extra_info["engine_events_per_s"] = round(new)
    benchmark.extra_info["speedup"] = round(new / legacy, 2)
    assert new >= MIN_SPEEDUP * legacy, (
        f"engine throughput regressed: {new:.0f} ev/s vs legacy "
        f"{legacy:.0f} ev/s ({new / legacy:.2f}x < {MIN_SPEEDUP}x)"
    )


def test_bench_des_cancellation_heavy(benchmark):
    """Tombstone-heavy workload: 90% of slots cancelled before firing."""

    def regenerate():
        return _drive_cancellation(Environment())

    ops = benchmark(regenerate)
    if getattr(benchmark, "stats", None):
        evps = ops / benchmark.stats.stats.min
    else:
        evps = cancellation_events_per_second()
    benchmark.extra_info["cancellation_events_per_s"] = round(evps)
    # Tombstoning must not collapse throughput: cancelled entries cost two
    # list reads and a freelist append, so the cancel-heavy mix should move
    # at a healthy fraction of the transfer workload's rate.
    assert evps > 0


def test_bench_des_same_time_burst(benchmark):
    """Wide-cohort workload: the heap is popped once per distinct time."""

    def regenerate():
        return _drive_same_time_burst(Environment())

    ops = benchmark(regenerate)
    if getattr(benchmark, "stats", None):
        evps = ops / benchmark.stats.stats.min
    else:
        evps = burst_events_per_second()
    benchmark.extra_info["burst_events_per_s"] = round(evps)
    assert evps > 0


def test_steady_state_scheduling_is_allocation_free():
    """Bench-level twin of the tests/des tracemalloc check: scheduling into
    a warmed bucket performs no per-entry tuple/object allocation."""
    env = Environment()

    def cb(_arg):
        pass

    for _ in range(16):
        env.schedule(1.0, cb)
    env.run()
    env.schedule(1.0, cb)  # re-create the bucket at now+1

    n = 4096
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    for _ in range(n):
        env.schedule(1.0, cb)
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    new_blocks = sum(
        s.count_diff for s in after.compare_to(before, "filename") if s.count_diff > 0
    )
    assert new_blocks < n / 8, (
        f"{new_blocks} new allocations for {n} scheduled entries"
    )
    env.run()
