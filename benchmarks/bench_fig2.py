"""Fig. 2 (lines of code) regeneration benchmark."""

from repro.experiments import run_experiment


def test_bench_fig2(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "fig2")
    fortran = result.series["fortran"]
    assert fortran["hybrid_overlap"] == 4 * fortran["single"]
    with capsys.disabled():
        print()
        print(result.to_text())
