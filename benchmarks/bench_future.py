"""§VI outlook benchmark: GPUs per node and PCIe speed sweeps."""

from repro.experiments import run_experiment


def test_bench_future(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "future")
    s = result.series
    # More GPUs per node keep helping (paper: fewer CPU cores per GPU).
    gs = sorted(s["gpus_per_node"])
    assert s["gpus_per_node"][gs[-1]] > s["gpus_per_node"][gs[0]]
    # Faster PCIe helps the serialized GPU+MPI code substantially...
    fs = sorted(s["pcie_gpu_bulk"])
    assert s["pcie_gpu_bulk"][fs[-1]] > 1.1 * s["pcie_gpu_bulk"][fs[0]]
    # ...but the hybrid stays ahead at every link speed.
    for f in fs:
        assert s["pcie_hybrid"][f] > s["pcie_gpu_streams"][f]
    with capsys.disabled():
        print()
        print(result.to_text())
