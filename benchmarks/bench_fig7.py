"""Fig. 7 (GPU block-size sweep) regeneration benchmark."""

from repro.experiments import run_experiment


def test_bench_fig7(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "fig7")
    assert "32x11" in result.notes  # the paper's optimum
    with capsys.disabled():
        print()
        print(result.to_text())
