"""Table II regeneration benchmark."""

from repro.experiments import run_experiment


def test_bench_table2(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "table2")
    assert result.columns[1:] == ["JaguarPF", "Hopper II", "Lens", "Yona"]
    with capsys.disabled():
        print()
        print(result.to_text())
