"""Fig. 12 (Yona load-balance sweep) regeneration benchmark."""

from repro.experiments import run_experiment


def test_bench_fig12(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "fig12")
    top = max(result.rows, key=lambda r: r[0])
    assert top[2] <= 2  # few tasks per node
    assert top[3] <= 2  # a veneer of CPU points
    with capsys.disabled():
        print()
        print(result.to_text())
