"""Numerical accuracy benchmark: order of convergence + stability (§II)."""

from repro.experiments import run_experiment


def test_bench_convergence(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "convergence")
    order = next(r[2] for r in result.rows if r[0] == "fitted order")
    assert order > 1.7
    stab = result.series["amplification"]
    assert stab[1.0] <= 1.0 + 1e-9  # stable at the CFL limit
    assert stab[1.25] > 1.0 + 1e-6  # unstable beyond it
    with capsys.disabled():
        print()
        print(result.to_text())
