"""SpMV overlap study (extension experiment) regeneration benchmark."""

from repro.experiments import run_experiment


def test_bench_spmv_overlap(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "spmv_overlap")
    s = result.series
    # The GPU task mode leads on both GPU machines at every core count...
    for machine in ("Yona", "A100-SXM"):
        task_mode = s[f"{machine} hybrid_overlap"]
        for cores, gf in task_mode.items():
            assert gf > s[f"{machine} bulk"][cores]
            assert gf > s[f"{machine} nonblocking"][cores]
        # ... because it hides the most communication (the SS V-E ordering).
        frac = s[f"{machine} overlap fraction"]
        assert frac["hybrid_overlap"] > frac["nonblocking"] > frac["bulk"] == 0
    with capsys.disabled():
        print()
        print(result.to_text())
