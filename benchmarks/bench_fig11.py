"""Fig. 11 (Lens load-balance sweep) regeneration benchmark."""

from repro.experiments import run_experiment


def test_bench_fig11(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "fig11")
    rows = result.rows
    assert rows[-1][3] < rows[0][3]  # best thickness decreases with cores
    with capsys.disabled():
        print()
        print(result.to_text())
