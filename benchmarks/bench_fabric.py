"""Sweep-fabric hot paths: group-commit appends and warm parent lookups.

Million-config sweeps live or die on two rates the fabric PR optimized
(docs/MODEL.md §13): how fast completed results reach durable journal
storage (group commit — one ``write+flush+fsync`` per batch instead of
per line) and how fast a resumed or deduplicated sweep can re-key and
short-circuit warm configs in the scheduler parent (memoized cache keys
+ sharded journal lookups, no worker round-trip).  Both are measured
here the same way ``tools/perf_smoke.py`` gates them for
``BENCH_PR7.json`` (appends >= 10x the per-line-fsync baseline, warm
lookups >= 20k/s), with softer asserts so a loaded benchmark machine
does not flake the suite.
"""

from __future__ import annotations

import time

from repro.cache import config_key
from repro.core.config import RunConfig
from repro.machines import get_machine
from repro.sched import Scheduler, ShardedJournal
from repro.sched.journal import Journal

#: Records pushed through each journal configuration.
N_RECORDS = 2048

#: Distinct configs mapped through the warm parent path.
N_CONFIGS = 2048


def _payloads(n):
    return [
        {"elapsed_s": 0.001 * (i + 1), "phases": {"compute": 0.001 * (i + 1)},
         "comm_stats": {"messages": i}}
        for i in range(n)
    ]


def _keys(n):
    # Hex keys spread over every shard prefix, like real config digests.
    return [f"{i % 256:02x}{i:060x}" for i in range(n)]


def _append_all(journal, keys, payloads):
    for key, payload in zip(keys, payloads):
        journal.record(key, payload)
    journal.close()
    return len(keys)


def test_bench_journal_group_commit(benchmark, tmp_path):
    """Group-commit appends vs the one-fsync-per-line baseline."""
    keys, payloads = _keys(N_RECORDS), _payloads(N_RECORDS)

    def regenerate():
        return _append_all(
            Journal(str(tmp_path / f"g{time.monotonic_ns()}.jsonl"),
                    flush_max_records=256, flush_interval=3600.0),
            keys, payloads,
        )

    n = benchmark(regenerate)
    if getattr(benchmark, "stats", None):
        grouped = n / benchmark.stats.stats.min
    else:
        t0 = time.perf_counter()
        n = regenerate()
        grouped = n / (time.perf_counter() - t0)
    # Per-line baseline on a subset (each record pays a real fsync).
    base_n = 128
    t0 = time.perf_counter()
    _append_all(
        Journal(str(tmp_path / "base.jsonl"), flush_max_records=1),
        keys[:base_n], payloads[:base_n],
    )
    baseline = base_n / (time.perf_counter() - t0)
    benchmark.extra_info["group_commit_appends_per_s"] = round(grouped)
    benchmark.extra_info["per_line_fsync_appends_per_s"] = round(baseline)
    benchmark.extra_info["speedup"] = round(grouped / baseline, 2)
    assert grouped > baseline  # the gated 10x floor lives in perf_smoke


def test_bench_warm_parent_lookups(benchmark, tmp_path):
    """Warm map() throughput: memoized keys + journal hits, no workers."""
    machine = get_machine("yona")
    cfgs = [
        RunConfig(machine=machine, implementation="nonblocking", cores=12,
                  threads_per_task=1, steps=s + 1)
        for s in range(N_CONFIGS)
    ]
    payloads = _payloads(N_CONFIGS)
    jroot = str(tmp_path / "journal")
    j = ShardedJournal(jroot, flush_max_records=1024)
    for cfg, payload in zip(cfgs, payloads):
        j.record(config_key(cfg), payload)  # memoizes every key
    j.close()

    def regenerate():
        sched = Scheduler(jobs=1, journal=ShardedJournal(jroot))
        try:
            out = sched.map(cfgs)
            stats = sched.stats()
        finally:
            sched.close()
        assert stats["journal_hits"] == N_CONFIGS
        assert out[0].elapsed_s == payloads[0]["elapsed_s"]
        return len(out)

    n = benchmark(regenerate)
    if getattr(benchmark, "stats", None):
        lookups = n / benchmark.stats.stats.min
    else:
        t0 = time.perf_counter()
        n = regenerate()
        lookups = n / (time.perf_counter() - t0)
    benchmark.extra_info["warm_lookups_per_s"] = round(lookups)
    assert lookups > 0  # the gated 20k/s floor lives in perf_smoke
