"""Fig. 3 (JaguarPF CPU scaling) regeneration benchmark."""

from repro.experiments import run_experiment


def test_bench_fig3(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "fig3")
    s = result.series
    # bulk-synchronous wins at the top of the range (paper's crossover)
    top = max(s["bulk"])
    assert s["bulk"][top] > s["nonblocking"][top]
    assert s["bulk"][top] > s["thread_overlap"][top]
    with capsys.disabled():
        print()
        print(result.to_text())
