"""Microbenchmarks of the functional NumPy kernels.

These are the only pieces whose *Python* wall-clock matters (the machine
performance in the figures is simulated). The stencil sweep should run at
tens of millions of points per second through NumPy's vectorized paths.
"""

import numpy as np

from repro.stencil.coefficients import tensor_product_coefficients
from repro.stencil.grid import allocate_field
from repro.stencil.kernels import (
    advance,
    apply_stencil,
    fill_periodic_halo,
    interior,
)

N = 64
COEFFS = tensor_product_coefficients((1.0, 0.9, 0.8), 1.0)


def _field():
    rng = np.random.default_rng(0)
    u = allocate_field((N, N, N))
    interior(u)[...] = rng.random((N, N, N))
    return u


def test_bench_apply_stencil(benchmark):
    u = _field()
    fill_periodic_halo(u)
    out = np.zeros_like(u)
    benchmark(apply_stencil, u, COEFFS, out)


def test_bench_halo_fill(benchmark):
    u = _field()
    benchmark(fill_periodic_halo, u)


def test_bench_full_step(benchmark):
    u = _field()
    scratch = np.zeros_like(u)
    benchmark(advance, u, COEFFS, 1, scratch)
