"""Microbenchmarks of the functional NumPy kernels.

These are the only pieces whose *Python* wall-clock matters (the machine
performance in the figures is simulated). The production sweep runs on the
separable engine — three 1-D 3-tap passes through a scratch arena — and
must sustain tens of millions of points per second; the dense 27-point
reference is benchmarked alongside it so the speedup stays visible, and
``test_bench_advance_throughput_floor`` asserts the separable path never
regresses below the PR acceptance floor (2.5x the dense seed).

``tools/perf_smoke.py`` records the same measurements in ``BENCH_PR1.json``.
"""

import numpy as np

from repro.stencil.arena import ScratchArena
from repro.stencil.coefficients import tensor_product_coefficients
from repro.stencil.grid import allocate_field
from repro.stencil.kernels import (
    advance,
    apply_stencil,
    apply_stencil_dense,
    fill_periodic_halo,
    interior,
)

N = 64
COEFFS = tensor_product_coefficients((1.0, 0.9, 0.8), 1.0)

# The dense seed measured ~5.6 Mpts/s at scale on the reference container;
# the PR gate is 2.5x that. At N=64 the separable path actually runs far
# faster (caches), so this floor only catches real regressions.
FLOOR_MPTS = 14.0


def _field(n=N):
    rng = np.random.default_rng(0)
    u = allocate_field((n, n, n))
    interior(u)[...] = rng.random((n, n, n))
    return u


def test_bench_apply_stencil(benchmark):
    """The production (separable) sweep, arena-warm."""
    u = _field()
    fill_periodic_halo(u)
    out = np.zeros_like(u)
    arena = ScratchArena()
    apply_stencil(u, COEFFS, out, arena=arena)  # warm the arena
    benchmark(apply_stencil, u, COEFFS, out, arena=arena)


def test_bench_apply_stencil_dense(benchmark):
    """The dense 27-point reference, for the speedup comparison."""
    u = _field()
    fill_periodic_halo(u)
    out = np.zeros_like(u)
    benchmark(apply_stencil_dense, u, COEFFS, out)


def test_bench_halo_fill(benchmark):
    u = _field()
    benchmark(fill_periodic_halo, u)


def test_bench_full_step(benchmark):
    u = _field()
    scratch = np.zeros_like(u)
    arena = ScratchArena()
    advance(u, COEFFS, steps=1, scratch=scratch, arena=arena)  # warm
    benchmark(advance, u, COEFFS, 1, scratch, arena=arena)


def test_bench_advance_throughput_floor(benchmark):
    """Benchmark the steady-state step AND gate it at the acceptance floor."""
    u = _field()
    scratch = np.zeros_like(u)
    arena = ScratchArena()
    advance(u, COEFFS, steps=1, scratch=scratch, arena=arena)  # warm
    benchmark(advance, u, COEFFS, 1, scratch, arena=arena)
    mpts = N**3 / benchmark.stats.stats.min / 1e6
    benchmark.extra_info["mpts_per_s"] = round(mpts, 1)
    assert mpts >= FLOOR_MPTS, (
        f"separable advance ran at {mpts:.1f} Mpts/s, below the "
        f"{FLOOR_MPTS:.0f} Mpts/s floor (2.5x the dense seed)"
    )
