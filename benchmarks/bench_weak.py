"""Weak-scaling extension benchmark (no paper counterpart)."""

from repro.experiments import run_experiment


def test_bench_weak(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "weak")
    s = result.series
    for cores in s["hybrid_overlap"]:
        assert s["hybrid_overlap"][cores] > s["bulk"][cores]
    with capsys.disabled():
        print()
        print(result.to_text())
