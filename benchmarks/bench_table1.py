"""Table I regeneration benchmark."""

from repro.experiments import run_experiment


def test_bench_table1(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "table1")
    assert len(result.rows) == 27
    with capsys.disabled():
        print()
        print(result.to_text())
