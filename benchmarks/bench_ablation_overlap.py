"""Ablation: decompose the hybrid-overlap win channel by channel.

Not a paper figure — it quantifies the paper's §V-E argument by switching
off one overlap channel at a time in the §IV-I implementation.
"""

from repro import RunConfig, YONA, run


def _gf(**kw):
    base = dict(machine=YONA, implementation="hybrid_overlap", cores=48,
                threads_per_task=12, box_thickness=2)
    base.update(kw)
    return run(RunConfig(**base)).gflops


def test_bench_ablation_overlap(benchmark, once, capsys):
    def study():
        return {
            "full overlap": _gf(),
            "no stream overlap": _gf(disable_stream_overlap=True),
            "no MPI overlap": _gf(disable_mpi_overlap=True),
            "neither": _gf(disable_stream_overlap=True, disable_mpi_overlap=True),
        }

    results = once(benchmark, study)
    # The GPU-stream channel carries most of the win; switching it off
    # must cost far more than switching off the MPI channel.
    loss_stream = results["full overlap"] - results["no stream overlap"]
    loss_mpi = results["full overlap"] - results["no MPI overlap"]
    assert loss_stream > 3 * max(loss_mpi, 1.0)
    assert results["neither"] <= min(results.values()) + 1e-9
    with capsys.disabled():
        print()
        print("hybrid-overlap ablation (4 Yona nodes, 420^3):")
        for name, gf in results.items():
            print(f"  {name:20s} {gf:7.1f} GF")
