"""Exchange-protocol race benchmark (extension; see experiments.protocols)."""

from repro.experiments import run_experiment


def test_bench_protocols(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "protocols")
    s = result.series
    # Direct-26 removes the dependent phases and wins in the mid-range...
    j6, j26 = s["JaguarPF serialized-6"], s["JaguarPF direct-26"]
    assert any(j26[c] > j6[c] for c in j26)
    # ...but 26 latencies catch up where messages get tiny.
    h6, h26 = s["Hopper II serialized-6"], s["Hopper II direct-26"]
    top = max(h6)
    assert h6[top] > h26[top]
    with capsys.disabled():
        print()
        print(result.to_text())
