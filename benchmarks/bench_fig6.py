"""Fig. 6 (Hopper II threads-per-task) regeneration benchmark."""

from repro.experiments import run_experiment


def test_bench_fig6(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "fig6")
    # the best threads/task grows with core count
    cores = sorted(next(iter(result.series.values())))
    first = int(result.best_series_at(cores[0]).split()[0])
    last = int(result.best_series_at(cores[-1]).split()[0])
    assert last > first
    with capsys.disabled():
        print()
        print(result.to_text())
