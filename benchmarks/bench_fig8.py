"""Fig. 8 (GPU block-size sweep) regeneration benchmark."""

from repro.experiments import run_experiment


def test_bench_fig8(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "fig8")
    assert "32x8" in result.notes  # the paper's optimum
    with capsys.disabled():
        print()
        print(result.to_text())
