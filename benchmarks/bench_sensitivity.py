"""Calibration-robustness benchmark: perturb constants, re-test claims."""

from repro.experiments import run_experiment


def test_bench_sensitivity(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "sensitivity")
    score = result.series["robustness"]
    # The reproduction must not hinge on fine-tuning: the overwhelming
    # majority of +/-20% perturbations keep every headline claim.
    for claim, frac in score.items():
        assert frac >= 0.85, f"claim {claim} too sensitive ({frac:.0%})"
    with capsys.disabled():
        print()
        print(result.to_text())
