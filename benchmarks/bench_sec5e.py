"""§V-E single-node Yona anchor benchmark (86/24/35/82 GF)."""

from repro.experiments import run_experiment


def test_bench_sec5e(benchmark, once, capsys):
    result = once(benchmark, run_experiment, "sec5e")
    for _, paper, measured, ratio in result.rows:
        assert 0.75 <= ratio <= 1.25
    with capsys.disabled():
        print()
        print(result.to_text())
