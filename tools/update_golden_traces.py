#!/usr/bin/env python
"""Regenerate the committed golden trace summaries (tests/obs/golden_traces.json).

Run after any intentional change to the performance model or the tracer::

    PYTHONPATH=src python tools/update_golden_traces.py

then review the diff: event-count changes mean the instrumentation changed,
elapsed/overlap changes mean the *model* changed (and MODEL_VERSION in
repro.cache must be bumped).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tests" / "obs"))

from conftest import golden_config, golden_keys, golden_summary  # noqa: E402
from repro.core.runner import run  # noqa: E402

OUT = REPO / "tests" / "obs" / "golden_traces.json"


def main() -> int:
    doc = {
        "_comment": (
            "Golden trace summaries of every implementation on a 16^3 "
            "full-network run (see tests/obs/conftest.golden_config). "
            "Regenerate with tools/update_golden_traces.py."
        ),
        "impls": {},
    }
    for key in golden_keys():
        result = run(golden_config(key))
        doc["impls"][key] = golden_summary(result)
        print(f"{key:18s} {doc['impls'][key]['n_events']:5d} events, "
              f"overlap {doc['impls'][key]['overlap_fraction']:.3f}")
    OUT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
