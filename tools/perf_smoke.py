#!/usr/bin/env python3
"""Perf smoke: kernels, DES engine throughput, and cache-backed sweeps.

Run from the repository root::

    python tools/perf_smoke.py [--out BENCH_PR10.json] [--check]

Measures, on the current machine:

* dense 27-point ``advance`` throughput at ``size``^3 (the seed's path),
* separable 3x1-D ``advance`` throughput at ``size``^3 (the production
  path) and the speedup between them,
* maximum relative disagreement between the two paths (must sit within
  the ``rtol=1e-12`` acceptance band),
* DES engine event throughput on the transfer-shaped microbenchmark
  (``benchmarks/bench_des.py``) against the embedded pre-PR engine,
  plus the flat core's cancellation-heavy and same-time-burst auxiliary
  workloads, gated by an *absolute* events/s floor (the engine ratio
  alone could mask a global slowdown),
* wall-clock of the full fast report (``experiment all --fast``) cold
  (empty cache, every config simulated) and warm (replayed from the
  content-addressed run cache), with the warm hit rate — the warm pass
  must also reproduce the cold rows/series bit-identically,
* wall-clock of a full ``fig9`` regeneration (the paper's headline
  figure) as an end-to-end simulator smoke,
* the run scheduler: cold and warm ``experiment all --fast`` through
  ``--jobs 4`` worker processes (``repro.sched.Scheduler``), checked
  bit-identical to the serial pass. The cold floor scales with the
  machine — ``max(0.5, 0.5 x min(jobs, usable_cores))`` — because a
  single-core container cannot parallelize CPU-bound simulation (the
  reference target is the paper protocol's >= 2x at 4+ cores); warm
  regeneration replays from cache/journal in the parent and must stay
  no slower than serial warm (small tolerance for timer noise),
* the trace subsystem's cost: a traced run must reproduce the untraced
  run's scalars bit-identically, and the *disabled* instrumentation
  (the ``tracer is None`` guards left in the hot paths) must cost at
  most 2% of an untraced run's wall-clock. There is no guard-free
  build to race at runtime, so the disabled cost is bounded
  analytically: the traced run's event+counter count bounds how many
  guards an untraced run evaluates, and a micro-benchmark prices one
  guard check (loop overhead included, so the bound is conservative),
* the perturbation layer's cost and contract: an unseeded run must be
  bit-identical to the pre-perturbation simulator (the ``perturb is
  None`` guards are priced with the same analytic bound, ceiling 3%),
  and a fixed ``(seed, noise)`` pair must reproduce bit-identically
  across repeat runs while actually changing the timeline,
* the sweep fabric's hot paths: warm cached lookups/s through the
  scheduler parent short-circuit (memoized keys + sharded journal, no
  worker), gated by an absolute >= 20k lookups/s floor, and the
  group-commit journal's append throughput against the
  one-fsync-per-line baseline, gated at >= 10x,
* the serve daemon's warm path: a live ``advection-repro serve``
  subprocess answering cached queries over NDJSON — throughput with 8
  concurrent pipelined clients (gated at >= 10k queries/s), per-query
  p50/p99 warm latency, and the identity contract (a served warm
  result must match a direct ``core.runner.run`` bit-for-bit),
* the progress-model layer's cost and contract: the paper machines
  default to ``manual-poll``, which must reproduce a pre-progress-model
  run bit-identically (the explicit enum equals the default) while
  ``hardware-offload`` may only speed the same config up; the disabled
  cost of the model machinery (one ``_progress_tax`` truthiness guard
  per compute charge, one ``background_fraction`` dispatch per wire
  message) is bounded analytically from the traced event counts and a
  micro-benchmark of both call sites, ceiling 2%,
* the workload layer's contracts: a config naming the default workload
  explicitly must run and hash bit-identically to one that never
  mentions it, four cache keys computed on the pre-workload tree must
  still resolve, the SpMV §V-E overlap ordering (task mode > naive
  nonblocking > vector mode at 0) must hold, and the per-run dispatch
  the layer adds is priced and bounded at 2%.

Results are written as JSON (default ``BENCH_PR10.json``) so each PR can
record its perf point and the trajectory stays auditable. The committed
numbers come from the reference container; regenerate locally before
comparing machines.

``--check`` exits non-zero unless every acceptance floor holds:
separable kernel >= 14 Mpts/s, kernel agreement inside the band, DES
engine >= 2x the legacy engine *and* >= the absolute events/s floor,
warm sweep >= 40% faster than cold,
warm results identical to cold, scheduled (``--jobs 4``) regeneration
bit-identical to serial with the core-scaled cold floor and warm no
slower, traced == untraced bit-identically, the disabled-tracing guard
bound <= 2%, seeded runs deterministic and distinct from noiseless,
the disabled-perturbation guard bound <= 3%, and the serve daemon
>= 10k warm queries/s with served results identical to direct runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone

import numpy as np

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "benchmarks"))  # bench_des reuse

from repro.stencil.arena import ScratchArena
from repro.stencil.coefficients import max_stable_nu, tensor_product_coefficients
from repro.stencil.grid import allocate_field
from repro.stencil.kernels import (
    advance,
    apply_stencil,
    apply_stencil_dense,
    fill_periodic_halo,
    interior,
)

VELOCITY = (0.9, -0.6, 0.4)

# Acceptance floors (--check).
FLOOR_KERNEL_MPTS = 14.0
FLOOR_DES_SPEEDUP = 2.0
#: Absolute DES floor on the transfer workload. The flat event core
#: measures ~1.35M ev/s in this container (~2.05x the PR 5 engine,
#: which measured ~0.66M here; faster reference hardware lands near
#: 1.8M). The floor sits well under the measured figure so CI machine
#: variance does not flake the gate, but far above anything the PR 5
#: engine could reach — a silent engine regression still trips it.
FLOOR_DES_EVENTS_PER_S = 900_000
FLOOR_WARM_CUT = 0.40
CEIL_TRACE_OFF_OVERHEAD = 0.02
CEIL_PERTURB_OFF_OVERHEAD = 0.03
#: scheduled cold regeneration: reference floor at >= 4 usable cores;
#: scaled down on smaller machines (see sched_cold_floor)
FLOOR_SCHED_COLD_SPEEDUP = 2.0
#: scheduled warm regeneration vs serial warm: relative + absolute slack
#: ("no slower", with room for timer noise on sub-second measurements)
CEIL_SCHED_WARM_FACTOR = 1.25
CEIL_SCHED_WARM_SLACK_S = 0.30
#: sweep fabric: warm lookups/s through the scheduler parent path
#: (memoized keys + journal short-circuit, no worker, no re-hash)
FLOOR_WARM_LOOKUPS_PER_S = 20_000
#: sweep fabric: group-commit journal appends vs one-fsync-per-line
FLOOR_JOURNAL_APPEND_SPEEDUP = 10.0
#: serve daemon: warm cached queries/s with 8 concurrent pipelined
#: clients (this container measures ~17k/s; the floor leaves headroom
#: for CI machine variance while still catching a protocol regression)
FLOOR_SERVE_WARM_QPS = 10_000
#: progress models: the manual-poll default may cost at most 2% of a
#: pre-progress-model run (analytic bound on the guard + dispatch sites)
CEIL_PROGRESS_OFF_OVERHEAD = 0.02
#: Ceiling on the workload layer's cost to a default-workload run: one
#: get_workload + implementation lookup per run, priced analytically.
CEIL_WORKLOAD_DISPATCH_OVERHEAD = 0.02


def usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def sched_cold_floor(jobs: int) -> float:
    """Machine-scaled speedup floor for the cold scheduled regeneration.

    ``FLOOR_SCHED_COLD_SPEEDUP`` (2x) applies where the pool can really
    run ``jobs`` simulations at once; with fewer usable cores the floor
    degrades linearly (0.5x per core), bottoming out at 0.5 — on a
    single core, ``jobs`` worker processes time-share with the parent,
    so the CPU-bound simulation cannot beat serial and pays real
    context-switch + IPC cost; the floor only bounds that tax at 2x.
    """
    return max(0.5, 0.5 * min(jobs, usable_cores()))


def _field(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    u = allocate_field((n, n, n))
    interior(u)[...] = rng.random((n, n, n))
    fill_periodic_halo(u)
    return u


def time_advance(n: int, steps: int, method: str) -> float:
    """Best-of-2 Mpts/s for ``advance`` at ``n``^3 on the given path."""
    coeffs = tensor_product_coefficients(VELOCITY, 0.8 * max_stable_nu(VELOCITY))
    u = _field(n)
    arena = ScratchArena()
    scratch = np.zeros_like(u)
    advance(u.copy(), coeffs, steps=1, scratch=scratch, arena=arena,
            method=method)  # warm arena + caches
    best = 0.0
    for _ in range(2):
        t0 = time.perf_counter()
        advance(u.copy(), coeffs, steps=steps, scratch=scratch, arena=arena,
                method=method)
        best = max(best, steps * n**3 / (time.perf_counter() - t0) / 1e6)
    return best


RTOL, ATOL = 1e-12, 1e-14


def agreement(n: int) -> float:
    """Worst-point margin against the ``rtol=1e-12, atol=1e-14`` band.

    This is the exact criterion ``np.testing.assert_allclose`` applies in
    ``tests/perf/test_kernel_throughput.py``: values < 1 are inside the
    band, with the returned number telling how much of it is used.
    """
    coeffs = tensor_product_coefficients(VELOCITY, 0.8 * max_stable_nu(VELOCITY))
    u = _field(n, seed=1)
    sep = interior(apply_stencil(u, coeffs, method="separable"))
    dense = interior(apply_stencil_dense(u, coeffs))
    return float(np.max(np.abs(sep - dense) / (ATOL + RTOL * np.abs(dense))))


def time_des() -> dict:
    """Engine events/s vs the embedded pre-PR engine (bench_des workload).

    Best-of-3 interleaved passes: a single pass is at the mercy of a
    loaded container and has produced spurious sub-floor speedups.
    """
    from bench_des import (
        burst_events_per_second,
        cancellation_events_per_second,
        engine_events_per_second,
        legacy_events_per_second,
    )

    legacy = new = 0.0
    for _ in range(3):
        legacy = max(legacy, legacy_events_per_second())
        new = max(new, engine_events_per_second())
    return {
        "legacy_events_per_s": round(legacy),
        "engine_events_per_s": round(new),
        "speedup": round(new / legacy, 2),
        "cancellation_events_per_s": round(cancellation_events_per_second()),
        "burst_events_per_s": round(burst_events_per_second()),
        "acceptance_floor_speedup": FLOOR_DES_SPEEDUP,
        "acceptance_floor_events_per_s": FLOOR_DES_EVENTS_PER_S,
    }


def time_sweep_cold_warm() -> tuple:
    """Cold vs warm ``experiment all --fast`` through the run cache.

    Returns ``(info, cold_results)``; the cold results are the serial
    reference the scheduled regeneration is checked against.
    """
    from repro import cache as run_cache
    from repro.experiments import EXPERIMENTS, run_experiments

    ids = sorted(EXPERIMENTS)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        run_cache.configure(tmp)
        try:
            t0 = time.perf_counter()
            cold = run_experiments(ids, fast=True)
            cold_s = time.perf_counter() - t0
            run_cache.reset_stats()
            t0 = time.perf_counter()
            warm = run_experiments(ids, fast=True)
            warm_s = time.perf_counter() - t0
            stats = run_cache.stats()
        finally:
            run_cache.configure(None)
    identical = all(
        a.rows == b.rows and a.series == b.series for a, b in zip(cold, warm)
    )
    looked_up = stats["hits"] + stats["misses"]
    info = {
        "experiments": len(ids),
        "cold_seconds": round(cold_s, 2),
        "warm_seconds": round(warm_s, 2),
        "warm_cut": round(1.0 - warm_s / cold_s, 3),
        "warm_hit_rate": round(stats["hits"] / looked_up, 3) if looked_up else 0.0,
        "warm_identical_to_cold": identical,
        "acceptance_floor_warm_cut": FLOOR_WARM_CUT,
    }
    return info, cold


def time_scheduled_sweep(serial_cold_s: float, serial_warm_s: float,
                         serial_results: list, jobs: int = 4) -> dict:
    """Cold/warm ``experiment all --fast --jobs N`` vs the serial pass.

    The same regeneration routed through ``repro.sched.Scheduler``'s
    worker pool: cold simulates through ``jobs`` processes, warm replays
    cache hits in the parent without occupying a worker. Both passes
    must reproduce the serial rows/series bit-identically; timing floors
    are machine-scaled (see :func:`sched_cold_floor`).
    """
    from repro import cache as run_cache
    from repro.experiments import EXPERIMENTS, run_experiments

    ids = sorted(EXPERIMENTS)
    with tempfile.TemporaryDirectory(prefix="repro-bench-sched-") as tmp:
        run_cache.configure(tmp)
        try:
            t0 = time.perf_counter()
            cold = run_experiments(ids, fast=True, jobs=jobs)
            cold_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = run_experiments(ids, fast=True, jobs=jobs)
            warm_s = time.perf_counter() - t0
        finally:
            run_cache.configure(None)
    cold_identical = all(
        a.rows == b.rows and a.series == b.series
        for a, b in zip(serial_results, cold)
    )
    warm_identical = all(
        a.rows == b.rows and a.series == b.series
        for a, b in zip(serial_results, warm)
    )
    return {
        "jobs": jobs,
        "usable_cores": usable_cores(),
        "cold_seconds": round(cold_s, 2),
        "warm_seconds": round(warm_s, 2),
        "cold_speedup_vs_serial": round(serial_cold_s / cold_s, 2),
        "warm_seconds_serial": round(serial_warm_s, 2),
        "cold_identical_to_serial": cold_identical,
        "warm_identical_to_serial": warm_identical,
        "acceptance_floor_cold_speedup": round(sched_cold_floor(jobs), 2),
        "acceptance_floor_cold_speedup_reference": FLOOR_SCHED_COLD_SPEEDUP,
        "acceptance_ceiling_warm_factor": CEIL_SCHED_WARM_FACTOR,
        "acceptance_ceiling_warm_slack_s": CEIL_SCHED_WARM_SLACK_S,
    }


def _guard_cost_s(iters: int = 2_000_000) -> float:
    """Wall cost of one ``tracer is None`` check (incl. loop overhead)."""
    tracer = None
    hits = 0
    t0 = time.perf_counter()
    for _ in range(iters):
        if tracer is not None:  # the exact guard the hot paths use
            hits += 1
    elapsed = time.perf_counter() - t0
    assert hits == 0
    return elapsed / iters


def time_trace_overhead() -> dict:
    """Traced-vs-untraced identity and the disabled-guard cost bound.

    ``run(trace=True)`` only *observes* the DES — it must reproduce the
    untraced scalars bit-for-bit. The untraced path keeps ``tracer is
    None`` guards at every instrumented site; the traced run's event and
    counter counts bound how many of those an untraced run evaluates, so
    ``guards x guard_cost / untraced_wall`` conservatively bounds the
    overhead of tracing-while-disabled.
    """
    from repro.core.config import RunConfig
    from repro.core.runner import run
    from repro.machines import get_machine

    def cfg(trace: bool) -> RunConfig:
        return RunConfig(
            machine=get_machine("yona"), implementation="hybrid_overlap",
            cores=12, threads_per_task=6, box_thickness=3,
            network="full", trace=trace,
        )

    r_off, r_on = run(cfg(False)), run(cfg(True))
    identical = (
        r_on.elapsed_s == r_off.elapsed_s
        and r_on.phases == r_off.phases
        and r_on.comm_stats == r_off.comm_stats
    )

    reps = 20
    off_s = on_s = 1e9
    for _ in range(3):  # interleaved batches, best-of
        t0 = time.perf_counter()
        for _ in range(reps):
            run(cfg(False))
        off_s = min(off_s, (time.perf_counter() - t0) / reps)
        t0 = time.perf_counter()
        for _ in range(reps):
            run(cfg(True))
        on_s = min(on_s, (time.perf_counter() - t0) / reps)

    tracer = r_on.tracer
    n_guards = 2 * (len(tracer.events) + len(tracer.counters))  # 2x margin
    guard_s = _guard_cost_s()
    off_bound = n_guards * guard_s / off_s
    return {
        "untraced_ms_per_run": round(off_s * 1e3, 3),
        "traced_ms_per_run": round(on_s * 1e3, 3),
        "traced_overhead": round(on_s / off_s - 1.0, 3),
        "traced_bit_identical_to_untraced": identical,
        "guard_sites_bound": n_guards,
        "guard_cost_ns": round(guard_s * 1e9, 2),
        "disabled_overhead_bound": round(off_bound, 5),
        "acceptance_ceiling_disabled_overhead": CEIL_TRACE_OFF_OVERHEAD,
    }


def time_perturb_overhead() -> dict:
    """Perturbation-layer cost bound and determinism contract.

    The unseeded path keeps one ``perturb is None`` guard at every
    instrumented hot-path site (compute charge, transfer start/finish,
    kernel launch, PCIe copy) — the same sites the tracer instruments,
    so the traced run's event+counter count (doubled for margin) bounds
    how many guards an unseeded run evaluates. A micro-benchmark prices
    one guard; ``guards x guard_cost / unseeded_wall`` bounds the
    disabled overhead, gated at 3%.

    Contract checks: a null spec with a seed stays bit-identical to the
    unseeded run; a fixed ``(seed, noise)`` reproduces bit-identically
    on re-run and differs from the noiseless timeline.
    """
    from repro.core.config import RunConfig
    from repro.core.runner import run
    from repro.machines import get_machine
    from repro.perturb import NoiseSpec

    def cfg(**kw) -> RunConfig:
        return RunConfig(
            machine=get_machine("yona"), implementation="hybrid_overlap",
            cores=12, threads_per_task=6, box_thickness=3,
            network="full", **kw,
        )

    base = run(cfg())
    null = run(cfg(seed=7, noise=NoiseSpec()))
    noiseless_identical = (
        null.elapsed_s == base.elapsed_s and null.phases == base.phases
    )

    spec = NoiseSpec.preset("medium")
    a, b = run(cfg(seed=7, noise=spec)), run(cfg(seed=7, noise=spec))
    seeded_reproducible = (
        a.elapsed_s == b.elapsed_s
        and a.phases == b.phases
        and a.comm_stats == b.comm_stats
    )
    seeded_perturbs = a.elapsed_s != base.elapsed_s

    reps = 20
    off_s = on_s = 1e9
    for _ in range(3):  # interleaved batches, best-of
        t0 = time.perf_counter()
        for _ in range(reps):
            run(cfg())
        off_s = min(off_s, (time.perf_counter() - t0) / reps)
        t0 = time.perf_counter()
        for _ in range(reps):
            run(cfg(seed=7, noise=spec))
        on_s = min(on_s, (time.perf_counter() - t0) / reps)

    tracer = run(cfg(trace=True)).tracer
    n_guards = 2 * (len(tracer.events) + len(tracer.counters))  # 2x margin
    guard_s = _guard_cost_s()
    off_bound = n_guards * guard_s / off_s
    return {
        "unseeded_ms_per_run": round(off_s * 1e3, 3),
        "seeded_ms_per_run": round(on_s * 1e3, 3),
        "seeded_overhead": round(on_s / off_s - 1.0, 3),
        "noiseless_bit_identical": noiseless_identical,
        "seeded_reproducible": seeded_reproducible,
        "seeded_differs_from_noiseless": seeded_perturbs,
        "guard_sites_bound": n_guards,
        "guard_cost_ns": round(guard_s * 1e9, 2),
        "disabled_overhead_bound": round(off_bound, 5),
        "acceptance_ceiling_disabled_overhead": CEIL_PERTURB_OFF_OVERHEAD,
    }


def time_progress_models() -> dict:
    """Manual-poll identity, offload ordering, and the disabled cost bound.

    Every paper machine defaults to ``manual-poll``, so a run with the
    enum set explicitly must be bit-identical to the default path, and
    ``hardware-offload`` — which only hides *more* wire time — may never
    come out slower on the same config. Under manual poll the model
    machinery costs one ``self._progress_tax`` truthiness guard per
    compute charge and one ``background_fraction`` dispatch per wire
    message; the traced run counts both kinds of site (doubled for
    margin) and micro-benchmarks price each, bounding the disabled
    overhead analytically, gated at 2%.
    """
    from dataclasses import replace as dc_replace

    from repro.core.config import RunConfig
    from repro.core.runner import run
    from repro.machines import get_machine
    from repro.machines.spec import ProgressModel

    yona = get_machine("yona")

    def with_model(model):
        return dc_replace(
            yona, interconnect=dc_replace(yona.interconnect, progress=model)
        )

    def cfg(machine, **kw) -> RunConfig:
        return RunConfig(
            machine=machine, implementation="hybrid_overlap",
            cores=12, threads_per_task=6, box_thickness=3,
            network="full", **kw,
        )

    base = run(cfg(yona))
    explicit = run(cfg(with_model(ProgressModel.MANUAL_POLL)))
    identical = (
        explicit.elapsed_s == base.elapsed_s
        and explicit.phases == base.phases
        and explicit.comm_stats == base.comm_stats
    )

    thread = run(cfg(with_model(ProgressModel.PROGRESS_THREAD)))
    offload = run(cfg(with_model(ProgressModel.HARDWARE_OFFLOAD)))
    offload_ordered = offload.elapsed_s <= base.elapsed_s

    reps = 20
    off_s = 1e9
    for _ in range(3):  # best-of batches, same shape as the other bounds
        t0 = time.perf_counter()
        for _ in range(reps):
            run(cfg(yona))
        off_s = min(off_s, (time.perf_counter() - t0) / reps)

    tracer = run(cfg(yona, trace=True)).tracer
    n_charges = sum(1 for ev in tracer.events if ev.lane == "host")
    n_msgs = sum(1 for ev in tracer.events if ev.lane in ("mpi", "progress"))
    guard_s = _guard_cost_s()
    ic = yona.interconnect
    iters = 200_000
    t0 = time.perf_counter()
    for _ in range(iters):
        ic.background_fraction(False)  # the exact per-message dispatch
    dispatch_s = (time.perf_counter() - t0) / iters
    off_bound = 2 * (n_charges * guard_s + n_msgs * dispatch_s) / off_s
    return {
        "manual_ms_per_run": round(off_s * 1e3, 3),
        "manual_poll_bit_identical_to_default": identical,
        "offload_never_slower": offload_ordered,
        "elapsed_s": {
            "manual-poll": base.elapsed_s,
            "progress-thread": thread.elapsed_s,
            "hardware-offload": offload.elapsed_s,
        },
        "charge_sites_bound": 2 * n_charges,
        "message_sites_bound": 2 * n_msgs,
        "guard_cost_ns": round(guard_s * 1e9, 2),
        "dispatch_cost_ns": round(dispatch_s * 1e9, 2),
        "disabled_overhead_bound": round(off_bound, 5),
        "acceptance_ceiling_disabled_overhead": CEIL_PROGRESS_OFF_OVERHEAD,
    }


def time_workloads() -> dict:
    """Workload-layer contracts: default identity, key pins, SpMV ordering.

    The pluggable-workload refactor must cost nothing at the default:
    a config with ``workload``/``workload_params`` set explicitly to
    their defaults must run bit-identically to (and hash identically
    with) one that never mentions them, and four cache keys computed on
    the pre-workload tree must still resolve byte-for-byte (a warm
    cache survives the refactor). The per-run dispatch the layer adds —
    one ``get_workload`` plus one ``workload.implementation`` lookup —
    is priced by micro-benchmark and bounded against a small run's
    wall-clock, gated at 2%.

    On the new workload itself, the §V-E contract: the SpMV GPU task
    mode must hide a larger fraction of its gather than the naive
    nonblocking variant, which must hide more than vector mode (0 by
    construction), and the fast ``spmv_overlap`` experiment must
    regenerate end to end.
    """
    from repro.cache import config_key
    from repro.core.config import RunConfig
    from repro.core.runner import run
    from repro.experiments import run_experiment
    from repro.machines import get_machine
    from repro.workloads import get_workload

    def cfg(**kw) -> RunConfig:
        return RunConfig(
            machine=get_machine("yona"), implementation="hybrid_overlap",
            cores=12, threads_per_task=6, box_thickness=3, **kw,
        )

    base = run(cfg())
    explicit = run(cfg(workload="advection", workload_params=()))
    identical = (
        explicit.elapsed_s == base.elapsed_s
        and explicit.phases == base.phases
        and explicit.comm_stats == base.comm_stats
        and config_key(cfg()) == config_key(
            cfg(workload="advection", workload_params=())
        )
    )

    # Cache keys computed on the pre-workload tree (see tests/test_cache.py).
    pins = [
        (RunConfig(machine=get_machine("jaguarpf"), implementation="bulk",
                   cores=1536, threads_per_task=6),
         "0a81d49b9427fde1af567a036720b763ed1911e1731700e275ca587e832cef35"),
        (RunConfig(machine=get_machine("yona"), implementation="hybrid_overlap",
                   cores=12, threads_per_task=6, box_thickness=3),
         "762b633fc45d660d804c12a3b1c675e3964b0baa8454c0f679d96783f02ee51a"),
        (RunConfig(machine=get_machine("jaguarpf"), implementation="nonblocking",
                   cores=384, threads_per_task=1, seed=11),
         "f600e096d8cb30406e097b6626a7d4dde3ba23a8601a87c2ac3dbdeaf9020252"),
        (RunConfig(machine=get_machine("a100-sxm"), implementation="gpu_streams",
                   cores=64, threads_per_task=16),
         "5977cf28ed1a8d7b34235f2cfb1e06bfc7674aa27bcee87cfdc623a300e6f8f1"),
    ]
    keys_match = all(config_key(c) == want for c, want in pins)

    spmv_params = (("rows", 1 << 17),)
    fractions = {}
    for impl in ("bulk", "nonblocking", "hybrid_overlap"):
        r = run(RunConfig(
            machine=get_machine("yona"), implementation=impl, cores=48,
            threads_per_task=6, steps=2, workload="spmv",
            workload_params=spmv_params, trace=True,
        ))
        fractions[impl] = r.overlap.overlap_fraction
    ordering = (
        fractions["hybrid_overlap"] > fractions["nonblocking"]
        > fractions["bulk"] == 0.0
    )

    t0 = time.perf_counter()
    result = run_experiment("spmv_overlap", fast=True)
    spmv_exp_s = time.perf_counter() - t0
    exp_ok = bool(result.rows) and bool(result.series)

    reps = 20
    run_s = 1e9
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            run(cfg())
        run_s = min(run_s, (time.perf_counter() - t0) / reps)

    iters = 200_000
    t0 = time.perf_counter()
    for _ in range(iters):
        get_workload("advection").implementation("hybrid_overlap")
    dispatch_s = (time.perf_counter() - t0) / iters
    # Two dispatch sites per run (runner + validate), doubled for margin.
    dispatch_bound = 4 * dispatch_s / run_s
    return {
        "default_workload_bit_identical": identical,
        "prior_cache_keys_match": keys_match,
        "spmv_overlap_fractions": {k: round(v, 4) for k, v in fractions.items()},
        "spmv_overlap_ordering_holds": ordering,
        "spmv_experiment_fast_seconds": round(spmv_exp_s, 2),
        "spmv_experiment_ok": exp_ok,
        "dispatch_cost_ns": round(dispatch_s * 1e9, 2),
        "disabled_overhead_bound": round(dispatch_bound, 5),
        "acceptance_ceiling_dispatch_overhead": CEIL_WORKLOAD_DISPATCH_OVERHEAD,
    }


def time_fabric() -> dict:
    """Sweep-fabric hot paths: warm parent lookups and group commit.

    Two micro-benchmarks against million-config sweep scale:

    * **Warm lookups/s** — a fresh scheduler pointed at a pre-populated
      sharded journal maps a large batch of distinct configs; every one
      short-circuits in the parent (memoized cache key + journal hit, no
      worker, no redundant hashing). Gated by an absolute lookups/s
      floor: resuming a million-config sweep must be bounded by I/O, not
      by re-keying.
    * **Journal append throughput** — group commit (one flush+fsync per
      batch of records) raced against the one-fsync-per-line baseline
      (``flush_max_records=1``, the pre-PR behaviour) on the same
      records. Gated by a relative speedup floor.
    """
    from repro.cache import config_key
    from repro.core.config import RunConfig
    from repro.machines import get_machine
    from repro.sched import Scheduler, ShardedJournal
    from repro.sched.journal import Journal

    machine = get_machine("yona")
    n = 4096
    cfgs = [
        RunConfig(machine=machine, implementation="nonblocking", cores=12,
                  threads_per_task=1, steps=s + 1)
        for s in range(n)
    ]
    payloads = [
        {"elapsed_s": 0.001 * (i + 1), "phases": {"compute": 0.001 * (i + 1)},
         "comm_stats": {"messages": i}}
        for i in range(n)
    ]

    with tempfile.TemporaryDirectory(prefix="repro-bench-fabric-") as tmp:
        # Pre-populate a sharded journal: every config warm on disk.
        jroot = os.path.join(tmp, "journal")
        j = ShardedJournal(jroot, flush_max_records=1024)
        keys = [config_key(c) for c in cfgs]  # memoizes every key
        for key, payload in zip(keys, payloads):
            j.record(key, payload)
        j.close()

        lookups_per_s = 0.0
        for _ in range(3):  # best-of: fresh scheduler, warm journal
            sched = Scheduler(jobs=1, journal=ShardedJournal(jroot))
            try:
                t0 = time.perf_counter()
                out = sched.map(cfgs)
                elapsed = time.perf_counter() - t0
                stats = sched.stats()
            finally:
                sched.close()
            assert stats["journal_hits"] == n, "warm map left the parent path"
            assert all(
                r.elapsed_s == p["elapsed_s"] for r, p in zip(out, payloads)
            ), "journal replay not bit-identical"
            lookups_per_s = max(lookups_per_s, n / elapsed)

        def append_rate(path: str, flush_max: int, count: int) -> float:
            jj = Journal(path, flush_max_records=flush_max,
                         flush_interval=3600.0)
            t0 = time.perf_counter()
            for key, payload in zip(keys[:count], payloads[:count]):
                jj.record(key, payload)
            jj.close()  # the final flush belongs in the measurement
            return count / (time.perf_counter() - t0)

        # The per-line baseline pays one fsync per record — bound its
        # sample size so the benchmark stays quick on slow disks.
        base = append_rate(os.path.join(tmp, "per-line.jsonl"), 1, 256)
        grouped = append_rate(os.path.join(tmp, "grouped.jsonl"), 256, n)

    return {
        "configs": n,
        "warm_lookups_per_s": round(lookups_per_s),
        "journal_append_per_line_fsync_per_s": round(base),
        "journal_append_group_commit_per_s": round(grouped),
        "journal_append_speedup": round(grouped / base, 2),
        "acceptance_floor_warm_lookups_per_s": FLOOR_WARM_LOOKUPS_PER_S,
        "acceptance_floor_journal_append_speedup": FLOOR_JOURNAL_APPEND_SPEEDUP,
    }


def time_serve() -> dict:
    """Serve daemon warm path: throughput, latency, and identity.

    Spawns a real ``advection-repro serve`` subprocess on an ephemeral
    port, primes one cheap config, then races 8 concurrent clients each
    pipelining warm queries (32 in flight per connection — the batch
    shape a sweep-driving client actually uses). Warm queries never
    touch a scheduler worker, so this measures the protocol + event
    loop + memo path end to end. Also checks the identity contract:
    the served floats equal a direct ``core.runner.run`` exactly.
    """
    import subprocess
    import threading

    from repro.core.config import RunConfig
    from repro.core.runner import run as direct_run
    from repro.machines import get_machine
    from repro.serve.client import ServeClient

    cfg_doc = {"machine": "lens", "impl": "nonblocking", "cores": 16,
               "domain": 16, "steps": 4}
    n_clients, per_client, window = 8, 1024, 32

    def spawn(workdir: str):
        ready = os.path.join(workdir, "ready.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = (os.path.join(_ROOT, "src") + os.pathsep
                             + env.get("PYTHONPATH", ""))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--ready-file", ready,
             "--cache-dir", os.path.join(workdir, "cache")],
            env=env, cwd=workdir,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        deadline = time.perf_counter() + 30
        while not os.path.exists(ready):
            if proc.poll() is not None:
                out, err = proc.communicate()
                raise RuntimeError(f"serve daemon died: {out}\n{err}")
            if time.perf_counter() > deadline:
                proc.kill()
                raise RuntimeError("serve daemon never became ready")
            time.sleep(0.02)
        with open(ready, encoding="utf-8") as fh:
            info = json.load(fh)
        return proc, info["host"], info["port"]

    def burst(host, port, latencies=None):
        doc = {"verb": "run", "config": cfg_doc}
        done = 0
        with ServeClient(host, port, timeout_s=60) as c:
            while done < per_client:
                batch = [dict(doc, id=done + i) for i in range(window)]
                t0 = time.perf_counter()
                for resp in c.pipeline(batch):
                    assert resp["ok"]
                if latencies is not None:
                    latencies.append((time.perf_counter() - t0) / window)
                done += window
        return done

    ref = direct_run(RunConfig(
        machine=get_machine(cfg_doc["machine"]),
        implementation=cfg_doc["impl"], cores=cfg_doc["cores"],
        domain=(cfg_doc["domain"],) * 3, steps=cfg_doc["steps"],
    ))

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        proc, host, port = spawn(tmp)
        try:
            with ServeClient(host, port, timeout_s=60) as c:
                primed = c.run(cfg_doc)  # cold: simulates once
                warm = c.run(cfg_doc)
            identical = (
                warm["result"]["elapsed_s"] == ref.elapsed_s
                and warm["result"]["phases"] == ref.phases
                and warm["result"]["comm_stats"] == ref.comm_stats
                and warm["result"] == primed["result"]
            )

            latencies: list = []
            burst(host, port, latencies=latencies)  # sequential: latency
            latencies.sort()
            p50 = latencies[len(latencies) // 2]
            p99 = latencies[min(len(latencies) - 1,
                                int(len(latencies) * 0.99))]

            qps = 0.0
            for _ in range(2):  # best-of: concurrent storm
                counts = [0] * n_clients
                errs: list = []

                def worker(i, counts=counts, errs=errs):
                    try:
                        counts[i] = burst(host, port)
                    except BaseException as exc:
                        errs.append(exc)

                threads = [threading.Thread(target=worker, args=(i,))
                           for i in range(n_clients)]
                t0 = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=300)
                elapsed = time.perf_counter() - t0
                assert not errs, errs
                qps = max(qps, sum(counts) / elapsed)
        finally:
            proc.kill()
            proc.communicate(timeout=10)

    return {
        "clients": n_clients,
        "pipeline_window": window,
        "queries_per_client": per_client,
        "warm_qps_8_clients": round(qps),
        "warm_p50_us": round(p50 * 1e6, 1),
        "warm_p99_us": round(p99 * 1e6, 1),
        "warm_identical_to_direct_run": identical,
        "acceptance_floor_warm_qps": FLOOR_SERVE_WARM_QPS,
    }


def time_fig9() -> float:
    from repro.experiments import run_experiment

    t0 = time.perf_counter()
    result = run_experiment("fig9")
    elapsed = time.perf_counter() - t0
    assert result.exp_id == "fig9" and result.series, "fig9 regeneration failed"
    return elapsed


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_PR10.json", metavar="PATH")
    ap.add_argument("--size", type=int, default=256, help="grid points per dim")
    ap.add_argument("--steps", type=int, default=3)
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero unless every acceptance floor holds")
    args = ap.parse_args(argv)

    n, steps = args.size, args.steps
    print(f"kernel throughput at {n}^3 ({steps} steps each) ...")
    dense = time_advance(n, steps, "dense")
    print(f"  dense 27-point : {dense:8.2f} Mpts/s")
    sep = time_advance(n, steps, "separable")
    print(f"  separable 3x1-D: {sep:8.2f} Mpts/s  ({sep / dense:.2f}x)")
    rel = agreement(min(n, 128))
    print(f"  agreement margin used: {rel:.3f} of the rtol=1e-12/atol=1e-14 band")

    des = time_des()
    print(
        f"DES engine: {des['engine_events_per_s']:,} ev/s vs legacy "
        f"{des['legacy_events_per_s']:,} ev/s ({des['speedup']:.2f}x, floor "
        f"{FLOOR_DES_EVENTS_PER_S:,} ev/s); cancel-heavy "
        f"{des['cancellation_events_per_s']:,} ev/s, same-time burst "
        f"{des['burst_events_per_s']:,} ev/s"
    )

    sweep, serial_results = time_sweep_cold_warm()
    print(
        f"fast report ({sweep['experiments']} experiments): cold "
        f"{sweep['cold_seconds']:.2f} s, warm {sweep['warm_seconds']:.2f} s "
        f"({100 * sweep['warm_cut']:.0f}% cut, "
        f"{100 * sweep['warm_hit_rate']:.0f}% hit rate, "
        f"identical={sweep['warm_identical_to_cold']})"
    )

    sched = time_scheduled_sweep(
        sweep["cold_seconds"], sweep["warm_seconds"], serial_results
    )
    print(
        f"scheduled report (--jobs {sched['jobs']}, "
        f"{sched['usable_cores']} usable cores): cold "
        f"{sched['cold_seconds']:.2f} s "
        f"({sched['cold_speedup_vs_serial']:.2f}x serial, floor "
        f"{sched['acceptance_floor_cold_speedup']:.2f}x), warm "
        f"{sched['warm_seconds']:.2f} s, identical="
        f"{sched['cold_identical_to_serial'] and sched['warm_identical_to_serial']}"
    )

    fabric = time_fabric()
    print(
        f"sweep fabric: {fabric['warm_lookups_per_s']:,} warm lookups/s "
        f"(floor {FLOOR_WARM_LOOKUPS_PER_S:,}); journal appends "
        f"{fabric['journal_append_group_commit_per_s']:,}/s grouped vs "
        f"{fabric['journal_append_per_line_fsync_per_s']:,}/s per-line fsync "
        f"({fabric['journal_append_speedup']:.1f}x, floor "
        f"{FLOOR_JOURNAL_APPEND_SPEEDUP:.0f}x)"
    )

    serve = time_serve()
    print(
        f"serve daemon: {serve['warm_qps_8_clients']:,} warm queries/s "
        f"with {serve['clients']} pipelined clients (floor "
        f"{FLOOR_SERVE_WARM_QPS:,}); warm p50 {serve['warm_p50_us']:.0f} us, "
        f"p99 {serve['warm_p99_us']:.0f} us, "
        f"identical={serve['warm_identical_to_direct_run']}"
    )

    fig9_s = time_fig9()
    print(f"fig9 regeneration: {fig9_s:.2f} s")

    trace = time_trace_overhead()
    print(
        f"tracing: off {trace['untraced_ms_per_run']:.2f} ms/run, on "
        f"{trace['traced_ms_per_run']:.2f} ms/run "
        f"(+{100 * trace['traced_overhead']:.0f}%), "
        f"identical={trace['traced_bit_identical_to_untraced']}, "
        f"disabled-guard bound {100 * trace['disabled_overhead_bound']:.2f}%"
    )

    perturb = time_perturb_overhead()
    print(
        f"perturbation: off {perturb['unseeded_ms_per_run']:.2f} ms/run, "
        f"seeded {perturb['seeded_ms_per_run']:.2f} ms/run "
        f"(+{100 * perturb['seeded_overhead']:.0f}%), "
        f"noiseless-identical={perturb['noiseless_bit_identical']}, "
        f"reproducible={perturb['seeded_reproducible']}, "
        f"disabled-guard bound {100 * perturb['disabled_overhead_bound']:.2f}%"
    )

    progress = time_progress_models()
    print(
        f"progress models: manual {progress['manual_ms_per_run']:.2f} ms/run, "
        f"default-identical={progress['manual_poll_bit_identical_to_default']}, "
        f"offload-never-slower={progress['offload_never_slower']}, "
        f"disabled-guard bound {100 * progress['disabled_overhead_bound']:.2f}%"
    )

    workloads = time_workloads()
    print(
        f"workloads: default-identical="
        f"{workloads['default_workload_bit_identical']}, "
        f"prior-keys-match={workloads['prior_cache_keys_match']}, "
        f"spmv ordering={workloads['spmv_overlap_ordering_holds']} "
        f"(fractions {workloads['spmv_overlap_fractions']}), "
        f"fast experiment {workloads['spmv_experiment_fast_seconds']:.2f} s, "
        f"dispatch bound {100 * workloads['disabled_overhead_bound']:.2f}%"
    )

    payload = {
        "pr": 10,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "kernel": {
            "size": n,
            "steps": steps,
            "dense_mpts_per_s": round(dense, 2),
            "separable_mpts_per_s": round(sep, 2),
            "speedup": round(sep / dense, 2),
            "agreement_margin_used": round(rel, 4),
            "agreement_band": {"rtol": RTOL, "atol": ATOL},
            "acceptance_floor_mpts_per_s": FLOOR_KERNEL_MPTS,
        },
        "des_engine": des,
        "sweep_cache": sweep,
        "scheduled_sweep": sched,
        "sweep_fabric": fabric,
        "serve": serve,
        "experiments": {"fig9_seconds": round(fig9_s, 2)},
        "tracing": trace,
        "perturbation": perturb,
        "progress_models": progress,
        "workloads": workloads,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    failures = []
    if sep < FLOOR_KERNEL_MPTS:
        failures.append(f"separable kernel {sep:.2f} < {FLOOR_KERNEL_MPTS} Mpts/s")
    if rel > 1.0:
        failures.append(f"kernel agreement {rel:.3f} outside the band")
    if des["speedup"] < FLOOR_DES_SPEEDUP:
        failures.append(f"DES speedup {des['speedup']:.2f}x < {FLOOR_DES_SPEEDUP}x")
    if des["engine_events_per_s"] < FLOOR_DES_EVENTS_PER_S:
        failures.append(
            f"DES engine {des['engine_events_per_s']:,} ev/s < "
            f"{FLOOR_DES_EVENTS_PER_S:,} ev/s absolute floor"
        )
    if sweep["warm_cut"] < FLOOR_WARM_CUT:
        failures.append(
            f"warm sweep cut {100 * sweep['warm_cut']:.0f}% < "
            f"{100 * FLOOR_WARM_CUT:.0f}%"
        )
    if not sweep["warm_identical_to_cold"]:
        failures.append("warm sweep results differ from cold")
    if sched["cold_speedup_vs_serial"] < sched["acceptance_floor_cold_speedup"]:
        failures.append(
            f"scheduled cold regeneration "
            f"{sched['cold_speedup_vs_serial']:.2f}x < "
            f"{sched['acceptance_floor_cold_speedup']:.2f}x floor "
            f"({sched['usable_cores']} usable cores)"
        )
    if sched["warm_seconds"] > (
        sweep["warm_seconds"] * CEIL_SCHED_WARM_FACTOR + CEIL_SCHED_WARM_SLACK_S
    ):
        failures.append(
            f"scheduled warm regeneration {sched['warm_seconds']:.2f} s "
            f"slower than serial warm {sweep['warm_seconds']:.2f} s"
        )
    if not sched["cold_identical_to_serial"]:
        failures.append("scheduled cold results differ from serial")
    if not sched["warm_identical_to_serial"]:
        failures.append("scheduled warm results differ from serial")
    if fabric["warm_lookups_per_s"] < FLOOR_WARM_LOOKUPS_PER_S:
        failures.append(
            f"fabric warm lookups {fabric['warm_lookups_per_s']:,}/s < "
            f"{FLOOR_WARM_LOOKUPS_PER_S:,}/s floor"
        )
    if fabric["journal_append_speedup"] < FLOOR_JOURNAL_APPEND_SPEEDUP:
        failures.append(
            f"journal group-commit speedup "
            f"{fabric['journal_append_speedup']:.1f}x < "
            f"{FLOOR_JOURNAL_APPEND_SPEEDUP:.0f}x floor"
        )
    if serve["warm_qps_8_clients"] < FLOOR_SERVE_WARM_QPS:
        failures.append(
            f"serve warm throughput {serve['warm_qps_8_clients']:,}/s < "
            f"{FLOOR_SERVE_WARM_QPS:,}/s floor"
        )
    if not serve["warm_identical_to_direct_run"]:
        failures.append("served warm result differs from a direct run")
    if not trace["traced_bit_identical_to_untraced"]:
        failures.append("traced run scalars differ from untraced")
    if trace["disabled_overhead_bound"] > CEIL_TRACE_OFF_OVERHEAD:
        failures.append(
            f"disabled-tracing guard bound "
            f"{100 * trace['disabled_overhead_bound']:.2f}% > "
            f"{100 * CEIL_TRACE_OFF_OVERHEAD:.0f}%"
        )
    if not perturb["noiseless_bit_identical"]:
        failures.append("unseeded run differs from the pre-perturbation path")
    if not perturb["seeded_reproducible"]:
        failures.append("seeded run is not bit-reproducible")
    if not perturb["seeded_differs_from_noiseless"]:
        failures.append("seeded medium noise failed to perturb the timeline")
    if perturb["disabled_overhead_bound"] > CEIL_PERTURB_OFF_OVERHEAD:
        failures.append(
            f"disabled-perturbation guard bound "
            f"{100 * perturb['disabled_overhead_bound']:.2f}% > "
            f"{100 * CEIL_PERTURB_OFF_OVERHEAD:.0f}%"
        )
    if not progress["manual_poll_bit_identical_to_default"]:
        failures.append("explicit manual-poll differs from the default path")
    if not progress["offload_never_slower"]:
        failures.append("hardware-offload came out slower than manual-poll")
    if progress["disabled_overhead_bound"] > CEIL_PROGRESS_OFF_OVERHEAD:
        failures.append(
            f"disabled progress-model bound "
            f"{100 * progress['disabled_overhead_bound']:.2f}% > "
            f"{100 * CEIL_PROGRESS_OFF_OVERHEAD:.0f}%"
        )
    if not workloads["default_workload_bit_identical"]:
        failures.append("explicit default workload differs from the default path")
    if not workloads["prior_cache_keys_match"]:
        failures.append("a pre-workload-layer cache key no longer resolves")
    if not workloads["spmv_overlap_ordering_holds"]:
        failures.append(
            f"spmv overlap ordering broken: {workloads['spmv_overlap_fractions']}"
        )
    if not workloads["spmv_experiment_ok"]:
        failures.append("spmv_overlap fast experiment produced no rows/series")
    if workloads["disabled_overhead_bound"] > CEIL_WORKLOAD_DISPATCH_OVERHEAD:
        failures.append(
            f"workload dispatch bound "
            f"{100 * workloads['disabled_overhead_bound']:.2f}% > "
            f"{100 * CEIL_WORKLOAD_DISPATCH_OVERHEAD:.0f}%"
        )
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1 if args.check else 0
    print("all acceptance floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
