#!/usr/bin/env python3
"""Perf smoke: time the functional kernels and one experiment regeneration.

Run from the repository root::

    python tools/perf_smoke.py [--out BENCH_PR1.json] [--size 256] [--steps 3]

Measures, on the current machine:

* dense 27-point ``advance`` throughput at ``size``^3 (the seed's path),
* separable 3x1-D ``advance`` throughput at ``size``^3 (the production
  path) and the speedup between them,
* maximum relative disagreement between the two paths (must sit within
  the ``rtol=1e-12`` acceptance band),
* wall-clock of a full ``fig9`` regeneration (the paper's headline
  figure) as an end-to-end simulator smoke.

Results are written as JSON (default ``BENCH_PR1.json``) so each PR can
record its perf point and the trajectory stays auditable. The committed
numbers come from the reference container; regenerate locally before
comparing machines.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone

import numpy as np

from repro.stencil.arena import ScratchArena
from repro.stencil.coefficients import max_stable_nu, tensor_product_coefficients
from repro.stencil.grid import allocate_field
from repro.stencil.kernels import (
    advance,
    apply_stencil,
    apply_stencil_dense,
    fill_periodic_halo,
    interior,
)

VELOCITY = (0.9, -0.6, 0.4)


def _field(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    u = allocate_field((n, n, n))
    interior(u)[...] = rng.random((n, n, n))
    fill_periodic_halo(u)
    return u


def time_advance(n: int, steps: int, method: str) -> float:
    """Best-of-2 Mpts/s for ``advance`` at ``n``^3 on the given path."""
    coeffs = tensor_product_coefficients(VELOCITY, 0.8 * max_stable_nu(VELOCITY))
    u = _field(n)
    arena = ScratchArena()
    scratch = np.zeros_like(u)
    advance(u.copy(), coeffs, steps=1, scratch=scratch, arena=arena,
            method=method)  # warm arena + caches
    best = 0.0
    for _ in range(2):
        t0 = time.perf_counter()
        advance(u.copy(), coeffs, steps=steps, scratch=scratch, arena=arena,
                method=method)
        best = max(best, steps * n**3 / (time.perf_counter() - t0) / 1e6)
    return best


RTOL, ATOL = 1e-12, 1e-14


def agreement(n: int) -> float:
    """Worst-point margin against the ``rtol=1e-12, atol=1e-14`` band.

    This is the exact criterion ``np.testing.assert_allclose`` applies in
    ``tests/perf/test_kernel_throughput.py``: values < 1 are inside the
    band, with the returned number telling how much of it is used.
    """
    coeffs = tensor_product_coefficients(VELOCITY, 0.8 * max_stable_nu(VELOCITY))
    u = _field(n, seed=1)
    sep = interior(apply_stencil(u, coeffs, method="separable"))
    dense = interior(apply_stencil_dense(u, coeffs))
    return float(np.max(np.abs(sep - dense) / (ATOL + RTOL * np.abs(dense))))


def time_fig9() -> float:
    from repro.experiments import run_experiment

    t0 = time.perf_counter()
    result = run_experiment("fig9")
    elapsed = time.perf_counter() - t0
    assert result.exp_id == "fig9" and result.series, "fig9 regeneration failed"
    return elapsed


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_PR1.json", metavar="PATH")
    ap.add_argument("--size", type=int, default=256, help="grid points per dim")
    ap.add_argument("--steps", type=int, default=3)
    args = ap.parse_args(argv)

    n, steps = args.size, args.steps
    print(f"kernel throughput at {n}^3 ({steps} steps each) ...")
    dense = time_advance(n, steps, "dense")
    print(f"  dense 27-point : {dense:8.2f} Mpts/s")
    sep = time_advance(n, steps, "separable")
    print(f"  separable 3x1-D: {sep:8.2f} Mpts/s  ({sep / dense:.2f}x)")
    rel = agreement(min(n, 128))
    print(f"  agreement margin used: {rel:.3f} of the rtol=1e-12/atol=1e-14 band")
    fig9_s = time_fig9()
    print(f"fig9 regeneration: {fig9_s:.2f} s")

    payload = {
        "pr": 1,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "kernel": {
            "size": n,
            "steps": steps,
            "dense_mpts_per_s": round(dense, 2),
            "separable_mpts_per_s": round(sep, 2),
            "speedup": round(sep / dense, 2),
            "agreement_margin_used": round(rel, 4),
            "agreement_band": {"rtol": RTOL, "atol": ATOL},
            "acceptance_floor_mpts_per_s": 14.0,
        },
        "experiments": {"fig9_seconds": round(fig9_s, 2)},
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    ok = sep >= 14.0 and rel <= 1.0
    if not ok:
        print("FAIL: below acceptance floor or outside agreement band")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
