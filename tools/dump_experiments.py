#!/usr/bin/env python3
"""Dump every experiment's rows/series at full float precision (repr).

Used to verify that engine refactors keep every figure bit-identical::

    PYTHONPATH=src python tools/dump_experiments.py --fast out.json
    PYTHONPATH=src python tools/dump_experiments.py out_full.json
"""
from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("out")
    ap.add_argument("--fast", action="store_true")
    ap.add_argument("--ids", nargs="*", default=None)
    args = ap.parse_args(argv)
    payload = {}
    for eid in (args.ids or sorted(EXPERIMENTS)):
        r = run_experiment(eid, fast=args.fast)
        payload[eid] = {
            "columns": r.columns,
            "rows": [[repr(v) for v in row] for row in r.rows],
            "series": {
                name: {repr(k): repr(v) for k, v in pts.items()}
                for name, pts in r.series.items()
            },
        }
        print(f"{eid} ok", flush=True)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
