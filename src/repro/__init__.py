"""repro — reproduction of White & Dongarra (IPPS 2011).

*Overlapping Computation and Communication for Advection on Hybrid
Parallel Computers*, rebuilt as a Python library on a simulated
MPI + GPU substrate. See README.md for a tour and DESIGN.md for the
substitution rationale and per-experiment index.

Quick start::

    from repro import RunConfig, run
    from repro.machines import YONA

    cfg = RunConfig(machine=YONA, implementation="hybrid_overlap",
                    cores=12, threads_per_task=6, box_thickness=3)
    print(run(cfg).summary())
"""

from repro.core import IMPLEMENTATIONS, RunConfig, RunResult, get_implementation, run
from repro.machines import HOPPER, JAGUARPF, LENS, YONA, get_machine

__version__ = "1.0.0"

__all__ = [
    "HOPPER",
    "IMPLEMENTATIONS",
    "JAGUARPF",
    "LENS",
    "RunConfig",
    "RunResult",
    "YONA",
    "get_implementation",
    "get_machine",
    "run",
    "__version__",
]
