"""Content-addressed persistent cache for simulation run results.

The experiment sweeps behind the paper's figures re-simulate hundreds of
:class:`~repro.core.config.RunConfig` points, and many configs recur across
figures (e.g. the best Lens configs appear in fig9, fig11 *and* sec5e).
Because the simulator is deterministic, a run's outcome is a pure function
of its configuration — so each distinct config needs to be simulated **once
per model version** and can be replayed from disk afterwards.

Cache key
---------
``sha256`` over a canonical JSON rendering of

* the full :class:`RunConfig` (every field, including the nested
  :class:`~repro.machines.spec.MachineSpec` — node, interconnect and GPU
  calibration constants), and
* :data:`MODEL_VERSION`, a hand-bumped tag naming the performance model's
  behaviour generation.

Any change to a machine's calibrated constants changes the key directly;
any change to the *model code* (engine scheduling, implementation logic,
cost formulas) must bump :data:`MODEL_VERSION`, which invalidates every
prior entry at once (old files are simply never addressed again; ``prune``
removes them). Floats are rendered with ``repr`` (shortest round-trip), so
keys are stable across processes and sessions.

Entries store ``elapsed_s``/``phases``/``comm_stats`` as plain JSON floats
(exact round-trip in CPython), so a cache *hit reproduces the uncached
RunResult bit-for-bit*. Runs that carry non-scalar artifacts (functional
fields, tracers) bypass the cache.

The cache is **opt-in**: nothing is read or written unless
:func:`configure` installs an active cache (the CLI does this for
``experiment`` runs unless ``--no-cache``). Writes are atomic
(temp file + ``os.replace``), so concurrent sweep workers sharing a
directory are safe.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.config import RunConfig, RunResult

__all__ = [
    "MODEL_VERSION",
    "DEFAULT_CACHE_DIR",
    "RunCache",
    "config_key",
    "configure",
    "active_cache",
    "stats",
    "merge_stats",
    "reset_stats",
]

#: Behaviour generation of the performance model. Bump whenever a code
#: change (engine, implementations, cost formulas) alters any simulated
#: result; every cached entry from older versions becomes unaddressable.
MODEL_VERSION = "pr3-obs-copy-engines-1"

#: Default on-disk location (relative to the working directory) used by the
#: CLI; override with ``--cache-dir`` or ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = ".repro-cache"


def _canonical(obj: Any, path: str = "config") -> Any:
    """Recursively convert to JSON-stable primitives (sorted, tuple->list).

    ``path`` names the field being rendered so a non-canonicalizable value
    raises with its exact location (e.g. ``config.noise.knobs[2]``), not
    just the offending type.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name), f"{path}.{f.name}")
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {
            str(k): _canonical(v, f"{path}[{str(k)!r}]")
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(v, f"{path}[{i}]") for i, v in enumerate(obj)]
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        return repr(obj)  # shortest round-trip, platform-stable
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__} at {path} for the cache key"
    )


def config_key(cfg: "RunConfig", model_version: Optional[str] = None) -> str:
    """Stable content hash of (config, machine spec, model version).

    The perturbation fields (``seed``, ``noise``) enter the key only when
    set: a noiseless config (both ``None``) hashes exactly as it did
    before the perturbation layer existed, so prior cache entries stay
    addressable without a model-version bump.
    """
    if model_version is None:
        model_version = MODEL_VERSION  # dynamic lookup: bumps take effect
    canon = _canonical(cfg)
    if canon.get("seed") is None and canon.get("noise") is None:
        canon.pop("seed", None)
        canon.pop("noise", None)
    doc = {"model_version": model_version, "config": canon}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cacheable(cfg: "RunConfig") -> bool:
    """Whether a config's result is scalar-only (cache-representable)."""
    return not cfg.functional and not cfg.trace


class RunCache:
    """A directory of content-addressed run results (one JSON file each)."""

    def __init__(self, directory: str):
        self.directory = str(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        os.makedirs(self.directory, exist_ok=True)

    # -- addressing ---------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    # -- lookup -------------------------------------------------------------
    def get(
        self, cfg: "RunConfig", record_miss: bool = True
    ) -> Optional["RunResult"]:
        """Return the cached result for ``cfg``, or ``None`` on a miss.

        ``record_miss=False`` makes the lookup a *probe*: a miss is not
        charged to the counters. The scheduler uses this for its parent-side
        short-circuit check — when the probe misses, the worker that ends up
        simulating the config performs (and counts) the authoritative
        lookup, so misses are counted exactly once. Hits are always counted.
        """
        if not cacheable(cfg):
            return None
        key = config_key(cfg)
        try:
            with open(self._path(key), "r") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # Missing, unreadable, truncated or torn entry: a plain miss —
            # the run is re-simulated and the entry rewritten atomically.
            self.misses += record_miss
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("model_version") != MODEL_VERSION
        ):
            # Defense in depth: the version is part of the key, so this only
            # triggers on a corrupted/forged entry.
            self.misses += record_miss
            return None
        from repro.core.config import RunResult

        try:
            result = RunResult(
                config=cfg,
                elapsed_s=float(payload["elapsed_s"]),
                phases={k: float(v) for k, v in payload["phases"].items()},
                comm_stats={k: int(v) for k, v in payload["comm_stats"].items()},
            )
        except (KeyError, TypeError, ValueError, AttributeError):
            # Structurally valid JSON with the wrong shape (hand-edited or
            # partially corrupted entry): also a miss, never a crash.
            self.misses += record_miss
            return None
        self.hits += 1
        return result

    def put(self, cfg: "RunConfig", result: "RunResult") -> bool:
        """Store ``result``; returns False when the config is not cacheable."""
        if not cacheable(cfg):
            return False
        key = config_key(cfg)
        payload = {
            "model_version": MODEL_VERSION,
            "machine": cfg.machine.name,
            "implementation": cfg.implementation,
            "cores": cfg.cores,
            "elapsed_s": result.elapsed_s,
            "phases": dict(result.phases),
            "comm_stats": dict(result.comm_stats),
        }
        # Atomic publish so concurrent sweep workers never see torn files.
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return True

    # -- maintenance --------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for n in os.listdir(self.directory) if n.endswith(".json"))

    def prune(self) -> int:
        """Delete entries from other model versions; returns count removed."""
        removed = 0
        for name in os.listdir(self.directory):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "r") as fh:
                    if json.load(fh).get("model_version") == MODEL_VERSION:
                        continue
            except (OSError, json.JSONDecodeError):
                pass
            os.unlink(path)
            removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store counters since construction."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


#: The process-wide cache consulted by :func:`repro.core.runner.run`.
_active: Optional[RunCache] = None


def configure(directory: Optional[str]) -> Optional[RunCache]:
    """Install (or, with ``None``, remove) the process-wide run cache."""
    global _active
    _active = RunCache(directory) if directory is not None else None
    return _active


def active_cache() -> Optional[RunCache]:
    """The currently installed cache, if any."""
    return _active


def stats() -> Dict[str, int]:
    """Counters of the active cache (zeros when no cache is installed)."""
    if _active is None:
        return {"hits": 0, "misses": 0, "stores": 0}
    return _active.stats()


def merge_stats(extra: Dict[str, int]) -> None:
    """Fold a worker's counters into the active cache's (process pools)."""
    if _active is None:
        return
    _active.hits += int(extra.get("hits", 0))
    _active.misses += int(extra.get("misses", 0))
    _active.stores += int(extra.get("stores", 0))


def reset_stats() -> None:
    """Zero the active cache's counters."""
    if _active is not None:
        _active.hits = _active.misses = _active.stores = 0
