"""Content-addressed persistent cache for simulation run results.

The experiment sweeps behind the paper's figures re-simulate hundreds of
:class:`~repro.core.config.RunConfig` points, and many configs recur across
figures (e.g. the best Lens configs appear in fig9, fig11 *and* sec5e).
Because the simulator is deterministic, a run's outcome is a pure function
of its configuration — so each distinct config needs to be simulated **once
per model version** and can be replayed from disk afterwards.

Cache key
---------
``sha256`` over a canonical JSON rendering of

* the full :class:`RunConfig` (every field, including the nested
  :class:`~repro.machines.spec.MachineSpec` — node, interconnect and GPU
  calibration constants), and
* :data:`MODEL_VERSION`, a hand-bumped tag naming the performance model's
  behaviour generation.

Any change to a machine's calibrated constants changes the key directly;
any change to the *model code* (engine scheduling, implementation logic,
cost formulas) must bump :data:`MODEL_VERSION`, which invalidates every
prior entry at once (old files are simply never addressed again; ``prune``
removes them). Floats are rendered with ``repr`` (shortest round-trip), so
keys are stable across processes and sessions.

Entries store ``elapsed_s``/``phases``/``comm_stats`` as plain JSON floats
(exact round-trip in CPython), so a cache *hit reproduces the uncached
RunResult bit-for-bit*. Runs that carry non-scalar artifacts (functional
fields, tracers) bypass the cache.

The cache is **opt-in**: nothing is read or written unless
:func:`configure` installs an active cache (the CLI does this for
``experiment`` runs unless ``--no-cache``). Writes are atomic
(temp file + ``os.replace``), so concurrent sweep workers sharing a
directory are safe.

Layout and hashing at sweep scale
---------------------------------
Entries are sharded into 256 two-hex-char subdirectories keyed by the
cache-key prefix (``<dir>/<key[:2]>/<key>.json``), so million-entry
sweeps never funnel every store through one directory inode and a
resume only has to list the shards it touches. The original flat v1
layout (``<dir>/<key>.json``) stays readable: lookups fall back to the
flat path and migrate the entry into its shard on first hit, and
``prune``/``len`` walk both layouts.

Hashing is memoized: :func:`config_key` caches the digest on the
(frozen, hence immutable) :class:`RunConfig` instance, and the
machine-spec canonical form — by far the largest part of the document —
is cached on each (frozen) :class:`MachineSpec` and precomputed for the
whole registry at catalog load via :func:`warm_machine_digests`. Probing
a warm batch therefore hashes each config instance at most once.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.config import RunConfig, RunResult

__all__ = [
    "MODEL_VERSION",
    "DEFAULT_CACHE_DIR",
    "SHARD_PREFIX_CHARS",
    "RunCache",
    "cacheable",
    "config_key",
    "configure",
    "active_cache",
    "stats",
    "merge_stats",
    "reset_stats",
    "warm_machine_digests",
]

#: Behaviour generation of the performance model. Bump whenever a code
#: change (engine, implementations, cost formulas) alters any simulated
#: result; every cached entry from older versions becomes unaddressable.
MODEL_VERSION = "pr3-obs-copy-engines-1"

#: Default on-disk location (relative to the working directory) used by the
#: CLI; override with ``--cache-dir`` or ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Hex characters of the cache key naming an entry's shard directory
#: (2 -> 256 shards). Shared by the sharded journal and the lease fabric.
SHARD_PREFIX_CHARS = 2


def _canonical(obj: Any, path: str = "config") -> Any:
    """Recursively convert to JSON-stable primitives (sorted, tuple->list).

    ``path`` names the field being rendered so a non-canonicalizable value
    raises with its exact location (e.g. ``config.noise.knobs[2]``), not
    just the offending type.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # Spec classes may declare _KEY_OMIT_DEFAULTS: fields added after
        # entries already existed on disk are left out of the canonical
        # form while at their original-behaviour defaults, so old keys
        # stay addressable without a model-version bump (same precedent
        # as config seed/noise in :func:`config_key`).
        omit = getattr(type(obj), "_KEY_OMIT_DEFAULTS", None) or {}
        return {
            f.name: _canonical(getattr(obj, f.name), f"{path}.{f.name}")
            for f in dataclasses.fields(obj)
            if not (f.name in omit and getattr(obj, f.name) == omit[f.name])
        }
    if isinstance(obj, dict):
        return {
            str(k): _canonical(v, f"{path}[{str(k)!r}]")
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(v, f"{path}[{i}]") for i, v in enumerate(obj)]
    if isinstance(obj, enum.Enum):
        return _canonical(obj.value, path)
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        return repr(obj)  # shortest round-trip, platform-stable
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__} at {path} for the cache key"
    )


def _machine_canonical(spec: Any) -> Any:
    """Canonical form of a machine spec, memoized on the (frozen) instance.

    The spec dominates the canonical document (~50 calibrated constants
    across node/interconnect/GPU), is immutable, and is shared by every
    config of a sweep — so its rendering is computed once per instance and
    cached via ``object.__setattr__`` (legal on frozen dataclasses). The
    memo is never mutated afterwards, only serialized.
    """
    memo = spec.__dict__.get("_canonical_memo")
    if memo is None:
        memo = _canonical(spec, "config.machine")
        try:
            object.__setattr__(spec, "_canonical_memo", memo)
        except (AttributeError, TypeError):  # slotted/odd spec: skip memo
            pass
    return memo


def warm_machine_digests(specs) -> None:
    """Precompute canonical forms for a registry of machine specs.

    Called at :mod:`repro.machines.catalog` import, so by the time any
    sweep hashes its first config every registry machine's canonical form
    is already cached and :func:`config_key` only renders the few scalar
    config fields.
    """
    for spec in specs:
        _machine_canonical(spec)


def config_key(cfg: "RunConfig", model_version: Optional[str] = None) -> str:
    """Stable content hash of (config, machine spec, model version).

    The perturbation fields (``seed``, ``noise``) enter the key only when
    set: a noiseless config (both ``None``) hashes exactly as it did
    before the perturbation layer existed, so prior cache entries stay
    addressable without a model-version bump.

    The digest is memoized on the (frozen) config instance: every
    dedup/probe/journal/cache touch of the same instance reuses one
    hash. ``RunConfig.with_()`` builds a fresh instance, so the memo can
    never go stale; a ``model_version`` override bypasses a mismatched
    memo and re-memoizes under the new version.
    """
    if model_version is None:
        model_version = MODEL_VERSION  # dynamic lookup: bumps take effect
    memo = cfg.__dict__.get("_key_memo") if hasattr(cfg, "__dict__") else None
    if memo is not None and memo[0] == model_version:
        return memo[1]
    canon = {}
    # config_key renders the config's fields itself (to splice in the
    # memoized machine canonical form), so the _KEY_OMIT_DEFAULTS
    # contract honored by _canonical for nested specs must be honored
    # here too: fields added after entries already existed on disk stay
    # out of the canonical form while at their original defaults.
    omit = getattr(type(cfg), "_KEY_OMIT_DEFAULTS", None) or {}
    for f in dataclasses.fields(cfg):
        if f.name in omit and getattr(cfg, f.name) == omit[f.name]:
            continue
        if f.name == "machine":
            canon["machine"] = _machine_canonical(cfg.machine)
        else:
            canon[f.name] = _canonical(getattr(cfg, f.name), f"config.{f.name}")
    if canon.get("seed") is None and canon.get("noise") is None:
        canon.pop("seed", None)
        canon.pop("noise", None)
    doc = {"model_version": model_version, "config": canon}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    key = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    try:
        object.__setattr__(cfg, "_key_memo", (model_version, key))
    except (AttributeError, TypeError):  # non-dataclass stand-in: skip memo
        pass
    return key


def cacheable(cfg: "RunConfig") -> bool:
    """Whether a config's result is scalar-only (cache-representable)."""
    return not cfg.functional and not cfg.trace


class RunCache:
    """A sharded directory of content-addressed run results (JSON files).

    Entries live at ``<dir>/<key[:2]>/<key>.json`` (256 shard
    directories, lazily created), so concurrent schedulers touch
    distinct inodes and per-shard resume scans stay O(shard). A flat v1
    directory (``<dir>/<key>.json``) remains fully readable: lookups
    fall back to the flat path and migrate the entry into its shard on
    first hit; ``__len__``/``prune``/``keys`` walk both layouts.
    """

    def __init__(self, directory: str):
        self.directory = str(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        os.makedirs(self.directory, exist_ok=True)
        #: shard directories known to exist (skip mkdir on the hot path)
        self._shards_made: set = set()
        # One probe at open: does this directory hold flat v1 entries?
        # Only then do lookups pay the second (fallback) stat.
        try:
            self._flat_fallback = any(
                name.endswith(".json") for name in os.listdir(self.directory)
            )
        except OSError:
            self._flat_fallback = False

    # -- addressing ---------------------------------------------------------
    def _shard_dir(self, key: str) -> str:
        return os.path.join(self.directory, key[:SHARD_PREFIX_CHARS])

    def _path(self, key: str) -> str:
        return os.path.join(self._shard_dir(key), f"{key}.json")

    def _flat_path(self, key: str) -> str:
        """v1 (pre-shard) location of an entry; read-only fallback."""
        return os.path.join(self.directory, f"{key}.json")

    def _ensure_shard(self, key: str) -> str:
        d = self._shard_dir(key)
        if d not in self._shards_made:
            os.makedirs(d, exist_ok=True)
            self._shards_made.add(d)
        return d

    def _migrate_flat(self, key: str) -> None:
        """Move a v1 flat entry into its shard (best-effort, atomic)."""
        try:
            self._ensure_shard(key)
            os.replace(self._flat_path(key), self._path(key))
        except OSError:
            pass

    # -- lookup -------------------------------------------------------------
    def has_key(self, key: str) -> bool:
        """Existence probe by key — no read, no counter traffic."""
        if os.path.exists(self._path(key)):
            return True
        return self._flat_fallback and os.path.exists(self._flat_path(key))

    def warm_keys(self, keys) -> set:
        """The subset of ``keys`` with an entry on disk (batch probe).

        Pure existence checks: nothing is read, validated or charged to
        the hit/miss counters. The serve daemon uses this to classify a
        sweep request into warm/cold halves before admitting the cold
        half to a worker.
        """
        return {k for k in keys if self.has_key(k)}

    def probe_keys(self, keys) -> int:
        """Count how many of ``keys`` have an entry on disk (batch probe).

        Pure existence checks: nothing is read, validated or charged to
        the hit/miss counters. The ``sweep --dry-run`` warm/cold split
        uses this to classify a whole cross-product without touching
        payloads.
        """
        return len(self.warm_keys(keys))

    def get(
        self, cfg: "RunConfig", record_miss: bool = True
    ) -> Optional["RunResult"]:
        """Return the cached result for ``cfg``, or ``None`` on a miss.

        ``record_miss=False`` makes the lookup a *probe*: a miss is not
        charged to the counters. The scheduler uses this for its parent-side
        short-circuit check — when the probe misses, the worker that ends up
        simulating the config performs (and counts) the authoritative
        lookup, so misses are counted exactly once. Hits are always counted.
        """
        if not cacheable(cfg):
            return None
        key = config_key(cfg)
        flat_hit = False
        try:
            with open(self._path(key), "r") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            payload = None
        if payload is None and self._flat_fallback:
            try:
                with open(self._flat_path(key), "r") as fh:
                    payload = json.load(fh)
                flat_hit = True
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                payload = None
        if payload is None:
            # Missing, unreadable, truncated or torn entry: a plain miss —
            # the run is re-simulated and the entry rewritten atomically.
            self.misses += record_miss
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("model_version") != MODEL_VERSION
        ):
            # Defense in depth: the version is part of the key, so this only
            # triggers on a corrupted/forged entry.
            self.misses += record_miss
            return None
        from repro.core.config import RunResult

        try:
            result = RunResult(
                config=cfg,
                elapsed_s=float(payload["elapsed_s"]),
                phases={k: float(v) for k, v in payload["phases"].items()},
                comm_stats={k: int(v) for k, v in payload["comm_stats"].items()},
            )
        except (KeyError, TypeError, ValueError, AttributeError):
            # Structurally valid JSON with the wrong shape (hand-edited or
            # partially corrupted entry): also a miss, never a crash.
            self.misses += record_miss
            return None
        if flat_hit:
            # Valid v1 entry: promote it into its shard so the flat
            # directory drains as it is re-read (lazy migration).
            self._migrate_flat(key)
        self.hits += 1
        return result

    def put(self, cfg: "RunConfig", result: "RunResult") -> bool:
        """Store ``result``; returns False when the config is not cacheable."""
        if not cacheable(cfg):
            return False
        key = config_key(cfg)
        payload = {
            "model_version": MODEL_VERSION,
            "machine": cfg.machine.name,
            "implementation": cfg.implementation,
            "cores": cfg.cores,
            "elapsed_s": result.elapsed_s,
            "phases": dict(result.phases),
            "comm_stats": dict(result.comm_stats),
        }
        # Atomic publish so concurrent sweep workers never see torn files.
        shard = self._ensure_shard(key)
        fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self._flat_fallback:
            # The shard entry is now authoritative; drop any stale v1 copy
            # so the two layouts never hold diverging duplicates.
            try:
                os.unlink(self._flat_path(key))
            except OSError:
                pass
        self.stores += 1
        return True

    # -- maintenance --------------------------------------------------------
    def _entries(self):
        """Yield ``(key, [paths])`` per distinct entry key, both layouts.

        A key can exist in *both* the flat v1 layout and its shard — an
        interrupted ``_migrate_flat``, or a peer writing the shard while
        a flat copy lingers. The walk groups the copies under one key
        (shard copy first: it is the authoritative one that ``get``
        reads), so ``__len__``/``prune`` see each entry exactly once.
        """
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return
        flat: Dict[str, str] = {}
        for name in names:
            if name.endswith(".json"):
                flat[name[: -len(".json")]] = os.path.join(self.directory, name)
        for name in names:
            path = os.path.join(self.directory, name)
            if len(name) == SHARD_PREFIX_CHARS and os.path.isdir(path):
                try:
                    inner = sorted(os.listdir(path))
                except OSError:
                    continue
                for sub in inner:
                    if not sub.endswith(".json"):
                        continue
                    key = sub[: -len(".json")]
                    paths = [os.path.join(path, sub)]
                    dup = flat.pop(key, None)
                    if dup is not None:
                        paths.append(dup)
                    yield key, paths
        for key, path in flat.items():
            yield key, [path]

    def _entry_paths(self):
        """Every distinct entry's authoritative file (dupes collapsed)."""
        for _key, paths in self._entries():
            yield paths[0]

    def __len__(self) -> int:
        """Distinct entry keys on disk (a half-migrated key counts once)."""
        return sum(1 for _ in self._entries())

    def prune(self) -> int:
        """Delete entries from other model versions; returns keys removed.

        Shard-aware: walks the 256 shard directories *and* any remaining
        flat v1 entries, so a partially migrated cache prunes
        completely. A stale key present in both layouts is removed from
        both (and counted once); a current key's lingering flat
        duplicate is dropped as housekeeping (the shard copy is the one
        lookups read), uncounted.
        """
        removed = 0
        for key, paths in list(self._entries()):
            stale = True
            try:
                with open(paths[0], "r") as fh:
                    stale = json.load(fh).get("model_version") != MODEL_VERSION
            except (OSError, json.JSONDecodeError):
                pass
            doomed = paths if stale else paths[1:]
            gone = 0
            for path in doomed:
                try:
                    os.unlink(path)
                except OSError:
                    continue
                gone += 1
            if stale and gone:
                removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store counters since construction."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


#: The process-wide cache consulted by :func:`repro.core.runner.run`.
_active: Optional[RunCache] = None


def configure(directory: Optional[str]) -> Optional[RunCache]:
    """Install (or, with ``None``, remove) the process-wide run cache."""
    global _active
    _active = RunCache(directory) if directory is not None else None
    return _active


def active_cache() -> Optional[RunCache]:
    """The currently installed cache, if any."""
    return _active


def stats() -> Dict[str, int]:
    """Counters of the active cache (zeros when no cache is installed)."""
    if _active is None:
        return {"hits": 0, "misses": 0, "stores": 0}
    return _active.stats()


def merge_stats(extra: Dict[str, int]) -> None:
    """Fold a worker's counters into the active cache's (process pools)."""
    if _active is None:
        return
    _active.hits += int(extra.get("hits", 0))
    _active.misses += int(extra.get("misses", 0))
    _active.stores += int(extra.get("stores", 0))


def reset_stats() -> None:
    """Zero the active cache's counters."""
    if _active is not None:
        _active.hits = _active.misses = _active.stores = 0
