"""Export experiment results as CSV or JSON for external plotting.

The ASCII charts (:mod:`repro.report`) cover quick terminal inspection;
these exporters produce machine-readable files for matplotlib/gnuplot/R::

    advection-repro experiment fig10 --json fig10.json --csv fig10.csv

The JSON document carries everything (metadata, rows, series); the CSV is
the series in long form (``series,x,y``) — the shape plotting tools want.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Optional

from repro.experiments.common import ExperimentResult

__all__ = ["to_json", "to_csv", "write_json", "write_csv"]


def to_json(result: ExperimentResult, indent: Optional[int] = 2) -> str:
    """Serialize a full experiment result (metadata + rows + series)."""
    doc = {
        "experiment": result.exp_id,
        "title": result.title,
        "paper_claim": result.paper_claim,
        "notes": result.notes,
        "columns": result.columns,
        "rows": result.rows,
        "series": {
            name: {str(x): y for x, y in points.items()}
            for name, points in result.series.items()
        },
    }
    return json.dumps(doc, indent=indent)


def _abscissa_order(points) -> list:
    """Points sorted numerically when every abscissa is a number.

    Core-count abscissae used to be ordered as strings, which put 1536
    before 24 and 384 in every exported scaling figure.  Mixed or
    non-numeric abscissae keep the string ordering (stable for labels).
    """
    items = list(points.items())
    if all(
        isinstance(x, (int, float)) and not isinstance(x, bool)
        for x, _y in items
    ):
        return sorted(items, key=lambda kv: kv[0])
    return sorted(items, key=lambda kv: str(kv[0]))


def to_csv(result: ExperimentResult) -> str:
    """Serialize the series in long form: ``series,x,y`` rows.

    Within each series rows are ordered by abscissa — numerically when
    all abscissae are numeric (24 < 384 < 1536), lexicographically
    otherwise.
    """
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["series", "x", "y"])
    for name, points in result.series.items():
        for x, y in _abscissa_order(points):
            writer.writerow([name, x, y])
    return buf.getvalue()


def write_json(result: ExperimentResult, path: str) -> None:
    """Write :func:`to_json` output to ``path``."""
    with open(path, "w") as fh:
        fh.write(to_json(result))


def write_csv(result: ExperimentResult, path: str) -> None:
    """Write :func:`to_csv` output to ``path``."""
    with open(path, "w") as fh:
        fh.write(to_csv(result))
