"""Analytic solution and error norms.

For constant uniform velocity, Equation 1 translates the initial condition
rigidly: ``u(x, t) = u0(x - c t)`` with periodic wraparound. The paper
verifies its implementations "by recording norms of the difference between
the computed state and the analytic state" (§IV-A); we do the same.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.stencil.grid import Grid3D, gaussian_initial_condition

__all__ = ["analytic_solution", "error_norms"]


def analytic_solution(
    grid: Grid3D,
    velocity: Sequence[float],
    time: float,
    sigma: float = 0.08,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Exact state at ``time`` for the centered-Gaussian initial condition.

    The Gaussian's center is advected to ``center + c*t`` (mod L); the
    minimum-image evaluation in :func:`gaussian_initial_condition` handles
    the periodic wrap.
    """
    L = grid.length
    center = tuple((0.5 * L + float(c) * time) % L for c in velocity)
    return gaussian_initial_condition(grid, sigma=sigma, center=center, amplitude=amplitude)


def error_norms(computed: np.ndarray, exact: np.ndarray) -> Dict[str, float]:
    """L1, L2 and Linf norms of ``computed - exact`` (grid-normalized).

    L1 and L2 are normalized by the point count so they are resolution
    comparable (discrete approximations of the continuous norms).
    """
    if computed.shape != exact.shape:
        raise ValueError(f"shape mismatch: {computed.shape} vs {exact.shape}")
    diff = computed - exact
    npts = diff.size
    return {
        "l1": float(np.abs(diff).sum() / npts),
        "l2": float(np.sqrt((diff * diff).sum() / npts)),
        "linf": float(np.abs(diff).max()),
    }
