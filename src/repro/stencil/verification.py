"""Correctness oracles for the scheme and its implementations.

Three independent oracles:

* **Unit-CFL exact shift** — when ``|c_i| * nu = 1`` for an axis-aligned
  velocity, the Lax-Wendroff coefficients collapse to a pure one-cell shift,
  so each step must reproduce the initial field exactly (to roundoff),
  circularly shifted. This catches indexing and halo bugs bit-for-bit.
* **Convergence order** — global error at fixed simulated time must shrink
  as O(delta^2) under simultaneous refinement of delta and Delta (paper:
  the method is O(Delta^2) for a fixed simulated time).
* **Cross-implementation agreement** — every parallel implementation must
  produce the single-task field exactly (same arithmetic, same order of
  operations per point), which the test suite asserts field-by-field.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.stencil.analytic import analytic_solution, error_norms
from repro.stencil.coefficients import max_stable_nu, tensor_product_coefficients
from repro.stencil.grid import Grid3D, allocate_field, gaussian_initial_condition
from repro.stencil.kernels import advance, interior

__all__ = ["run_reference", "convergence_order", "exact_shift_steps"]


def run_reference(
    n: int,
    velocity: Sequence[float],
    steps: int,
    nu_fraction: float = 1.0,
    sigma: float = 0.08,
) -> Tuple[np.ndarray, dict]:
    """Run the single-domain reference for ``steps`` steps on an ``n^3`` grid.

    ``nu_fraction`` scales ``nu`` relative to the maximum stable value (the
    paper runs at the maximum, ``nu_fraction = 1``). Returns the final
    interior field and the error norms against the analytic solution.
    """
    grid = Grid3D(n)
    nu = nu_fraction * max_stable_nu(velocity)
    coeffs = tensor_product_coefficients(velocity, nu)
    u = allocate_field(grid.n)
    interior(u)[...] = gaussian_initial_condition(grid, sigma=sigma)
    u = advance(u, coeffs, steps=steps)
    dt = nu * grid.min_spacing
    exact = analytic_solution(grid, velocity, time=steps * dt, sigma=sigma)
    return interior(u).copy(), error_norms(interior(u), exact)


def convergence_order(
    velocity: Sequence[float],
    resolutions: Sequence[int] = (16, 32, 64),
    final_time: float = 0.25,
    nu_fraction: float = 0.9,
    sigma: float = 0.15,
    norm: str = "l2",
) -> float:
    """Estimated order of accuracy from a refinement study.

    Runs the reference to (approximately) ``final_time`` at each resolution
    and fits ``log(error)`` against ``log(delta)``; returns the slope, which
    should be close to 2 for this scheme.
    """
    errs, deltas = [], []
    for n in resolutions:
        grid = Grid3D(n)
        nu = nu_fraction * max_stable_nu(velocity)
        dt = nu * grid.min_spacing
        steps = max(1, int(round(final_time / dt)))
        _, norms = run_reference(n, velocity, steps, nu_fraction=nu_fraction, sigma=sigma)
        errs.append(norms[norm])
        deltas.append(grid.min_spacing)
    slope, _ = np.polyfit(np.log(deltas), np.log(errs), 1)
    return float(slope)


def exact_shift_steps(
    n: int, axis: int, sign: int, steps: int, sigma: float = 0.1
) -> float:
    """Max abs deviation from the exact circular shift at unit CFL.

    With velocity = ``sign`` along ``axis`` and ``nu = 1``, each step is an
    exact one-cell shift; returns ``max |computed - shifted_initial|``,
    which should be at roundoff level (~1e-15).
    """
    velocity = [0.0, 0.0, 0.0]
    velocity[axis] = float(sign)
    grid = Grid3D(n)
    coeffs = tensor_product_coefficients(velocity, nu=1.0)
    u = allocate_field(grid.n)
    u0 = gaussian_initial_condition(grid, sigma=sigma)
    interior(u)[...] = u0
    u = advance(u, coeffs, steps=steps)
    # Positive velocity moves the wave in +axis; grid values shift by +steps.
    expected = np.roll(u0, sign * steps, axis=axis)
    return float(np.abs(interior(u) - expected).max())
