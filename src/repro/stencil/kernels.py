"""Vectorized stencil kernels: separable 1-D sweeps + dense 27-point reference.

These are the *functional* kernels: they operate on NumPy arrays and produce
the same numbers the paper's Fortran kernels produce. (Performance of the
simulated machines comes from the analytic cost models in
:mod:`repro.machines` and :mod:`repro.simgpu`, not from timing this Python.)

All kernels follow the halo convention of :mod:`repro.stencil.grid`: fields
carry a one-point halo, the interior is ``field[1:-1, 1:-1, 1:-1]``.

The paper's three algorithmic steps per time step (§IV-A) map to:

1. copy periodic boundaries — :func:`fill_periodic_halo`
2. compute the new state (Equation 2) — :func:`apply_stencil`
3. copy the new state to the current state — realized as a buffer flip
   (:func:`advance` returns the buffer holding the newest state instead of
   copying it back, like the GPU-resident implementation flips kernel
   arguments)

Execution paths
---------------

Equation 2 is the tensor product of three 1-D Lax-Wendroff operators
(``a_{ijk} = A_i(c_x) A_j(c_y) A_k(c_z)``, paper Table I), so whenever the
coefficients carry factor triples (:attr:`StencilCoefficients.factors`) the
kernels run the **separable engine**: an x sweep, a y sweep, then a z sweep,
each a 3-tap 1-D stencil applied with in-place ufuncs through a
:class:`~repro.stencil.arena.ScratchArena`, performing zero array
allocations in steady state. That turns 27 strided reads plus 27 temporary
allocations per point into 9 contiguous-ish passes, a >3x throughput win at
256^3 (see ``benchmarks/bench_kernels.py`` and ``BENCH_PR1.json``).

The **dense 27-point kernel** (:func:`apply_stencil_dense`,
:func:`apply_stencil_block_dense`) is retained as the cross-checked
reference and as the execution path for non-separable coefficient tensors
(``coeffs.factors is None``).

Sub-box index algebra: a 1-D sweep over an interior block ``[lo, hi)``
needs intermediate values one layer beyond the block in the dimensions not
yet swept. With interior coordinates ``lo=(x0,y0,z0)``, ``hi=(x1,y1,z1)``
and haloed-array coordinates shifted by +1:

* x sweep writes ``t1`` on ``x:[1+x0,1+x1), y:[y0,y1+2), z:[z0,z1+2)``
  (y/z extended one layer each side, down into the halo planes), reading
  ``u`` on ``x:[x0,x1+2)`` — always in bounds for a block inside the
  interior;
* y sweep writes ``t2`` on ``x:[1+x0,1+x1), y:[1+y0,1+y1), z:[z0,z1+2)``;
* z sweep writes ``out`` on the block itself.

Because every intermediate point is computed with the identical in-place
ufunc sequence regardless of the block bounds, the block path is
*bit-identical* to the full-field path (the property tests assert this),
which preserves the repo's cross-implementation bit-exactness oracle.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.stencil.arena import ScratchArena, default_arena
from repro.stencil.coefficients import StencilCoefficients

__all__ = [
    "interior",
    "fill_periodic_halo",
    "apply_stencil",
    "apply_stencil_dense",
    "apply_stencil_block",
    "apply_stencil_block_dense",
    "advance",
]


def interior(field: np.ndarray) -> np.ndarray:
    """View of the non-halo interior of a haloed field."""
    return field[1:-1, 1:-1, 1:-1]


def fill_periodic_halo(field: np.ndarray, dims: Sequence[int] = (0, 1, 2)) -> None:
    """Fill halo planes from the periodic opposite boundary, in place.

    ``dims`` selects which dimensions to wrap (all three by default). The
    dimensions are applied in order; applying x then y then z propagates
    edge and corner values exactly like the paper's serialized exchange
    (x corners sent to y neighbors, x and y to z — §IV-B).
    """
    for d in dims:
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        src_lo = [slice(None)] * 3
        src_hi = [slice(None)] * 3
        lo[d] = 0
        src_lo[d] = -2  # last interior plane
        hi[d] = -1
        src_hi[d] = 1  # first interior plane
        field[tuple(lo)] = field[tuple(src_lo)]
        field[tuple(hi)] = field[tuple(src_hi)]


# ---------------------------------------------------------------------------
# Separable engine
# ---------------------------------------------------------------------------


def _sweep_axis(
    src: np.ndarray,
    dst: np.ndarray,
    taps: np.ndarray,
    axis: int,
    lo: Tuple[int, int, int],
    hi: Tuple[int, int, int],
    tap_buf: np.ndarray,
) -> None:
    """One 3-tap 1-D sweep: ``dst[R] = sum_d taps[d+1] * src[R shifted d]``.

    ``lo``/``hi`` bound the destination region ``R`` in *array* (haloed)
    coordinates. ``tap_buf`` is a scratch array of the same shape as ``dst``
    used to emulate a fused multiply-add without temporaries:
    ``np.multiply(src_shifted, c, out=tap); np.add(acc, tap, out=acc)``.

    Zero taps are skipped (exactly like the dense kernel skips zero
    coefficients), which keeps the unit-CFL exact-shift oracle bit-exact.
    """
    base = tuple(slice(l, h) for l, h in zip(lo, hi))
    acc = dst[base]
    nonzero = [(d, float(c)) for d, c in zip((-1, 0, 1), taps) if c != 0.0]
    if not nonzero:
        acc.fill(0.0)
        return

    def shifted(d: int) -> np.ndarray:
        sl = list(base)
        sl[axis] = slice(lo[axis] + d, hi[axis] + d)
        return src[tuple(sl)]

    d0, c0 = nonzero[0]
    np.multiply(shifted(d0), c0, out=acc)
    if len(nonzero) > 1:
        tap = tap_buf[base]
        for d, c in nonzero[1:]:
            np.multiply(shifted(d), c, out=tap)
            np.add(acc, tap, out=acc)


def _apply_separable_block(
    u: np.ndarray,
    factors: Tuple[np.ndarray, np.ndarray, np.ndarray],
    out: np.ndarray,
    lo: Tuple[int, int, int],
    hi: Tuple[int, int, int],
    arena: ScratchArena,
) -> None:
    """Three 1-D sweeps (x, y, z) over the interior sub-box ``[lo, hi)``.

    See the module docstring for the extended-region index algebra. The
    scratch buffers are full-field shaped so the same cached buffers serve
    every block of a partition (the overlap implementations call this with
    many different boxes per step).
    """
    (x0, y0, z0), (x1, y1, z1) = lo, hi
    ax, ay, az = factors
    shape = u.shape
    t1 = arena.get("sep.t1", shape)
    t2 = arena.get("sep.t2", shape)
    tap = arena.get("sep.tap", shape)
    # x sweep: y/z extended one layer each side (into the halo planes).
    _sweep_axis(u, t1, ax, 0, (1 + x0, y0, z0), (1 + x1, y1 + 2, z1 + 2), tap)
    # y sweep: z still extended.
    _sweep_axis(t1, t2, ay, 1, (1 + x0, 1 + y0, z0), (1 + x1, 1 + y1, z1 + 2), tap)
    # z sweep: lands exactly on the output block.
    _sweep_axis(t2, out, az, 2, (1 + x0, 1 + y0, 1 + z0), (1 + x1, 1 + y1, 1 + z1), tap)


# ---------------------------------------------------------------------------
# Dense 27-point reference
# ---------------------------------------------------------------------------


def apply_stencil_dense(
    u: np.ndarray,
    coeffs: StencilCoefficients,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Equation 2 as a dense 27-point weighted sum (reference kernel).

    This is the literal transcription of Equation 2 — 27 strided reads and
    one temporary per nonzero coefficient. It is kept as the cross-checked
    reference for the separable engine and as the execution path for
    non-separable coefficient tensors. Same contract as
    :func:`apply_stencil`.
    """
    if out is None:
        out = np.zeros_like(u)
    nx, ny, nz = (s - 2 for s in u.shape)
    apply_stencil_block_dense(u, coeffs, out, (0, 0, 0), (nx, ny, nz))
    return out


def apply_stencil_block_dense(
    u: np.ndarray,
    coeffs: StencilCoefficients,
    out: np.ndarray,
    lo: Tuple[int, int, int],
    hi: Tuple[int, int, int],
) -> None:
    """Dense 27-point sum on the interior sub-box ``[lo, hi)`` (reference)."""
    if _check_block(u, lo, hi):
        return
    (x0, y0, z0), (x1, y1, z1) = lo, hi
    acc = out[1 + x0 : 1 + x1, 1 + y0 : 1 + y1, 1 + z0 : 1 + z1]
    acc.fill(0.0)
    a = coeffs.a
    for i in (-1, 0, 1):
        for j in (-1, 0, 1):
            for k in (-1, 0, 1):
                c = a[i + 1, j + 1, k + 1]
                if c == 0.0:
                    continue
                acc += c * u[
                    1 + x0 + i : 1 + x1 + i,
                    1 + y0 + j : 1 + y1 + j,
                    1 + z0 + k : 1 + z1 + k,
                ]


# ---------------------------------------------------------------------------
# Public dispatching entry points
# ---------------------------------------------------------------------------


def _check_block(
    u: np.ndarray, lo: Tuple[int, int, int], hi: Tuple[int, int, int]
) -> bool:
    """Validate block bounds; returns True when the block is empty."""
    (x0, y0, z0), (x1, y1, z1) = lo, hi
    nx, ny, nz = (s - 2 for s in u.shape)
    if x0 >= x1 or y0 >= y1 or z0 >= z1:
        return True  # empty (possibly degenerate hi < lo) block
    if not (0 <= x0 <= x1 <= nx and 0 <= y0 <= y1 <= ny and 0 <= z0 <= z1 <= nz):
        raise ValueError(f"block [{lo}, {hi}) outside interior {(nx, ny, nz)}")
    return False


def _use_separable(coeffs: StencilCoefficients, method: str) -> bool:
    if method == "auto":
        return coeffs.is_separable
    if method == "separable":
        if not coeffs.is_separable:
            raise ValueError("coefficients carry no factor triples; cannot "
                             "force the separable path")
        return True
    if method == "dense":
        return False
    raise ValueError(f"unknown method {method!r}; use auto|separable|dense")


def apply_stencil(
    u: np.ndarray,
    coeffs: StencilCoefficients,
    out: Optional[np.ndarray] = None,
    *,
    arena: Optional[ScratchArena] = None,
    method: str = "auto",
) -> np.ndarray:
    """Equation 2 over the full interior of a haloed field.

    Reads the full haloed field ``u`` and writes new *interior* values into
    the interior of ``out`` (allocated if ``None``; halo of ``out`` is left
    untouched). Returns ``out``.

    Dispatches to the separable three-sweep engine when ``coeffs`` carries
    factor triples (the default for tensor-product-built coefficients), and
    to the dense 27-point reference otherwise. ``method`` forces a specific
    path (``"auto"`` | ``"separable"`` | ``"dense"``); scratch space is
    leased from ``arena`` (the process default when ``None``).
    """
    if out is None:
        out = np.zeros_like(u)
    nx, ny, nz = (s - 2 for s in u.shape)
    apply_stencil_block(u, coeffs, out, (0, 0, 0), (nx, ny, nz),
                        arena=arena, method=method)
    return out


def apply_stencil_block(
    u: np.ndarray,
    coeffs: StencilCoefficients,
    out: np.ndarray,
    lo: Tuple[int, int, int],
    hi: Tuple[int, int, int],
    *,
    arena: Optional[ScratchArena] = None,
    method: str = "auto",
) -> None:
    """Apply Equation 2 on the interior sub-box ``[lo, hi)`` only.

    ``lo``/``hi`` are interior coordinates (0-based, halo excluded). Used by
    the overlap implementations, which partition the interior into pieces
    computed between communication phases, and by the CPU-box/GPU-block
    decomposition of Fig. 1. Dispatch rules match :func:`apply_stencil`;
    the separable block path is bit-identical to the separable full-field
    path, so partitioned implementations stay bit-exact against the
    single-domain reference.
    """
    if _check_block(u, lo, hi):
        return
    if _use_separable(coeffs, method):
        _apply_separable_block(
            u, coeffs.factors, out, lo, hi, arena if arena is not None else default_arena()
        )
    else:
        apply_stencil_block_dense(u, coeffs, out, lo, hi)


def advance(
    u: np.ndarray,
    coeffs: StencilCoefficients,
    steps: int = 1,
    scratch: Optional[np.ndarray] = None,
    *,
    arena: Optional[ScratchArena] = None,
    method: str = "auto",
) -> np.ndarray:
    """Run ``steps`` full single-domain time steps (halo fill + stencil).

    This is the reference single-task algorithm (§IV-A) with the Step-3 copy
    realized as a buffer flip. Returns the haloed buffer holding the final
    state — which is ``u`` itself for even ``steps`` and the scratch buffer
    for odd ``steps``; **callers must use the return value** (``u =
    advance(u, ...)``) rather than assume in-place semantics. Skipping the
    final write-back avoids copying the whole field (~130 MB at 256^3) just
    to honor an aliasing convention.

    ``scratch`` may be passed explicitly (it must be shaped like ``u``) to
    make repeated calls allocation-free; otherwise one flip buffer is
    allocated per call (never per step — the in-step path is zero-allocation
    through ``arena``). A per-call buffer rather than an arena lease keeps
    results of interleaved ``advance`` calls on same-shaped fields from
    aliasing each other. Intended for verification and single-domain
    reference runs.
    """
    if arena is None:
        arena = default_arena()
    if scratch is None or scratch is u:
        scratch = np.zeros_like(u)
    cur, nxt = u, scratch
    for _ in range(steps):
        fill_periodic_halo(cur)
        apply_stencil(cur, coeffs, out=nxt, arena=arena, method=method)
        cur, nxt = nxt, cur
    return cur
