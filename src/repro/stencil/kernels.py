"""Vectorized stencil kernels.

These are the *functional* kernels: they operate on NumPy arrays and produce
the same numbers the paper's Fortran kernels produce. (Performance of the
simulated machines comes from the analytic cost models in
:mod:`repro.machines` and :mod:`repro.simgpu`, not from timing this Python.)

All kernels follow the halo convention of :mod:`repro.stencil.grid`: fields
carry a one-point halo, the interior is ``field[1:-1, 1:-1, 1:-1]``.

The paper's three algorithmic steps per time step (§IV-A) map to:

1. copy periodic boundaries — :func:`fill_periodic_halo`
2. compute the new state (Equation 2) — :func:`apply_stencil`
3. copy the new state to the current state — plain array copy (or pointer
   flip for implementations that do that, as the GPU-resident one does)
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.stencil.coefficients import StencilCoefficients

__all__ = [
    "interior",
    "fill_periodic_halo",
    "apply_stencil",
    "apply_stencil_block",
    "advance",
]


def interior(field: np.ndarray) -> np.ndarray:
    """View of the non-halo interior of a haloed field."""
    return field[1:-1, 1:-1, 1:-1]


def fill_periodic_halo(field: np.ndarray, dims: Sequence[int] = (0, 1, 2)) -> None:
    """Fill halo planes from the periodic opposite boundary, in place.

    ``dims`` selects which dimensions to wrap (all three by default). The
    dimensions are applied in order; applying x then y then z propagates
    edge and corner values exactly like the paper's serialized exchange
    (x corners sent to y neighbors, x and y to z — §IV-B).
    """
    for d in dims:
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        src_lo = [slice(None)] * 3
        src_hi = [slice(None)] * 3
        lo[d] = 0
        src_lo[d] = -2  # last interior plane
        hi[d] = -1
        src_hi[d] = 1  # first interior plane
        field[tuple(lo)] = field[tuple(src_lo)]
        field[tuple(hi)] = field[tuple(src_hi)]


def apply_stencil(
    u: np.ndarray,
    coeffs: StencilCoefficients,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Equation 2: 27-point weighted sum over a haloed field.

    Reads the full haloed field ``u`` and writes new *interior* values into
    the interior of ``out`` (allocated if ``None``; halo of ``out`` is left
    untouched). Returns ``out``.
    """
    if out is None:
        out = np.zeros_like(u)
    nx, ny, nz = (s - 2 for s in u.shape)
    acc = out[1:-1, 1:-1, 1:-1]
    acc.fill(0.0)
    a = coeffs.a
    for i in (-1, 0, 1):
        for j in (-1, 0, 1):
            for k in (-1, 0, 1):
                c = a[i + 1, j + 1, k + 1]
                if c == 0.0:
                    continue
                acc += c * u[1 + i : nx + 1 + i, 1 + j : ny + 1 + j, 1 + k : nz + 1 + k]
    return out


def apply_stencil_block(
    u: np.ndarray,
    coeffs: StencilCoefficients,
    out: np.ndarray,
    lo: Tuple[int, int, int],
    hi: Tuple[int, int, int],
) -> None:
    """Apply Equation 2 on the interior sub-box ``[lo, hi)`` only.

    ``lo``/``hi`` are interior coordinates (0-based, halo excluded). Used by
    the overlap implementations, which partition the interior into pieces
    computed between communication phases, and by the CPU-box/GPU-block
    decomposition of Fig. 1.
    """
    (x0, y0, z0), (x1, y1, z1) = lo, hi
    nx, ny, nz = (s - 2 for s in u.shape)
    if x0 >= x1 or y0 >= y1 or z0 >= z1:
        return  # empty (possibly degenerate hi < lo) block
    if not (0 <= x0 <= x1 <= nx and 0 <= y0 <= y1 <= ny and 0 <= z0 <= z1 <= nz):
        raise ValueError(f"block [{lo}, {hi}) outside interior {(nx, ny, nz)}")
    acc = out[1 + x0 : 1 + x1, 1 + y0 : 1 + y1, 1 + z0 : 1 + z1]
    acc.fill(0.0)
    a = coeffs.a
    for i in (-1, 0, 1):
        for j in (-1, 0, 1):
            for k in (-1, 0, 1):
                c = a[i + 1, j + 1, k + 1]
                if c == 0.0:
                    continue
                acc += c * u[
                    1 + x0 + i : 1 + x1 + i,
                    1 + y0 + j : 1 + y1 + j,
                    1 + z0 + k : 1 + z1 + k,
                ]


def advance(
    u: np.ndarray,
    coeffs: StencilCoefficients,
    steps: int = 1,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run ``steps`` full single-domain time steps (halo fill + stencil).

    This is the reference single-task algorithm (§IV-A) with the Step-3 copy
    realized as a buffer flip; it returns the final field (haloed). Intended
    for verification on small grids.
    """
    if scratch is None:
        scratch = np.zeros_like(u)
    cur, nxt = u, scratch
    for _ in range(steps):
        fill_periodic_halo(cur)
        apply_stencil(cur, coeffs, out=nxt)
        cur, nxt = nxt, cur
    if cur is not u:
        u[...] = cur
    return u
