"""Reusable scratch-buffer arena for the separable stencil engine.

The separable execution path in :mod:`repro.stencil.kernels` runs three 1-D
sweeps per step and needs intermediate full-field buffers (``t1``, ``t2``)
plus one tap buffer for in-place fused multiply-accumulate emulation
(``np.multiply(..., out=tap)`` followed by ``np.add(acc, tap, out=acc)``).
Allocating those per call would dominate the runtime of the functional
kernels (a 256^3 haloed double field is ~137 MB), so all scratch space is
leased from a :class:`ScratchArena`: buffers are keyed by ``(name, shape,
dtype)`` and reused verbatim on every subsequent request, making the
steady-state time step allocation-free.

Buffers are handed out *uninitialized* (contents are whatever the previous
lease left behind); callers must fully overwrite the region they read back.

A process-wide default arena (:func:`default_arena`) backs the public kernel
entry points when no explicit arena is passed. The simulator executes rank
programs sequentially inside one discrete-event loop, so sharing the default
arena across simulated ranks is safe — a sweep never spans two events — and
is what keeps the memory footprint bounded by the largest field shape rather
than by the rank count. Code that wants isolation (or deterministic
accounting, like :class:`repro.core.data.RankData` and the GPU
implementations) can carry its own arena instance.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import numpy as np

__all__ = ["ScratchArena", "default_arena", "reset_default_arena"]


class ScratchArena:
    """A cache of named, shaped scratch arrays with zero steady-state allocation.

    ``get(name, shape)`` returns the same array object every time it is
    called with the same ``(name, shape, dtype)`` triple; a request for the
    same name with a *different* shape or dtype retires the old buffer and
    allocates a fresh one (fields of several shapes can coexist under
    different names, e.g. per-block keys).
    """

    __slots__ = ("_buffers", "hits", "misses")

    def __init__(self) -> None:
        self._buffers: Dict[Hashable, np.ndarray] = {}
        #: number of get() calls served from cache / requiring allocation
        self.hits = 0
        self.misses = 0

    def get(
        self,
        name: Hashable,
        shape: Tuple[int, ...],
        dtype: np.dtype = np.float64,
    ) -> np.ndarray:
        """Lease the scratch buffer ``name`` with ``shape`` (uninitialized)."""
        shape = tuple(int(s) for s in shape)
        buf = self._buffers.get(name)
        if buf is not None and buf.shape == shape and buf.dtype == dtype:
            self.hits += 1
            return buf
        self.misses += 1
        buf = np.empty(shape, dtype=dtype)
        self._buffers[name] = buf
        return buf

    def zeros(
        self,
        name: Hashable,
        shape: Tuple[int, ...],
        dtype: np.dtype = np.float64,
    ) -> np.ndarray:
        """Like :meth:`get`, but the returned buffer is zero-filled."""
        buf = self.get(name, shape, dtype)
        buf.fill(0.0)
        return buf

    def __len__(self) -> int:
        return len(self._buffers)

    def __contains__(self, name: Hashable) -> bool:
        return name in self._buffers

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(b.nbytes for b in self._buffers.values())

    def clear(self) -> None:
        """Release every buffer (and reset the hit/miss counters)."""
        self._buffers.clear()
        self.hits = 0
        self.misses = 0


_DEFAULT = ScratchArena()


def default_arena() -> ScratchArena:
    """The process-wide arena used when kernels receive ``arena=None``."""
    return _DEFAULT


def reset_default_arena() -> None:
    """Drop all buffers held by the process-wide arena (tests, memory pressure)."""
    _DEFAULT.clear()
