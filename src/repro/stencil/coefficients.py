"""Stencil coefficients for the paper's 3-D Lax-Wendroff scheme (Table I).

The paper derives a 3x3x3 stencil for

    du/dt + c . grad(u) = 0

that cancels all Taylor terms through O(Delta^2). The resulting table of 27
coefficients (paper Table I) is exactly the tensor product of the classic
1-D Lax-Wendroff coefficients

    A_{-1}(c) = c*nu*(1 + c*nu)/2
    A_{ 0}(c) = 1 - (c*nu)^2
    A_{+1}(c) = c*nu*(c*nu - 1)/2

with nu = Delta/delta (time step over grid spacing):

    a_{ijk} = A_i(c_x) * A_j(c_y) * A_k(c_z)

Every undamaged entry of the supplied Table I matches this product; see
DESIGN.md for notes on the two OCR-damaged rows. We provide both forms and
test them against each other.

The scheme is stable for ``nu * max(|c_x|, |c_y|, |c_z|) <= 1`` (the paper's
"nu <= max{...}" is a typo for this CFL condition); :func:`amplification_factor`
lets tests verify this via the von Neumann symbol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "FLOPS_PER_POINT",
    "StencilCoefficients",
    "lax_wendroff_1d",
    "tensor_product_coefficients",
    "table1_coefficients",
    "max_stable_nu",
    "amplification_factor",
]

#: Flops per grid point per step, as counted by the paper for its GF metric:
#: Equation 2 has 27 multiplications and 26 additions.
FLOPS_PER_POINT = 53


def lax_wendroff_1d(c: float, nu: float) -> Tuple[float, float, float]:
    """1-D Lax-Wendroff coefficients ``(A_-1, A_0, A_+1)``.

    ``c`` is the (signed) velocity component and ``nu = Delta/delta``.
    """
    cn = c * nu
    return (cn * (1.0 + cn) / 2.0, 1.0 - cn * cn, cn * (cn - 1.0) / 2.0)


@dataclass(frozen=True)
class StencilCoefficients:
    """The 27 coefficients ``a[i+1, j+1, k+1] = a_{ijk}`` for Equation 2.

    Attributes
    ----------
    a:
        ``(3, 3, 3)`` float array indexed by offset+1 in each dimension.
    velocity:
        The velocity ``(c_x, c_y, c_z)`` the coefficients were built for.
    nu:
        The ratio ``Delta/delta`` they were built for.
    """

    a: np.ndarray
    velocity: Tuple[float, float, float]
    nu: float

    def __post_init__(self):
        if self.a.shape != (3, 3, 3):
            raise ValueError(f"coefficient array must be (3,3,3), got {self.a.shape}")

    def __getitem__(self, offsets: Tuple[int, int, int]) -> float:
        """Coefficient ``a_{ijk}`` for offsets ``i, j, k`` in ``{-1, 0, +1}``."""
        i, j, k = offsets
        return float(self.a[i + 1, j + 1, k + 1])

    @property
    def consistency_sum(self) -> float:
        """Sum of all coefficients; exactly 1 for a consistent scheme."""
        return float(self.a.sum())

    def items(self):
        """Iterate ``((i, j, k), a_ijk)`` over all 27 offsets."""
        for i in (-1, 0, 1):
            for j in (-1, 0, 1):
                for k in (-1, 0, 1):
                    yield (i, j, k), float(self.a[i + 1, j + 1, k + 1])


def tensor_product_coefficients(
    velocity: Sequence[float], nu: float
) -> StencilCoefficients:
    """Build Table I via the tensor product of 1-D Lax-Wendroff coefficients."""
    cx, cy, cz = (float(v) for v in velocity)
    ax = np.array(lax_wendroff_1d(cx, nu))
    ay = np.array(lax_wendroff_1d(cy, nu))
    az = np.array(lax_wendroff_1d(cz, nu))
    a = np.einsum("i,j,k->ijk", ax, ay, az)
    return StencilCoefficients(a=a, velocity=(cx, cy, cz), nu=float(nu))


def table1_coefficients(velocity: Sequence[float], nu: float) -> StencilCoefficients:
    """Build Table I from the paper's explicit per-entry formulas.

    This is a literal transcription of the 27 rows of Table I (with the two
    OCR-damaged rows restored from the table's own x/y/z symmetry; see
    DESIGN.md). It exists to validate the transcription against
    :func:`tensor_product_coefficients` — tests assert exact agreement.
    """
    cx, cy, cz = (float(v) for v in velocity)
    v = float(nu)
    a = np.empty((3, 3, 3))

    def put(i: int, j: int, k: int, value: float) -> None:
        a[i + 1, j + 1, k + 1] = value

    # Row-by-row transcription of Table I. v is the paper's nu.
    put(-1, -1, -1, cx * cy * cz * v**3 * (1 + cx * v) * (1 + cy * v) * (1 + cz * v) / 8)
    put(-1, -1, 0, -2 * cx * cy * v**2 * (1 + cx * v) * (1 + cy * v) * (cz**2 * v**2 - 1) / 8)
    put(-1, -1, 1, cx * cy * cz * v**3 * (1 + cx * v) * (1 + cy * v) * (cz * v - 1) / 8)
    put(-1, 0, -1, -2 * cx * cz * v**2 * (1 + cx * v) * (1 + cz * v) * (cy**2 * v**2 - 1) / 8)
    put(-1, 0, 0, 4 * cx * v * (1 + cx * v) * (cy**2 * v**2 - 1) * (cz**2 * v**2 - 1) / 8)
    put(-1, 0, 1, -2 * cx * cz * v**2 * (1 + cx * v) * (-1 + cz * v) * (-1 + cy**2 * v**2) / 8)
    put(-1, 1, -1, cx * cy * cz * v**3 * (1 + cx * v) * (-1 + cy * v) * (1 + cz * v) / 8)
    put(-1, 1, 0, -2 * cx * cy * v**2 * (1 + cx * v) * (-1 + cy * v) * (-1 + cz**2 * v**2) / 8)
    put(-1, 1, 1, cx * cy * cz * v**3 * (1 + cx * v) * (-1 + cy * v) * (-1 + cz * v) / 8)
    put(0, -1, -1, -2 * cy * cz * v**2 * (1 + cy * v) * (1 + cz * v) * (-1 + cx**2 * v**2) / 8)
    put(0, -1, 0, 4 * cy * v * (1 + cy * v) * (-1 + cx**2 * v**2) * (-1 + cz**2 * v**2) / 8)
    put(0, -1, 1, -2 * cy * cz * v**2 * (1 + cy * v) * (-1 + cz * v) * (-1 + cx**2 * v**2) / 8)
    put(0, 0, -1, 4 * cz * v * (1 + cz * v) * (-1 + cx**2 * v**2) * (-1 + cy**2 * v**2) / 8)
    put(0, 0, 0, -8 * (-1 + cx**2 * v**2) * (-1 + cy**2 * v**2) * (-1 + cz**2 * v**2) / 8)
    put(0, 0, 1, 4 * cz * v * (-1 + cz * v) * (-1 + cx**2 * v**2) * (-1 + cy**2 * v**2) / 8)
    put(0, 1, -1, -2 * cy * cz * v**2 * (-1 + cy * v) * (1 + cz * v) * (-1 + cx**2 * v**2) / 8)
    put(0, 1, 0, 4 * cy * v * (-1 + cy * v) * (-1 + cx**2 * v**2) * (-1 + cz**2 * v**2) / 8)
    put(0, 1, 1, -2 * cy * cz * v**2 * (-1 + cy * v) * (-1 + cz * v) * (-1 + cx**2 * v**2) / 8)
    put(1, -1, -1, cx * cy * cz * v**3 * (-1 + cx * v) * (1 + cy * v) * (1 + cz * v) / 8)
    put(1, -1, 0, -2 * cx * cy * v**2 * (-1 + cx * v) * (1 + cy * v) * (-1 + cz**2 * v**2) / 8)
    put(1, -1, 1, cx * cy * cz * v**3 * (-1 + cx * v) * (1 + cy * v) * (-1 + cz * v) / 8)
    put(1, 0, -1, -2 * cx * cz * v**2 * (-1 + cx * v) * (1 + cz * v) * (-1 + cy**2 * v**2) / 8)
    put(1, 0, 0, 4 * cx * v * (-1 + cx * v) * (-1 + cy**2 * v**2) * (-1 + cz**2 * v**2) / 8)
    put(1, 0, 1, -2 * cx * cz * v**2 * (-1 + cx * v) * (-1 + cz * v) * (-1 + cy**2 * v**2) / 8)
    put(1, 1, -1, cx * cy * cz * v**3 * (-1 + cx * v) * (-1 + cy * v) * (1 + cz * v) / 8)
    put(1, 1, 0, -2 * cx * cy * v**2 * (-1 + cx * v) * (-1 + cy * v) * (-1 + cz**2 * v**2) / 8)
    put(1, 1, 1, cx * cy * cz * v**3 * (-1 + cx * v) * (-1 + cy * v) * (-1 + cz * v) / 8)

    return StencilCoefficients(a=a, velocity=(cx, cy, cz), nu=v)


def max_stable_nu(velocity: Sequence[float]) -> float:
    """Largest stable ``nu = Delta/delta`` for velocity ``c``.

    The tensor-product Lax-Wendroff scheme is von Neumann stable iff
    ``nu * max_i |c_i| <= 1``. The paper runs at this maximum stable value.
    """
    cmax = max(abs(float(v)) for v in velocity)
    if cmax == 0:
        raise ValueError("velocity is zero; any nu is stable and none advects")
    return 1.0 / cmax


def amplification_factor(
    velocity: Sequence[float], nu: float, theta: Sequence[float]
) -> complex:
    """Von Neumann symbol g(theta) of the scheme at wavenumber angles theta.

    For a Fourier mode ``exp(i (theta_x x + theta_y y + theta_z z)/delta)``
    the scheme multiplies the amplitude by ``g`` each step; ``|g| <= 1`` for
    all theta iff the scheme is stable.
    """
    g = 1.0 + 0.0j
    for c, th in zip(velocity, theta):
        lam = float(c) * float(nu)
        g *= 1.0 - lam * lam * (1.0 - np.cos(th)) - 1j * lam * np.sin(th)
    return complex(g)
