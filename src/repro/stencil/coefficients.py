"""Stencil coefficients for the paper's 3-D Lax-Wendroff scheme (Table I).

The paper derives a 3x3x3 stencil for

    du/dt + c . grad(u) = 0

that cancels all Taylor terms through O(Delta^2). The resulting table of 27
coefficients (paper Table I) is exactly the tensor product of the classic
1-D Lax-Wendroff coefficients

    A_{-1}(c) = c*nu*(1 + c*nu)/2
    A_{ 0}(c) = 1 - (c*nu)^2
    A_{+1}(c) = c*nu*(c*nu - 1)/2

with nu = Delta/delta (time step over grid spacing):

    a_{ijk} = A_i(c_x) * A_j(c_y) * A_k(c_z)

Every undamaged entry of the supplied Table I matches this product; see
DESIGN.md for notes on the two OCR-damaged rows. We provide both forms and
test them against each other.

The scheme is stable for ``nu * max(|c_x|, |c_y|, |c_z|) <= 1`` (the paper's
"nu <= max{...}" is a typo for this CFL condition); :func:`amplification_factor`
lets tests verify this via the von Neumann symbol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FLOPS_PER_POINT",
    "StencilCoefficients",
    "lax_wendroff_1d",
    "factor_rank1",
    "tensor_product_coefficients",
    "table1_coefficients",
    "max_stable_nu",
    "amplification_factor",
]

#: Flops per grid point per step, as counted by the paper for its GF metric:
#: Equation 2 has 27 multiplications and 26 additions.
FLOPS_PER_POINT = 53


def lax_wendroff_1d(c: float, nu: float) -> Tuple[float, float, float]:
    """1-D Lax-Wendroff coefficients ``(A_-1, A_0, A_+1)``.

    ``c`` is the (signed) velocity component and ``nu = Delta/delta``.
    """
    cn = c * nu
    return (cn * (1.0 + cn) / 2.0, 1.0 - cn * cn, cn * (cn - 1.0) / 2.0)


def factor_rank1(
    a: np.ndarray, rtol: float = 1e-12, atol: float = 1e-14
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Attempt an exact rank-1 (separable) factorization of a 3x3x3 tensor.

    Returns 1-D factor triples ``(ax, ay, az)`` with
    ``a[i, j, k] == ax[i] * ay[j] * az[k]`` (within ``rtol``/``atol``), or
    ``None`` when ``a`` is not separable. For a true rank-1 tensor the
    factors are recovered from the pivot cross-sections

    .. math:: a_{ijk} = a_{i j_0 k_0} \\, a_{i_0 j k_0} \\, a_{i_0 j_0 k} / p^2

    where ``p = a[i0, j0, k0]`` is the largest-magnitude entry. The returned
    factors are only determined up to scale (only their outer product is
    meaningful); :func:`tensor_product_coefficients` bypasses this recovery
    and stores the canonical 1-D Lax-Wendroff triples directly.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.shape != (3, 3, 3):
        raise ValueError(f"expected a (3,3,3) tensor, got {a.shape}")
    scale = float(np.abs(a).max())
    if scale == 0.0:
        z = np.zeros(3)
        return z, z.copy(), z.copy()
    i0, j0, k0 = np.unravel_index(int(np.abs(a).argmax()), a.shape)
    p = a[i0, j0, k0]
    ax = a[:, j0, k0].copy()
    ay = a[i0, :, k0] / p
    az = a[i0, j0, :] / p
    recon = np.einsum("i,j,k->ijk", ax, ay, az)
    if np.allclose(recon, a, rtol=rtol, atol=atol * scale):
        return ax, ay, az
    return None


@dataclass(frozen=True)
class StencilCoefficients:
    """The 27 coefficients ``a[i+1, j+1, k+1] = a_{ijk}`` for Equation 2.

    Attributes
    ----------
    a:
        ``(3, 3, 3)`` float array indexed by offset+1 in each dimension.
    velocity:
        The velocity ``(c_x, c_y, c_z)`` the coefficients were built for.
    nu:
        The ratio ``Delta/delta`` they were built for.
    factors:
        Optional 1-D factor triples ``(ax, ay, az)`` with
        ``a[i, j, k] = ax[i] * ay[j] * az[k]``. When present, the stencil is
        *separable* and :mod:`repro.stencil.kernels` applies it as three 1-D
        sweeps instead of the dense 27-point sum. Populated automatically:
        :func:`tensor_product_coefficients` stores the exact 1-D
        Lax-Wendroff triples, and any other construction (e.g. the literal
        Table I transcription) gets a :func:`factor_rank1` recovery attempt
        with a dense (``factors=None``) fallback for non-separable tensors.
    """

    a: np.ndarray
    velocity: Tuple[float, float, float]
    nu: float
    factors: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def __post_init__(self):
        if self.a.shape != (3, 3, 3):
            raise ValueError(f"coefficient array must be (3,3,3), got {self.a.shape}")
        if self.factors is None:
            # Rank-1 recovery attempt; stays None for non-separable tensors
            # (the kernels then fall back to the dense 27-point reference).
            object.__setattr__(self, "factors", factor_rank1(self.a))
        else:
            fx, fy, fz = (np.asarray(f, dtype=np.float64) for f in self.factors)
            for f in (fx, fy, fz):
                if f.shape != (3,):
                    raise ValueError(f"factor triples must be (3,), got {f.shape}")
            object.__setattr__(self, "factors", (fx, fy, fz))

    @property
    def is_separable(self) -> bool:
        """True when 1-D factor triples are available (tensor-product form)."""
        return self.factors is not None

    def __getitem__(self, offsets: Tuple[int, int, int]) -> float:
        """Coefficient ``a_{ijk}`` for offsets ``i, j, k`` in ``{-1, 0, +1}``."""
        i, j, k = offsets
        return float(self.a[i + 1, j + 1, k + 1])

    @property
    def consistency_sum(self) -> float:
        """Sum of all coefficients; exactly 1 for a consistent scheme."""
        return float(self.a.sum())

    def items(self):
        """Iterate ``((i, j, k), a_ijk)`` over all 27 offsets."""
        for i in (-1, 0, 1):
            for j in (-1, 0, 1):
                for k in (-1, 0, 1):
                    yield (i, j, k), float(self.a[i + 1, j + 1, k + 1])


def tensor_product_coefficients(
    velocity: Sequence[float], nu: float
) -> StencilCoefficients:
    """Build Table I via the tensor product of 1-D Lax-Wendroff coefficients."""
    cx, cy, cz = (float(v) for v in velocity)
    ax = np.array(lax_wendroff_1d(cx, nu))
    ay = np.array(lax_wendroff_1d(cy, nu))
    az = np.array(lax_wendroff_1d(cz, nu))
    a = np.einsum("i,j,k->ijk", ax, ay, az)
    return StencilCoefficients(
        a=a, velocity=(cx, cy, cz), nu=float(nu), factors=(ax, ay, az)
    )


def table1_coefficients(velocity: Sequence[float], nu: float) -> StencilCoefficients:
    """Build Table I from the paper's explicit per-entry formulas.

    This is a literal transcription of the 27 rows of Table I (with the two
    OCR-damaged rows restored from the table's own x/y/z symmetry; see
    DESIGN.md). It exists to validate the transcription against
    :func:`tensor_product_coefficients` — tests assert exact agreement.
    """
    cx, cy, cz = (float(v) for v in velocity)
    v = float(nu)
    a = np.empty((3, 3, 3))

    def put(i: int, j: int, k: int, value: float) -> None:
        a[i + 1, j + 1, k + 1] = value

    # Row-by-row transcription of Table I. v is the paper's nu.
    put(-1, -1, -1, cx * cy * cz * v**3 * (1 + cx * v) * (1 + cy * v) * (1 + cz * v) / 8)
    put(-1, -1, 0, -2 * cx * cy * v**2 * (1 + cx * v) * (1 + cy * v) * (cz**2 * v**2 - 1) / 8)
    put(-1, -1, 1, cx * cy * cz * v**3 * (1 + cx * v) * (1 + cy * v) * (cz * v - 1) / 8)
    put(-1, 0, -1, -2 * cx * cz * v**2 * (1 + cx * v) * (1 + cz * v) * (cy**2 * v**2 - 1) / 8)
    put(-1, 0, 0, 4 * cx * v * (1 + cx * v) * (cy**2 * v**2 - 1) * (cz**2 * v**2 - 1) / 8)
    put(-1, 0, 1, -2 * cx * cz * v**2 * (1 + cx * v) * (-1 + cz * v) * (-1 + cy**2 * v**2) / 8)
    put(-1, 1, -1, cx * cy * cz * v**3 * (1 + cx * v) * (-1 + cy * v) * (1 + cz * v) / 8)
    put(-1, 1, 0, -2 * cx * cy * v**2 * (1 + cx * v) * (-1 + cy * v) * (-1 + cz**2 * v**2) / 8)
    put(-1, 1, 1, cx * cy * cz * v**3 * (1 + cx * v) * (-1 + cy * v) * (-1 + cz * v) / 8)
    put(0, -1, -1, -2 * cy * cz * v**2 * (1 + cy * v) * (1 + cz * v) * (-1 + cx**2 * v**2) / 8)
    put(0, -1, 0, 4 * cy * v * (1 + cy * v) * (-1 + cx**2 * v**2) * (-1 + cz**2 * v**2) / 8)
    put(0, -1, 1, -2 * cy * cz * v**2 * (1 + cy * v) * (-1 + cz * v) * (-1 + cx**2 * v**2) / 8)
    put(0, 0, -1, 4 * cz * v * (1 + cz * v) * (-1 + cx**2 * v**2) * (-1 + cy**2 * v**2) / 8)
    put(0, 0, 0, -8 * (-1 + cx**2 * v**2) * (-1 + cy**2 * v**2) * (-1 + cz**2 * v**2) / 8)
    put(0, 0, 1, 4 * cz * v * (-1 + cz * v) * (-1 + cx**2 * v**2) * (-1 + cy**2 * v**2) / 8)
    put(0, 1, -1, -2 * cy * cz * v**2 * (-1 + cy * v) * (1 + cz * v) * (-1 + cx**2 * v**2) / 8)
    put(0, 1, 0, 4 * cy * v * (-1 + cy * v) * (-1 + cx**2 * v**2) * (-1 + cz**2 * v**2) / 8)
    put(0, 1, 1, -2 * cy * cz * v**2 * (-1 + cy * v) * (-1 + cz * v) * (-1 + cx**2 * v**2) / 8)
    put(1, -1, -1, cx * cy * cz * v**3 * (-1 + cx * v) * (1 + cy * v) * (1 + cz * v) / 8)
    put(1, -1, 0, -2 * cx * cy * v**2 * (-1 + cx * v) * (1 + cy * v) * (-1 + cz**2 * v**2) / 8)
    put(1, -1, 1, cx * cy * cz * v**3 * (-1 + cx * v) * (1 + cy * v) * (-1 + cz * v) / 8)
    put(1, 0, -1, -2 * cx * cz * v**2 * (-1 + cx * v) * (1 + cz * v) * (-1 + cy**2 * v**2) / 8)
    put(1, 0, 0, 4 * cx * v * (-1 + cx * v) * (-1 + cy**2 * v**2) * (-1 + cz**2 * v**2) / 8)
    put(1, 0, 1, -2 * cx * cz * v**2 * (-1 + cx * v) * (-1 + cz * v) * (-1 + cy**2 * v**2) / 8)
    put(1, 1, -1, cx * cy * cz * v**3 * (-1 + cx * v) * (-1 + cy * v) * (1 + cz * v) / 8)
    put(1, 1, 0, -2 * cx * cy * v**2 * (-1 + cx * v) * (-1 + cy * v) * (-1 + cz**2 * v**2) / 8)
    put(1, 1, 1, cx * cy * cz * v**3 * (-1 + cx * v) * (-1 + cy * v) * (-1 + cz * v) / 8)

    return StencilCoefficients(a=a, velocity=(cx, cy, cz), nu=v)


def max_stable_nu(velocity: Sequence[float]) -> float:
    """Largest stable ``nu = Delta/delta`` for velocity ``c``.

    The tensor-product Lax-Wendroff scheme is von Neumann stable iff
    ``nu * max_i |c_i| <= 1``. The paper runs at this maximum stable value.
    """
    cmax = max(abs(float(v)) for v in velocity)
    if cmax == 0:
        raise ValueError("velocity is zero; any nu is stable and none advects")
    return 1.0 / cmax


def amplification_factor(
    velocity: Sequence[float], nu: float, theta: Sequence[float]
) -> complex:
    """Von Neumann symbol g(theta) of the scheme at wavenumber angles theta.

    For a Fourier mode ``exp(i (theta_x x + theta_y y + theta_z z)/delta)``
    the scheme multiplies the amplitude by ``g`` each step; ``|g| <= 1`` for
    all theta iff the scheme is stable.
    """
    g = 1.0 + 0.0j
    for c, th in zip(velocity, theta):
        lam = float(c) * float(nu)
        g *= 1.0 - lam * lam * (1.0 - np.cos(th)) - 1j * lam * np.sin(th)
    return complex(g)
