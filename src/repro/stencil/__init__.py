"""Numerics for 3-D linear advection with the paper's Lax-Wendroff stencil.

This package is the *numerical* core of the reproduction (paper §II):

* :mod:`~repro.stencil.coefficients` — the 27 stencil coefficients of the
  paper's Table I, both as a literal transcription and as the tensor product
  of 1-D Lax-Wendroff coefficients (they are provably the same scheme), plus
  the CFL stability bound.
* :mod:`~repro.stencil.grid` — the periodic cubic grid and the Gaussian
  initial condition at the domain center.
* :mod:`~repro.stencil.kernels` — vectorized NumPy kernels: periodic halo
  fill and the Equation-2 stencil application, run either as three
  separable 1-D Lax-Wendroff sweeps (the fast path, when factor triples
  are available) or as the dense 27-point reference sum; the per-point
  flop count used for the paper's GF metric stays 53 (27 multiplies + 26
  adds), as the paper counts the dense form.
* :mod:`~repro.stencil.arena` — the reusable scratch-buffer arena that
  makes the separable path allocation-free in steady state.
* :mod:`~repro.stencil.analytic` — the exact solution (the Gaussian
  translated at velocity ``c`` with periodic wraparound) and error norms.
* :mod:`~repro.stencil.verification` — convergence-order estimation and the
  unit-CFL exact-shift identity used as a strong correctness oracle.
"""

from repro.stencil.analytic import analytic_solution, error_norms
from repro.stencil.arena import ScratchArena, default_arena, reset_default_arena
from repro.stencil.coefficients import (
    FLOPS_PER_POINT,
    StencilCoefficients,
    amplification_factor,
    factor_rank1,
    lax_wendroff_1d,
    max_stable_nu,
    table1_coefficients,
    tensor_product_coefficients,
)
from repro.stencil.grid import Grid3D, allocate_field, gaussian_initial_condition
from repro.stencil.kernels import (
    advance,
    apply_stencil,
    apply_stencil_block,
    apply_stencil_block_dense,
    apply_stencil_dense,
    fill_periodic_halo,
    interior,
)

__all__ = [
    "FLOPS_PER_POINT",
    "Grid3D",
    "ScratchArena",
    "StencilCoefficients",
    "advance",
    "allocate_field",
    "amplification_factor",
    "analytic_solution",
    "apply_stencil",
    "apply_stencil_block",
    "apply_stencil_block_dense",
    "apply_stencil_dense",
    "default_arena",
    "error_norms",
    "factor_rank1",
    "fill_periodic_halo",
    "gaussian_initial_condition",
    "interior",
    "lax_wendroff_1d",
    "max_stable_nu",
    "reset_default_arena",
    "table1_coefficients",
    "tensor_product_coefficients",
]
