"""The periodic cubic grid and the paper's Gaussian initial condition.

The paper's domain is a unit-style cube with periodic boundaries,
discretized on an ``n x n x n`` uniform grid (``n = 420`` for the headline
experiments), with a Gaussian wave centered in the cube as the initial
condition (paper §II).

Fields are stored with a one-point halo in each dimension, so a field for an
``(nx, ny, nz)`` subdomain has shape ``(nx+2, ny+2, nz+2)``; the interior is
``field[1:-1, 1:-1, 1:-1]``. Index order is ``[x, y, z]`` throughout, with z
contiguous (C order), matching the paper's "subdomain largest in x, smallest
in z, to best enable memory locality" convention transposed to C storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

__all__ = ["Grid3D", "allocate_field", "gaussian_initial_condition"]

#: Halo (ghost) width required by the 3x3x3 stencil.
HALO = 1


@dataclass(frozen=True)
class Grid3D:
    """A uniform periodic grid on ``[0, L)^3``.

    Parameters
    ----------
    n:
        Points per dimension (``(nx, ny, nz)`` or a single int for a cube).
        The paper uses 420.
    length:
        Physical edge length ``L`` of the periodic cube (default 1.0).
    """

    n: Tuple[int, int, int]
    length: float = 1.0

    def __init__(self, n, length: float = 1.0):
        if isinstance(n, (int, np.integer)):
            n = (int(n),) * 3
        n = tuple(int(v) for v in n)
        if len(n) != 3 or any(v < 3 for v in n):
            raise ValueError(f"grid needs >= 3 points per dimension, got {n}")
        if length <= 0:
            raise ValueError("length must be positive")
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "length", float(length))

    @property
    def spacing(self) -> Tuple[float, float, float]:
        """Grid spacing ``delta`` per dimension."""
        return tuple(self.length / v for v in self.n)

    @property
    def min_spacing(self) -> float:
        """Smallest spacing; the ``delta`` used in ``nu = Delta/delta``."""
        return min(self.spacing)

    @property
    def total_points(self) -> int:
        """Total number of grid points."""
        nx, ny, nz = self.n
        return nx * ny * nz

    def coordinates(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cell-centered coordinate vectors ``(x, y, z)``."""
        return tuple(
            (np.arange(nv) + 0.5) * (self.length / nv) for nv in self.n
        )

    def mesh(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Broadcastable coordinate arrays for vectorized field evaluation."""
        x, y, z = self.coordinates()
        return x[:, None, None], y[None, :, None], z[None, None, :]


def allocate_field(shape: Sequence[int], dtype=np.float64) -> np.ndarray:
    """Allocate a zeroed field with a one-point halo around ``shape``."""
    nx, ny, nz = (int(v) for v in shape)
    return np.zeros((nx + 2 * HALO, ny + 2 * HALO, nz + 2 * HALO), dtype=dtype)


def gaussian_initial_condition(
    grid: Grid3D,
    sigma: float = 0.08,
    center: Sequence[float] | None = None,
    amplitude: float = 1.0,
) -> np.ndarray:
    """The paper's initial condition: a Gaussian wave at the cube center.

    Returns the interior values (no halo), shape ``grid.n``. ``sigma`` is
    expressed as a fraction of the edge length, small enough that periodic
    images are negligible at double precision for the defaults.
    """
    if center is None:
        center = (0.5 * grid.length,) * 3
    x, y, z = grid.mesh()
    L = grid.length

    def wrapped_sq(coord, c0):
        d = np.abs(coord - c0)
        d = np.minimum(d, L - d)  # minimum-image distance on the torus
        return d * d

    s2 = (sigma * L) ** 2
    r2 = wrapped_sq(x, center[0]) + wrapped_sq(y, center[1]) + wrapped_sq(z, center[2])
    return amplitude * np.exp(-r2 / (2.0 * s2))
