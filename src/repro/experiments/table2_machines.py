"""Table II: technical details of the tested computers."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.machines import HOPPER, JAGUARPF, LENS, YONA


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Table II from the machine catalog."""
    machines = (JAGUARPF, HOPPER, LENS, YONA)
    rows = [
        ["Compute nodes"] + [m.compute_nodes for m in machines],
        ["Memory per node (GB)"] + [m.node.memory_gb for m in machines],
        ["Opteron sockets per node"] + [m.node.sockets for m in machines],
        ["Cores per socket"] + [m.node.cores_per_socket for m in machines],
        ["Opteron clock (GHz)"] + [m.node.clock_ghz for m in machines],
        ["Interconnect"] + [m.interconnect.name for m in machines],
        ["MPI"] + [m.interconnect.mpi_name for m in machines],
        ["NVIDIA Tesla GPU"] + [m.gpu.name if m.gpu else "-" for m in machines],
        ["GPU memory (GB)"] + [m.gpu.memory_gb if m.gpu else "-" for m in machines],
    ]
    return ExperimentResult(
        exp_id="table2",
        title="Technical details of tested computers",
        paper_claim="Table II of the paper, transcribed into the machine catalog.",
        columns=["property"] + [m.name for m in machines],
        rows=rows,
    )
