"""Extension: the paper's §VI architecture outlook, quantified.

The conclusions make two forward-looking observations:

1. "a computer tuned for our test might have a smaller number of CPU cores
   per GPU, or conversely a larger number of GPUs" — we sweep Yona-like
   nodes with 1, 2, 3 and 4 GPUs per node;
2. "an architecture with faster, lower-latency CPU-GPU communication could
   have a performance profile significantly different" — we sweep the PCIe
   link speed and watch the §IV-F/G implementations close the gap to the
   hybrid.

Both sweeps run single-node so the interconnect does not confound the
node-architecture question.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import ExperimentResult
from repro.machines import YONA
from repro.perf.sweep import best_over_threads


def run(fast: bool = False) -> ExperimentResult:
    """Run both §VI sweeps."""
    rows = []
    series = {"gpus_per_node": {}, "pcie_gpu_bulk": {}, "pcie_gpu_streams": {},
              "pcie_hybrid": {}}

    gpu_counts = (1, 2) if fast else (1, 2, 3, 4)
    for g in gpu_counts:
        machine = replace(YONA, gpus_per_node=g)
        best = best_over_threads(machine, "hybrid_overlap", 12)
        series["gpus_per_node"][g] = best.gflops
        rows.append(["gpus/node", g, best.gflops,
                     f"thr={best.config.threads_per_task}, T={best.config.box_thickness}"])

    factors = (1, 4) if fast else (1, 2, 4, 8)
    for f in factors:
        gpu = replace(
            YONA.gpu,
            pcie_bandwidth_gbs=YONA.gpu.pcie_bandwidth_gbs * f,
            pcie_unpinned_gbs=YONA.gpu.pcie_unpinned_gbs * f,
            pcie_latency_us=YONA.gpu.pcie_latency_us / f,
        )
        machine = replace(YONA, gpu=gpu)
        for key, series_name in (
            ("gpu_bulk", "pcie_gpu_bulk"),
            ("gpu_streams", "pcie_gpu_streams"),
            ("hybrid_overlap", "pcie_hybrid"),
        ):
            best = best_over_threads(machine, key, 12)
            series[series_name][f] = best.gflops
            rows.append([f"pcie x{f}", key, best.gflops, ""])

    return ExperimentResult(
        exp_id="future",
        title="§VI outlook: more GPUs per node, faster CPU-GPU links (Yona, 1 node)",
        paper_claim=(
            "A machine tuned for this test might have more GPUs per node; a "
            "faster CPU-GPU link would change the profile significantly."
        ),
        columns=["sweep", "value", "best GF", "config"],
        rows=rows,
        series=series,
        notes=(
            "Faster PCIe lifts gpu_bulk/gpu_streams but they stay face-kernel "
            "bound; extra GPUs scale the hybrid until the CPU veneer runs out "
            "of cores to feed them."
        ),
    )
