"""Extension: the paper's §VI architecture outlook, quantified.

The conclusions make two forward-looking observations:

1. "a computer tuned for our test might have a smaller number of CPU cores
   per GPU, or conversely a larger number of GPUs" — we sweep Yona-like
   nodes with 1, 2, 3 and 4 GPUs per node;
2. "an architecture with faster, lower-latency CPU-GPU communication could
   have a performance profile significantly different" — we sweep the PCIe
   link speed and watch the §IV-F/G implementations close the gap to the
   hybrid.

Both sweeps run single-node so the interconnect does not confound the
node-architecture question.

A third sweep takes the outlook where 2011 could not: the paper's central
conclusion — restructure the code so computation hides communication — was
measured on interconnects that only progress messages inside MPI calls
(manual poll). We re-ask the question on machines whose NICs progress
autonomously (Slingshot-class hardware offload) or via a stolen-core
progress thread (EFA-class clouds): for each machine x progress model we
pit the overlapped implementation against its bulk-synchronous sibling,
sweeping boundary thickness where it applies, and record the *overlap
gain* (best overlapped GF / best bulk GF). Where the gain falls to ~1 the
paper's conclusion flips: the network hides the communication by itself,
and the restructuring buys nothing.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import ExperimentResult
from repro.machines import A100_SXM, EFA_CLOUD, MILAN_SS11, YONA
from repro.machines.spec import ProgressModel
from repro.perf.sweep import best_over_threads

#: Within 2% we call it parity: the restructuring cost (the paper's "almost
#: triples the code") is no longer paying for itself.
_FLIP_TOL = 1.02

#: machine -> (overlapped impl, bulk sibling, cores = 4 nodes' worth).
#: Multi-node on purpose: the progress model only matters for wire traffic.
_CROSSOVER = (
    (YONA, "hybrid_overlap", "hybrid_bulk", 48),
    (A100_SXM, "hybrid_overlap", "hybrid_bulk", 512),
    (MILAN_SS11, "nonblocking", "bulk", 512),
    (EFA_CLOUD, "nonblocking", "bulk", 192),
)


def _crossover_rows(fast: bool):
    """Overlap-vs-bulk gain per machine x progress model (x thickness)."""
    rows = []
    gains = {}
    # Fast mode keeps one machine from each regime: Yona and the A100 keep
    # overlap winning; EFA-Cloud's fat nodes show the flip.
    machines = (
        (_CROSSOVER[0], _CROSSOVER[1], _CROSSOVER[3]) if fast else _CROSSOVER
    )
    models = (
        (ProgressModel.MANUAL_POLL, ProgressModel.HARDWARE_OFFLOAD)
        if fast
        else tuple(ProgressModel)
    )
    for machine, overlap_key, bulk_key, cores in machines:
        for model in models:
            m = replace(
                machine, interconnect=replace(machine.interconnect, progress=model)
            )
            over = best_over_threads(m, overlap_key, cores)
            bulk = best_over_threads(m, bulk_key, cores)
            if over is None or bulk is None or bulk.gflops <= 0:
                continue
            gain = over.gflops / bulk.gflops
            gains[f"{machine.name}/{model.value}"] = gain
            verdict = "overlap wins" if gain > _FLIP_TOL else "FLIPS: bulk at parity"
            rows.append([
                f"{machine.name} {model.value}",
                f"{overlap_key} vs {bulk_key}",
                round(gain, 3),
                f"T={over.config.box_thickness}, thr={over.config.threads_per_task}"
                f" | {verdict}",
            ])
    return rows, gains


def run(fast: bool = False) -> ExperimentResult:
    """Run both §VI sweeps."""
    rows = []
    series = {"gpus_per_node": {}, "pcie_gpu_bulk": {}, "pcie_gpu_streams": {},
              "pcie_hybrid": {}}

    gpu_counts = (1, 2) if fast else (1, 2, 3, 4)
    for g in gpu_counts:
        machine = replace(YONA, gpus_per_node=g)
        best = best_over_threads(machine, "hybrid_overlap", 12)
        series["gpus_per_node"][g] = best.gflops
        rows.append(["gpus/node", g, best.gflops,
                     f"thr={best.config.threads_per_task}, T={best.config.box_thickness}"])

    factors = (1, 4) if fast else (1, 2, 4, 8)
    for f in factors:
        gpu = replace(
            YONA.gpu,
            pcie_bandwidth_gbs=YONA.gpu.pcie_bandwidth_gbs * f,
            pcie_unpinned_gbs=YONA.gpu.pcie_unpinned_gbs * f,
            pcie_latency_us=YONA.gpu.pcie_latency_us / f,
        )
        machine = replace(YONA, gpu=gpu)
        for key, series_name in (
            ("gpu_bulk", "pcie_gpu_bulk"),
            ("gpu_streams", "pcie_gpu_streams"),
            ("hybrid_overlap", "pcie_hybrid"),
        ):
            best = best_over_threads(machine, key, 12)
            series[series_name][f] = best.gflops
            rows.append([f"pcie x{f}", key, best.gflops, ""])

    cross_rows, gains = _crossover_rows(fast)
    rows.extend(cross_rows)
    series["overlap_gain"] = gains

    return ExperimentResult(
        exp_id="future",
        title="§VI outlook: more GPUs per node, faster CPU-GPU links (Yona, 1 node)",
        paper_claim=(
            "A machine tuned for this test might have more GPUs per node; a "
            "faster CPU-GPU link would change the profile significantly."
        ),
        columns=["sweep", "value", "best GF", "config"],
        rows=rows,
        series=series,
        notes=(
            "Faster PCIe lifts gpu_bulk/gpu_streams but they stay face-kernel "
            "bound; extra GPUs scale the hybrid until the CPU veneer runs out "
            "of cores to feed them. Crossover rows pit overlapped against "
            "bulk-synchronous per progress model: where the gain drops to ~1x "
            "(FLIPS), autonomous NIC progress hides the communication without "
            "restructuring — the paper's conclusion is a statement about "
            "manual-poll-era MPI, not about the algorithm."
        ),
    )
