"""Shared builder for the best-performance-vs-cores figures (3, 4, 9, 10)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.registry import get_implementation
from repro.experiments.common import ExperimentResult
from repro.machines.spec import MachineSpec
from repro.perf.sweep import best_over_threads

__all__ = ["scaling_experiment"]


def scaling_experiment(
    machine: MachineSpec,
    impl_keys: Sequence[str],
    exp_id: str,
    paper_claim: str,
    fast: bool = False,
    thicknesses: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Best GF of each implementation over the machine's core counts.

    Each point is the best over threads/task (and box thickness for hybrid
    implementations), exactly like the paper's "best performance of each
    implementation" figures.
    """
    core_counts = machine.figure_core_counts
    if fast:
        core_counts = core_counts[:: max(1, len(core_counts) // 3)]
        thicknesses = thicknesses or (1, 3, 8)
    series = {k: {} for k in impl_keys}
    for cores in core_counts:
        for key in impl_keys:
            impl = get_implementation(key)
            if not impl.uses_mpi and cores > machine.node.cores:
                continue  # single-task codes stop at one node
            res = best_over_threads(machine, key, cores, thicknesses=thicknesses)
            if res is not None:
                series[key][cores] = res.gflops
    rows = []
    for cores in core_counts:
        rows.append([cores] + [series[k].get(cores, "-") for k in impl_keys])
    return ExperimentResult(
        exp_id=exp_id,
        title=f"Best performance of each {machine.name} implementation (GF)",
        paper_claim=paper_claim,
        columns=["cores"] + list(impl_keys),
        rows=rows,
        series=series,
    )
