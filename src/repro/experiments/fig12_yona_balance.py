"""Fig. 12: Yona CPU-GPU overlap by threads/task and box thickness."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.balance import balance_experiment
from repro.machines import YONA


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 12."""
    return balance_experiment(
        YONA,
        "fig12",
        paper_claim=(
            "Best performance from few tasks per node, often just one; the "
            "best thickness is often just 1 — a veneer — showing the win is "
            "decoupling MPI from CPU-GPU communication, not load balancing."
        ),
        fast=fast,
    )
