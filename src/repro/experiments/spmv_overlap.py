"""Extension: SpMV workload — explicit comm overlap beyond the stencil.

The paper's §V-E argument is that overlap pays exactly when there is
communication to hide and computation to hide it under. The SpMV workload
(:mod:`repro.workloads.spmv`, after Schubert et al. and Choi et al.)
stresses that argument with an *irregular* halo: gather volume is set by
actual column coupling, not face area, and the non-local sweep is a small
slice of the work.

Three parts:

* **Scaling** (Fig. 3/9 harness reuse): best GF of each SpMV variant over
  the machine's core counts — CPU variants on JaguarPF, all three on the
  GPU machines (Yona, A100-SXM).
* **Overlap fractions** (§V-E analysis): hidden-communication fraction of
  each traced variant, with the advection ``hybrid_overlap`` at the same
  point as the crossover reference.
* **Progress-model axis** (A100-SXM): the SpMV GPU task mode under
  manual-poll, progress-thread and hardware-offload MPI progress.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from repro.core.config import RunConfig
from repro.core.runner import run as run_config
from repro.experiments.common import ExperimentResult
from repro.machines import A100_SXM, JAGUARPF, YONA, ProgressModel
from repro.machines.spec import MachineSpec
from repro.perf.sweep import best_over_threads

#: SpMV problem (band/extras/pseed at their defaults: band 48, extras 4).
PARAMS: Tuple[Tuple[str, int], ...] = (("rows", 1 << 20),)
FAST_PARAMS: Tuple[Tuple[str, int], ...] = (("rows", 1 << 17),)

#: The SpMV variants, in the §V-E presentation order.
CPU_IMPLS = ("bulk", "nonblocking")
ALL_IMPLS = ("bulk", "nonblocking", "hybrid_overlap")


def _with_progress(machine: MachineSpec, progress: ProgressModel) -> MachineSpec:
    return replace(
        machine, interconnect=replace(machine.interconnect, progress=progress)
    )


def _traced(
    machine: MachineSpec,
    impl: str,
    cores: int,
    threads: int,
    params,
    workload: str = "spmv",
):
    """One traced mirror run -> (gflops, overlap fraction)."""
    cfg = RunConfig(
        machine=machine,
        implementation=impl,
        cores=cores,
        threads_per_task=threads,
        steps=2,
        workload=workload,
        workload_params=params,
        trace=True,
    )
    result = run_config(cfg)
    return result.gflops, result.overlap.overlap_fraction


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate the SpMV overlap study."""
    params = FAST_PARAMS if fast else PARAMS
    rows = []
    series = {}

    # -- Part 1: best-over-threads scaling, the Fig. 3/9 harness ----------
    for machine, impls in (
        (JAGUARPF, CPU_IMPLS),
        (YONA, ALL_IMPLS),
        (A100_SXM, ALL_IMPLS),
    ):
        core_counts = machine.figure_core_counts
        if fast:
            core_counts = core_counts[:: max(1, len(core_counts) // 3)]
        per_impl = {k: {} for k in impls}
        for cores in core_counts:
            best = {}
            for key in impls:
                res = best_over_threads(
                    machine, key, cores,
                    workload="spmv", workload_params=params,
                )
                if res is not None:
                    per_impl[key][cores] = res.gflops
                    best[key] = res.gflops
            winner = max(best, key=lambda k: (best[k], k)) if best else "-"
            rows.append(
                [machine.name, cores]
                + [best.get(k, "-") for k in ALL_IMPLS]
                + [winner]
            )
        for key in impls:
            series[f"{machine.name} {key}"] = per_impl[key]

    # -- Part 2: SS V-E overlap fractions + advection crossover reference -
    overlap_points = (
        (YONA, 48 if not fast else 24, 6),
        (A100_SXM, 1024 if not fast else 256, 16),
    )
    for machine, cores, threads in overlap_points:
        fractions = {}
        for key in ALL_IMPLS:
            gf, frac = _traced(machine, key, cores, threads, params)
            fractions[key] = frac
            rows.append(
                [f"{machine.name} overlap@{cores}", key, gf, frac, "-", "-"]
            )
        adv_gf, adv_frac = _traced(
            machine, "hybrid_overlap", cores, threads, (), workload="advection"
        )
        rows.append(
            [f"{machine.name} overlap@{cores}", "advection hybrid_overlap",
             adv_gf, adv_frac, "-", "-"]
        )
        series[f"{machine.name} overlap fraction"] = dict(fractions)
        series[f"{machine.name} overlap fraction"]["advection"] = adv_frac

    # -- Part 3: A100-SXM progress-model axis ------------------------------
    cores, threads = (1024, 16) if not fast else (256, 16)
    progress_series = {}
    for model in ProgressModel:
        machine = _with_progress(A100_SXM, model)
        gf, frac = _traced(machine, "hybrid_overlap", cores, threads, params)
        progress_series[model.value] = gf
        rows.append(
            [f"A100-SXM progress@{cores}", model.value, gf, frac, "-", "-"]
        )
    series["A100-SXM hybrid_overlap by progress model"] = progress_series

    return ExperimentResult(
        exp_id="spmv_overlap",
        title="SpMV workload: explicit comm overlap beyond the stencil",
        paper_claim=(
            "No paper counterpart — extends the SS V-E overlap analysis to "
            "a sparse workload with an irregular, coupling-sized halo "
            "(Schubert et al., arXiv:1106.5908; GPU task mode after Choi "
            "et al., arXiv:2202.11819)."
        ),
        columns=["machine/part", "cores|variant", "bulk GF", "nonblocking GF",
                 "hybrid_overlap GF", "winner"],
        rows=rows,
        series=series,
        notes=(
            "Overlap rows report (GF, hidden-comm fraction) per variant; "
            "the GPU task mode hides the gather under the local-rows "
            "kernel, so its overlap fraction leads, the naive nonblocking "
            "variant trails, and vector mode hides nothing by design."
        ),
    )
