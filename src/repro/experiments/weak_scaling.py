"""Extension (not in the paper): a weak-scaling variant.

The paper argues climate runs are strong-scaling problems (§II). As a
future-work exploration, this experiment grows the domain with the core
count (fixed points per core) and reports parallel efficiency of the
bulk-synchronous and hybrid-overlap implementations on Yona.
"""

from __future__ import annotations

from repro.core.config import RunConfig
from repro.core.runner import run as run_config
from repro.experiments.common import ExperimentResult
from repro.machines import YONA


def _domain_for(cores: int, per_core: int = 105) -> tuple:
    """Cube-ish domain with ~per_core^3/12 points per core."""
    # Scale the reference 420^3-on-192-cores density.
    base = 420
    scale = (cores / 192) ** (1.0 / 3.0)
    n = max(48, int(round(base * scale / 12)) * 12)
    return (n, n, n)


def run(fast: bool = False) -> ExperimentResult:
    """Run the weak-scaling study."""
    core_counts = YONA.figure_core_counts
    if fast:
        core_counts = core_counts[::2]
    series = {"bulk": {}, "hybrid_overlap": {}}
    rows = []
    for cores in core_counts:
        domain = _domain_for(cores)
        row = [cores, f"{domain[0]}^3"]
        for key in ("bulk", "hybrid_overlap"):
            cfg = RunConfig(
                machine=YONA, implementation=key, cores=cores,
                threads_per_task=6, domain=domain,
                box_thickness=2,
            )
            gf = run_config(cfg).gflops
            series[key][cores] = gf
            row.append(gf)
        rows.append(row)
    return ExperimentResult(
        exp_id="weak",
        title="Weak scaling on Yona (extension; not in the paper)",
        paper_claim=(
            "No paper counterpart - the paper motivates strong scaling; this "
            "explores the alternative regime."
        ),
        columns=["cores", "domain", "bulk GF", "hybrid_overlap GF"],
        rows=rows,
        series=series,
    )
