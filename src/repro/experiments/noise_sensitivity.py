"""Noise sensitivity of the bulk-sync vs nonblocking crossover (Figs. 3-4).

The paper's headline nuance is that nonblocking overlap beats the
bulk-synchronous exchange only *below* a machine-dependent core count.
That crossover is a statement about mean behaviour on a real — noisy —
machine, so this experiment asks how robust it is: the JaguarPF scaling
duel of Fig. 3 is re-run under the machine's calibrated noise profile
scaled by a jitter factor (the x-axis), with each point replicated over
independently seeded Monte-Carlo replicas (:func:`repro.core.runner.
run_replicated`).

Factor 0 is the null spec, so the first block reproduces the noiseless
curves bit-identically. Growing jitter stretches exposed communication
more than compute, and progress stalls land precisely on the nonblocking
implementation's overlap window — so the crossover core count drifts
*down* as the machine gets noisier: overlap is least robust exactly where
the paper found it most profitable.

Everything is seeded from :data:`ROOT_SEED`; two regenerations produce
bit-identical tables and stats.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.machines import JAGUARPF
from repro.perf.sweep import best_over_threads
from repro.perturb.spec import NoiseSpec
from repro.stencil.coefficients import FLOPS_PER_POINT

__all__ = ["run", "ROOT_SEED", "IMPLS"]

#: Root seed of the whole experiment (replica seeds derive from it).
ROOT_SEED = 2011

#: The Fig. 3 duel the crossover claim is about.
IMPLS = ("bulk", "nonblocking")

#: Jitter multipliers applied to the machine's calibrated noise profile.
SCALES = (0.0, 0.5, 1.0, 2.0, 4.0)
FAST_SCALES = (0.0, 1.0, 4.0)

#: Monte-Carlo replicas per (scale, cores, impl) point.
REPLICAS = 8
FAST_REPLICAS = 3


def _mean_gflops(result) -> float:
    """Ensemble-mean GF of a replicated result (analytic flops / mean s)."""
    cfg = result.config
    work = cfg.total_points * FLOPS_PER_POINT * cfg.steps
    return work / result.stats["mean"] / 1e9


def _crossover(
    core_counts: Sequence[int], bulk: Dict[int, float], nb: Dict[int, float]
) -> Optional[int]:
    """Largest core count at which nonblocking still beats bulk-sync."""
    best = None
    for cores in core_counts:
        if cores in bulk and cores in nb and nb[cores] >= bulk[cores]:
            best = cores
    return best


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate the noise-sensitivity study."""
    from repro.core.runner import run_replicated

    machine = JAGUARPF
    core_counts = machine.figure_core_counts
    scales = FAST_SCALES if fast else SCALES
    replicas = FAST_REPLICAS if fast else REPLICAS
    if fast:
        core_counts = core_counts[:: max(1, len(core_counts) // 3)]
    base = NoiseSpec.for_machine(machine.name)

    # The paper's tuning protocol picks each implementation's best
    # threads/task noiselessly; the perturbation study then holds that
    # tuned configuration fixed across jitter levels (perturbing the
    # tuning itself would conflate two effects).
    tuned = {}
    for key in IMPLS:
        for cores in core_counts:
            res = best_over_threads(machine, key, cores)
            if res is not None:
                tuned[key, cores] = res.config

    series: Dict[str, Dict[int, float]] = {}
    rows: List[List[object]] = []
    crossovers: List[str] = []
    for scale in scales:
        spec = base.scaled(scale)
        means: Dict[str, Dict[int, float]] = {k: {} for k in IMPLS}
        stds: Dict[str, Dict[int, float]] = {k: {} for k in IMPLS}
        for key in IMPLS:
            for cores in core_counts:
                cfg = tuned.get((key, cores))
                if cfg is None:
                    continue
                rep = run_replicated(
                    cfg.with_(seed=ROOT_SEED, noise=spec), replicas
                )
                means[key][cores] = _mean_gflops(rep)
                stds[key][cores] = rep.stats["std"]
            series[f"{key} x{scale:g}"] = means[key]
        for cores in core_counts:
            row: List[object] = [f"x{scale:g}", cores]
            for key in IMPLS:
                row.append(means[key].get(cores, "-"))
            if all(cores in means[k] for k in IMPLS):
                winner = max(
                    sorted(IMPLS), key=lambda k: means[k][cores]
                )
                row.append(winner)
            rows.append(row)
        cross = _crossover(core_counts, means["bulk"], means["nonblocking"])
        crossovers.append(
            f"x{scale:g}: {cross if cross is not None else 'none'}"
        )

    return ExperimentResult(
        exp_id="noise",
        title=(
            f"{machine.name} bulk vs nonblocking under scaled machine noise "
            f"({replicas} replicas, seed {ROOT_SEED})"
        ),
        paper_claim=(
            "Nonblocking overlap outperforms bulk-synchronous only below a "
            "machine-dependent core count (Fig. 3); the crossover is a "
            "mean-behaviour claim whose robustness under system noise the "
            "paper does not explore."
        ),
        columns=["noise", "cores"] + [f"{k} GF" for k in IMPLS] + ["winner"],
        rows=rows,
        series=series,
        notes=(
            "last core count where nonblocking >= bulk, per jitter scale: "
            + "; ".join(crossovers)
        ),
    )
