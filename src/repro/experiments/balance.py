"""Shared builder for the CPU-GPU load-balance figures (11, 12)."""

from __future__ import annotations

from typing import Sequence

from repro.core.config import RunConfig
from repro.core.runner import run as run_config
from repro.experiments.common import ExperimentResult
from repro.machines.spec import MachineSpec
from repro.perf.sweep import valid_thread_counts

__all__ = ["balance_experiment", "DEFAULT_THICKNESSES"]

DEFAULT_THICKNESSES: Sequence[int] = (1, 2, 3, 4, 6, 8, 10, 12, 16)


def balance_experiment(
    machine: MachineSpec,
    exp_id: str,
    paper_claim: str,
    fast: bool = False,
) -> ExperimentResult:
    """Hybrid-overlap GF for (threads/task x box thickness) combinations.

    Like the paper's Figs. 11/12, only combinations that are best for at
    least one core count are reported as series; the rows carry the full
    sweep's best per core count.
    """
    core_counts = machine.figure_core_counts
    thicknesses = (1, 3, 8) if fast else DEFAULT_THICKNESSES
    if fast:
        core_counts = core_counts[:: max(1, len(core_counts) // 3)]
    all_points = {}  # (threads, T) -> {cores: gf}
    for cores in core_counts:
        for t in valid_thread_counts(machine, cores):
            for thick in thicknesses:
                try:
                    cfg = RunConfig(
                        machine=machine, implementation="hybrid_overlap",
                        cores=cores, threads_per_task=t, box_thickness=thick,
                    )
                except ValueError:
                    continue
                try:
                    gf = run_config(cfg).gflops
                except ValueError:
                    continue
                all_points.setdefault((t, thick), {})[cores] = gf
    # Combinations that win at least one core count (the paper's selection).
    winners = set()
    best_rows = []
    for cores in core_counts:
        best_combo, best_gf = None, float("-inf")
        for combo, pts in all_points.items():
            if cores in pts and pts[cores] > best_gf:
                best_combo, best_gf = combo, pts[cores]
        if best_combo is not None:
            winners.add(best_combo)
            tasks_per_node = machine.node.cores // best_combo[0]
            best_rows.append(
                [cores, best_combo[0], tasks_per_node, best_combo[1], best_gf]
            )
    series = {
        f"thr={t},T={thick}": pts
        for (t, thick), pts in sorted(all_points.items())
        if (t, thick) in winners
    }
    return ExperimentResult(
        exp_id=exp_id,
        title=f"{machine.name} CPU-GPU overlap by threads/task and box thickness",
        paper_claim=paper_claim,
        columns=["cores", "best threads", "tasks/node", "best thickness", "GF"],
        rows=best_rows,
        series=series,
    )
