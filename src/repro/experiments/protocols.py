"""Extension: serialized 6-message vs direct 26-message halo exchange.

The paper adopts the serialized exchange as a "well-established strategy"
(§IV-B) without quantifying the alternative. This experiment races the two
protocols across JaguarPF and Hopper II core counts (best over threads per
point, as usual) and reports per-step message counts and volumes.

The trade-off: the direct protocol posts everything at once — no dependent
phases, all wires concurrent — but pays 26 latencies and per-message CPU
overheads, and its edge/corner messages are tiny (latency-bound). The
serialized protocol sends 6 fat messages but in three dependent rounds.
"""

from __future__ import annotations

from repro.core.config import RunConfig
from repro.core.runner import run as run_config
from repro.experiments.common import ExperimentResult
from repro.machines import HOPPER, JAGUARPF
from repro.perf.sweep import best_over_threads


def run(fast: bool = False) -> ExperimentResult:
    """Race the two exchange protocols."""
    rows = []
    series = {}
    for machine in (JAGUARPF, HOPPER):
        core_counts = machine.figure_core_counts
        if fast:
            core_counts = core_counts[:: max(1, len(core_counts) // 3)]
        s6 = {}
        s26 = {}
        for cores in core_counts:
            b6 = best_over_threads(machine, "bulk", cores)
            b26 = best_over_threads(machine, "bulk_direct", cores)
            s6[cores] = b6.gflops
            s26[cores] = b26.gflops
            rows.append(
                [machine.name, cores, b6.gflops, b26.gflops,
                 "direct" if b26.gflops > b6.gflops else "serialized"]
            )
        series[f"{machine.name} serialized-6"] = s6
        series[f"{machine.name} direct-26"] = s26

    # Message accounting at a representative configuration.
    cfg6 = RunConfig(machine=JAGUARPF, implementation="bulk", cores=3072,
                     threads_per_task=6, steps=1)
    cfg26 = cfg6.with_(implementation="bulk_direct")
    r6, r26 = run_config(cfg6), run_config(cfg26)
    rows.append(["messages/step @3072", "-", r6.comm_stats["messages_sent"],
                 r26.comm_stats["messages_sent"], "-"])
    rows.append(["bytes/step @3072", "-", r6.comm_stats["bytes_sent"],
                 r26.comm_stats["bytes_sent"], "-"])

    return ExperimentResult(
        exp_id="protocols",
        title="Halo-exchange protocols: serialized 6 vs direct 26 messages",
        paper_claim=(
            "No paper counterpart — the paper adopts the 6-message "
            "serialized protocol as well-established (§IV-B)."
        ),
        columns=["machine", "cores", "serialized-6 GF", "direct-26 GF", "winner"],
        rows=rows,
        series=series,
        notes=(
            "The direct protocol trades 26 latencies for the removal of the "
            "three dependent exchange phases; it also moves slightly fewer "
            "bytes (no halo rims in face planes)."
        ),
    )
