"""§V-E's single-node Yona comparison: the calibration anchor set.

GPU-resident 86 GF; moving the boundary exchange to the CPUs cuts it to
24 GF (bulk) or 35 GF (streams); the CPU-GPU overlap implementation brings
it back to 82 GF — evidence that the hybrid's win is the decoupling of MPI
communication from CPU-GPU communication.
"""

from __future__ import annotations

from repro.core.config import RunConfig
from repro.core.runner import run as run_config
from repro.experiments.common import ExperimentResult
from repro.machines import YONA
from repro.perf.sweep import best_over_threads

PAPER_GF = {
    "gpu_resident": 86.0,
    "gpu_bulk": 24.0,
    "gpu_streams": 35.0,
    "hybrid_overlap": 82.0,
}


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate the §V-E single-node numbers."""
    cores = YONA.node.cores
    measured = {}
    measured["gpu_resident"] = run_config(
        RunConfig(machine=YONA, implementation="gpu_resident", cores=cores,
                  threads_per_task=cores)
    ).gflops
    for key in ("gpu_bulk", "gpu_streams", "hybrid_overlap"):
        res = best_over_threads(YONA, key, cores)
        measured[key] = res.gflops
    rows = [
        [key, PAPER_GF[key], measured[key], measured[key] / PAPER_GF[key]]
        for key in PAPER_GF
    ]
    return ExperimentResult(
        exp_id="sec5e",
        title="Single-node Yona: the cost of CPU-side boundary exchange",
        paper_claim="86 / 24 / 35 / 82 GF (resident / bulk / streams / hybrid overlap).",
        columns=["implementation", "paper GF", "measured GF", "ratio"],
        rows=rows,
        series={"measured": {k: v for k, v in measured.items()},
                "paper": dict(PAPER_GF)},
    )
