"""One module per table and figure of the paper's evaluation.

Every experiment exposes ``run(fast=False) -> ExperimentResult``; the
result carries the regenerated rows/series plus the paper's corresponding
claim, and ``to_text()`` prints the same kind of table the paper plots.
``fast=True`` trims the sweep (fewer core counts / thread options) for the
test suite; the benchmark harness runs the full versions.

Use :data:`EXPERIMENTS` to enumerate them or
:func:`run_experiment` to run one by id (e.g. ``"fig9"``).
"""

from repro.experiments.common import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
    run_experiments,
)

__all__ = ["EXPERIMENTS", "ExperimentResult", "run_experiment", "run_experiments"]
