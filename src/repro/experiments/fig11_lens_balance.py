"""Fig. 11: Lens CPU-GPU overlap by threads/task and box thickness."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.balance import balance_experiment
from repro.machines import LENS


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 11."""
    return balance_experiment(
        LENS,
        "fig11",
        paper_claim=(
            "Best performance comes from few tasks per node, and the best "
            "box thickness decreases with increasing core count."
        ),
        fast=fast,
    )
