"""Fig. 3: best performance of each JaguarPF implementation vs cores."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.scaling import scaling_experiment
from repro.machines import JAGUARPF

#: JaguarPF has no GPUs, so only the CPU implementations appear.
IMPLS = ("single", "bulk", "nonblocking", "thread_overlap")


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 3."""
    res = scaling_experiment(
        JAGUARPF,
        IMPLS,
        "fig3",
        paper_claim=(
            "Nonblocking overlap slightly outperforms bulk-synchronous below "
            "~4000 cores; at 6000 and above bulk-synchronous has a "
            "significant advantage; the OpenMP-thread overlap consistently "
            "lags."
        ),
        fast=fast,
    )
    return res
