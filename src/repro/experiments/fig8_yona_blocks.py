"""Fig. 8: GPU-resident performance vs block size on Yona (C2050)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.blocks import blocks_experiment
from repro.machines import YONA


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 8."""
    return blocks_experiment(
        YONA,
        "fig8",
        paper_claim=(
            "Best performance again at x = 32, with a slightly smaller "
            "y = 8; the best GPU-resident rate on Yona is 86 GF."
        ),
        fast=fast,
    )
