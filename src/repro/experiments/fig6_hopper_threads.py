"""Fig. 6: Hopper II bulk-synchronous performance by threads per task."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.threads import threads_experiment
from repro.machines import HOPPER


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 6."""
    return threads_experiment(
        HOPPER,
        "fig6",
        paper_claim=(
            "Results vary more than on JaguarPF, but larger thread counts "
            "are best at the highest core counts; only 24 threads per task "
            "is never optimal."
        ),
        fast=fast,
    )
