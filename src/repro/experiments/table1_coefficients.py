"""Table I: the 27 Lax-Wendroff stencil coefficients.

Regenerates the table for a reference velocity at the maximum stable nu and
checks the literal transcription against the tensor-product construction
(they must agree to roundoff).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.stencil.coefficients import (
    max_stable_nu,
    table1_coefficients,
    tensor_product_coefficients,
)

#: Reference velocity; all components distinct and nonzero so every
#: coefficient is exercised.
VELOCITY = (1.0, 0.9, 0.8)


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Table I."""
    nu = max_stable_nu(VELOCITY)
    lit = table1_coefficients(VELOCITY, nu)
    ten = tensor_product_coefficients(VELOCITY, nu)
    rows = []
    for (i, j, k), a in ten.items():
        rows.append([f"a_{{{i:+d}{j:+d}{k:+d}}}", a, lit[(i, j, k)] - a])
    max_diff = float(np.abs(lit.a - ten.a).max())
    return ExperimentResult(
        exp_id="table1",
        title=f"Stencil coefficients a_ijk at c={VELOCITY}, nu={nu:g}",
        paper_claim=(
            "Table I lists the 27 coefficients; they sum to 1 and collapse "
            "to a pure shift at unit CFL."
        ),
        columns=["coefficient", "value", "literal-minus-tensor"],
        rows=rows,
        series={"consistency_sum": {0: ten.consistency_sum}},
        notes=f"max |literal - tensor| = {max_diff:.2e}; sum = {ten.consistency_sum:.15f}",
    )
