"""Fig. 7: GPU-resident performance vs block size on Lens (C1060)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.blocks import blocks_experiment
from repro.machines import LENS


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 7."""
    return blocks_experiment(
        LENS,
        "fig7",
        paper_claim=(
            "x = 32 (the warp size) tends to be best; the top performance "
            "comes from a 32x11 block."
        ),
        fast=fast,
    )
