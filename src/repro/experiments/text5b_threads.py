"""§V-B's unplotted claims: threads-per-task behaviour on Lens and Yona.

The paper omits the Lens/Yona analogues of Figs. 5/6 "to save space" but
states their content precisely:

* Lens (four 4-core sockets): "the best number for our test is either 4, 8,
  or 16, with no clear correlation with total core count";
* Yona (two 6-core sockets): "the best number of threads per task is 1, 2,
  3, or 6 ... a general increase in the best number of threads per task as
  the total core count increases."

This experiment regenerates both sweeps so those statements are testable.

Reproduction status: **partial**. Yona's qualitative behaviour reproduces
(best threads/task in {1, 2, 3, 6}, increasing with core count, never the
12-thread maximum). On Lens the model prefers smaller thread counts than
the paper reports (1-4 rather than 4-16): at Lens's small core counts the
simulated step is compute-dominated, and the first-order model has no
mechanism that punishes 16 unbound MPI tasks per node the way 2009-era
OpenMPI on a 4-socket Barcelona node evidently did (process migration,
unbound memory placement). We flag this rather than fit a dedicated fudge
factor; the sweep's *spread* between thread choices is small (a few
percent), consistent with the paper's "no clear correlation with total
core count".
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.threads import threads_experiment
from repro.machines import LENS, YONA


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate the Lens and Yona bulk-synchronous threads sweeps."""
    lens = threads_experiment(
        LENS, "text5b-lens",
        paper_claim="Lens: best threads/task is 4, 8 or 16, no clear trend.",
        fast=fast,
    )
    yona = threads_experiment(
        YONA, "text5b-yona",
        paper_claim=(
            "Yona: best is 1, 2, 3 or 6, generally increasing with core count."
        ),
        fast=fast,
    )
    rows = []
    series = {}
    for tag, res in (("Lens", lens), ("Yona", yona)):
        for name, pts in res.series.items():
            series[f"{tag} {name}"] = pts
        core_counts = sorted(next(iter(res.series.values())))
        for cores in core_counts:
            rows.append([tag, cores, res.best_series_at(cores)])
    return ExperimentResult(
        exp_id="text5b",
        title="Threads per MPI task on Lens and Yona (§V-B, unplotted)",
        paper_claim=(
            "Lens best in {4, 8, 16} with no clear core-count correlation; "
            "Yona best in {1, 2, 3, 6}, generally increasing with cores."
        ),
        columns=["machine", "cores", "best threads/task"],
        rows=rows,
        series=series,
    )
