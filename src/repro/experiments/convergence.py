"""Numerical-accuracy experiment (paper §II's order claims).

The paper states the scheme is O(Delta^3) per step, O(Delta^2) at fixed
simulated time, and stable at the maximum nu. This experiment regenerates
the refinement study and the stability boundary — the numerical-analysis
half of the reproduction, complementing the performance figures.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.stencil.coefficients import amplification_factor, max_stable_nu
from repro.stencil.verification import convergence_order, run_reference

VELOCITY = (1.0, 0.5, 0.25)


def _max_amplification(nu_fraction: float, n_theta: int = 9) -> float:
    nu = nu_fraction * max_stable_nu(VELOCITY)
    thetas = np.linspace(0.0, np.pi, n_theta)
    return max(
        abs(amplification_factor(VELOCITY, nu, (tx, ty, tz)))
        for tx in thetas
        for ty in thetas
        for tz in thetas
    )


def run(fast: bool = False) -> ExperimentResult:
    """Refinement study + stability boundary."""
    resolutions = (16, 32) if fast else (16, 32, 64)
    rows = []
    errs = {}
    for n in resolutions:
        # Fixed simulated time; steps scale with resolution.
        _, norms = run_reference(n, VELOCITY, steps=max(1, n // 4),
                                 nu_fraction=0.9, sigma=0.15)
        errs[n] = norms["l2"]
        rows.append(["refinement", n, norms["l2"], norms["linf"]])
    order = convergence_order(VELOCITY, resolutions=resolutions,
                              nu_fraction=0.9, sigma=0.15)
    rows.append(["fitted order", "-", order, "-"])

    stab = {}
    for frac in (0.5, 0.9, 1.0, 1.1, 1.25):
        g = _max_amplification(frac)
        stab[frac] = g
        rows.append(["max |g| at nu fraction", frac, g,
                     "stable" if g <= 1 + 1e-9 else "UNSTABLE"])

    return ExperimentResult(
        exp_id="convergence",
        title="Order of accuracy and stability boundary (paper §II)",
        paper_claim=(
            "O(Delta^2) for a fixed simulated time; numerically stable for "
            "nu up to the CFL limit (and run at that maximum)."
        ),
        columns=["study", "parameter", "value", "extra"],
        rows=rows,
        series={"l2_error": {n: e for n, e in errs.items()},
                "amplification": stab},
        notes=f"fitted convergence order {order:.2f} (2.0 asymptotic)",
    )
