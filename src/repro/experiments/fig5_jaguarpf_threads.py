"""Fig. 5: JaguarPF bulk-synchronous performance by threads per task."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.threads import threads_experiment
from repro.machines import JAGUARPF


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 5."""
    return threads_experiment(
        JAGUARPF,
        "fig5",
        paper_claim=(
            "Each of 1, 2, 3, 6 and 12 threads per task is best for at least "
            "one core count; the best number generally increases with the "
            "total number of cores."
        ),
        fast=fast,
    )
