"""Fig. 10: best performance of each Yona implementation vs cores."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.scaling import scaling_experiment
from repro.machines import YONA

#: All parallel implementations; the GPU ones use one GPU per 12 cores.
IMPLS = (
    "single",
    "bulk",
    "nonblocking",
    "thread_overlap",
    "gpu_bulk",
    "gpu_streams",
    "hybrid_bulk",
    "hybrid_overlap",
)


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 10."""
    return scaling_experiment(
        YONA,
        IMPLS,
        "fig10",
        paper_claim=(
            "The GPUs are a larger fraction of Yona's power than Lens's; the "
            "best CPU-GPU implementation exceeds four times the best "
            "CPU-only implementation."
        ),
        fast=fast,
    )
