"""Fig. 9: best performance of each Lens implementation vs cores."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.scaling import scaling_experiment
from repro.machines import LENS

#: All parallel implementations; the GPU ones use one GPU per 16 cores.
IMPLS = (
    "single",
    "bulk",
    "nonblocking",
    "thread_overlap",
    "gpu_bulk",
    "gpu_streams",
    "hybrid_bulk",
    "hybrid_overlap",
)


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 9."""
    return scaling_experiment(
        LENS,
        IMPLS,
        "fig9",
        paper_claim=(
            "CPU-only implementations benefit little from overlap; GPU "
            "implementations benefit greatly, particularly full overlap; the "
            "best CPU-GPU performance exceeds the sum of the best CPU-only "
            "plus the best GPU-computation performance."
        ),
        fast=fast,
    )
