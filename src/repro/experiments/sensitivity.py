"""Calibration-sensitivity analysis (reproduction robustness).

The shape findings should not hinge on any one fitted constant. This
experiment perturbs each key calibrated rate by ±20 % and re-evaluates the
paper's headline claims:

* **ladder** — single-node Yona ordering bulk < streams < hybrid <= resident
  with hybrid within 85 % of resident (§V-E);
* **4x** — hybrid > 4x best CPU-only on the full Yona machine (§V-D,
  evaluated at a 3.5x threshold: the claim direction, with margin for the
  deliberately perturbed constant);
* **crossover** — nonblocking >= bulk at low JaguarPF core counts and
  bulk > nonblocking at the top (Fig. 3).

A claim that fails under a small perturbation marks a constant the
reproduction genuinely depends on — exactly what a reader of DESIGN.md §6
should know.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from repro.core.config import RunConfig
from repro.core.runner import run as run_config
from repro.experiments.common import ExperimentResult
from repro.machines import JAGUARPF, YONA
from repro.machines.spec import MachineSpec

#: (label, machine key, component, field) for each perturbed constant.
PERTURBED = [
    ("gpu stencil rate", "yona", "gpu", "stencil_gflops_best"),
    ("face-kernel rate", "yona", "gpu", "face_kernel_gflops"),
    ("thin-slab efficiency", "yona", "gpu", "thin_slab_efficiency"),
    ("unpinned PCIe", "yona", "gpu", "pcie_unpinned_gbs"),
    ("pinned PCIe", "yona", "gpu", "pcie_bandwidth_gbs"),
    ("CPU flop efficiency", "yona", "node", "stencil_flop_efficiency"),
    ("NIC bandwidth", "jaguar", "interconnect", "bandwidth_gbs"),
    ("MPI overlap fraction", "jaguar", "interconnect", "overlap_fraction"),
    ("boundary-loop efficiency", "jaguar", "node", "boundary_loop_efficiency"),
]


def _perturb(machine: MachineSpec, component: str, field: str,
             factor: float) -> MachineSpec:
    """A machine with one nested calibrated field scaled by ``factor``."""
    part = getattr(machine, component)
    new_part = replace(part, **{field: getattr(part, field) * factor})
    return replace(machine, **{component: new_part})


def _best(machine, impl, cores, threads_list, thicknesses=(0,)):
    out = 0.0
    for t in threads_list:
        if cores % t or machine.node.cores % t:
            continue
        for T in thicknesses:
            kw = dict(box_thickness=T) if T else {}
            try:
                cfg = RunConfig(machine=machine, implementation=impl,
                                cores=cores, threads_per_task=t, **kw)
                out = max(out, run_config(cfg).gflops)
            except ValueError:
                continue
    return out


def _claim_ladder(yona: MachineSpec) -> bool:
    resident = run_config(
        RunConfig(machine=yona, implementation="gpu_resident",
                  cores=12, threads_per_task=12)
    ).gflops
    bulk = _best(yona, "gpu_bulk", 12, (6, 12))
    streams = _best(yona, "gpu_streams", 12, (6, 12))
    hybrid = _best(yona, "hybrid_overlap", 12, (6, 12), (1, 2, 3))
    return bulk < streams < hybrid <= resident * 1.001 and hybrid > 0.8 * resident


def _claim_4x(yona: MachineSpec) -> bool:
    hybrid = _best(yona, "hybrid_overlap", 192, (6, 12), (1, 2))
    cpu = _best(yona, "bulk", 192, (2, 6, 12))
    return hybrid > 3.5 * cpu


def _claim_crossover(jaguar: MachineSpec) -> bool:
    low_nb = _best(jaguar, "nonblocking", 768, (3, 6))
    low_b = _best(jaguar, "bulk", 768, (3, 6))
    hi_nb = _best(jaguar, "nonblocking", 12288, (3, 6, 12))
    hi_b = _best(jaguar, "bulk", 12288, (3, 6, 12))
    return low_nb >= 0.99 * low_b and hi_b > hi_nb


CLAIMS = (("ladder", _claim_ladder, "yona"),
          ("4x", _claim_4x, "yona"),
          ("crossover", _claim_crossover, "jaguar"))


def run_experiment_impl(factors: Tuple[float, ...]) -> Tuple[list, Dict]:
    rows = []
    robustness: Dict[str, int] = {name: 0 for name, _, _ in CLAIMS}
    total_checks: Dict[str, int] = {name: 0 for name, _, _ in CLAIMS}
    for label, mkey, component, field in PERTURBED:
        for factor in factors:
            machines = {"yona": YONA, "jaguar": JAGUARPF}
            machines[mkey] = _perturb(machines[mkey], component, field, factor)
            outcomes = []
            for name, fn, which in CLAIMS:
                ok = fn(machines[which])
                outcomes.append("ok" if ok else "FAILS")
                total_checks[name] += 1
                robustness[name] += int(ok)
            rows.append([label, f"x{factor:g}"] + outcomes)
    return rows, {
        name: robustness[name] / total_checks[name] for name in robustness
    }


def run(fast: bool = False) -> ExperimentResult:
    """Perturb each constant and re-test the headline claims."""
    factors = (0.8, 1.2)
    rows, score = run_experiment_impl(factors)
    return ExperimentResult(
        exp_id="sensitivity",
        title="Calibration sensitivity of the headline claims (+/-20%)",
        paper_claim=(
            "No paper counterpart — robustness analysis of this "
            "reproduction's calibration (DESIGN.md §6)."
        ),
        columns=["perturbed constant", "factor"] + [c[0] for c in CLAIMS],
        rows=rows,
        series={"robustness": score},
        notes="; ".join(f"{k}: {v:.0%} of perturbations keep the claim"
                        for k, v in score.items()),
    )
