"""Shared builder for the GPU block-size figures (7, 8)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.machines.spec import MachineSpec
from repro.simgpu.blockmodel import (
    X_CANDIDATES,
    best_block,
    kernel_rate_gflops,
)

__all__ = ["blocks_experiment"]


def blocks_experiment(
    machine: MachineSpec,
    exp_id: str,
    paper_claim: str,
    fast: bool = False,
) -> ExperimentResult:
    """GPU-resident GF over the paper's 2-D block sweep (§V-C)."""
    gpu = machine.gpu
    series = {}
    rows = []
    y_step = 2 if fast else 1
    for bx in X_CANDIDATES:
        pts = {}
        for by in range(1, gpu.max_threads_per_block // bx + 1, y_step):
            try:
                pts[by] = kernel_rate_gflops(gpu, (bx, by))
            except ValueError:
                continue
        series[f"x={bx}"] = pts
        for by, gf in pts.items():
            rows.append([bx, by, gf])
    bb = best_block(gpu)
    return ExperimentResult(
        exp_id=exp_id,
        title=f"GPU-resident performance vs block size on {machine.name} ({gpu.name})",
        paper_claim=paper_claim,
        columns=["block x", "block y", "GF"],
        rows=rows,
        series=series,
        notes=f"best block: {bb[0]}x{bb[1]} at {kernel_rate_gflops(gpu, bb):.1f} GF",
    )
