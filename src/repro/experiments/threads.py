"""Shared builder for the threads-per-task figures (5, 6)."""

from __future__ import annotations

from repro.core.config import RunConfig
from repro.core.runner import run as run_config
from repro.experiments.common import ExperimentResult
from repro.machines.spec import MachineSpec
from repro.perf.sweep import valid_thread_counts

__all__ = ["threads_experiment"]


def threads_experiment(
    machine: MachineSpec,
    exp_id: str,
    paper_claim: str,
    fast: bool = False,
    impl_key: str = "bulk",
) -> ExperimentResult:
    """Bulk-synchronous GF vs cores, one series per threads/task (§V-B)."""
    core_counts = machine.figure_core_counts
    if fast:
        core_counts = core_counts[:: max(1, len(core_counts) // 3)]
    series = {t: {} for t in machine.thread_options}
    for cores in core_counts:
        for t in valid_thread_counts(machine, cores):
            cfg = RunConfig(
                machine=machine, implementation=impl_key, cores=cores,
                threads_per_task=t,
            )
            series[t][cores] = run_config(cfg).gflops
    rows = []
    for cores in core_counts:
        rows.append(
            [cores]
            + [series[t].get(cores, "-") for t in machine.thread_options]
        )
    return ExperimentResult(
        exp_id=exp_id,
        title=f"{machine.name} bulk-synchronous GF by OpenMP threads per MPI task",
        paper_claim=paper_claim,
        columns=["cores"] + [f"{t} thr" for t in machine.thread_options],
        rows=rows,
        series={f"{t} thr": pts for t, pts in series.items()},
    )
