"""Fig. 2: lines of code per implementation."""

from __future__ import annotations

from repro.core.registry import IMPLEMENTATIONS, PAPER_KEYS
from repro.experiments.common import ExperimentResult
from repro.loc import fortran_loc, implementation_loc


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 2 (paper Fortran counts + this repo's Python counts)."""
    fortran = fortran_loc()
    python = implementation_loc()
    base_f = fortran["single"]
    base_p = python["single"]
    rows = []
    series_f, series_p = {}, {}
    for key in PAPER_KEYS:
        impl = IMPLEMENTATIONS[key]
        rows.append(
            [
                key,
                impl.section,
                fortran[key],
                f"{fortran[key] / base_f:.2f}x",
                python[key],
                f"{python[key] / base_p:.2f}x",
            ]
        )
        series_f[key] = {0: float(fortran[key])}
        series_p[key] = {0: float(python[key])}
    return ExperimentResult(
        exp_id="fig2",
        title="Lines of code per implementation (minus blanks and comments)",
        paper_claim=(
            "MPI adds 57-73% more lines; CUDA Fortran alone adds 6%; GPU+MPI "
            "almost triples; the full-overlap hybrid is exactly 4x the "
            "single-task code (860 vs 215)."
        ),
        columns=["implementation", "section", "fortran LoC", "vs single",
                 "python LoC (this repo)", "vs single"],
        rows=rows,
        series={"fortran": {k: float(v) for k, v in fortran.items()},
                "python": {k: float(v) for k, v in python.items()}},
    )
