"""Fig. 4: best performance of each Hopper II implementation vs cores."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.scaling import scaling_experiment
from repro.machines import HOPPER

IMPLS = ("single", "bulk", "nonblocking", "thread_overlap")


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 4."""
    return scaling_experiment(
        HOPPER,
        IMPLS,
        "fig4",
        paper_claim=(
            "Hopper II scales better than JaguarPF (out to 49152 cores); the "
            "nonblocking-overlap advantage persists to a core-count limit an "
            "order of magnitude higher than JaguarPF's; the OpenMP-thread "
            "overlap consistently lags."
        ),
        fast=fast,
    )
