"""Shared experiment plumbing: result container and registry."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]


@dataclass
class ExperimentResult:
    """A regenerated table or figure."""

    exp_id: str  # e.g. "fig9"
    title: str
    paper_claim: str  # what the paper reports, quoted/paraphrased
    columns: List[str]
    rows: List[List[Any]]
    #: series name -> {x: y} for figure-style results
    series: Dict[str, Dict[Any, float]] = field(default_factory=dict)
    notes: str = ""

    def to_text(self) -> str:
        """Plain-text table of the regenerated data."""
        widths = [
            max(len(str(c)), *(len(_fmt(r[i])) for r in self.rows)) if self.rows else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        lines = [f"== {self.exp_id}: {self.title}"]
        lines.append("  paper: " + self.paper_claim)
        header = "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for r in self.rows:
            lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(r, widths)))
        if self.notes:
            lines.append("note: " + self.notes)
        return "\n".join(lines)

    def best_series_at(self, x: Any) -> str:
        """Name of the highest series at abscissa ``x``."""
        best_name, best_val = None, float("-inf")
        for name, pts in self.series.items():
            if x in pts and pts[x] > best_val:
                best_name, best_val = name, pts[x]
        if best_name is None:
            raise KeyError(f"no series has a point at {x!r}")
        return best_name


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


#: experiment id -> (module, description)
EXPERIMENTS: Dict[str, str] = {
    "table1": "repro.experiments.table1_coefficients",
    "table2": "repro.experiments.table2_machines",
    "fig2": "repro.experiments.fig2_loc",
    "fig3": "repro.experiments.fig3_jaguarpf",
    "fig4": "repro.experiments.fig4_hopper",
    "fig5": "repro.experiments.fig5_jaguarpf_threads",
    "fig6": "repro.experiments.fig6_hopper_threads",
    "fig7": "repro.experiments.fig7_lens_blocks",
    "fig8": "repro.experiments.fig8_yona_blocks",
    "fig9": "repro.experiments.fig9_lens_scaling",
    "fig10": "repro.experiments.fig10_yona_scaling",
    "fig11": "repro.experiments.fig11_lens_balance",
    "fig12": "repro.experiments.fig12_yona_balance",
    "sec5e": "repro.experiments.sec5e_single_node",
    "weak": "repro.experiments.weak_scaling",
    "future": "repro.experiments.future_machines",
    "convergence": "repro.experiments.convergence",
    "sensitivity": "repro.experiments.sensitivity",
    "text5b": "repro.experiments.text5b_threads",
    "protocols": "repro.experiments.protocols",
}


def run_experiment(exp_id: str, fast: bool = False) -> ExperimentResult:
    """Run one experiment by id."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}")
    mod = importlib.import_module(EXPERIMENTS[exp_id])
    return mod.run(fast=fast)
