"""Shared experiment plumbing: result container, registry, parallel driver."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "run_experiments"]


@dataclass
class ExperimentResult:
    """A regenerated table or figure."""

    exp_id: str  # e.g. "fig9"
    title: str
    paper_claim: str  # what the paper reports, quoted/paraphrased
    columns: List[str]
    rows: List[List[Any]]
    #: series name -> {x: y} for figure-style results
    series: Dict[str, Dict[Any, float]] = field(default_factory=dict)
    notes: str = ""

    def to_text(self) -> str:
        """Plain-text table of the regenerated data.

        Tolerates ragged rows: rows shorter than the header are padded
        with blank cells, and cells beyond the last named column get a
        blank header of their own width (previously a short row raised
        ``IndexError`` while computing column widths).
        """
        headers = [str(c) for c in self.columns]
        lengths = [len(headers)] + [len(r) for r in self.rows]
        ncols = max(lengths) if lengths else 0
        headers += [""] * (ncols - len(headers))
        cells = [
            [_fmt(v) for v in r] + [""] * (ncols - len(r)) for r in self.rows
        ]
        widths = [
            max([len(headers[i])] + [len(row[i]) for row in cells])
            for i in range(ncols)
        ]
        lines = [f"== {self.exp_id}: {self.title}"]
        lines.append("  paper: " + self.paper_claim)
        header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        if self.notes:
            lines.append("note: " + self.notes)
        return "\n".join(lines)

    def best_series_at(self, x: Any) -> str:
        """Name of the highest series at abscissa ``x``.

        Exact-value ties break deterministically to the lexicographically
        smallest series name (previously: whichever series happened to be
        inserted first, which depended on sweep construction order).
        """
        candidates = [
            (pts[x], name) for name, pts in self.series.items() if x in pts
        ]
        if not candidates:
            raise KeyError(f"no series has a point at {x!r}")
        best_val = max(v for v, _name in candidates)
        return min(name for v, name in candidates if v == best_val)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


#: experiment id -> (module, description)
EXPERIMENTS: Dict[str, str] = {
    "table1": "repro.experiments.table1_coefficients",
    "table2": "repro.experiments.table2_machines",
    "fig2": "repro.experiments.fig2_loc",
    "fig3": "repro.experiments.fig3_jaguarpf",
    "fig4": "repro.experiments.fig4_hopper",
    "fig5": "repro.experiments.fig5_jaguarpf_threads",
    "fig6": "repro.experiments.fig6_hopper_threads",
    "fig7": "repro.experiments.fig7_lens_blocks",
    "fig8": "repro.experiments.fig8_yona_blocks",
    "fig9": "repro.experiments.fig9_lens_scaling",
    "fig10": "repro.experiments.fig10_yona_scaling",
    "fig11": "repro.experiments.fig11_lens_balance",
    "fig12": "repro.experiments.fig12_yona_balance",
    "sec5e": "repro.experiments.sec5e_single_node",
    "weak": "repro.experiments.weak_scaling",
    "future": "repro.experiments.future_machines",
    "convergence": "repro.experiments.convergence",
    "sensitivity": "repro.experiments.sensitivity",
    "text5b": "repro.experiments.text5b_threads",
    "protocols": "repro.experiments.protocols",
    "noise": "repro.experiments.noise_sensitivity",
    "spmv_overlap": "repro.experiments.spmv_overlap",
}


def run_experiment(exp_id: str, fast: bool = False) -> ExperimentResult:
    """Run one experiment by id."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}")
    mod = importlib.import_module(EXPERIMENTS[exp_id])
    return mod.run(fast=fast)


def run_experiments(
    exp_ids: Sequence[str],
    fast: bool = False,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    journal: Optional[str] = None,
) -> List[ExperimentResult]:
    """Regenerate several experiments, optionally in parallel.

    With ``jobs > 1`` the experiments fan out over a thread pool in this
    process while every simulated config is executed by the shared task
    scheduler (:mod:`repro.sched`) and its ``jobs`` worker processes.
    Concurrent experiments *coalesce* on the scheduler: a config that
    several figures share (e.g. the best Lens configs of fig9/fig11/sec5e)
    is simulated exactly once per session, and every result is
    bit-identical to the ``jobs=1`` serial path.  Results are returned in
    the order of ``exp_ids`` regardless of completion order.  Unknown ids
    raise :class:`KeyError` before any work is dispatched.

    ``cache_dir`` installs the content-addressed run cache
    (:mod:`repro.cache`) for the regeneration — in this process and in
    every scheduler worker; configs already simulated under the current
    model version are replayed from disk, bit-identically. ``None``
    leaves the current cache configuration (usually: no cache) untouched.

    ``journal`` attaches a resumable result journal to the scheduler this
    call creates (a ``.jsonl`` path for a flat journal, a directory for a
    key-prefix-sharded one — see :func:`repro.sched.open_journal`);
    records are group-committed and a killed regeneration restarted with
    the same journal replays finished configs.  Ignored when a scheduler
    is already installed (its journal, if any, stays in charge).

    An already-installed process-wide scheduler
    (:func:`repro.sched.configure`) is reused as-is; otherwise one is
    created for the duration of this call.
    """
    exp_ids = list(exp_ids)
    for exp_id in exp_ids:
        if exp_id not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    from repro import cache as run_cache

    if cache_dir is not None:
        run_cache.configure(cache_dir)
    if journal is None and (jobs == 1 or len(exp_ids) <= 1):
        return [run_experiment(e, fast=fast) for e in exp_ids]

    from concurrent.futures import ThreadPoolExecutor

    from repro.sched import active_scheduler, scheduled

    def _fan_out() -> List[ExperimentResult]:
        with ThreadPoolExecutor(
            max_workers=min(jobs, len(exp_ids)), thread_name_prefix="exp"
        ) as pool:
            return list(pool.map(lambda e: run_experiment(e, fast=fast), exp_ids))

    if active_scheduler() is not None:
        return _fan_out()
    with scheduled(jobs, cache_dir=cache_dir, journal=journal):
        return _fan_out()
