"""Execution tracing: interval records and ASCII timelines.

A :class:`Tracer` collects ``(lane, name, start, end)`` intervals from the
host cost helpers, the GPU's kernel/copy bodies, and the MPI wait paths, so
a run can show *what actually overlapped what* — the paper's entire subject
— as a timeline::

    host       |==compute==|--pack--|           |==boundary==|
    gpu-kernel    |=============interior=============|
    gpu-copy      |--h2d--|              |--d2h--|

Tracing is off by default (it allocates per-operation records); enable it
with ``RunConfig(trace=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced interval."""

    lane: str  # e.g. "host", "gpu-kernel", "gpu-copy", "mpi"
    name: str  # e.g. "compute", "interior", "h2d"
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Interval length in simulated seconds."""
        return self.end - self.start


class Tracer:
    """Collects intervals and renders them as an ASCII timeline."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    def record(self, lane: str, name: str, start: float, end: float) -> None:
        """Add one interval (end >= start required)."""
        if end < start:
            raise ValueError(f"interval ends before it starts: {start} > {end}")
        self.events.append(TraceEvent(lane, name, start, end))

    # -- analysis --------------------------------------------------------------
    def lanes(self) -> List[str]:
        """Distinct lanes in first-appearance order."""
        seen: Dict[str, None] = {}
        for ev in self.events:
            seen.setdefault(ev.lane, None)
        return list(seen)

    def span(self) -> Tuple[float, float]:
        """(earliest start, latest end) over all events."""
        if not self.events:
            return (0.0, 0.0)
        return (
            min(ev.start for ev in self.events),
            max(ev.end for ev in self.events),
        )

    def busy_time(self, lane: str) -> float:
        """Union length of a lane's intervals (overlaps merged)."""
        ivals = sorted(
            (ev.start, ev.end) for ev in self.events if ev.lane == lane
        )
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for s, e in ivals:
            if cur_start is None or s > cur_end:
                if cur_start is not None:
                    total += cur_end - cur_start
                cur_start, cur_end = s, e
            else:
                cur_end = max(cur_end, e)
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def overlap_time(self, lane_a: str, lane_b: str) -> float:
        """Time during which both lanes are simultaneously busy.

        This is the quantity the paper's implementations try to maximize
        (e.g. GPU-kernel time overlapped with host MPI time).
        """

        def merged(lane):
            ivals = sorted((ev.start, ev.end) for ev in self.events if ev.lane == lane)
            out = []
            for s, e in ivals:
                if out and s <= out[-1][1]:
                    out[-1] = (out[-1][0], max(out[-1][1], e))
                else:
                    out.append((s, e))
            return out

        a, b = merged(lane_a), merged(lane_b)
        total = 0.0
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if hi > lo:
                total += hi - lo
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return total

    # -- rendering --------------------------------------------------------------
    def timeline_text(
        self,
        width: int = 100,
        window: Optional[Tuple[float, float]] = None,
    ) -> str:
        """ASCII Gantt chart: one row per lane, time left to right."""
        if not self.events:
            return "(no trace events)"
        t0, t1 = window if window is not None else self.span()
        if t1 <= t0:
            return "(empty window)"
        scale = width / (t1 - t0)
        lane_width = max(len(l) for l in self.lanes()) + 1
        lines = [
            " " * lane_width
            + f"t = [{t0 * 1e3:.3f} ms .. {t1 * 1e3:.3f} ms], {width} cols"
        ]
        for lane in self.lanes():
            row = [" "] * width
            for ev in self.events:
                if ev.lane != lane or ev.end <= t0 or ev.start >= t1:
                    continue
                a = max(0, int((ev.start - t0) * scale))
                b = min(width, max(a + 1, int((ev.end - t0) * scale)))
                label = ev.name[: b - a]
                for k in range(a, b):
                    off = k - a
                    row[k] = label[off] if off < len(label) else "="
            lines.append(lane.ljust(lane_width) + "".join(row))
        return "\n".join(lines)
