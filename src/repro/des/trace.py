"""Execution tracing (compatibility shim).

The tracer grew into a first-class observability subsystem and moved to
:mod:`repro.obs.tracer` (structured lanes keyed by ``(group, resource)``,
counters, Chrome-trace export, overlap metrics, invariant checking). This
module re-exports the core types so historical imports keep working::

    from repro.des.trace import TraceEvent, Tracer

See :mod:`repro.obs` for the full subsystem and docs/MODEL.md §9 for the
schema and metric definitions.
"""

from __future__ import annotations

from repro.obs.tracer import CounterSample, TraceEvent, Tracer

__all__ = ["TraceEvent", "Tracer", "CounterSample"]
