"""Core event loop: events, timeouts, processes, and condition events.

The engine is deterministic: events scheduled for the same simulated time
fire in scheduling order (FIFO), which makes simulation results exactly
reproducible run-to-run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double-trigger, bad yield...)."""


# Event lifecycle states.
_PENDING = 0  # created, not yet triggered
_TRIGGERED = 1  # value decided, callbacks scheduled to run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* by :meth:`succeed` or :meth:`fail`; at that point
    its value (or exception) is frozen and its callbacks are scheduled to run
    at the current simulated time.
    """

    __slots__ = ("env", "callbacks", "_state", "_ok", "_value")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._state = _PENDING
        self._ok = True
        self._value: Any = None

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event's outcome has been decided."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception for failed events)."""
        if self._state == _PENDING:
            raise SimulationError("event value read before it was triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._state = _TRIGGERED
        self._ok = True
        self._value = value
        self.env._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = _TRIGGERED
        self._ok = False
        self._value = exception
        self.env._enqueue(self)
        return self

    # -- engine internals ---------------------------------------------------
    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.env.now:g}>"


class Timeout(Event):
    """An event that succeeds ``delay`` simulated seconds after creation."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self._state = _TRIGGERED
        self._value = value
        env._enqueue(self, delay)


class Process(Event):
    """A running activity driven by a generator.

    The generator yields :class:`Event` instances; the process suspends until
    each yielded event is processed and resumes with the event's value (or
    has the exception thrown in, for failed events). The process — itself an
    event — succeeds with the generator's return value, so processes can wait
    on each other.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current time via an immediately-triggered event.
        bootstrap = Event(env)
        bootstrap._state = _TRIGGERED
        bootstrap.callbacks.append(self._resume)
        env._enqueue(bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # A crashed process fails its own event so waiters see the error;
            # with no waiters attached, Environment.run re-raises instead of
            # letting the crash vanish silently.
            has_waiters = bool(self.callbacks)
            self.fail(exc)
            if not has_waiters:
                self.env._record_crash(self, exc)
            return
        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, expected Event"
            )
            self.fail(err)
            self.env._record_crash(self, err)
            return
        if target.env is not self.env:
            err = SimulationError("process yielded an event from a different Environment")
            self.fail(err)
            self.env._record_crash(self, err)
            return
        self._waiting_on = target
        if target._state == _PROCESSED:
            # Already fully processed: resume on a fresh immediate event that
            # carries the same outcome.
            relay = Event(self.env)
            relay._state = _TRIGGERED
            relay._ok = target._ok
            relay._value = target._value
            relay.callbacks.append(self._resume)
            self.env._enqueue(relay)
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composition over a fixed set of events."""

    __slots__ = ("_events", "_pending_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different Environments")
        self._pending_count = 0
        for ev in self._events:
            if ev._state == _PROCESSED:
                self._observe(ev)
            else:
                self._pending_count += 1
                ev.callbacks.append(self._observe)
        self._check_immediate()

    def _check_immediate(self) -> None:
        raise NotImplementedError

    def _observe(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every constituent event has succeeded.

    Value is the list of constituent values, in constructor order. Fails as
    soon as any constituent fails.
    """

    __slots__ = ("_remaining",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self._remaining = 0  # set before super() since _observe may fire
        events = list(events)
        self._remaining = len(events)
        super().__init__(env, events)

    def _check_immediate(self) -> None:
        if self._remaining == 0 and self._state == _PENDING:
            self.succeed([ev._value for ev in self._events])

    def _observe(self, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(_Condition):
    """Succeeds with the value of the first constituent event to succeed.

    Fails only if *all* constituents fail (with the last failure).
    """

    __slots__ = ("_failures",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        self._failures = 0
        super().__init__(env, events)

    def _check_immediate(self) -> None:
        pass  # handled via _observe on already-processed events

    def _observe(self, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if ev._ok:
            self.succeed(ev._value)
        else:
            self._failures += 1
            if self._failures == len(self._events):
                self.fail(ev._value)


class Environment:
    """Simulation clock, event queue, and process factory."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = 0  # FIFO tie-break for same-time events
        self._crashed: list[tuple[Process, BaseException]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a process driving ``generator``; returns its Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that succeeds when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that succeeds when the first of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._counter, event))
        self._counter += 1

    def _record_crash(self, process: Process, exc: BaseException) -> None:
        self._crashed.append((process, exc))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        event._run_callbacks()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a ``float`` — run until simulated time reaches it;
        * an :class:`Event` — run until that event is processed, returning
          its value (raising its exception if it failed).

        If a process crashes and nothing was waiting on it, the first such
        crash is re-raised here so errors are never silently swallowed.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError("until is in the past")

        while self._queue:
            if self._queue[0][0] > stop_time:
                self._now = stop_time
                break
            self.step()
            if self._crashed:
                proc, exc = self._crashed[0]
                if stop_event is None or not stop_event.triggered:
                    raise exc
            if stop_event is not None and stop_event.processed:
                if not stop_event.ok:
                    raise stop_event.value
                return stop_event.value

        if stop_event is not None and not stop_event.processed:
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired "
                "(deadlock: some process is waiting on an event nobody triggers)"
            )
        if self._crashed:
            raise self._crashed[0][1]
        return None
