"""Core event loop: events, timeouts, processes, and condition events.

The engine is deterministic: events scheduled for the same simulated time
fire in scheduling order (FIFO), which makes simulation results exactly
reproducible run-to-run.

Scheduling fast paths (see docs/MODEL.md, "engine scheduling fast paths")
--------------------------------------------------------------------------
The experiment sweeps pump millions of events through this loop, so the
hot path avoids both allocation and ``heapq`` churn wherever the ordering
contract allows:

* **Ready deque.** Zero-delay scheduling (``succeed``/``fail``, process
  bootstraps, resume-after-processed) lands in a plain FIFO deque instead
  of the time heap. Because simulated time never decreases and the global
  tie-break counter is monotonic, the deque is always sorted by
  ``(time, counter)``; the run loop merges it with the heap head by
  comparing those keys, so the observable order is *bit-identical* to a
  single heap while same-time bursts cost O(1) per event instead of
  O(log n).
* **Callback slots.** Internal machinery (bandwidth wakeups, wire
  completions, process bootstrap/resume) schedules a bare
  ``(fn, arg)`` slot via :meth:`Environment.schedule` /
  :meth:`Environment.schedule_now` — no :class:`Event` object, no
  callback list, no state machine. Slots share the counter sequence with
  events, so FIFO semantics are preserved exactly.
* **No relay events.** A process yielding an already-*processed* event
  resumes via a slot carrying ``(ok, value)`` instead of allocating a
  fresh relay :class:`Event`.
* **Zero-delay timeouts** skip the heap entirely and ride the ready
  deque (same-key ordering as before).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double-trigger, bad yield...)."""


# Event lifecycle states.
_PENDING = 0  # created, not yet triggered
_TRIGGERED = 1  # value decided, callbacks scheduled to run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* by :meth:`succeed` or :meth:`fail`; at that point
    its value (or exception) is frozen and its callbacks are scheduled to run
    at the current simulated time.
    """

    __slots__ = ("env", "callbacks", "_state", "_ok", "_value")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._state = _PENDING
        self._ok = True
        self._value: Any = None

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event's outcome has been decided."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception for failed events)."""
        if self._state == _PENDING:
            raise SimulationError("event value read before it was triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._state = _TRIGGERED
        self._ok = True
        self._value = value
        env = self.env
        env._ready.append((env._now, env._counter, self))
        env._counter += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = _TRIGGERED
        self._ok = False
        self._value = exception
        env = self.env
        env._ready.append((env._now, env._counter, self))
        env._counter += 1
        return self

    # -- engine internals ---------------------------------------------------
    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.env.now:g}>"


class Timeout(Event):
    """An event that succeeds ``delay`` simulated seconds after creation.

    Zero-delay timeouts take the ready-deque fast path (no heap traffic);
    positive delays go on the time heap. Either way the FIFO tie-break is
    the shared scheduling counter, so ordering is identical to a single
    queue.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self._state = _TRIGGERED
        self._value = value
        env._enqueue(self, delay)


#: Bootstrap resume payload shared by every process start (no per-process
#: allocation).
_BOOT = (True, None)


class Process(Event):
    """A running activity driven by a generator.

    The generator yields :class:`Event` instances; the process suspends until
    each yielded event is processed and resumes with the event's value (or
    has the exception thrown in, for failed events). The process — itself an
    event — succeeds with the generator's return value, so processes can wait
    on each other.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current time via a bare resume slot (fast path;
        # the seed engine allocated a bootstrap Event here).
        env.schedule_now(self._resume_with, _BOOT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def _resume(self, trigger: Event) -> None:
        self._resume_core(trigger._ok, trigger._value)

    def _resume_with(self, okval) -> None:
        """Slot-callback resume carrying a pre-decided ``(ok, value)``."""
        self._resume_core(okval[0], okval[1])

    def _resume_core(self, ok: bool, value: Any) -> None:
        self._waiting_on = None
        try:
            if ok:
                target = self._generator.send(value)
            else:
                target = self._generator.throw(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # A crashed process fails its own event so waiters see the error;
            # with no waiters attached, Environment.run re-raises instead of
            # letting the crash vanish silently.
            has_waiters = bool(self.callbacks)
            self.fail(exc)
            if not has_waiters:
                self.env._record_crash(self, exc)
            return
        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, expected Event"
            )
            self.fail(err)
            self.env._record_crash(self, err)
            return
        if target.env is not self.env:
            err = SimulationError("process yielded an event from a different Environment")
            self.fail(err)
            self.env._record_crash(self, err)
            return
        self._waiting_on = target
        if target._state == _PROCESSED:
            # Already fully processed: resume via a bare slot carrying the
            # same outcome (the seed engine allocated a relay Event here).
            self.env.schedule_now(self._resume_with, (target._ok, target._value))
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composition over a fixed set of events."""

    __slots__ = ("_events", "_pending_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different Environments")
        self._pending_count = 0
        for ev in self._events:
            if ev._state == _PROCESSED:
                self._observe(ev)
            else:
                self._pending_count += 1
                ev.callbacks.append(self._observe)
        self._check_immediate()

    def _check_immediate(self) -> None:
        raise NotImplementedError

    def _observe(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every constituent event has succeeded.

    Value is the list of constituent values, in constructor order. Fails as
    soon as any constituent fails.
    """

    __slots__ = ("_remaining",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self._remaining = 0  # set before super() since _observe may fire
        events = list(events)
        self._remaining = len(events)
        super().__init__(env, events)

    def _check_immediate(self) -> None:
        if self._remaining == 0 and self._state == _PENDING:
            self.succeed([ev._value for ev in self._events])

    def _observe(self, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(_Condition):
    """Succeeds with the value of the first constituent event to succeed.

    Fails only if *all* constituents fail (with the last failure).
    """

    __slots__ = ("_failures",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        self._failures = 0
        super().__init__(env, events)

    def _check_immediate(self) -> None:
        pass  # handled via _observe on already-processed events

    def _observe(self, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if ev._ok:
            self.succeed(ev._value)
        else:
            self._failures += 1
            if self._failures == len(self._events):
                self.fail(ev._value)


class Environment:
    """Simulation clock, event queue, and process factory.

    Internally two structures hold scheduled work, merged on the shared
    ``(time, counter)`` key so the observable order equals a single FIFO
    heap:

    * ``_queue`` — a heap of future entries (positive-delay timeouts and
      callback slots);
    * ``_ready`` — a FIFO deque of entries due "now" (zero-delay); it is
      sorted by construction because time and counter are both monotonic.

    Entries are ``(time, counter, event)`` triples or
    ``(time, counter, fn, arg)`` callback slots. The counter is unique, so
    heap/deque comparisons never reach the third element.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple] = []
        self._ready: deque[tuple] = deque()
        self._counter = 0  # FIFO tie-break for same-time entries
        self._crashed: list[tuple[Process, BaseException]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a process driving ``generator``; returns its Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that succeeds when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that succeeds when the first of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event``'s callbacks to run ``delay`` seconds from now."""
        if delay:
            heapq.heappush(self._queue, (self._now + delay, self._counter, event))
        else:
            self._ready.append((self._now, self._counter, event))
        self._counter += 1

    def schedule(self, delay: float, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Slot-based scheduling: run ``fn(arg)`` ``delay`` seconds from now.

        This is the engine's allocation-free alternative to spawning a
        process around a :class:`Timeout`: no Event, no generator, no
        callback list — just a heap (or ready-deque) entry. Slots share the
        FIFO counter with events, so ordering against same-time events is
        exactly what an equivalently scheduled event would see.
        """
        if delay < 0:
            raise ValueError(f"negative schedule delay: {delay!r}")
        if delay:
            heapq.heappush(self._queue, (self._now + delay, self._counter, fn, arg))
        else:
            self._ready.append((self._now, self._counter, fn, arg))
        self._counter += 1

    def schedule_now(self, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Slot-based scheduling at the current time (ready-deque fast path)."""
        self._ready.append((self._now, self._counter, fn, arg))
        self._counter += 1

    def _record_crash(self, process: Process, exc: BaseException) -> None:
        self._crashed.append((process, exc))

    # -- queue inspection -------------------------------------------------------
    def _head_key(self) -> Optional[tuple]:
        """(time, counter) of the next entry across both queues, or None."""
        ready, queue = self._ready, self._queue
        if ready:
            if queue:
                qh, rh = queue[0], ready[0]
                if qh[0] < rh[0] or (qh[0] == rh[0] and qh[1] < rh[1]):
                    return (qh[0], qh[1])
            return (ready[0][0], ready[0][1])
        if queue:
            return (queue[0][0], queue[0][1])
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        key = self._head_key()
        return key[0] if key is not None else float("inf")

    def _pop(self) -> tuple:
        """Remove and return the next entry in (time, counter) order."""
        ready, queue = self._ready, self._queue
        if ready:
            # The deque is sorted; take the heap entry only when it strictly
            # precedes the deque head (counter is the unique tie-break).
            if queue:
                qh, rh = queue[0], ready[0]
                if qh[0] < rh[0] or (qh[0] == rh[0] and qh[1] < rh[1]):
                    return heapq.heappop(queue)
            return ready.popleft()
        return heapq.heappop(queue)

    def step(self) -> None:
        """Process exactly one entry (event callbacks or a callback slot)."""
        if not self._ready and not self._queue:
            raise SimulationError("step() on an empty event queue")
        entry = self._pop()
        self._now = entry[0]
        if len(entry) == 3:
            entry[2]._run_callbacks()
        else:
            entry[2](entry[3])

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a ``float`` — run until simulated time reaches it;
        * an :class:`Event` — run until that event is processed, returning
          its value (raising its exception if it failed).

        If a process crashes and nothing was waiting on it, the first such
        crash is re-raised here so errors are never silently swallowed.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError("until is in the past")

        # Hot loop: locals for the queues, merged pops inline, and the
        # ready deque drained in batches between heap consultations.
        ready = self._ready
        queue = self._queue
        heappop = heapq.heappop
        crashed = self._crashed
        while ready or queue:
            if ready:
                if queue:
                    qh, rh = queue[0], ready[0]
                    if qh[0] < rh[0] or (qh[0] == rh[0] and qh[1] < rh[1]):
                        if qh[0] > stop_time:
                            self._now = stop_time
                            break
                        entry = heappop(queue)
                    else:
                        if rh[0] > stop_time:
                            self._now = stop_time
                            break
                        entry = ready.popleft()
                else:
                    if ready[0][0] > stop_time:
                        self._now = stop_time
                        break
                    entry = ready.popleft()
            else:
                if queue[0][0] > stop_time:
                    self._now = stop_time
                    break
                entry = heappop(queue)
            self._now = entry[0]
            if len(entry) == 3:
                entry[2]._run_callbacks()
            else:
                entry[2](entry[3])
            if crashed:
                if stop_event is None or not stop_event.triggered:
                    raise crashed[0][1]
            if stop_event is not None and stop_event._state == _PROCESSED:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value

        if stop_event is not None and not stop_event.processed:
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired "
                "(deadlock: some process is waiting on an event nobody triggers)"
            )
        if self._crashed:
            raise self._crashed[0][1]
        return None
