"""Core event loop: events, timeouts, processes, and condition events.

The engine is deterministic: events scheduled for the same simulated time
fire in scheduling order (FIFO), which makes simulation results exactly
reproducible run-to-run.

The flat event core (see docs/MODEL.md §12)
--------------------------------------------------------------------------
The experiment sweeps pump millions of events through this loop, so the
hot path is built around flat slot storage instead of per-entry objects:

* **Time-bucket cohorts.** All entries due at one simulated time live in a
  single flat list of ``(kind, payload)`` slot *pairs* (structure-of-arrays
  layout: even indices hold the callback or a kind sentinel, odd indices
  the companion payload). The time heap holds each distinct pending time
  exactly *once*; the run loop pops a time, then drains that cohort start
  to finish with no further heap traffic. Scheduling into an existing
  bucket is a dict hit plus two list appends — no tuple, no heap churn.
* **Allocation-free steady state.** Exhausted cohort lists are recycled
  through a small pool, so steady-state scheduling allocates no tuples and
  no per-entry objects: an entry is two slot assignments. (The only
  allocation on a miss is the float produced by ``now + delay``, which
  becomes the bucket key; entries landing in an existing bucket allocate
  nothing that outlives the call.)
* **FIFO without counters.** Within a bucket, appends happen in scheduling
  order, and across buckets time strictly orders execution — so the global
  ``(time, counter)`` FIFO contract of the previous engine holds with no
  per-entry counter at all. ``docs/MODEL.md`` §12 has the equivalence
  argument; ``tests/des/test_flat_core.py`` checks it against a reference
  ``(time, counter)`` heap under hypothesis-generated workloads.
* **Tombstone cancellation.** :meth:`Environment.schedule_cancellable`
  parks the callback in a preallocated slot pool (parallel ``fn``/``arg``
  arrays plus an integer freelist) and returns an ``int`` handle;
  :meth:`Environment.cancel` nulls the slot, and the drain loop skips the
  dead pair without executing anything. Cancelling is two array writes —
  the heap and the bucket are never touched (the Fellow-Simcraft-Ship
  ``Engine.cancel`` idiom). :class:`~repro.des.resources.SharedBandwidth`
  wakeups ride this instead of generation-counter invalidation.
* **Evaluated time base.** Keys are float64 seconds by default — exactly
  the ``now + delay`` arithmetic of every previous engine, which is what
  keeps all 20 experiments bit-identical to the pre-refactor dump oracle.
  Passing ``quantum`` (a power of two) switches the clock to integer ticks
  for workloads whose delays are exactly representable; non-representable
  delays raise rather than silently skew. See docs/MODEL.md §12 for why
  the machine models pin float64.
* **Callback slots / no relay events.** As before, internal machinery
  (bandwidth wakeups, wire completions, process bootstrap/resume)
  schedules a bare ``(fn, arg)`` pair via :meth:`Environment.schedule` /
  :meth:`Environment.schedule_now` — no :class:`Event`, no callback list —
  and a process yielding an already-*processed* event resumes through a
  slot instead of a relay Event.
"""

from __future__ import annotations

import heapq
from heapq import heappush as _heappush
from types import GeneratorType as _GeneratorType
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double-trigger, bad yield...)."""


# Event lifecycle states.
_PENDING = 0  # created, not yet triggered
_TRIGGERED = 1  # value decided, callbacks scheduled to run
_PROCESSED = 2  # callbacks have run

# Cohort slot-kind sentinels (private identities; user callables can never
# collide with them). A slot pair whose even element is one of these is an
# Event firing / cancellable-pool reference; anything else is a bare
# ``fn(arg)`` callback slot.
_EVENT = object()
_CANCELLABLE = object()

#: Exhausted cohort lists kept for reuse (bounds idle memory).
_POOL_MAX = 64

_EVENT_NEW = None  # bound to Event.__new__ below (Event not yet defined)


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* by :meth:`succeed` or :meth:`fail`; at that point
    its value (or exception) is frozen and its callbacks are scheduled to run
    at the current simulated time.
    """

    __slots__ = ("env", "callbacks", "_state", "_ok", "_value")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._state = _PENDING
        self._ok = True
        self._value: Any = None

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event's outcome has been decided."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception for failed events)."""
        if self._state == _PENDING:
            raise SimulationError("event value read before it was triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._state = _TRIGGERED
        self._ok = True
        self._value = value
        env = self.env
        cur = env._cur
        if cur is not None:
            cur.append(_EVENT)
            cur.append(self)
        else:
            env._insert(env._now, _EVENT, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = _TRIGGERED
        self._ok = False
        self._value = exception
        env = self.env
        cur = env._cur
        if cur is not None:
            cur.append(_EVENT)
            cur.append(self)
        else:
            env._insert(env._now, _EVENT, self)
        return self

    # -- engine internals ---------------------------------------------------
    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.env.now:g}>"


_EVENT_NEW = Event.__new__


class Timeout(Event):
    """An event that succeeds ``delay`` simulated seconds after creation.

    The constructor inlines the Event field initialisation and the enqueue
    (one bucket insert) because experiment programs create one of these per
    timed cost charge — it is the single most allocated object in a run.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        self.env = env
        self.callbacks = []
        self._state = _TRIGGERED
        self._ok = True
        self._value = value
        if delay > 0:  # common case first; bucket insert inlined
            if env._scale is None:
                t = env._now + delay
            else:
                t = env._now + env._ticks(delay)
        elif delay == 0:
            cur = env._cur
            if cur is not None:
                cur.append(_EVENT)
                cur.append(self)
                return
            t = env._now
        else:
            raise ValueError(f"negative timeout delay: {delay!r}")
        buckets = env._buckets
        try:
            bucket = buckets[t]
        except KeyError:
            pool = env._pool
            bucket = pool.pop() if pool else []
            buckets[t] = bucket
            _heappush(env._times, t)
        bucket.append(_EVENT)
        bucket.append(self)


_TIMEOUT_NEW = Timeout.__new__


class Process(Event):
    """A running activity driven by a generator.

    The generator yields :class:`Event` instances; the process suspends until
    each yielded event is processed and resumes with the event's value (or
    has the exception thrown in, for failed events). The process — itself an
    event — succeeds with the generator's return value, so processes can wait
    on each other.
    """

    __slots__ = ("_generator", "_send", "_name", "_resume_cb", "_resume_with_cb")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if type(generator) is not _GeneratorType and (
            not hasattr(generator, "send") or not hasattr(generator, "throw")
        ):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        self.env = env
        self.callbacks = []
        self._state = _PENDING
        self._ok = True
        self._value = None
        self._generator = generator
        self._name = name
        # Bound methods used on every suspension are cached once (a fresh
        # bound-method allocation per resume was measurable on the exchange
        # hot path): the generator's send and our own resume callback. The
        # slot-resume twin is built lazily (stale yields only); throw stays
        # an attribute access (failure resumes are rare).
        self._send = generator.send
        self._resume_cb = self._resume
        self._resume_with_cb = None
        # Kick off at the current time via a bare resume slot calling the
        # module-level _boot_process (fast path; the seed engine allocated a
        # bootstrap Event here, and no bound method is needed).
        cur = env._cur
        if cur is not None:
            cur.append(_boot_process)
            cur.append(self)
            return
        t = env._now
        buckets = env._buckets
        try:
            bucket = buckets[t]
        except KeyError:
            pool = env._pool
            bucket = pool.pop() if pool else []
            buckets[t] = bucket
            _heappush(env._times, t)
        bucket.append(_boot_process)
        bucket.append(self)

    @property
    def name(self) -> str:
        """Process name (defaults to the generator's name, resolved lazily)."""
        return self._name or getattr(self._generator, "__name__", "process")

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    # _resume and _resume_with share their shape (the generator-driving body
    # is duplicated rather than delegated: one resume per simulated hop makes
    # an extra call layer measurable); only the trigger unpacking differs.

    def _resume(self, trigger: Event) -> None:
        try:
            if trigger._ok:
                target = self._send(trigger._value)
            else:
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            # Inlined _finish (every process ends through here once; the
            # process event is still pending, so no state check).
            self._state = _TRIGGERED
            self._value = stop.value
            env = self.env
            cur = env._cur
            if cur is not None:
                cur.append(_EVENT)
                cur.append(self)
            else:
                env._insert(env._now, _EVENT, self)
            return
        except BaseException as exc:
            self._crash(exc)
            return
        cls = target.__class__
        if cls is Timeout or cls is Event or isinstance(target, Event):
            if target.env is self.env:
                if target._state != _PROCESSED:
                    target.callbacks.append(self._resume_cb)
                else:
                    self._stale_resume(target)
                return
        self._bad_yield(target)

    def _resume_with(self, okval) -> None:
        """Slot-callback resume carrying a pre-decided ``(ok, value)``."""
        try:
            if okval[0]:
                target = self._send(okval[1])
            else:
                target = self._generator.throw(okval[1])
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:
            self._crash(exc)
            return
        cls = target.__class__
        if cls is Timeout or cls is Event or isinstance(target, Event):
            if target.env is self.env:
                if target._state != _PROCESSED:
                    target.callbacks.append(self._resume_cb)
                else:
                    self._stale_resume(target)
                return
        self._bad_yield(target)

    def _stale_resume(self, target: Event) -> None:
        """Yielded an already-*processed* event: resume via a bare slot
        carrying the same outcome (the seed engine allocated a relay Event
        here)."""
        cb = self._resume_with_cb
        if cb is None:
            cb = self._resume_with_cb = self._resume_with
        self.env.schedule_now(cb, (target._ok, target._value))

    def _finish(self, value: Any) -> None:
        """Generator returned: succeed the process event (it is still
        pending — the generator was alive — so the state check is skipped)."""
        self._state = _TRIGGERED
        self._value = value
        env = self.env
        cur = env._cur
        if cur is not None:
            cur.append(_EVENT)
            cur.append(self)
        else:
            env._insert(env._now, _EVENT, self)

    def _crash(self, exc: BaseException) -> None:
        # A crashed process fails its own event so waiters see the error;
        # with no waiters attached, Environment.run re-raises instead of
        # letting the crash vanish silently.
        has_waiters = bool(self.callbacks)
        self.fail(exc)
        if not has_waiters:
            self.env._record_crash(self, exc)

    def _bad_yield(self, target: Any) -> None:
        if isinstance(target, Event):
            err = SimulationError(
                "process yielded an event from a different Environment"
            )
        else:
            err = SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, expected Event"
            )
        self.fail(err)
        self.env._record_crash(self, err)


_PROCESS_NEW = Process.__new__


def _boot_process(p: Process) -> None:
    """First resume of a fresh process generator (a bare slot callback, so
    no bootstrap Event and no bound method): always ``send(None)`` — the
    specialized twin of :meth:`Process._resume_with`."""
    try:
        target = p._send(None)
    except StopIteration as stop:
        p._finish(stop.value)
        return
    except BaseException as exc:
        p._crash(exc)
        return
    cls = target.__class__
    if cls is Timeout or cls is Event or isinstance(target, Event):
        if target.env is p.env:
            if target._state != _PROCESSED:
                target.callbacks.append(p._resume_cb)
            else:
                p._stale_resume(target)
            return
    p._bad_yield(target)


class _Condition(Event):
    """Base for AllOf / AnyOf composition over a fixed set of events."""

    __slots__ = ("_events", "_pending_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different Environments")
        self._pending_count = 0
        for ev in self._events:
            if ev._state == _PROCESSED:
                self._observe(ev)
            else:
                self._pending_count += 1
                ev.callbacks.append(self._observe)
        self._check_immediate()

    def _check_immediate(self) -> None:
        raise NotImplementedError

    def _observe(self, ev: Event) -> None:
        raise NotImplementedError

    def _detach_losers(self) -> None:
        """Drop our observer from still-pending constituents.

        Once the condition has settled, the observers are dead weight: they
        would fire as no-ops and keep the whole condition (and its captured
        values) alive until every loser resolves. Detaching is the
        callback-list analogue of tombstoning a queue slot.
        """
        observe = self._observe
        for ev in self._events:
            if ev._state == _PENDING:
                try:
                    ev.callbacks.remove(observe)
                except ValueError:
                    pass


class AllOf(_Condition):
    """Succeeds when every constituent event has succeeded.

    Value is the list of constituent values, in constructor order. Fails as
    soon as any constituent fails (detaching from the still-pending rest).
    """

    __slots__ = ("_remaining",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self._remaining = 0  # set before super() since _observe may fire
        events = list(events)
        self._remaining = len(events)
        super().__init__(env, events)

    def _check_immediate(self) -> None:
        if self._remaining == 0 and self._state == _PENDING:
            self.succeed([ev._value for ev in self._events])

    def _observe(self, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if not ev._ok:
            self.fail(ev._value)
            self._detach_losers()
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(_Condition):
    """Succeeds with the value of the first constituent event to succeed.

    Fails only if *all* constituents fail (with the last failure). Losers
    are detached as soon as the race settles, so a long-lived loser event
    does not pin the condition (or its value) in memory.
    """

    __slots__ = ("_failures",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        self._failures = 0
        super().__init__(env, events)

    def _check_immediate(self) -> None:
        pass  # handled via _observe on already-processed events

    def _observe(self, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if ev._ok:
            self.succeed(ev._value)
            self._detach_losers()
        else:
            self._failures += 1
            if self._failures == len(self._events):
                self.fail(ev._value)


class Environment:
    """Simulation clock, event queue, and process factory.

    Scheduled work lives in *time buckets*: ``_buckets`` maps an absolute
    arrival time to a flat list of ``(kind, payload)`` slot pairs in FIFO
    order, and ``_times`` is a heap holding each distinct pending time once.
    The run loop pops the earliest time, pins ``_cur`` to that bucket (the
    executing *cohort*), and drains it front to back; entries scheduled for
    "now" while a cohort executes are appended straight to ``_cur``.
    Exhausted bucket lists are recycled through ``_pool``.

    ``quantum`` switches the clock from float64 seconds to integer ticks of
    that size (pass a power of two, e.g. ``2**-30``); delays that are not
    exact multiples raise :class:`SimulationError`. The default (``None``)
    keeps the float64 time base whose arithmetic is bit-identical to every
    previous engine generation.
    """

    def __init__(self, initial_time: float = 0.0, *, quantum: Optional[float] = None):
        if quantum is None:
            self._quantum: Optional[float] = None
            self._scale: Optional[float] = None
            self._now: Any = float(initial_time)
        else:
            if quantum <= 0:
                raise ValueError("quantum must be positive")
            self._quantum = float(quantum)
            self._scale = 1.0 / float(quantum)
            self._now = self._ticks(float(initial_time))
        #: heap of pending bucket times; each distinct time appears once and
        #: the currently draining cohort's time is *not* in it.
        self._times: list = []
        #: time -> flat [kind0, payload0, kind1, payload1, ...] slot pairs.
        self._buckets: dict = {}
        self._cur: Optional[list] = None  # cohort being drained (== _buckets[_now])
        self._cur_i = 0  # cursor into _cur (pair-aligned: always even)
        self._pool: list = []  # recycled bucket lists
        # Cancellable-slot pool: parallel fn/arg arrays + integer freelist.
        self._slot_fn: list = []
        self._slot_arg: list = []
        self._slot_free: list = []
        self._crashed: list[tuple[Process, BaseException]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        q = self._quantum
        return self._now if q is None else self._now * q

    @property
    def quantum(self) -> Optional[float]:
        """Tick size of the fixed-point time base, or None on float64."""
        return self._quantum

    def _ticks(self, delay: float) -> int:
        """Exact tick count for ``delay`` seconds (fixed time base only)."""
        ticks = delay * self._scale
        i = int(ticks)
        if i != ticks:
            raise SimulationError(
                f"delay {delay!r} is not representable on the fixed time base "
                f"(quantum {self._quantum!r}); use the float64 time base for "
                "non-quantized delays"
            )
        return i

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        # Fields written directly (skipping __init__ dispatch): env.event()
        # is called once per transfer/sync on the exchange hot path.
        ev = _EVENT_NEW(Event)
        ev.env = self
        ev.callbacks = []
        ev._state = _PENDING
        ev._ok = True
        ev._value = None
        return ev

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        # Timeout.__init__ body inlined via __new__ (one Timeout per cost
        # charge — the hottest factory in the engine).
        to = _TIMEOUT_NEW(Timeout)
        to.env = self
        to.callbacks = []
        to._state = _TRIGGERED
        to._ok = True
        to._value = value
        if delay > 0:
            if self._scale is None:
                t = self._now + delay
            else:
                t = self._now + self._ticks(delay)
        elif delay == 0:
            cur = self._cur
            if cur is not None:
                cur.append(_EVENT)
                cur.append(to)
                return to
            t = self._now
        else:
            raise ValueError(f"negative timeout delay: {delay!r}")
        buckets = self._buckets
        try:
            bucket = buckets[t]
        except KeyError:
            pool = self._pool
            bucket = pool.pop() if pool else []
            buckets[t] = bucket
            _heappush(self._times, t)
        bucket.append(_EVENT)
        bucket.append(to)
        return to

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a process driving ``generator``; returns its Process event."""
        # Process.__init__ body inlined via __new__ (one per exchange wait
        # chain; keep in sync with the constructor).
        if type(generator) is not _GeneratorType and (
            not hasattr(generator, "send") or not hasattr(generator, "throw")
        ):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        p = _PROCESS_NEW(Process)
        p.env = self
        p.callbacks = []
        p._state = _PENDING
        p._ok = True
        p._value = None
        p._generator = generator
        p._name = name
        p._send = generator.send
        p._resume_cb = p._resume
        p._resume_with_cb = None
        cur = self._cur
        if cur is not None:
            cur.append(_boot_process)
            cur.append(p)
            return p
        t = self._now
        buckets = self._buckets
        try:
            bucket = buckets[t]
        except KeyError:
            pool = self._pool
            bucket = pool.pop() if pool else []
            buckets[t] = bucket
            _heappush(self._times, t)
        bucket.append(_boot_process)
        bucket.append(p)
        return p

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that succeeds when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that succeeds when the first of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _insert(self, t, a, b) -> None:
        """Append slot pair ``(a, b)`` to the bucket at absolute time ``t``."""
        buckets = self._buckets
        try:
            bucket = buckets[t]
        except KeyError:
            pool = self._pool
            bucket = pool.pop() if pool else []
            buckets[t] = bucket
            _heappush(self._times, t)
        bucket.append(a)
        bucket.append(b)

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event``'s callbacks to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        if delay == 0:
            cur = self._cur
            if cur is not None:
                cur.append(_EVENT)
                cur.append(event)
                return
            t = self._now
        elif self._scale is None:
            t = self._now + delay
        else:
            t = self._now + self._ticks(delay)
        self._insert(t, _EVENT, event)

    def schedule(self, delay: float, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Slot-based scheduling: run ``fn(arg)`` ``delay`` seconds from now.

        This is the engine's allocation-free alternative to spawning a
        process around a :class:`Timeout`: no Event, no generator, no
        callback list — just a slot pair in a time bucket. Bucket append
        order is scheduling order, so ordering against same-time events is
        exactly what an equivalently scheduled event would see.
        """
        if delay > 0:  # common case first; bucket insert inlined
            if self._scale is None:
                t = self._now + delay
            else:
                t = self._now + self._ticks(delay)
        elif delay == 0:
            cur = self._cur
            if cur is not None:
                cur.append(fn)
                cur.append(arg)
                return
            t = self._now
        else:
            raise ValueError(f"negative schedule delay: {delay!r}")
        buckets = self._buckets
        try:
            bucket = buckets[t]
        except KeyError:
            pool = self._pool
            bucket = pool.pop() if pool else []
            buckets[t] = bucket
            _heappush(self._times, t)
        bucket.append(fn)
        bucket.append(arg)

    def schedule_now(self, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Slot-based scheduling at the current time (cohort fast path)."""
        cur = self._cur
        if cur is not None:
            cur.append(fn)
            cur.append(arg)
        else:
            self._insert(self._now, fn, arg)

    def schedule_cancellable(
        self, delay: float, fn: Callable[[Any], None], arg: Any = None
    ) -> int:
        """Like :meth:`schedule`, but returns an ``int`` handle for
        :meth:`cancel`.

        The callback is parked in a preallocated slot pool (parallel
        ``fn``/``arg`` arrays recycled through an integer freelist), so the
        steady state allocates nothing per entry. Contract: a handle dies
        the moment its callback fires or :meth:`cancel` is called — callers
        must clear their stored handle in the callback itself and never
        cancel twice (handles are recycled; see
        :class:`~repro.des.resources.SharedBandwidth` for the idiom).
        """
        if delay < 0:
            raise ValueError(f"negative schedule delay: {delay!r}")
        free = self._slot_free
        if free:
            h = free.pop()
            self._slot_fn[h] = fn
            self._slot_arg[h] = arg
        else:
            h = len(self._slot_fn)
            self._slot_fn.append(fn)
            self._slot_arg.append(arg)
        if delay == 0:
            cur = self._cur
            if cur is not None:
                cur.append(_CANCELLABLE)
                cur.append(h)
                return h
            t = self._now
        elif self._scale is None:
            t = self._now + delay
        else:
            t = self._now + self._ticks(delay)
        self._insert(t, _CANCELLABLE, h)
        return h

    def cancel(self, handle: int) -> None:
        """Tombstone a pending :meth:`schedule_cancellable` entry.

        The queue is untouched: the slot is nulled and the drain loop skips
        the dead pair when its time comes. Raises if the handle's slot is
        already empty (double-cancel, or cancel after the callback fired).
        """
        slot_fn = self._slot_fn
        if slot_fn[handle] is None:
            raise SimulationError(
                "cancel() of a dead handle (already cancelled or already fired)"
            )
        slot_fn[handle] = None
        self._slot_arg[handle] = None

    def _record_crash(self, process: Process, exc: BaseException) -> None:
        self._crashed.append((process, exc))

    # -- queue inspection -------------------------------------------------------
    def _open_cohort(self) -> Optional[list]:
        """Position the engine at the next nonempty cohort, or return None.

        This is the engine's *single* ordering implementation (shared by
        :meth:`run` and :meth:`step`): the current cohort's remaining
        entries come first; when it is exhausted its bucket is recycled and
        the heap-minimum time opens the next cohort, advancing the clock.
        The returned cohort may still lead with tombstoned pairs — skipping
        those is the caller's (trivial, order-free) job.
        """
        cur = self._cur
        while True:
            if cur is not None:
                if self._cur_i < len(cur):
                    return cur
                buckets = self._buckets
                del buckets[self._now]
                cur.clear()
                pool = self._pool
                if len(pool) < _POOL_MAX:
                    pool.append(cur)
                cur = self._cur = None
                self._cur_i = 0
            times = self._times
            if not times:
                return None
            t = heapq.heappop(times)
            self._now = t
            cur = self._cur = self._buckets[t]
            self._cur_i = 0

    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` if none.

        Pure read: no clock movement, no queue mutation. Tombstoned entries
        at the head of the *current* cohort are looked through; a future
        bucket containing only tombstones still reports its time (it will
        be drained as a no-op when reached).
        """
        cur = self._cur
        if cur is not None:
            i = self._cur_i
            n = len(cur)
            slot_fn = self._slot_fn
            while i < n:
                if cur[i] is _CANCELLABLE and slot_fn[cur[i + 1]] is None:
                    i += 2
                    continue
                return self.now
        times = self._times
        if times:
            t = times[0]
            q = self._quantum
            return t if q is None else t * q
        return float("inf")

    def step(self) -> None:
        """Process exactly one live entry (event callbacks or a callback slot).

        Tombstoned (cancelled) entries are skipped and recycled without
        counting as the processed entry.
        """
        while True:
            cur = self._open_cohort()
            if cur is None:
                raise SimulationError("step() on an empty event queue")
            i = self._cur_i
            a = cur[i]
            b = cur[i + 1]
            self._cur_i = i + 2
            if a is _EVENT:
                b._run_callbacks()
                return
            if a is _CANCELLABLE:
                fn = self._slot_fn[b]
                if fn is None:  # tombstone: skip, recycle the slot
                    self._slot_free.append(b)
                    continue
                self._slot_fn[b] = None
                arg = self._slot_arg[b]
                self._slot_arg[b] = None
                self._slot_free.append(b)
                fn(arg)
                return
            a(b)
            return

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a ``float`` — run until simulated time reaches it;
        * an :class:`Event` — run until that event is processed, returning
          its value (raising its exception if it failed).

        If a process crashes and nothing was waiting on it, the first such
        crash is re-raised here so errors are never silently swallowed.
        """
        stop_event: Optional[Event] = None
        stop_key = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if self._scale is None:
                stop_key = stop_time
            else:
                stop_key = self._ticks(stop_time)
            if stop_key < self._now:
                raise ValueError("until is in the past")

        # Hot loop: heap consulted only at cohort boundaries; the cohort is
        # drained inline (event callback execution unrolled — Event has no
        # subclass overriding _run_callbacks) with everything in locals.
        times = self._times
        buckets = self._buckets
        pool = self._pool
        heappop = heapq.heappop
        crashed = self._crashed
        slot_fn = self._slot_fn
        slot_arg = self._slot_arg
        slot_free = self._slot_free
        kind_event = _EVENT  # sentinels as locals: LOAD_FAST per entry
        kind_cancellable = _CANCELLABLE
        cur = self._cur
        i = self._cur_i
        try:
            if stop_event is None and stop_key is None:
                # Specialized drain for plain run(): no stop checks per
                # entry or per cohort (this is the sweep/report regeneration
                # path, so the duplication buys real throughput).
                while True:
                    if cur is None:
                        if not times:
                            break
                        t = heappop(times)
                        self._now = t
                        cur = self._cur = buckets[t]
                        i = 0
                    while True:
                        try:
                            a = cur[i]
                        except IndexError:
                            break
                        b = cur[i + 1]
                        i += 2
                        if a is kind_event:
                            # inlined Event._run_callbacks
                            b._state = _PROCESSED
                            callbacks = b.callbacks
                            if callbacks:
                                b.callbacks = []
                                for cb in callbacks:
                                    cb(b)
                        elif a is kind_cancellable:
                            fn = slot_fn[b]
                            if fn is None:  # tombstone: dead slot, skip
                                slot_free.append(b)
                                continue
                            slot_fn[b] = None
                            arg = slot_arg[b]
                            slot_arg[b] = None
                            slot_free.append(b)
                            fn(arg)
                        else:
                            a(b)
                        if crashed:
                            raise crashed[0][1]
                    # Cohort exhausted: recycle its bucket.
                    del buckets[self._now]
                    cur.clear()
                    if len(pool) < _POOL_MAX:
                        pool.append(cur)
                    cur = self._cur = None
                    i = 0
                if crashed:
                    raise crashed[0][1]
                return None
            while True:
                if cur is None:
                    if not times:
                        break
                    t = times[0]
                    if stop_key is not None and t > stop_key:
                        self._now = stop_key
                        break
                    heappop(times)
                    self._now = t
                    cur = self._cur = buckets[t]
                    i = 0
                while True:
                    # Appends made by the executing entries extend the live
                    # cohort; IndexError (zero-cost until raised on 3.11+)
                    # replaces a len() recheck per entry.
                    try:
                        a = cur[i]
                    except IndexError:
                        break
                    b = cur[i + 1]
                    i += 2
                    if a is kind_event:
                        # inlined Event._run_callbacks
                        b._state = _PROCESSED
                        callbacks = b.callbacks
                        if callbacks:
                            b.callbacks = []
                            for cb in callbacks:
                                cb(b)
                    elif a is kind_cancellable:
                        fn = slot_fn[b]
                        if fn is None:  # tombstone: dead slot, skip
                            slot_free.append(b)
                            continue
                        slot_fn[b] = None
                        arg = slot_arg[b]
                        slot_arg[b] = None
                        slot_free.append(b)
                        fn(arg)
                    else:
                        a(b)
                    if crashed and (stop_event is None or not stop_event.triggered):
                        raise crashed[0][1]
                    if stop_event is not None and stop_event._state == _PROCESSED:
                        if not stop_event._ok:
                            raise stop_event._value
                        return stop_event._value
                # Cohort exhausted: recycle its bucket, back to the heap.
                del buckets[self._now]
                cur.clear()
                if len(pool) < _POOL_MAX:
                    pool.append(cur)
                cur = self._cur = None
                i = 0
        finally:
            self._cur_i = i

        if stop_event is not None and not stop_event.processed:
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired "
                "(deadlock: some process is waiting on an event nobody triggers)"
            )
        if crashed:
            raise crashed[0][1]
        return None
