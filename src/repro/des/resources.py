"""Resources: counted exclusive resources and processor-sharing bandwidth.

Two resource flavours cover everything the machine models need:

* :class:`Resource` — ``capacity`` concurrent holders, FIFO queueing.
  Used for GPU copy engines and (on devices without concurrent-kernel
  support) the kernel execution slot.
* :class:`SharedBandwidth` — a link of fixed aggregate rate shared *fairly*
  among however many transfers are in flight (processor sharing). Used for
  NICs and the PCIe bus: two concurrent halo messages on one NIC each see
  half the wire bandwidth, which is the first-order behaviour the paper's
  exchange serialization is designed around.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.des.engine import Environment, Event, SimulationError

__all__ = ["Resource", "SharedBandwidth"]


class Request(Event):
    """Event granted when the resource admits this request."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A resource with integer capacity and FIFO admission.

    Usage inside a process::

        req = resource.request()
        yield req
        ...  # hold the resource
        resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._holders: set[Request] = set()
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._holders)

    def request(self) -> Request:
        """Ask for one unit; the returned event fires when granted."""
        req = Request(self)
        if len(self._holders) < self.capacity:
            self._holders.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a previously granted unit."""
        if req in self._holders:
            self._holders.remove(req)
        elif req in self._waiting:
            self._waiting.remove(req)  # cancel a queued request
            return
        else:
            raise SimulationError("release() of a request this resource never granted")
        while self._waiting and len(self._holders) < self.capacity:
            nxt = self._waiting.popleft()
            self._holders.add(nxt)
            nxt.succeed()


class _Transfer:
    __slots__ = ("remaining", "done_event", "weight")

    def __init__(self, work: float, done_event: Event, weight: float):
        self.remaining = work
        self.done_event = done_event
        self.weight = weight


class SharedBandwidth:
    """A link whose rate is divided fairly among active transfers.

    ``rate`` is in work units per simulated second (typically bytes/s). A
    transfer of ``work`` units completes when its share of the link has
    delivered that much; shares are recomputed whenever a transfer starts or
    finishes (weighted processor sharing). With a single transfer in flight
    this reduces to ``work / rate`` seconds.
    """

    def __init__(self, env: Environment, rate: float, name: str = "link"):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.env = env
        self.rate = float(rate)
        self.name = name
        self._active: list[_Transfer] = []
        self._last_update = env.now
        #: pending completion-wakeup handle (tombstoned on membership
        #: change), or None. The bound wake callback is cached so each
        #: reschedule is slot traffic only — no allocation.
        self._wakeup_handle: Optional[int] = None
        self._wake_cb = self._wake
        #: optional repro.obs tracer: per-transfer wire intervals (lane =
        #: the link's name) and an in-flight counter series. Zero-cost when
        #: None (one attribute check per transfer).
        self.tracer = None
        #: trace group id for this link's lane (runner assigns).
        self.trace_group = 0

    @property
    def n_active(self) -> int:
        """Number of in-flight transfers."""
        return len(self._active)

    def transfer(self, work: float, weight: float = 1.0) -> Event:
        """Start a transfer of ``work`` units; returns its completion event.

        ``weight`` biases the fair share (a transfer of weight 2 gets twice
        the share of a weight-1 transfer while both are active).
        """
        if work < 0:
            raise ValueError("work must be non-negative")
        if weight <= 0:
            raise ValueError("weight must be positive")
        done = Event(self.env)
        if work == 0:
            done.succeed()
            return done
        self._advance()
        self._active.append(_Transfer(float(work), done, float(weight)))
        tracer = self.tracer
        if tracer is not None:
            start = self.env.now
            tracer.counter(
                f"{self.name}.in_flight", start, len(self._active), self.trace_group
            )
            done.callbacks.append(
                lambda _ev, s=start: tracer.record(
                    self.name, "xfer", s, self.env.now,
                    group=self.trace_group, cat="wire", args={"work": work},
                )
            )
        self._reschedule()
        return done

    # -- internals ---------------------------------------------------------
    def _total_weight(self) -> float:
        return sum(t.weight for t in self._active)

    def _advance(self) -> None:
        """Apply progress since the last update to all active transfers."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._active:
            return
        total_w = self._total_weight()
        for t in self._active:
            t.remaining -= self.rate * (t.weight / total_w) * dt
        finished = [t for t in self._active if t.remaining <= 1e-12 * self.rate]
        if finished:
            self._active = [t for t in self._active if t not in finished]
            for t in finished:
                t.done_event.succeed()
            if self.tracer is not None:
                self.tracer.counter(
                    f"{self.name}.in_flight", now, len(self._active),
                    self.trace_group,
                )

    def _reschedule(self) -> None:
        """Schedule a wakeup at the earliest projected completion.

        A bare cancellable slot on the time heap instead of a waker process
        (which cost a Process, a bootstrap slot, and a Timeout per
        membership change). A superseded wakeup is *tombstoned* via
        :meth:`Environment.cancel` — the drain loop skips the dead slot, so
        stale wakeups never execute (the previous engine let them fire as
        generation-checked no-ops).
        """
        h = self._wakeup_handle
        if h is not None:
            self.env.cancel(h)
            self._wakeup_handle = None
        if not self._active:
            return
        total_w = self._total_weight()
        next_done = min(t.remaining / (self.rate * t.weight / total_w) for t in self._active)
        self._wakeup_handle = self.env.schedule_cancellable(next_done, self._wake_cb)

    def _wake(self, _arg) -> None:
        # The handle died the moment this fired; clear it before _advance
        # can run completion callbacks that start new transfers.
        self._wakeup_handle = None
        self._advance()
        self._reschedule()
