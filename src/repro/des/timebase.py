"""Time-base evaluation: can a workload run on fixed-point integer ticks?

The flat event core supports two clocks (docs/MODEL.md §12):

* **float64 seconds** (default) — bucket keys are exactly the ``now + delay``
  sums the previous engines produced, so results are bit-identical to the
  dump-experiments oracle.
* **integer ticks** (``Environment(quantum=...)``) — keys are exact integers,
  immune to float-summation order effects. Only sound when *every* delay the
  workload schedules is an exact multiple of the quantum; the engine raises
  on the first one that is not.

This module holds the evaluation helpers: check a set of delays against a
candidate quantum, or search the power-of-two quanta for one that represents
them all. The paper's machine models charge delays like ``bytes / rate`` and
``points * flops_per_point / (gflops * 1e9)`` — arbitrary float quotients
that no practical quantum represents exactly — which is why the experiment
runner stays on the float64 time base (verified bit-identical per experiment
against ``tools/dump_experiments.py``).

Quanta must be powers of two: dividing by a power of two is exact in binary
floating point, so ``delay / quantum`` introduces no rounding of its own and
representability is decided by the delay's mantissa alone. A decimal quantum
like 1e-9 would itself be inexact and defeat the purpose.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

__all__ = [
    "is_power_of_two",
    "is_representable",
    "find_unrepresentable",
    "suggest_quantum",
]


def is_power_of_two(x: float) -> bool:
    """True if ``x`` is a (possibly negative-exponent) power of two."""
    if x <= 0 or math.isinf(x) or math.isnan(x):
        return False
    mantissa, _exp = math.frexp(x)
    return mantissa == 0.5


def is_representable(delay: float, quantum: float) -> bool:
    """True if ``delay`` is an exact integer multiple of ``quantum``.

    Mirrors the engine's own check (``Environment._ticks``): the division is
    exact for power-of-two quanta, so this is a pure mantissa test.
    """
    if math.isinf(delay) or math.isnan(delay):
        return False
    ticks = delay / quantum
    if math.isinf(ticks):
        return False  # overflowed: quantum far too fine for this magnitude
    return ticks == int(ticks)


def find_unrepresentable(delays: Iterable[float], quantum: float) -> List[float]:
    """The subset of ``delays`` that the fixed time base would reject."""
    return [d for d in delays if not is_representable(d, quantum)]


def suggest_quantum(
    delays: Iterable[float],
    coarsest: float = 1.0,
    finest: float = 2.0**-40,
) -> Optional[float]:
    """Coarsest power-of-two quantum representing every delay, or None.

    Scans from ``coarsest`` down to ``finest`` by halving. Returns None when
    no quantum in the range works — the caller should stay on the float64
    time base (the experiment machine models always land here; see module
    docstring).
    """
    if not is_power_of_two(coarsest) or not is_power_of_two(finest):
        raise ValueError("quantum bounds must be powers of two")
    delays = list(delays)
    q = coarsest
    while q >= finest:
        if not find_unrepresentable(delays, q):
            return q
        q /= 2.0
    return None
