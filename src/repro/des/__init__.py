"""Discrete-event simulation engine.

A small, dependency-free coroutine discrete-event engine in the style of
SimPy, sized for what the simulated MPI (:mod:`repro.simmpi`) and simulated
GPU (:mod:`repro.simgpu`) substrates need:

* :class:`Environment` — the simulation clock and event queue.
* :class:`Event`, :class:`Timeout`, :class:`Process` — awaitable primitives.
  Simulated activities are plain Python generators that ``yield`` events.
* :class:`AllOf` / :class:`AnyOf` — barrier / race composition.
* :class:`~repro.des.resources.Resource` — counted exclusive resources
  (e.g. GPU copy engines).
* :class:`~repro.des.resources.SharedBandwidth` — processor-sharing
  bandwidth (e.g. a NIC or PCIe link shared by concurrent transfers).

Time is a ``float`` in seconds of *virtual* (simulated) machine time; it has
no relation to wall-clock time of the simulation itself. Workloads whose
delays are exact multiples of a power-of-two quantum can opt into an integer
tick clock via ``Environment(quantum=...)``; :mod:`repro.des.timebase` has
the evaluation helpers (the paper experiments stay on float64 — see
docs/MODEL.md §12).
"""

from repro.des.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    SimulationError,
    Timeout,
)
from repro.des.resources import Resource, SharedBandwidth

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "Resource",
    "SharedBandwidth",
    "SimulationError",
    "Timeout",
]
