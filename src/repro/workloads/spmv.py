"""Hybrid SpMV with explicit communication overlap (Schubert et al.).

The first non-advection workload: ``y = A x`` iterated for ``steps``
sweeps, with the banded/random sparse matrix ``A`` partitioned by
contiguous row blocks (arXiv:1106.5908 §3). Unlike the stencil's uniform
face halos, the communication pattern is *irregular*: before each sweep a
rank gathers exactly the remote ``x`` entries its nonzero columns touch,
so per-peer message sizes follow the actual column coupling — a band of
``2*band+1`` diagonals plus ``extras`` uniformly random columns per row.

Matrix model
------------
Row ``i`` couples to columns ``[i-band, i+band]`` (clipped at the matrix
edge) plus ``extras`` pseudo-random columns drawn by a counter-based
SplitMix64 generator — a pure function of ``(pseed, row, draw)``, so the
pattern is identical across worker counts, network backends and rank
orders. Duplicated draws stay duplicated in the stored matrix (CRS keeps
what you put in it) but are deduplicated in the gather plan (an ``x``
entry is fetched once).

Communication model
-------------------
Per sweep, rank ``r`` exchanges with each coupled peer ``p`` under the
symmetric pair tag :func:`gather_tag`; the message to ``p`` carries the
``x`` entries ``p`` needs from ``r`` (and vice versa). In mirror mode the
representative rank's own need sizes both directions of each pair — the
same symmetry argument the stencil mirror makes, accurate here because
row blocks differ by at most one row and the random couplings are
uniform. The three variants map Schubert's §4 schemes onto the existing
simulators:

* ``bulk`` — vector mode: gather everything, then one full SpMV sweep;
* ``nonblocking`` — naive overlap: local-only rows (no remote columns)
  are swept while the gathers fly; boundary rows follow at the strided
  boundary-loop efficiency;
* ``hybrid_overlap`` — GPU task mode (Choi et al., arXiv:2202.11819):
  the local-rows kernel launches immediately on stream 1 while the host
  runs the gather; received entries ride stream 2's copy engine (skipped
  under GPUDirect) ahead of the remote-rows kernel, and the x-update and
  next-sweep staging run on the device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.base import Implementation, freeze_implementations
from repro.core.config import RunConfig, RunResult
from repro.core.context import RankContext
from repro.decomp.partition import block_range
from repro.machines.spec import GpuSpec
from repro.simmpi.mirror import MirrorProfile
from repro.stencil.analytic import error_norms
from repro.workloads import Workload

__all__ = [
    "SpmvWorkload",
    "SpmvProblem",
    "RowBlock",
    "SpmvPartition",
    "SpmvRankData",
    "spmv_params",
    "gather_tag",
    "DEFAULT_SPMV_PARAMS",
]

#: Default problem shape (overridable per config via ``workload_params``).
DEFAULT_SPMV_PARAMS: Dict[str, int] = {
    "rows": 1_048_576,  # matrix dimension
    "band": 48,         # half bandwidth: row i couples to [i-48, i+48]
    "extras": 4,        # additional random couplings per row
    "pseed": 1,         # matrix pattern seed (not the noise seed)
}

#: First tag used by the gather exchange (clear of the six halo tags).
SPMV_TAG_BASE = 16

#: CRS sweep cost per stored nonzero: one FMA ...
SPMV_FLOPS_PER_NNZ = 2.0
#: ... against 8 B value + 4 B column index + amortized irregular x read.
SPMV_BYTES_PER_NNZ = 20.0
#: x-update (scale y into x) traffic per row: read 8 B + write 8 B.
SPMV_X_BYTES_PER_ROW = 16.0
#: flops per row of the x-update.
SPMV_X_FLOPS_PER_ROW = 1.0
#: Gather pack/unpack is a strided indexed copy, not a streaming memcpy.
GATHER_PACK_PENALTY = 0.5
#: Device CRS sweep: bandwidth-bound roofline traffic per nonzero.
SPMV_GPU_BYTES_PER_NNZ = 20.0
#: Achieved fraction of device bandwidth for the (regular) local sweep.
SPMV_GPU_MEM_EFFICIENCY = 0.55
#: Remote-rows kernel: scattered x reads land far below streaming rate.
SPMV_GPU_REMOTE_EFFICIENCY = 0.35
#: Device matrix bytes per nonzero (8 B value + 4 B column index).
SPMV_MATRIX_BYTES_PER_NNZ = 12.0


def gather_tag(a: int, b: int, ntasks: int) -> int:
    """Symmetric tag of the (a, b) gather pair (same for both directions).

    Symmetry is what lets the mirror backend pair the representative
    rank's receive from ``p`` with its own send to ``p``; the full
    backend disambiguates direction by ``(src, dst)``.
    """
    lo, hi = (a, b) if a <= b else (b, a)
    return SPMV_TAG_BASE + lo * ntasks + hi


# -- counter-based pattern draws ------------------------------------------

_U = np.uint64
_MASK64 = (1 << 64) - 1


def _mix64(z: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer (wrapping uint64 arithmetic)."""
    z = (z ^ (z >> _U(30))) * _U(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> _U(27))) * _U(0x94D049BB133111EB)
    return z ^ (z >> _U(31))


def _stream_base(pseed: int, stream: int) -> np.uint64:
    """Per-stream base counter (python-int math: no uint64 scalar overflow)."""
    v = (pseed * 0x9E3779B97F4A7C15 + stream * 0xBF58476D1CE4E5B9) & _MASK64
    return _U(v)


def _extra_cols(rows: int, extras: int, pseed: int, lo: int, hi: int) -> np.ndarray:
    """Random extra columns of rows ``[lo, hi)``: shape ``(hi-lo, extras)``."""
    n = max(0, hi - lo)
    if extras == 0 or n == 0:
        return np.empty((n, 0), dtype=np.int64)
    i = np.arange(lo, hi, dtype=np.uint64)[:, None]
    j = np.arange(extras, dtype=np.uint64)[None, :]
    z = _mix64(
        _stream_base(pseed, 1)
        ^ (i * _U(0xA24BAED4963EE407))
        ^ (j * _U(0x9FB21C651E98DF25))
    )
    return (z % _U(rows)).astype(np.int64)


def _unit_floats(base: np.uint64, idx: np.ndarray) -> np.ndarray:
    """Deterministic floats in [0, 1) indexed by ``idx`` (uint64 counters)."""
    z = _mix64(base ^ (idx.astype(np.uint64) * _U(0xD6E8FEB86659FD93)))
    return z.astype(np.float64) / 2.0**64


def initial_x(pseed: int, lo: int, hi: int) -> np.ndarray:
    """The global initial vector restricted to rows ``[lo, hi)``."""
    return _unit_floats(_stream_base(pseed, 2), np.arange(lo, hi, dtype=np.int64))


# -- the problem -----------------------------------------------------------

@dataclass(frozen=True)
class SpmvCoupling:
    """One rank's column coupling: what it computes and what it gathers."""

    rank: int
    row0: int
    nrows: int
    #: stored nonzeros of this row block (duplicates included).
    nnz: int
    #: nonzeros with a locally owned column (the *local matrix part* of
    #: Schubert et al. SS4.2 — computable before the gather lands).
    nnz_interior: int
    #: nonzeros whose column a peer owns (the *non-local part*, swept
    #: only after the gathered x entries arrive).
    nnz_boundary: int
    #: peer rank -> sorted unique remote columns needed from that peer.
    gather_cols: Dict[int, np.ndarray] = field(repr=False)

    @property
    def peers(self) -> List[int]:
        return sorted(self.gather_cols)

    def gather_bytes(self, peer: int) -> int:
        return 8 * len(self.gather_cols[peer])

    @property
    def total_gather_bytes(self) -> int:
        return sum(8 * len(c) for c in self.gather_cols.values())


class SpmvProblem:
    """One matrix pattern + row partition (pure function of its arguments)."""

    def __init__(self, rows: int, band: int, extras: int, pseed: int, ntasks: int):
        self.rows = rows
        self.band = band
        self.extras = extras
        self.pseed = pseed
        self.ntasks = ntasks
        base, extra = divmod(rows, ntasks)
        sizes = base + (np.arange(ntasks) < extra).astype(np.int64)
        self._starts = np.zeros(ntasks, dtype=np.int64)
        np.cumsum(sizes[:-1], out=self._starts[1:])
        self._coupling: Dict[int, SpmvCoupling] = {}
        #: x-update scale keeping iterate magnitudes O(1): row sums are
        #: ~(2*band+1+extras) values of magnitude <= 1.
        self.x_scale = 1.0 / (2 * band + 1 + extras)

    def block(self, rank: int) -> Tuple[int, int]:
        """(first row, row count) of ``rank`` (paper-style balanced split)."""
        return block_range(self.rows, self.ntasks, rank)

    def owner_of(self, cols: np.ndarray) -> np.ndarray:
        """Owning rank of each global column index."""
        return np.searchsorted(self._starts, cols, side="right") - 1

    @property
    def nnz_total(self) -> int:
        """Stored nonzeros of the whole matrix (closed form)."""
        b = min(self.band, self.rows - 1)
        return self.rows * (2 * b + 1) - b * (b + 1) + self.extras * self.rows

    def coupling(self, rank: int) -> SpmvCoupling:
        """Per-rank coupling (memoized; deterministic in ``rank`` alone)."""
        got = self._coupling.get(rank)
        if got is not None:
            return got
        rows, band, extras = self.rows, self.band, self.extras
        row0, nrows = self.block(rank)
        r1 = row0 + nrows
        i = np.arange(row0, r1, dtype=np.int64)
        win_lo = np.maximum(i - band, 0)
        win_hi = np.minimum(i + band, rows - 1)
        band_counts = win_hi - win_lo + 1
        nnz = int(band_counts.sum()) + extras * nrows
        extra = _extra_cols(rows, extras, self.pseed, row0, r1)
        extra_flat = extra.reshape(-1)
        banded_remote = np.concatenate(
            [
                np.arange(max(0, row0 - band), row0, dtype=np.int64),
                np.arange(r1, min(rows, r1 + band), dtype=np.int64),
            ]
        )
        extra_remote = extra_flat[(extra_flat < row0) | (extra_flat >= r1)]
        remote = np.unique(np.concatenate([banded_remote, extra_remote]))
        owners = self.owner_of(remote)
        gather_cols = {
            int(p): remote[owners == p] for p in np.unique(owners)
        }
        # Entry-granular local/non-local split (Schubert's matrix parts):
        # the band's overhang outside [row0, r1) plus the remote extras.
        band_overhang = np.maximum(row0 - win_lo, 0) + np.maximum(
            win_hi - (r1 - 1), 0
        )
        nnz_boundary = int(band_overhang.sum())
        if extras:
            nnz_boundary += int(((extra < row0) | (extra >= r1)).sum())
        out = SpmvCoupling(
            rank=rank,
            row0=row0,
            nrows=nrows,
            nnz=nnz,
            nnz_interior=nnz - nnz_boundary,
            nnz_boundary=nnz_boundary,
            gather_cols=gather_cols,
        )
        self._coupling[rank] = out
        return out

    def triplets(self, rank: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(local row index, global column, value) of the rank's nonzeros.

        Banded entries first per row (ascending column), then the extras
        in draw order — the storage order the value stream is keyed on,
        so the assembled matrix is identical no matter which rank (or the
        global oracle) builds it.
        """
        rows, band, extras = self.rows, self.band, self.extras
        row0, nrows = self.block(rank)
        r1 = row0 + nrows
        i = np.arange(row0, r1, dtype=np.int64)
        win_lo = np.maximum(i - band, 0)
        win_hi = np.minimum(i + band, rows - 1)
        band_counts = (win_hi - win_lo + 1).astype(np.int64)
        # Banded columns: for each row an arange(win_lo, win_hi+1).
        total_band = int(band_counts.sum())
        steps = np.ones(total_band, dtype=np.int64)
        row_starts = np.zeros(nrows, dtype=np.int64)
        np.cumsum(band_counts[:-1], out=row_starts[1:])
        # At each row start the running column jumps from the previous
        # row's win_hi to this row's win_lo (row 0 starts from 0).
        steps[row_starts] = win_lo - np.concatenate(([0], win_hi[:-1]))
        band_cols = np.cumsum(steps)
        band_rows = np.repeat(np.arange(nrows, dtype=np.int64), band_counts)
        extra = _extra_cols(rows, extras, self.pseed, row0, r1)
        extra_rows = np.repeat(np.arange(nrows, dtype=np.int64), extras)
        cols = np.concatenate([band_cols, extra.reshape(-1)])
        rws = np.concatenate([band_rows, extra_rows])
        # Values keyed on (global row, slot index within the row) so the
        # oracle reproduces them independently of the partition.
        slot = np.concatenate(
            [
                band_cols - win_lo[band_rows],
                np.tile(np.arange(extras, dtype=np.int64), nrows)
                + band_counts[extra_rows],
            ]
        )
        key = (rws + row0) * np.int64(2 * band + 1 + extras) + slot
        vals = 2.0 * _unit_floats(_stream_base(self.pseed, 3), key) - 1.0
        return rws, cols, vals


@lru_cache(maxsize=8)
def _problem(rows: int, band: int, extras: int, pseed: int, ntasks: int) -> SpmvProblem:
    return SpmvProblem(rows, band, extras, pseed, ntasks)


def spmv_params(cfg: RunConfig) -> Tuple[int, int, int, int]:
    """(rows, band, extras, pseed) of a config, defaults applied."""
    given = dict(cfg.workload_params)
    unknown = sorted(set(given) - set(DEFAULT_SPMV_PARAMS))
    if unknown:
        raise ValueError(
            f"unknown spmv workload_params {unknown}; "
            f"known: {sorted(DEFAULT_SPMV_PARAMS)}"
        )
    merged = dict(DEFAULT_SPMV_PARAMS)
    merged.update(given)
    out = []
    for name in ("rows", "band", "extras", "pseed"):
        v = merged[name]
        if v != int(v):
            raise ValueError(f"spmv param {name} must be an integer, got {v!r}")
        out.append(int(v))
    rows, band, extras, pseed = out
    if rows < 1:
        raise ValueError(f"spmv rows must be >= 1, got {rows}")
    if band < 0 or extras < 0:
        raise ValueError("spmv band and extras must be >= 0")
    return rows, band, extras, pseed


def spmv_problem(cfg: RunConfig) -> SpmvProblem:
    """The (memoized) problem instance of one config."""
    rows, band, extras, pseed = spmv_params(cfg)
    if rows < cfg.ntasks:
        raise ValueError(
            f"spmv rows={rows} cannot give {cfg.ntasks} tasks non-empty row blocks"
        )
    return _problem(rows, band, extras, pseed, cfg.ntasks)


# -- partition / per-rank data ---------------------------------------------

@dataclass(frozen=True)
class RowBlock:
    """One rank's contiguous row block."""

    rank: int
    row0: int
    nrows: int

    @property
    def points(self) -> int:
        return self.nrows

    @property
    def offset(self) -> Tuple[int]:
        return (self.row0,)

    @property
    def shape(self) -> Tuple[int]:
        return (self.nrows,)


class SpmvPartition:
    """Row partition handed to the runner (the workload's 'decomposition')."""

    def __init__(self, problem: SpmvProblem):
        self.problem = problem
        self.ntasks = problem.ntasks

    def subdomain(self, rank: int) -> RowBlock:
        if not 0 <= rank < self.ntasks:
            raise ValueError(f"rank {rank} out of range for {self.ntasks} tasks")
        row0, nrows = self.problem.block(rank)
        return RowBlock(rank=rank, row0=row0, nrows=nrows)


class SpmvRankData:
    """One rank's matrix block, vectors and gather plans (or shadow no-ops).

    The communication plan is data, not implementation logic, so all
    three variants share it: ``recv_plan`` lists ``(peer, nbytes)`` of
    the gathers this rank posts; ``send_plan`` lists
    ``(peer, nbytes, cols)`` of what it serves. In mirror mode the send
    plan mirrors the receive plan (symmetric sizing, see module doc); in
    full mode it is the exact inverse map of every peer's gather.
    """

    def __init__(self, cfg: RunConfig, problem: SpmvProblem, block: RowBlock):
        self.cfg = cfg
        self.problem = problem
        self.block = block
        self.functional = cfg.functional
        coupling = problem.coupling(block.rank)
        self.coupling = coupling
        self.recv_plan: List[Tuple[int, int]] = [
            (p, coupling.gather_bytes(p)) for p in coupling.peers
        ]
        self.recv_bytes = sum(n for _, n in self.recv_plan)
        if cfg.network == "mirror":
            self.send_plan: List[Tuple[int, int, Optional[np.ndarray]]] = [
                (p, n, None) for p, n in self.recv_plan
            ]
        else:
            me = block.rank
            plan = []
            for p in range(problem.ntasks):
                if p == me:
                    continue
                cols = problem.coupling(p).gather_cols.get(me)
                if cols is not None and len(cols):
                    plan.append((p, 8 * len(cols), cols))
            self.send_plan = plan
        self.send_bytes = sum(n for _, n, _ in self.send_plan)
        self._remote_cols: Optional[np.ndarray] = None
        if self.functional:
            self._init_functional()

    def tag(self, peer: int) -> int:
        return gather_tag(self.block.rank, peer, self.problem.ntasks)

    # -- functional numerics (full backend only) ---------------------------
    def _init_functional(self) -> None:
        pr, blk = self.problem, self.block
        self.x = initial_x(pr.pseed, blk.row0, blk.row0 + blk.nrows)
        self.y = np.zeros(blk.nrows)
        rws, cols, vals = pr.triplets(blk.rank)
        self._rows_idx, self._cols, self._vals = rws, cols, vals
        # Peers are visited in ascending rank order and own disjoint
        # ascending row ranges, so the concatenation is globally sorted.
        peer_cols = [self.coupling.gather_cols[p] for p in self.coupling.peers]
        self._remote_cols = (
            np.concatenate(peer_cols) if peer_cols else np.empty(0, dtype=np.int64)
        )
        self._remote_vals = np.zeros(len(self._remote_cols))
        offs = {}
        off = 0
        for p, cs in zip(self.coupling.peers, peer_cols):
            offs[p] = (off, off + len(cs))
            off += len(cs)
        self._remote_offsets = offs
        # The *functional* pre/post-gather split is row-granular (a row's
        # contributions are never split across the gather), deliberately
        # coarser than the entry-granular split the timing model charges:
        # each y[i] then accumulates in storage order no matter the
        # partition, keeping the assembled iterate bitwise independent of
        # the task count.
        local = (cols >= blk.row0) & (cols < blk.row0 + blk.nrows)
        row_remote = np.zeros(blk.nrows, dtype=bool)
        np.logical_or.at(row_remote, rws, ~local)
        tri_boundary = row_remote[rws]
        self._tri_interior = np.nonzero(~tri_boundary)[0]
        self._tri_boundary = np.nonzero(tri_boundary)[0]

    def pack_for(self, cols: np.ndarray) -> Optional[np.ndarray]:
        """Payload served to a peer: this rank's x entries at ``cols``."""
        if not self.functional:
            return None
        return self.x[cols - self.block.row0].copy()

    def unpack(self, peer: int, payload: Optional[np.ndarray]) -> None:
        """Store a gathered payload into the remote-x buffer."""
        if not self.functional or payload is None:
            return
        lo, hi = self._remote_offsets[peer]
        self._remote_vals[lo:hi] = payload

    def _xval(self, cols: np.ndarray) -> np.ndarray:
        blk = self.block
        out = np.empty(len(cols))
        local = (cols >= blk.row0) & (cols < blk.row0 + blk.nrows)
        out[local] = self.x[cols[local] - blk.row0]
        rem = ~local
        if rem.any():
            idx = np.searchsorted(self._remote_cols, cols[rem])
            out[rem] = self._remote_vals[idx]
        return out

    def _apply(self, tri_idx: np.ndarray) -> None:
        cols = self._cols[tri_idx]
        contrib = self._vals[tri_idx] * self._xval(cols)
        np.add.at(self.y, self._rows_idx[tri_idx], contrib)

    def compute_all(self) -> None:
        if self.functional:
            self._apply(np.arange(len(self._cols)))

    def compute_interior(self) -> None:
        if self.functional:
            self._apply(self._tri_interior)

    def compute_boundary(self) -> None:
        if self.functional:
            self._apply(self._tri_boundary)

    def update_x(self) -> None:
        if self.functional:
            self.x = self.problem.x_scale * self.y
            self.y = np.zeros(self.block.nrows)


# -- shared program pieces --------------------------------------------------

def _post_gather(ctx: RankContext):
    """Post the sweep's gather exchange; returns (recv_reqs, send_reqs)."""
    data: SpmvRankData = ctx.data
    comm = ctx.comm
    recvs, sends = [], []
    for peer, nbytes in data.recv_plan:
        recvs.append((yield from comm.irecv(peer, data.tag(peer), nbytes)))
    if data.send_bytes:
        yield ctx.memcpy(data.send_bytes, GATHER_PACK_PENALTY, phase="pack")
    for peer, nbytes, cols in data.send_plan:
        payload = data.pack_for(cols) if cols is not None else None
        sends.append((yield from comm.isend(peer, data.tag(peer), nbytes, payload)))
    return recvs, sends


def _complete_gather(ctx: RankContext, recvs, sends):
    """Wait out the gather; unpack received x entries."""
    data: SpmvRankData = ctx.data
    comm = ctx.comm
    for req in recvs:
        payload = yield from comm.wait(req)
        data.unpack(req.peer, payload)
    for req in sends:
        yield from comm.wait(req)
    if data.recv_bytes:
        yield ctx.memcpy(data.recv_bytes, GATHER_PACK_PENALTY, phase="unpack")


def _sweep_cost(ctx: RankContext, nnz: int, *, boundary: bool = False,
                phase: str = "compute"):
    """Timed CRS sweep of ``nnz`` stored nonzeros on this task's threads."""
    eff = ctx.node.boundary_loop_efficiency if boundary else 1.0
    return ctx.compute_custom(
        nnz,
        flops_per_point=SPMV_FLOPS_PER_NNZ,
        bytes_per_point=SPMV_BYTES_PER_NNZ,
        efficiency=eff,
        phase=phase,
    )


def _x_update_cost(ctx: RankContext):
    return ctx.compute_custom(
        ctx.data.block.nrows,
        flops_per_point=SPMV_X_FLOPS_PER_ROW,
        bytes_per_point=SPMV_X_BYTES_PER_ROW,
        phase="copy",
    )


def spmv_kernel_seconds(spec: GpuSpec, nnz: int, efficiency: float) -> float:
    """Device CRS sweep duration (bandwidth-bound roofline)."""
    if nnz <= 0:
        return 0.0
    return nnz * SPMV_GPU_BYTES_PER_NNZ / (spec.mem_bandwidth_gbs * 1e9 * efficiency)


def _validate_spmv_axes(impl: Implementation, cfg: RunConfig) -> None:
    """Reject stencil-only tuning axes (they would split cache keys)."""
    if cfg.box_thickness != 1:
        raise ValueError(
            f"{impl.key}: spmv has no box_thickness axis (got {cfg.box_thickness})"
        )
    if cfg.block is not None:
        raise ValueError(f"{impl.key}: spmv has no GPU thread-block axis")


class SpmvBulk(Implementation):
    """Vector mode: complete every gather, then one full sweep."""

    key = "bulk"
    title = "SpMV vector mode (gather, then sweep)"
    section = "Schubert SS4.1"
    uses_mpi = True

    def validate(self, cfg: RunConfig) -> None:
        super().validate(cfg)
        _validate_spmv_axes(self, cfg)

    def step(self, ctx: RankContext, index: int):
        data: SpmvRankData = ctx.data
        recvs, sends = yield from _post_gather(ctx)
        yield from _complete_gather(ctx, recvs, sends)
        yield _sweep_cost(ctx, data.coupling.nnz)
        data.compute_all()
        yield _x_update_cost(ctx)
        data.update_x()


class SpmvNonblocking(Implementation):
    """Naive overlap: sweep local-only rows while the gathers fly."""

    key = "nonblocking"
    title = "SpMV naive overlap (local rows under the gather)"
    section = "Schubert SS4.2"
    uses_mpi = True

    def validate(self, cfg: RunConfig) -> None:
        super().validate(cfg)
        _validate_spmv_axes(self, cfg)

    def step(self, ctx: RankContext, index: int):
        data: SpmvRankData = ctx.data
        recvs, sends = yield from _post_gather(ctx)
        yield _sweep_cost(ctx, data.coupling.nnz_interior)
        data.compute_interior()
        yield from _complete_gather(ctx, recvs, sends)
        yield _sweep_cost(ctx, data.coupling.nnz_boundary, boundary=True,
                          phase="boundary")
        data.compute_boundary()
        yield _x_update_cost(ctx)
        data.update_x()


class SpmvHybridOverlap(Implementation):
    """GPU task mode: local kernel under the gather, remote kernel after.

    Maps the kernel-triggered overlap of Choi et al. onto the stream /
    copy-engine machinery: stream 1 runs the local-rows kernel the moment
    the step starts; the host gather runs underneath it; the received x
    entries ride stream 2's copy engine (skipped under GPUDirect, where
    the NIC writes device memory directly) ahead of the remote-rows
    kernel; the x-update and next-sweep send staging close the step.
    """

    key = "hybrid_overlap"
    title = "SpMV GPU task mode (kernel-triggered overlap)"
    section = "Choi SS3"
    uses_mpi = True
    uses_gpu = True

    def validate(self, cfg: RunConfig) -> None:
        super().validate(cfg)
        _validate_spmv_axes(self, cfg)
        if cfg.functional:
            raise ValueError(
                f"{self.key}: spmv functional verification runs on the CPU "
                f"variants (bulk, nonblocking)"
            )

    def setup(self, ctx: RankContext):
        data: SpmvRankData = ctx.data
        gpu = ctx.gpu
        st = ctx.state
        st["s1"] = gpu.stream("s1")
        st["s2"] = gpu.stream("s2")
        matrix_bytes = int(SPMV_MATRIX_BYTES_PER_NNZ * data.coupling.nnz)
        x_bytes = 8 * data.block.nrows
        yield ctx.launch_cost(1)
        ev = ctx.h2d(st["s1"], matrix_bytes + x_bytes)
        yield ev
        yield gpu.synchronize()

    def step(self, ctx: RankContext, index: int):
        data: SpmvRankData = ctx.data
        gpu = ctx.gpu
        spec = gpu.spec
        s1, s2 = ctx.state["s1"], ctx.state["s2"]

        # 1) Local-rows kernel to stream 1: no gather dependency.
        yield ctx.launch_cost(1)
        t_local = spmv_kernel_seconds(
            spec, data.coupling.nnz_interior, SPMV_GPU_MEM_EFFICIENCY
        )
        local_ev = gpu.launch_kernel(s1, t_local * ctx.gpu_share, None, "spmv-local")

        # 2) Host gather, overlapped with the local kernel.
        recvs, sends = yield from _post_gather(ctx)
        yield from _complete_gather(ctx, recvs, sends)

        # 3) Ship gathered x entries to the device (stream 2 serializes
        #    the remote-rows kernel behind the copy); GPUDirect receives
        #    land in device memory already.
        yield ctx.launch_cost(2)
        if data.recv_bytes and not ctx.gpudirect:
            ctx.h2d(s2, data.recv_bytes)
        t_remote = spmv_kernel_seconds(
            spec, data.coupling.nnz_boundary, SPMV_GPU_REMOTE_EFFICIENCY
        )
        remote_ev = gpu.launch_kernel(s2, t_remote * ctx.gpu_share, None, "spmv-remote")
        if not local_ev.processed:
            yield local_ev
        if not remote_ev.processed:
            yield remote_ev

        # 4) Device x-update, then stage the next sweep's send entries
        #    back to the host (GPUDirect sends straight from the device).
        yield ctx.launch_cost(1)
        t_upd = data.block.nrows * SPMV_X_BYTES_PER_ROW / (
            spec.mem_bandwidth_gbs * 1e9
        )
        upd_ev = gpu.launch_kernel(s1, t_upd * ctx.gpu_share, None, "x-update")
        if data.send_bytes and not ctx.gpudirect:
            d2h_ev = ctx.d2h(s1, data.send_bytes)
            yield d2h_ev
        elif not upd_ev.processed:
            yield upd_ev

    def drain(self, ctx: RankContext):
        data: SpmvRankData = ctx.data
        yield ctx.launch_cost(1)
        ev = ctx.d2h(ctx.state["s1"], 8 * data.block.nrows)
        yield ev


#: key -> frozen singleton (the spmv level of the two-level registry).
SPMV_IMPLEMENTATIONS: Dict[str, Implementation] = freeze_implementations(
    SpmvBulk(), SpmvNonblocking(), SpmvHybridOverlap()
)


class SpmvWorkload(Workload):
    """Hybrid SpMV with explicit comm overlap (the first non-stencil workload)."""

    key = "spmv"
    title = "Hybrid SpMV with explicit comm overlap (Schubert et al.)"
    cpu_keys = ("bulk", "nonblocking")
    gpu_keys = ("hybrid_overlap",)

    @property
    def implementations(self) -> Dict[str, Implementation]:
        return SPMV_IMPLEMENTATIONS

    def validate(self, cfg: RunConfig) -> None:
        spmv_problem(cfg)  # raises on bad/unknown params or rows < ntasks

    def decompose(self, cfg: RunConfig) -> SpmvPartition:
        return SpmvPartition(spmv_problem(cfg))

    def make_data(self, cfg: RunConfig, sub: RowBlock) -> SpmvRankData:
        return SpmvRankData(cfg, spmv_problem(cfg), sub)

    def mirror_profile(self, cfg: RunConfig, decomp: SpmvPartition) -> MirrorProfile:
        problem = decomp.problem
        tpn = min(cfg.tasks_per_node, problem.ntasks)

        def offnode_bytes(r: int) -> int:
            c = problem.coupling(r)
            return sum(
                c.gather_bytes(p) for p in c.peers if p // tpn != 0
            )

        node_ranks = range(tpn)
        rep = max(node_ranks, key=offnode_bytes)
        coupling = problem.coupling(rep)
        offnode_by_tag = {
            gather_tag(rep, p, problem.ntasks): (p // tpn != 0)
            for p in coupling.peers
        }
        # No per-tag NIC share: the whole gather phase is one burst in
        # which every node-resident rank drives the NIC, which is exactly
        # the MirrorProfile fallback (max(1, tasks_per_node)).
        return MirrorProfile(
            interconnect=cfg.machine.interconnect,
            node=cfg.machine.node,
            nranks=problem.ntasks,
            tasks_per_node=tpn,
            offnode_by_tag=offnode_by_tag,
            nic_share_by_tag={},
            representative_rank=rep,
        )

    def total_flops(self, cfg: RunConfig) -> float:
        return SPMV_FLOPS_PER_NNZ * spmv_problem(cfg).nnz_total * cfg.steps

    def rank_group_name(self, sub: RowBlock) -> str:
        return f"rank {sub.rank} rows[{sub.row0}:{sub.row0 + sub.nrows}]"

    def finalize_functional(
        self, cfg: RunConfig, contexts: List, result: RunResult
    ) -> None:
        problem = spmv_problem(cfg)
        # Independent oracle: assemble the *global* matrix through the
        # same deterministic generators and iterate it with dense numpy
        # gathers (no partition, no exchange, no remote-x bookkeeping).
        one = SpmvProblem(
            problem.rows, problem.band, problem.extras, problem.pseed, 1
        )
        rws, cols, vals = one.triplets(0)
        x = initial_x(problem.pseed, 0, problem.rows)
        for _ in range(cfg.steps):
            y = np.zeros(problem.rows)
            np.add.at(y, rws, vals * x[cols])
            x = problem.x_scale * y
        assembled = np.concatenate(
            [ctx.data.x for ctx in sorted(contexts, key=lambda c: c.sub.rank)]
        )
        result.global_field = assembled
        result.norms = error_norms(assembled, x)
