"""The default workload: the paper's 3-D Lax–Wendroff advection stencil.

This module is a thin adapter: every hook delegates to the exact code the
pre-workload simulator called directly from :mod:`repro.core.runner`
(``Decomposition``, ``RankData``, ``MirrorProfile.for_decomposition``,
the analytic-solution oracle), so a config with ``workload`` at its
default runs the same instruction path and produces bit-identical
results, traces and cache entries.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.config import RunConfig, RunResult
from repro.core.data import RankData
from repro.decomp.partition import Decomposition, Subdomain
from repro.simmpi.mirror import MirrorProfile
from repro.stencil.analytic import analytic_solution, error_norms
from repro.stencil.coefficients import FLOPS_PER_POINT
from repro.stencil.grid import Grid3D
from repro.workloads import Workload

__all__ = ["AdvectionWorkload"]


class AdvectionWorkload(Workload):
    """Paper §IV: nine implementations of the same advection step."""

    key = "advection"
    title = "3-D Lax-Wendroff advection (paper SS IV)"

    @property
    def implementations(self):
        from repro.core.registry import IMPLEMENTATIONS

        return IMPLEMENTATIONS

    @property
    def cpu_keys(self):
        from repro.core.registry import CPU_KEYS

        return CPU_KEYS

    @property
    def gpu_keys(self):
        from repro.core.registry import GPU_KEYS

        return GPU_KEYS

    def decompose(self, cfg: RunConfig) -> Decomposition:
        return Decomposition(cfg.ntasks, cfg.domain)

    def make_data(self, cfg: RunConfig, sub: Subdomain) -> RankData:
        return RankData(cfg, sub)

    def mirror_profile(self, cfg: RunConfig, decomp: Decomposition) -> MirrorProfile:
        return MirrorProfile.for_decomposition(
            cfg.machine, decomp, cfg.tasks_per_node
        )

    def total_flops(self, cfg: RunConfig) -> float:
        # Same expression (and evaluation order) as the pre-workload
        # RunResult.gflops numerator, for bit-identical reporting.
        return cfg.total_points * FLOPS_PER_POINT * cfg.steps

    def finalize_functional(
        self, cfg: RunConfig, contexts: List, result: RunResult
    ) -> None:
        field = _gather_field(cfg, contexts)
        grid = Grid3D(cfg.domain)
        dt = cfg.nu * grid.min_spacing
        exact = analytic_solution(
            grid, cfg.velocity, time=cfg.steps * dt, sigma=cfg.sigma
        )
        result.global_field = field
        result.norms = error_norms(field, exact)


def _gather_field(cfg: RunConfig, contexts: List) -> np.ndarray:
    """Assemble the global field from the per-rank interiors."""
    out = np.zeros(cfg.domain)
    for ctx in contexts:
        view = ctx.data.interior_view()
        sl = tuple(
            slice(o, o + s) for o, s in zip(ctx.sub.offset, ctx.sub.shape)
        )
        out[sl] = view
    return out
