"""Pluggable workloads: the timed programs the simulator can run.

The paper's overlap machinery — DES engine, MPI backends, GPU streams,
tracer, cache, scheduler — is workload-agnostic; only the Lax–Wendroff
stencil is not. A :class:`Workload` packages everything that *is*
stencil-specific behind one protocol:

* the domain partition (``decompose``) and per-rank state (``make_data``);
* the mirror-backend network profile (which transfers cross the NIC and
  how hard they contend for it);
* the flop accounting behind ``RunResult.gflops``;
* the functional verification oracle; and
* the implementation registry for that workload (the second level of the
  ``(workload, impl)`` registry in :mod:`repro.core.registry`).

``advection`` is the default workload and delegates to the exact same
code paths the pre-workload simulator used, so every cache key, golden
dump and trace produced with ``RunConfig.workload`` at its default is
bit-identical to the pre-refactor tree. ``spmv`` (hybrid sparse
matrix–vector multiply with explicit communication overlap, after
Schubert et al., arXiv:1106.5908) is the first non-advection workload.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import Implementation
    from repro.core.config import RunConfig, RunResult
    from repro.simmpi.mirror import MirrorProfile

__all__ = [
    "Workload",
    "WORKLOADS",
    "DEFAULT_WORKLOAD",
    "get_workload",
    "workload_keys",
    "normalize_key",
]

#: The workload every pre-PR config ran (and the RunConfig default).
DEFAULT_WORKLOAD = "advection"


def normalize_key(name: str) -> str:
    """Canonical lookup form of a workload/implementation key.

    Mirrors :func:`repro.machines.spec.normalize_machine_name`, with
    hyphens mapped to underscores (registry keys are snake_case), so
    ``"hybrid-overlap"``, ``"Hybrid Overlap"`` and ``"hybrid_overlap"``
    all suggest the same key.
    """
    return name.lower().replace(" ", "_").replace("-", "_")


class Workload(abc.ABC):
    """One timed program family (a set of implementations over one problem).

    Subclasses are stateless singletons registered in :data:`WORKLOADS`;
    per-run state lives in the objects they build (``decompose`` /
    ``make_data`` results), never on the workload or its implementation
    instances (which are frozen — see
    :meth:`repro.core.base.Implementation.freeze`).
    """

    #: registry key, e.g. ``"advection"``.
    key: str = ""
    #: human-readable title.
    title: str = ""

    # -- implementation registry (second level of the two-level registry) ----
    @property
    @abc.abstractmethod
    def implementations(self) -> Dict[str, "Implementation"]:
        """key -> frozen singleton implementation instances."""

    def implementation(self, key: str) -> "Implementation":
        """Look up one implementation; raises a two-axis KeyError on miss."""
        from repro.core.registry import get_implementation

        return get_implementation(key, workload=self.key)

    #: keys runnable without a GPU (CLI listings, sweep defaults).
    cpu_keys: Tuple[str, ...] = ()
    #: keys requiring a GPU.
    gpu_keys: Tuple[str, ...] = ()

    # -- configuration -------------------------------------------------------
    def validate(self, cfg: "RunConfig") -> None:
        """Reject configurations this workload cannot run.

        The default accepts any config with no ``workload_params`` (the
        advection contract); workloads with parameters override this.
        """
        if cfg.workload_params:
            bad = ", ".join(sorted(k for k, _ in cfg.workload_params))
            raise ValueError(
                f"workload {self.key!r} takes no workload_params (got {bad})"
            )

    # -- problem construction ------------------------------------------------
    @abc.abstractmethod
    def decompose(self, cfg: "RunConfig"):
        """Partition the problem over ``cfg.ntasks`` ranks.

        The returned object must offer ``subdomain(rank)`` yielding
        per-rank blocks with at least ``.rank`` and ``.points``.
        """

    @abc.abstractmethod
    def make_data(self, cfg: "RunConfig", sub) -> object:
        """Per-rank data/numerics (real fields when functional, else shadow)."""

    @abc.abstractmethod
    def mirror_profile(self, cfg: "RunConfig", decomp) -> "MirrorProfile":
        """Network facts for the representative rank (mirror backend)."""

    # -- accounting / reporting ----------------------------------------------
    @abc.abstractmethod
    def total_flops(self, cfg: "RunConfig") -> float:
        """Analytic flops of the whole timed window (``RunResult.gflops``)."""

    def rank_group_name(self, sub) -> str:
        """Trace group label of one rank's lanes (obs timelines)."""
        return f"rank {sub.rank}"

    # -- verification --------------------------------------------------------
    def finalize_functional(
        self, cfg: "RunConfig", contexts: List, result: "RunResult"
    ) -> None:
        """Assemble the global functional answer and score it vs the oracle.

        Sets ``result.global_field`` and ``result.norms``. Only called for
        ``cfg.functional`` runs (full network backend).
        """
        raise NotImplementedError(
            f"workload {self.key!r} has no functional verification oracle"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Workload {self.key}>"


def _build_registry() -> Dict[str, Workload]:
    from repro.workloads.advection import AdvectionWorkload
    from repro.workloads.spmv import SpmvWorkload

    registry: Dict[str, Workload] = {}
    for wl in (AdvectionWorkload(), SpmvWorkload()):
        registry[wl.key] = wl
    return registry


#: key -> singleton workload instance (advection first: the default).
WORKLOADS: Dict[str, Workload] = _build_registry()


def workload_keys() -> Tuple[str, ...]:
    """Registered workload keys, default first."""
    keys = [DEFAULT_WORKLOAD]
    keys.extend(k for k in sorted(WORKLOADS) if k != DEFAULT_WORKLOAD)
    return tuple(keys)


def suggest_key(name: str, known) -> Optional[str]:
    """The registered key ``name`` most plausibly meant, or ``None``.

    Exact match after :func:`normalize_key` normalization (case, spaces,
    hyphen/underscore); the same contract as machine-name lookup.
    """
    want = normalize_key(name)
    for key in known:
        if normalize_key(key) == want:
            return key
    return None


def get_workload(name: str) -> Workload:
    """Look up a workload by exact key.

    Near-misses (case/space/hyphen variants) raise with a suggestion
    rather than resolving: the workload key enters cache keys verbatim,
    so silently aliasing ``"Advection"`` to ``"advection"`` would split
    one config across two cache entries.
    """
    if name in WORKLOADS:
        return WORKLOADS[name]
    near = suggest_key(name, WORKLOADS)
    hint = f"; did you mean {near!r}?" if near is not None else ""
    raise KeyError(
        f"unknown workload {name!r}{hint} "
        f"(known workloads: {sorted(WORKLOADS)})"
    )
