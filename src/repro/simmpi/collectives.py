"""Collective algorithms built on the point-to-point layer.

The comm backends expose analytic-cost ``barrier``/``allreduce_max``
shortcuts; this module implements the real message-passing algorithms on
top of ``isend``/``irecv``/``wait``, so collectives pay exactly the
latency/bandwidth/progress costs of the messages they exchange:

* :func:`broadcast` — binomial tree, ``ceil(log2 P)`` rounds;
* :func:`reduce_to_root` — mirrored binomial tree;
* :func:`allreduce` — reduce + broadcast for arbitrary ``P``, or
  recursive doubling when ``P`` is a power of two;
* :func:`gather_to_root` — flat gather (root-bottlenecked, like small-P
  MPI_Gather).

They require the *full* backend (real peers to talk to); a typical use is
computing global error norms inside a functional simulation — see
``examples``/tests.

Progress models: collectives inherit the interconnect's
:class:`~repro.machines.spec.ProgressModel` through the point-to-point
layer they are built on.  Scalar payloads ride the eager path, which
under ``manual-poll`` progresses *nothing* in the background — each tree
round is fully exposed — while ``progress-thread``/``hardware-offload``
move each round's wire bytes while ranks sit in earlier waits, shrinking
the critical path.  Tests pin that a collective under hardware offload
never finishes later than under manual poll on the same topology.

Tag space: collectives use tags ``>= COLLECTIVE_TAG_BASE`` with a
per-round offset, far above the six halo tags, so they can interleave with
an application's halo traffic.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simmpi.api import RankComm

__all__ = [
    "COLLECTIVE_TAG_BASE",
    "allreduce",
    "broadcast",
    "gather_to_root",
    "reduce_to_root",
]

COLLECTIVE_TAG_BASE = 10_000

#: Bytes of a scalar payload (one double, like the norms the paper records).
_SCALAR_BYTES = 8


def _vrank(rank: int, root: int, nranks: int) -> int:
    return (rank - root) % nranks


def _rank(vrank: int, root: int, nranks: int) -> int:
    return (vrank + root) % nranks


def broadcast(comm: RankComm, value: Any, root: int = 0,
              nbytes: int = _SCALAR_BYTES, tag: int = COLLECTIVE_TAG_BASE):
    """Generator: binomial-tree broadcast; returns the root's value."""
    nranks = comm.nranks
    me = _vrank(comm.rank, root, nranks)
    mask = 1
    # Find the round in which this rank receives (lowest set bit of me).
    while mask < nranks:
        if me & mask:
            req = yield from comm.irecv(
                _rank(me - mask, root, nranks), tag + mask, nbytes
            )
            value = yield from comm.wait(req)
            break
        mask <<= 1
    # Forward to the ranks below the receive bit.
    mask >>= 1
    while mask:
        if me + mask < nranks:
            req = yield from comm.isend(
                _rank(me + mask, root, nranks), tag + mask, nbytes, value
            )
            yield from comm.wait(req)
        mask >>= 1
    return value


def reduce_to_root(comm: RankComm, value: Any, op: Callable[[Any, Any], Any],
                   root: int = 0, nbytes: int = _SCALAR_BYTES,
                   tag: int = COLLECTIVE_TAG_BASE + 100):
    """Generator: binomial-tree reduction; root returns the result, others None."""
    nranks = comm.nranks
    me = _vrank(comm.rank, root, nranks)
    mask = 1
    while mask < nranks:
        if me & mask:
            req = yield from comm.isend(
                _rank(me - mask, root, nranks), tag + mask, nbytes, value
            )
            yield from comm.wait(req)
            return None
        partner = me + mask
        if partner < nranks:
            req = yield from comm.irecv(_rank(partner, root, nranks), tag + mask, nbytes)
            other = yield from comm.wait(req)
            value = op(value, other)
        mask <<= 1
    return value


def allreduce(comm: RankComm, value: Any, op: Callable[[Any, Any], Any],
              nbytes: int = _SCALAR_BYTES,
              tag: int = COLLECTIVE_TAG_BASE + 200):
    """Generator: all ranks return ``op``-combined value.

    Recursive doubling when the rank count is a power of two (optimal
    ``log2 P`` rounds, no root bottleneck); reduce + broadcast otherwise.
    """
    nranks = comm.nranks
    if nranks & (nranks - 1) == 0:
        mask = 1
        while mask < nranks:
            partner = comm.rank ^ mask
            rreq = yield from comm.irecv(partner, tag + mask, nbytes)
            sreq = yield from comm.isend(partner, tag + mask, nbytes, value)
            other = yield from comm.wait(rreq)
            yield from comm.wait(sreq)
            value = op(value, other)
            mask <<= 1
        return value
    reduced = yield from reduce_to_root(comm, value, op, root=0, nbytes=nbytes,
                                        tag=tag)
    return (yield from broadcast(comm, reduced, root=0, nbytes=nbytes,
                                 tag=tag + 50))


def gather_to_root(comm: RankComm, value: Any, root: int = 0,
                   nbytes: int = _SCALAR_BYTES,
                   tag: int = COLLECTIVE_TAG_BASE + 400):
    """Generator: root returns the list of all ranks' values (rank order)."""
    if comm.rank != root:
        req = yield from comm.isend(root, tag + comm.rank, nbytes, value)
        yield from comm.wait(req)
        return None
    out = [None] * comm.nranks
    out[root] = value
    reqs = {}
    for src in range(comm.nranks):
        if src == root:
            continue
        reqs[src] = yield from comm.irecv(src, tag + src, nbytes)
    for src, req in reqs.items():
        out[src] = yield from comm.wait(req)
    return out
