"""The per-rank communication API shared by both MPI backends.

Calls that consume host time are generators: the caller writes
``req = yield from comm.isend(...)`` inside its own DES process, so MPI
CPU overheads land on the calling rank's timeline — exactly the property
the paper's overlap experiments hinge on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = ["halo_tag", "HALO_TAGS", "Request", "RankComm"]


def halo_tag(dim: int, travel: int) -> int:
    """Tag for a halo message in ``dim`` traveling toward side ``travel``.

    A rank sends its ``-x`` boundary to the ``-x`` neighbor with
    ``halo_tag(0, -1)`` and receives data traveling ``-x`` from its ``+x``
    neighbor under the same tag — the pairing the mirror backend exploits.
    """
    if travel not in (-1, 1):
        raise ValueError("travel must be -1 or +1")
    return dim * 2 + (0 if travel < 0 else 1)


#: All six halo tags in serialized exchange order (x-, x+, y-, y+, z-, z+).
HALO_TAGS = tuple(halo_tag(d, s) for d in range(3) for s in (-1, 1))


@dataclass
class Request:
    """Handle for a pending nonblocking operation."""

    kind: str  # "send" or "recv"
    rank: int
    peer: int
    tag: int
    nbytes: int
    payload: Any = None  # send payload, or recv result once completed
    completed: bool = False
    # backend bookkeeping:
    _xfer: Any = field(default=None, repr=False)

    def __post_init__(self):
        if self.kind not in ("send", "recv"):
            raise ValueError(f"bad request kind {self.kind!r}")


class RankComm:
    """Abstract per-rank communicator. See backend docs for semantics."""

    rank: int
    nranks: int

    def isend(self, dst: int, tag: int, nbytes: int, payload: Any = None):
        """Generator: post a nonblocking send; returns a :class:`Request`."""
        raise NotImplementedError

    def irecv(self, src: int, tag: int, nbytes: int):
        """Generator: post a nonblocking receive; returns a :class:`Request`."""
        raise NotImplementedError

    def wait(self, request: Request):
        """Generator: block until ``request`` completes.

        For receives, returns the payload (``None`` in shadow mode).
        """
        raise NotImplementedError

    def waitall(self, requests: Iterable[Request]):
        """Generator: wait on each request in turn (MPI_Waitall)."""
        payloads = []
        for r in requests:
            payloads.append((yield from self.wait(r)))
        return payloads

    def barrier(self):
        """Generator: dissemination barrier across all ranks."""
        raise NotImplementedError

    def allreduce_max(self, value: float):
        """Generator: max-allreduce of one scalar (used for norms/timing)."""
        raise NotImplementedError
