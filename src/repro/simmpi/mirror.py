"""Mirror (representative-rank) MPI backend.

Simulates one worst-case rank against symmetric neighbor images: because
every rank of the bulk-synchronous advection step does the same work on a
subdomain of (almost) the same size, the data a rank *receives* under a
given halo tag is timed exactly like the data it *sends* under that tag.
A receive request therefore pairs with the rank's own send of the same tag,
and the per-step time of the representative rank is the ensemble per-step
time. Cross-validation tests assert agreement with the full backend.

The :class:`MirrorProfile` captures what the representative rank needs to
know about the whole machine: which halo directions cross the NIC versus
staying on-node, and how many concurrent transfers share the NIC during
each dimension's exchange phase (contention factor).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.des import Environment, Event
from repro.decomp.partition import Decomposition
from repro.machines.spec import InterconnectSpec, MachineSpec, NodeSpec, ProgressModel
from repro.simmpi.api import RankComm, Request, halo_tag

__all__ = ["MirrorProfile", "MirrorComm"]


@dataclass(frozen=True)
class MirrorProfile:
    """Network facts as seen by the representative rank."""

    interconnect: InterconnectSpec
    node: NodeSpec
    nranks: int
    tasks_per_node: int
    #: tag -> True when that halo message crosses the NIC (off-node).
    offnode_by_tag: Dict[int, bool] = field(default_factory=dict)
    #: tag -> concurrent same-node transfers sharing the NIC during that
    #: exchange (>= 1); models NIC contention without simulating peers.
    nic_share_by_tag: Dict[int, float] = field(default_factory=dict)
    representative_rank: int = 0

    @classmethod
    def for_decomposition(
        cls,
        machine: MachineSpec,
        decomp: Decomposition,
        tasks_per_node: int,
    ) -> "MirrorProfile":
        """Build a profile for the comm-heaviest rank of the first node.

        Scans the ranks of node 0 (placement is contiguous), picks the one
        with the most off-node faces as representative, and counts how many
        node-local transfers contend for the NIC in each dimension's
        exchange phase.
        """
        tpn = min(tasks_per_node, decomp.ntasks)
        node_ranks = list(range(min(tpn, decomp.ntasks)))
        off = {r: decomp.offnode_dims(r, tpn) for r in node_ranks}

        def n_off(r):
            return sum(int(b) for d in off[r].values() for b in d)

        rep = max(node_ranks, key=n_off)
        offnode_by_tag: Dict[int, bool] = {}
        nic_share_by_tag: Dict[int, float] = {}
        for dim in range(3):
            # Send messages from this node during the dim exchange phase.
            node_sends = sum(int(b) for r in node_ranks for b in off[r][dim])
            for side in (-1, 1):
                tag = halo_tag(dim, side)
                is_off = off[rep][dim][0 if side < 0 else 1]
                offnode_by_tag[tag] = is_off
                nic_share_by_tag[tag] = max(1.0, float(node_sends))
        return cls(
            interconnect=machine.interconnect,
            node=machine.node,
            nranks=decomp.ntasks,
            tasks_per_node=tpn,
            offnode_by_tag=offnode_by_tag,
            nic_share_by_tag=nic_share_by_tag,
            representative_rank=rep,
        )

    def is_offnode(self, tag: int) -> bool:
        """Whether messages with ``tag`` cross the NIC."""
        return self.offnode_by_tag.get(tag, self.nranks > self.tasks_per_node)

    def nic_share(self, tag: int) -> float:
        """NIC contention factor for ``tag``."""
        return self.nic_share_by_tag.get(tag, max(1.0, float(self.tasks_per_node)))


class _MirrorXfer:
    __slots__ = ("tag", "nbytes", "send_posted", "recv_posted", "bg_done", "fg_done",
                 "fg_started", "eager", "local")

    def __init__(self, tag: int, env: Environment):
        self.tag = tag
        self.nbytes = 0
        self.send_posted = False
        self.recv_posted = False
        self.bg_done: Event = env.event()
        self.fg_done: Optional[Event] = None
        self.fg_started = False
        self.eager = False
        self.local = False


class MirrorComm(RankComm):
    """The representative rank's communicator.

    Functional payloads are not supported (there are no real peers); use the
    full backend for functional runs. In mirror mode a receive's payload is
    always ``None`` and implementations must run in shadow-data mode.
    """

    def __init__(self, env: Environment, profile: MirrorProfile):
        self.env = env
        self.profile = profile
        self.rank = profile.representative_rank
        self.nranks = profile.nranks
        self._open: Dict[int, deque] = {}  # tag -> xfers awaiting a send/recv claim
        #: optional repro.obs tracer: transfer intervals on the "mpi" lane
        #: plus isend/irecv marks (matched per tag by the invariant checker).
        self.tracer = None
        #: optional repro.perturb injector: per-message latency/bandwidth
        #: jitter, progress stalls, drop/retransmit faults (off-node only).
        self.perturb = None
        # Statistics (protocol-conformance checks and reports).
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_received = 0
        self.bytes_received = 0

    # -- helpers --------------------------------------------------------------
    def _overhead(self):
        return self.env.timeout(self.profile.interconnect.per_message_cpu_us * 1e-6)

    def _wire_rate(self, xfer: _MirrorXfer) -> float:
        if xfer.local:
            return self.profile.node.memcpy_bandwidth_gbs * 1e9
        share = self.profile.nic_share(xfer.tag)
        npn = self.profile.interconnect.nics_per_node
        if npn > 1:
            # Multi-rail nodes spread the contending senders across their
            # NICs (round-robin striping, as in the full backend); a rail
            # still serves at least its own sender.
            share = max(1.0, share / npn)
        return self.profile.interconnect.bandwidth_bps / share

    def _maybe_start_background(self, xfer: _MirrorXfer) -> None:
        ic = self.profile.interconnect
        if xfer.local:
            ready = xfer.send_posted
            frac = 1.0
            lat = 0.5e-6
        elif xfer.eager:
            # Eager sends need only the sender posted; how much of the wire
            # then moves without host attention is the progress model's call
            # (manual-poll: nothing — paper ref [1] — a progress engine
            # drains the unexpected queue on its own).
            ready = xfer.send_posted
            frac = ic.background_fraction(eager=True)
            lat = ic.latency_s
        else:
            ready = xfer.send_posted and xfer.recv_posted
            frac = ic.background_fraction(eager=False)
            lat = 2.0 * ic.latency_s
        if not ready or xfer.bg_done.triggered:
            return
        wire_mult = 1.0
        perturb = self.perturb
        if perturb is not None and not xfer.local:
            lat = lat * perturb.latency_factor(self.rank) + perturb.message_delay(
                self.rank, self.env.now
            )
            wire_mult = perturb.wire_factor(self.rank)
        tracer = self.tracer
        if tracer is not None:
            start = self.env.now
            lane = (
                "mpi"
                if xfer.local or ic.progress is ProgressModel.MANUAL_POLL
                else "progress"
            )
            xfer.bg_done.callbacks.append(
                lambda _ev, s=start, x=xfer, lane=lane: tracer.record(
                    lane, f"bg t{x.tag}", s, self.env.now,
                    group=self.rank, cat="comm",
                    args={"tag": x.tag, "nbytes": x.nbytes,
                          "stage": "background"},
                )
            )
        # Callback-chained completion (latency slot, then wire slot) replaces
        # the bg() generator process. Two separate slots — not one at
        # ``lat + wire`` — so the time arithmetic ``(now + lat) + wire``
        # matches the seed engine bit-for-bit. On the flat event core each
        # slot is two appends into the time bucket (no per-hop allocation).
        if frac > 0:
            def after_latency(_a, *, xfer=xfer, frac=frac, mult=wire_mult):
                self.env.schedule(
                    frac * xfer.nbytes * mult / self._wire_rate(xfer),
                    xfer.bg_done.succeed,
                )

            self.env.schedule(lat, after_latency)
        else:
            self.env.schedule(lat, xfer.bg_done.succeed)

    def _ensure_foreground(self, xfer: _MirrorXfer) -> Event:
        if xfer.fg_done is None:
            xfer.fg_done = self.env.event()
        if not xfer.fg_started:
            xfer.fg_started = True
            bg_frac = self.profile.interconnect.background_fraction(xfer.eager)
            remainder = (1.0 - bg_frac) * xfer.nbytes
            if self.perturb is not None and not xfer.local and remainder > 0:
                remainder *= self.perturb.wire_factor(self.rank)
            done = xfer.fg_done
            tracer = self.tracer
            if tracer is not None and remainder > 0:
                start = self.env.now
                done.callbacks.append(
                    lambda _ev, s=start, x=xfer: tracer.record(
                        "mpi", f"fg t{x.tag}", s, self.env.now,
                        group=self.rank, cat="comm",
                        args={"tag": x.tag, "nbytes": x.nbytes,
                              "stage": "foreground"},
                    )
                )
            if remainder > 0:
                self.env.schedule(remainder / self._wire_rate(xfer), done.succeed)
            else:
                done.succeed()
        return xfer.fg_done

    # -- API ---------------------------------------------------------------
    def isend(self, dst: int, tag: int, nbytes: int, payload: Any = None):
        """Post the representative rank's send; mirrors the matching recv."""
        if payload is not None:
            raise ValueError("mirror backend cannot carry functional payloads")
        yield self._overhead()
        xfer = self._claim(tag, "send")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if self.tracer is not None:
            self.tracer.mark(
                "mpi", "isend", self.env.now, group=self.rank, cat="comm",
                args={"tag": tag, "nbytes": nbytes},
            )
        xfer.nbytes = nbytes
        xfer.eager = nbytes <= self.profile.interconnect.eager_threshold_bytes
        xfer.local = not self.profile.is_offnode(tag)
        xfer.send_posted = True
        self._maybe_start_background(xfer)
        return Request("send", self.rank, dst, tag, nbytes, _xfer=xfer)

    def irecv(self, src: int, tag: int, nbytes: int):
        """Post a receive; pairs with this rank's own send of ``tag``."""
        yield self._overhead()
        xfer = self._claim(tag, "recv")
        self.messages_received += 1
        self.bytes_received += nbytes
        if self.tracer is not None:
            self.tracer.mark(
                "mpi", "irecv", self.env.now, group=self.rank, cat="comm",
                args={"tag": tag, "nbytes": nbytes},
            )
        xfer.recv_posted = True
        if xfer.send_posted:
            self._maybe_start_background(xfer)
        return Request("recv", self.rank, src, tag, nbytes, _xfer=xfer)

    def _claim(self, tag: int, side: str) -> _MirrorXfer:
        """Get the next unclaimed xfer for ``tag`` on ``side`` (FIFO pairing)."""
        q = self._open.setdefault(tag, deque())
        attr = "send_posted" if side == "send" else "recv_posted"
        for xfer in q:
            if not getattr(xfer, attr):
                return xfer
        xfer = _MirrorXfer(tag, self.env)
        q.append(xfer)
        return xfer

    def wait(self, request: Request):
        """Block until the mirrored transfer completes."""
        if request.completed:
            return None
        xfer: _MirrorXfer = request._xfer
        if xfer.eager and not xfer.local and request.kind == "send":
            request.completed = True  # buffered; only the receiver waits
            return None
        if not xfer.bg_done.processed:
            yield xfer.bg_done
        if not xfer.local:
            yield self._ensure_foreground(xfer)
        if (xfer.local or xfer.eager) and request.kind == "recv":
            rate = self.profile.node.memcpy_bandwidth_gbs * 1e9
            yield self.env.timeout(xfer.nbytes / rate)
        request.completed = True
        return None

    def barrier(self):
        """Log-depth barrier cost (no peers to actually synchronize)."""
        t_enter = self.env.now
        ic = self.profile.interconnect
        rounds = max(1, math.ceil(math.log2(max(2, self.nranks))))
        yield self.env.timeout(rounds * (ic.latency_s + ic.per_message_cpu_us * 1e-6))
        if self.tracer is not None:
            self.tracer.record(
                "mpi-sync", "barrier", t_enter, self.env.now,
                group=self.rank, cat="sync",
            )

    def allreduce_max(self, value: float):
        """Reduction cost; the representative's value is the result."""
        t_enter = self.env.now
        ic = self.profile.interconnect
        rounds = max(1, math.ceil(math.log2(max(2, self.nranks))))
        yield self.env.timeout(2 * rounds * (ic.latency_s + ic.per_message_cpu_us * 1e-6))
        if self.tracer is not None:
            self.tracer.record(
                "mpi-sync", "allreduce", t_enter, self.env.now,
                group=self.rank, cat="sync",
            )
        return value
