"""Simulated MPI on the discrete-event engine.

Two interchangeable backends expose the same per-rank API
(:class:`~repro.simmpi.api.RankComm`), so the implementations in
:mod:`repro.core` are written once and run on either:

* :mod:`~repro.simmpi.world` — the *full* backend: every rank is a DES
  process; messages match like real MPI (source, destination, tag) and move
  real NumPy payloads in functional mode. Used for correctness tests and to
  cross-validate the mirror backend.
* :mod:`~repro.simmpi.mirror` — the *mirror* backend: one representative
  worst-case rank simulated against symmetric neighbor images. Because the
  computation is bulk-synchronous and homogeneous (subdomains differ by at
  most one point), the representative rank's per-step critical path equals
  the ensemble per-step time; this is what makes 49 152-core simulations
  tractable.

Progress model (the paper's central MPI subtlety, refs [1], [2] therein):
a rendezvous transfer starts when both endpoints have posted; a fraction
``overlap_fraction`` of the wire work proceeds in the background (RDMA),
while the rest completes only inside a blocking ``wait`` — so programs that
compute between post and wait hide only part of the wire time, and
bulk-synchronous programs lose nothing. Eager (small) messages transfer
immediately and pay a copy on the receive side.
"""

from repro.simmpi.api import HALO_TAGS, RankComm, Request, halo_tag
from repro.simmpi.mirror import MirrorComm, MirrorProfile
from repro.simmpi.world import World

__all__ = [
    "HALO_TAGS",
    "MirrorComm",
    "MirrorProfile",
    "RankComm",
    "Request",
    "World",
    "halo_tag",
]
