"""Full multi-rank MPI backend.

Every rank runs as a DES process; sends and receives match on
``(src, dst, tag)`` in FIFO order like real MPI. See the package docstring
for the progress model.

Transfer stages drive the flat event core (docs/MODEL.md §12) through
bare ``(fn, arg)`` callback slots — latency, wire and completion hops are
bucket appends, not Event/Process allocations — and the shared-NIC
wakeup reschedules underneath :class:`~repro.des.SharedBandwidth` are
tombstoned cancellable slots rather than fire-and-ignore generations.
Same-time completions across ranks land in one drain cohort in exactly
the order they were scheduled, which is what keeps full-backend runs
bit-identical to the seed engine's ``(time, counter)`` order.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Dict, Optional, Tuple

from repro.des import Environment, Event, SharedBandwidth
from repro.machines.spec import InterconnectSpec, NodeSpec, ProgressModel
from repro.simmpi.api import RankComm, Request

__all__ = ["World"]


class _Xfer:
    """One message in flight."""

    __slots__ = (
        "src",
        "dst",
        "tag",
        "nbytes",
        "payload",
        "eager",
        "local",
        "both_posted",
        "bg_done",
        "fg_done",
        "fg_started",
    )

    def __init__(self, src, dst, tag, nbytes, payload, eager, local, env):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.eager = eager
        self.local = local
        self.both_posted = False
        self.bg_done: Event = env.event()
        self.fg_done: Optional[Event] = None
        self.fg_started = False


class World:
    """A set of simulated MPI ranks sharing one machine's network."""

    def __init__(
        self,
        env: Environment,
        nranks: int,
        interconnect: InterconnectSpec,
        node: NodeSpec,
        tasks_per_node: int = 1,
    ):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        if tasks_per_node < 1:
            raise ValueError("tasks_per_node must be >= 1")
        self.env = env
        self.nranks = nranks
        self.ic = interconnect
        self.node = node
        self.tasks_per_node = tasks_per_node
        #: optional repro.obs tracer: in-flight message intervals on the
        #: "mpi" lane (group = sender rank) plus isend/irecv marks for the
        #: invariant checker. None (the default) costs one check per send.
        self.tracer = None
        #: optional repro.perturb injector: per-message latency/bandwidth
        #: jitter, progress stalls, drop/retransmit faults (off-node only).
        self.perturb = None
        nnodes = math.ceil(nranks / tasks_per_node)
        # One fair-share link per NIC; multi-rail nodes (EFA-class) stripe
        # ranks across their rails round-robin. With one NIC per node the
        # names and indexing reduce to the historical f"nic{node}" exactly.
        self._npn = max(1, interconnect.nics_per_node)
        self._nics = [
            SharedBandwidth(
                env,
                interconnect.bandwidth_bps,
                name=f"nic{n}" if self._npn == 1 else f"nic{n}:{j}",
            )
            for n in range(nnodes)
            for j in range(self._npn)
        ]
        #: Background wire intervals land on the "mpi" lane under the
        #: paper-era manual-poll model and on the "progress" lane when an
        #: engine (thread or NIC) advances them — the obs layer separates
        #: library-attended from autonomously-progressed traffic.
        self._bg_lane = (
            "mpi" if interconnect.progress is ProgressModel.MANUAL_POLL
            else "progress"
        )
        self._posted_sends: Dict[Tuple[int, int, int], deque] = {}
        self._posted_recvs: Dict[Tuple[int, int, int], deque] = {}
        # Barrier / allreduce state.
        self._bar_count = 0
        self._bar_event = env.event()
        self._red_count = 0
        self._red_event = env.event()
        self._red_acc: Optional[float] = None

    # -- topology -------------------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Node hosting ``rank`` (contiguous placement)."""
        return rank // self.tasks_per_node

    def is_local(self, src: int, dst: int) -> bool:
        """True when both ranks share a node (message moves at memory speed)."""
        return self.node_of(src) == self.node_of(dst)

    def comm(self, rank: int) -> "WorldRankComm":
        """Per-rank communicator handle."""
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range")
        return WorldRankComm(self, rank)

    # -- wire -----------------------------------------------------------------
    def _memcpy_rate(self) -> float:
        return self.node.memcpy_bandwidth_gbs * 1e9

    def _wire(self, src: int, nbytes: float, local: bool) -> Event:
        """Move ``nbytes`` (through the sender's NIC if off-node)."""
        if local:
            done = self.env.event()
            # Slot-scheduled completion — no mover process per on-node copy.
            self.env.schedule(nbytes / self._memcpy_rate(), done.succeed)
            return done
        nic = self.node_of(src) * self._npn + (src % self._npn)
        return self._nics[nic].transfer(nbytes)

    def _start_background(self, xfer: _Xfer) -> None:
        """Launch the background part of a transfer (latency + RDMA share).

        Callback-chained timeouts (a latency slot, then a wire completion
        callback) replace the per-transfer ``bg()`` generator process of the
        seed engine.
        """
        if xfer.local:
            frac = 1.0  # on-node: a plain memcpy, fully asynchronous is moot
            lat = 0.5e-6
        else:
            # How much of the wire moves without host attention is the
            # progress model's call (manual-poll: nothing for eager — the
            # paper's ref [1], "Where's the overlap?" — and the calibrated
            # in-library fraction for rendezvous).
            frac = self.ic.background_fraction(xfer.eager)
            lat = (
                self.ic.latency_s if xfer.eager
                else 2.0 * self.ic.latency_s  # rendezvous handshake round trip
            )

        wire_mult = 1.0
        perturb = self.perturb
        if perturb is not None and not xfer.local:
            lat = lat * perturb.latency_factor(xfer.src) + perturb.message_delay(
                xfer.src, self.env.now
            )
            wire_mult = perturb.wire_factor(xfer.src)

        bg_done = xfer.bg_done
        tracer = self.tracer
        if tracer is not None:
            start = self.env.now
            lane = "mpi" if xfer.local else self._bg_lane
            bg_done.callbacks.append(
                lambda _ev, s=start, x=xfer, lane=lane: tracer.record(
                    lane, f"bg d{x.dst} t{x.tag}", s, self.env.now,
                    group=x.src, cat="comm",
                    args={"src": x.src, "dst": x.dst, "tag": x.tag,
                          "nbytes": x.nbytes, "stage": "background"},
                )
            )
        if frac > 0:
            def after_latency(_arg, *, xfer=xfer, frac=frac, mult=wire_mult):
                wire = self._wire(xfer.src, frac * xfer.nbytes * mult, xfer.local)
                wire.callbacks.append(lambda _ev: bg_done.succeed())

            self.env.schedule(lat, after_latency)
        else:
            self.env.schedule(lat, bg_done.succeed)

    def _ensure_foreground(self, xfer: _Xfer) -> Event:
        """Start (once) the in-wait remainder of a rendezvous transfer."""
        if xfer.fg_done is None:
            xfer.fg_done = self.env.event()
        if not xfer.fg_started:
            xfer.fg_started = True
            bg_frac = self.ic.background_fraction(xfer.eager)
            remainder = (1.0 - bg_frac) * xfer.nbytes
            if self.perturb is not None and not xfer.local and remainder > 0:
                remainder *= self.perturb.wire_factor(xfer.src)
            done = xfer.fg_done
            tracer = self.tracer
            if tracer is not None and remainder > 0:
                start = self.env.now
                done.callbacks.append(
                    lambda _ev, s=start, x=xfer: tracer.record(
                        "mpi", f"fg d{x.dst} t{x.tag}", s, self.env.now,
                        group=x.src, cat="comm",
                        args={"src": x.src, "dst": x.dst, "tag": x.tag,
                              "nbytes": x.nbytes, "stage": "foreground"},
                    )
                )
            if remainder > 0:
                wire = self._wire(xfer.src, remainder, xfer.local)
                wire.callbacks.append(lambda _ev: done.succeed())
            else:
                done.succeed()
        return xfer.fg_done

    # -- matching ---------------------------------------------------------------
    def _post_send(self, xfer: _Xfer) -> None:
        key = (xfer.src, xfer.dst, xfer.tag)
        recvs = self._posted_recvs.get(key)
        if recvs:
            req = recvs.popleft()
            req._xfer = xfer
            xfer.both_posted = True
            req.payload = xfer.payload
            match_ev = req.__dict__.pop("_match_event", None)
            if match_ev is not None:
                match_ev.succeed()
        else:
            self._posted_sends.setdefault(key, deque()).append(xfer)
        if xfer.eager or xfer.local or xfer.both_posted:
            self._start_background(xfer)

    def _post_recv(self, req: Request) -> None:
        key = (req.peer, req.rank, req.tag)
        sends = self._posted_sends.get(key)
        if sends:
            xfer = sends.popleft()
            req._xfer = xfer
            req.payload = xfer.payload
            if not (xfer.eager or xfer.local):
                xfer.both_posted = True
                self._start_background(xfer)
        else:
            ev = self.env.event()
            req.__dict__["_match_event"] = ev
            self._posted_recvs.setdefault(key, deque()).append(req)


class WorldRankComm(RankComm):
    """One rank's view of a :class:`World`."""

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank
        self.nranks = world.nranks
        # Statistics (protocol-conformance checks and reports).
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_received = 0
        self.bytes_received = 0

    @property
    def env(self) -> Environment:
        """The world's DES environment."""
        return self.world.env

    def _overhead(self):
        return self.env.timeout(self.world.ic.per_message_cpu_us * 1e-6)

    # -- point to point -----------------------------------------------------
    def isend(self, dst: int, tag: int, nbytes: int, payload: Any = None):
        """Post a nonblocking send (generator; returns a Request)."""
        yield self._overhead()
        w = self.world
        local = w.is_local(self.rank, dst)
        eager = nbytes <= w.ic.eager_threshold_bytes
        xfer = _Xfer(self.rank, dst, tag, nbytes, payload, eager, local, self.env)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if w.tracer is not None:
            w.tracer.mark(
                "mpi", "isend", self.env.now, group=self.rank, cat="comm",
                args={"src": self.rank, "dst": dst, "tag": tag, "nbytes": nbytes},
            )
        w._post_send(xfer)
        return Request("send", self.rank, dst, tag, nbytes, payload, _xfer=xfer)

    def irecv(self, src: int, tag: int, nbytes: int):
        """Post a nonblocking receive (generator; returns a Request)."""
        yield self._overhead()
        req = Request("recv", self.rank, src, tag, nbytes)
        self.messages_received += 1
        self.bytes_received += nbytes
        if self.world.tracer is not None:
            self.world.tracer.mark(
                "mpi", "irecv", self.env.now, group=self.rank, cat="comm",
                args={"src": src, "dst": self.rank, "tag": tag, "nbytes": nbytes},
            )
        self.world._post_recv(req)
        return req

    def wait(self, request: Request):
        """Block until ``request`` completes; returns payload for receives."""
        w = self.world
        if request.completed:
            return request.payload
        if request.kind == "recv" and request._xfer is None:
            yield request.__dict__["_match_event"]
        xfer: _Xfer = request._xfer
        if xfer.eager and not xfer.local and request.kind == "send":
            # Eager sends complete as soon as the data is buffered; only the
            # receiver is exposed to the wire.
            request.completed = True
            return None
        if not xfer.bg_done.processed:
            yield xfer.bg_done
        if not xfer.local:
            # Finish the wire work MPI could not progress in the background.
            yield w._ensure_foreground(xfer)
        if (xfer.local or xfer.eager) and request.kind == "recv":
            # Copy out of the receive/unexpected buffer.
            yield self.env.timeout(xfer.nbytes / w._memcpy_rate())
        request.payload = xfer.payload if request.kind == "recv" else request.payload
        request.completed = True
        return request.payload if request.kind == "recv" else None

    # -- collectives ---------------------------------------------------------
    def _log_rounds(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.nranks))))

    def barrier(self):
        """Dissemination barrier: completes after the last rank arrives."""
        t_enter = self.env.now
        yield self._overhead()
        w = self.world
        ev = w._bar_event
        w._bar_count += 1
        if w._bar_count == w.nranks:
            w._bar_count = 0
            w._bar_event = self.env.event()
            ev.succeed()
        yield ev
        yield self.env.timeout(self._log_rounds() * w.ic.latency_s)
        if w.tracer is not None:
            w.tracer.record(
                "mpi-sync", "barrier", t_enter, self.env.now,
                group=self.rank, cat="sync",
            )

    def allreduce_max(self, value: float):
        """Max-allreduce of a scalar across all ranks."""
        t_enter = self.env.now
        yield self._overhead()
        w = self.world
        ev = w._red_event
        w._red_acc = value if w._red_acc is None else max(w._red_acc, value)
        w._red_count += 1
        if w._red_count == w.nranks:
            result = w._red_acc
            w._red_count = 0
            w._red_acc = None
            w._red_event = self.env.event()
            ev.succeed(result)
        result = yield ev
        yield self.env.timeout(2 * self._log_rounds() * w.ic.latency_s)
        if w.tracer is not None:
            w.tracer.record(
                "mpi-sync", "allreduce", t_enter, self.env.now,
                group=self.rank, cat="sync",
            )
        return result
