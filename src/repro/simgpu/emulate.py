"""Functional emulation of the tiled GPU stencil kernel ([6] in the paper).

The performance model in :mod:`repro.simgpu.blockmodel` prices a specific
kernel structure: 2-D thread blocks own an xy tile plus halo, iterate over
z, and stage an (bx+2) x (by+2) slab of the current plane in shared memory
while keeping the z-neighbors in registers. This module *executes* that
structure — per tile, with explicit staged slabs and the three-plane
register rotation — so tests can verify it computes exactly what the dense
27-point sweep computes, remainder tiles, halo staging and all.

This is deliberately slow (it is a semantics check, not a fast path);
production functional runs use :func:`repro.stencil.kernels.apply_stencil`,
which dispatches to the separable three-sweep engine for tensor-product
coefficients. Because the tiled kernel emulated here is a *dense* 27-term
accumulation, its bit-level reference is
:func:`repro.stencil.kernels.apply_stencil_dense`; against the separable
path it agrees only to roundoff (different summation order).

The "shared memory" staging slabs are leased from a
:class:`~repro.stencil.arena.ScratchArena` (a ring of three per tile
shape), mirroring how the real kernel reuses the same shared-memory
allocation for every tile — and keeping repeated emulation calls free of
per-plane allocations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.stencil.arena import ScratchArena, default_arena
from repro.stencil.coefficients import StencilCoefficients

__all__ = ["emulate_tiled_kernel"]


def emulate_tiled_kernel(
    u: np.ndarray,
    coeffs: StencilCoefficients,
    block: Tuple[int, int],
    out: Optional[np.ndarray] = None,
    arena: Optional[ScratchArena] = None,
) -> np.ndarray:
    """Run the tiled kernel over a haloed field; returns the haloed output.

    ``u`` follows the usual one-point-halo convention (halos must already
    hold valid values — the resident kernel's halo threads or a prior
    exchange provide them). ``block`` is the (bx, by) thread-block shape;
    tiles sticking past the domain edge are clipped exactly like partially
    filled thread blocks. ``arena`` supplies the staged-slab buffers (the
    process default when ``None``).
    """
    bx, by = block
    if bx < 1 or by < 1:
        raise ValueError(f"bad block {block}")
    nx, ny, nz = (s - 2 for s in u.shape)
    if out is None:
        out = np.zeros_like(u)
    if arena is None:
        arena = default_arena()
    a = coeffs.a

    for i0 in range(0, nx, bx):
        iw = min(bx, nx - i0)  # clipped tile width (remainder tiles)
        for j0 in range(0, ny, by):
            jw = min(by, ny - j0)
            # "Shared memory": a ring of three staged slabs of
            # (iw+2) x (jw+2), rotated as the block iterates over z —
            # behind/current/ahead. The ring buffers are arena-leased, so
            # every tile of the same shape (and every later call) reuses
            # the same allocation, like a kernel's static shared memory.
            ring = [
                arena.get(("emulate.slab", r, iw, jw), (iw + 2, jw + 2))
                for r in range(3)
            ]
            acc = arena.get(("emulate.acc", iw, jw), (iw, jw))

            def load_slab(k, buf):
                # Halo threads load the rim; interior threads their point.
                np.copyto(buf, u[i0 : i0 + iw + 2, j0 : j0 + jw + 2, k])
                return buf

            behind = load_slab(0, ring[0])
            current = load_slab(1, ring[1])
            for k in range(1, nz + 1):
                ahead = load_slab(k + 1, ring[(k + 1) % 3])
                # Each thread (ti, tj) computes its point from the three
                # staged slabs; vectorized over the tile here.
                acc.fill(0.0)
                for di, slab in ((-1, behind), (0, current), (1, ahead)):
                    for dx in (-1, 0, 1):
                        for dy in (-1, 0, 1):
                            c = a[dx + 1, dy + 1, di + 1]
                            if c == 0.0:
                                continue
                            acc += c * slab[
                                1 + dx : 1 + iw + dx, 1 + dy : 1 + jw + dy
                            ]
                out[1 + i0 : 1 + i0 + iw, 1 + j0 : 1 + j0 + jw, k] = acc
                behind, current = current, ahead
    return out
