"""Functional emulation of the tiled GPU stencil kernel ([6] in the paper).

The performance model in :mod:`repro.simgpu.blockmodel` prices a specific
kernel structure: 2-D thread blocks own an xy tile plus halo, iterate over
z, and stage an (bx+2) x (by+2) slab of the current plane in shared memory
while keeping the z-neighbors in registers. This module *executes* that
structure — per tile, with explicit staged slabs and the three-plane
register rotation — so tests can verify it computes exactly what the plain
vectorized sweep computes, remainder tiles, halo staging and all.

This is deliberately slow (it is a semantics check, not a fast path);
production functional runs use :func:`repro.stencil.kernels.apply_stencil`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.stencil.coefficients import StencilCoefficients

__all__ = ["emulate_tiled_kernel"]


def emulate_tiled_kernel(
    u: np.ndarray,
    coeffs: StencilCoefficients,
    block: Tuple[int, int],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run the tiled kernel over a haloed field; returns the haloed output.

    ``u`` follows the usual one-point-halo convention (halos must already
    hold valid values — the resident kernel's halo threads or a prior
    exchange provide them). ``block`` is the (bx, by) thread-block shape;
    tiles sticking past the domain edge are clipped exactly like partially
    filled thread blocks.
    """
    bx, by = block
    if bx < 1 or by < 1:
        raise ValueError(f"bad block {block}")
    nx, ny, nz = (s - 2 for s in u.shape)
    if out is None:
        out = np.zeros_like(u)
    a = coeffs.a

    for i0 in range(0, nx, bx):
        iw = min(bx, nx - i0)  # clipped tile width (remainder tiles)
        for j0 in range(0, ny, by):
            jw = min(by, ny - j0)
            # "Shared memory": three staged slabs of (iw+2) x (jw+2),
            # rotated as the block iterates over z — behind/current/ahead.
            def load_slab(k):
                # Halo threads load the rim; interior threads their point.
                return u[i0 : i0 + iw + 2, j0 : j0 + jw + 2, k].copy()

            behind = load_slab(0)
            current = load_slab(1)
            for k in range(1, nz + 1):
                ahead = load_slab(k + 1)
                # Each thread (ti, tj) computes its point from the three
                # staged slabs; vectorized over the tile here.
                acc = np.zeros((iw, jw))
                for di, slab in ((-1, behind), (0, current), (1, ahead)):
                    for dx in (-1, 0, 1):
                        for dy in (-1, 0, 1):
                            c = a[dx + 1, dy + 1, di + 1]
                            if c == 0.0:
                                continue
                            acc += c * slab[
                                1 + dx : 1 + iw + dx, 1 + dy : 1 + jw + dy
                            ]
                out[1 + i0 : 1 + i0 + iw, 1 + j0 : 1 + j0 + jw, k] = acc
                behind, current = current, ahead
    return out
