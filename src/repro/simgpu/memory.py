"""Device memory: allocations tracked against GPU capacity.

The paper chooses the 420^3 problem "to just fit within the memory of a
single GPU" — capacity is a real constraint the simulator must enforce, so
experiments that would not fit on a C2050 (3 GB) fail loudly here too.

A :class:`DeviceArray` may carry a real NumPy payload (functional mode) or
just a shape (shadow mode); host code must go through explicit H2D/D2H
copies on a :class:`~repro.simgpu.device.Gpu` to move data, mirroring the
CUDA programming model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["DeviceMemoryError", "DeviceArray", "DeviceMemory"]

_ITEMSIZE = 8  # double precision throughout, as in the paper


class DeviceMemoryError(RuntimeError):
    """Raised on out-of-memory or invalid device-memory operations."""


@dataclass
class DeviceArray:
    """An allocation in GPU global memory.

    ``data`` is the functional payload (present only in functional mode);
    ``shape`` and ``nbytes`` are always valid. Device arrays are created via
    :meth:`DeviceMemory.allocate` so capacity is always accounted.
    """

    name: str
    shape: Tuple[int, ...]
    nbytes: int
    data: Optional[np.ndarray] = None
    freed: bool = False
    #: Registered with the NIC for GPUDirect RDMA: the interconnect may
    #: DMA this allocation directly, skipping the host staging hop.  Set
    #: by the GPU+MPI implementations when the machine's interconnect is
    #: ``gpudirect``; purely descriptive for accounting/tests (the time
    #: model lives in the implementations' staging skips).
    registered: bool = False

    @property
    def functional(self) -> bool:
        """True when this array carries real values."""
        return self.data is not None

    def require_data(self) -> np.ndarray:
        """The payload, or an error if running in shadow mode."""
        if self.data is None:
            raise DeviceMemoryError(
                f"device array {self.name!r} has no payload (shadow mode)"
            )
        if self.freed:
            raise DeviceMemoryError(f"use-after-free of device array {self.name!r}")
        return self.data


class DeviceMemory:
    """Allocator for one GPU's global memory."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.used_bytes = 0
        self._live: list[DeviceArray] = []

    @property
    def free_bytes(self) -> int:
        """Unallocated capacity."""
        return self.capacity_bytes - self.used_bytes

    def allocate(
        self,
        name: str,
        shape: Sequence[int],
        functional: bool = False,
        registered: bool = False,
    ) -> DeviceArray:
        """Allocate a device array; raises :class:`DeviceMemoryError` if full.

        ``registered=True`` marks the allocation as NIC-registered for
        GPUDirect RDMA (see :attr:`DeviceArray.registered`).
        """
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape)) * _ITEMSIZE
        if nbytes > self.free_bytes:
            raise DeviceMemoryError(
                f"allocating {name!r} ({nbytes / 1e9:.2f} GB) exceeds device "
                f"memory: {self.used_bytes / 1e9:.2f} of "
                f"{self.capacity_bytes / 1e9:.2f} GB in use"
            )
        data = np.zeros(shape) if functional else None
        arr = DeviceArray(
            name=name, shape=shape, nbytes=nbytes, data=data,
            registered=registered,
        )
        self.used_bytes += nbytes
        self._live.append(arr)
        return arr

    @property
    def registered_bytes(self) -> int:
        """Bytes of live allocations registered for GPUDirect RDMA."""
        return sum(a.nbytes for a in self._live if a.registered)

    def free(self, arr: DeviceArray) -> None:
        """Release an allocation."""
        if arr.freed:
            raise DeviceMemoryError(f"double free of device array {arr.name!r}")
        arr.freed = True
        self._live.remove(arr)
        self.used_bytes -= arr.nbytes

    def live_arrays(self) -> Tuple[DeviceArray, ...]:
        """Currently live allocations (for tests and leak checks)."""
        return tuple(self._live)
