"""The DES-side GPU device: streams, kernel slots, copy engines, PCIe.

Semantics follow CUDA's execution model as the paper's implementations use
it (§IV-E..I):

* operations issued to one :class:`Stream` execute in FIFO order;
* operations in *different* streams may overlap, subject to hardware:
  kernels from different streams run concurrently only on devices with
  ``concurrent_kernels`` (C2050, not C1060); H2D/D2H copies need a copy
  engine (1 on C1060, 2 on C2050) and share the PCIe link's bandwidth;
* the host blocks for ``kernel_launch_us`` per issued operation (driver
  overhead) but does not wait for completion — callers get an event;
* ``synchronize`` waits for all issued work, like ``cudaDeviceSynchronize``.

Functional payloads (closures over NumPy arrays) run when their simulated
operation completes, so data flow follows stream ordering exactly and
misuse (e.g. reading a buffer before its copy completed) produces wrong
numbers in functional tests, just as it would on hardware.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.des import Environment, Event, Resource, SharedBandwidth
from repro.machines.spec import GpuSpec
from repro.obs.tracer import GPU_GROUP_BASE
from repro.simgpu.memory import DeviceMemory

__all__ = ["Stream", "Gpu"]

Action = Optional[Callable[[], None]]


class Stream:
    """A CUDA stream: an in-order queue of device operations.

    Operations are sequenced by callback chaining on the previous tail
    event rather than by spawning a driver process per operation (the seed
    engine's per-op ``runner()`` generators): issuing an op costs one
    completion :class:`Event` and one scheduling slot. When the tail is
    already processed, ``schedule_now`` appends the begin callback to the
    flat core's *live cohort*, so it runs this very timestamp after
    everything already scheduled for it — the same position the seed
    engine's counter would have assigned.
    """

    def __init__(self, gpu: "Gpu", name: str):
        self.gpu = gpu
        self.name = name
        self._tail: Optional[Event] = None

    @property
    def tail(self) -> Optional[Event]:
        """Completion event of the most recently enqueued operation."""
        return self._tail

    def _issue(self, begin: Callable[[object], None], done: Event) -> Event:
        """Sequence ``begin`` after the current tail; ``done`` is the new tail."""
        prev = self._tail
        self._tail = done
        if prev is None or prev.processed:
            self.gpu.env.schedule_now(begin)
        else:
            prev.callbacks.append(begin)
        return done

    def synchronize(self) -> Event:
        """Event that fires when all work issued to this stream is done."""
        env = self.gpu.env
        if self._tail is None or self._tail.processed:
            ev = env.event()
            ev.succeed()
            return ev
        return self._tail


class Gpu:
    """One simulated GPU attached to a DES environment."""

    def __init__(self, env: Environment, spec: GpuSpec, name: str = "gpu"):
        self.env = env
        self.spec = spec
        self.name = name
        self.memory = DeviceMemory(int(spec.memory_gb * 1e9))
        self.pcie = SharedBandwidth(env, spec.pcie_bandwidth_bps, name=f"{name}-pcie")
        kernel_slots = 16 if spec.concurrent_kernels else 1
        self._kernel_slot = Resource(env, capacity=kernel_slots)
        # Copy engines are per-direction on two-engine devices (the C2050
        # has one H2D and one D2H engine); a single-engine device (C1060)
        # serves both directions through the same engine. Two same-direction
        # copies therefore never overlap — the trace-invariant checker
        # asserts exactly this.
        if spec.copy_engines >= 2:
            self._copy_engines = {
                "h2d": Resource(env, capacity=1),
                "d2h": Resource(env, capacity=1),
            }
        else:
            shared = Resource(env, capacity=1)
            self._copy_engines = {"h2d": shared, "d2h": shared}
        # Synchronous pageable copies are serviced one at a time by the
        # driver, regardless of how many host tasks issue them.
        self.sync_copy_lock = Resource(env, capacity=1)
        #: NVLink-class peer fabric shared by the node's devices.  The
        #: runner wires one :class:`SharedBandwidth` per node into every
        #: resident Gpu when the spec has NVLink; None means peer copies
        #: stage through the host (D2H + H2D over both devices' PCIe).
        self.nvlink: Optional[SharedBandwidth] = None
        self._streams: List[Stream] = []
        #: optional repro.obs tracer recording kernel/copy intervals.
        self.tracer = None
        #: optional repro.perturb injector: kernel-clock and PCIe jitter,
        #: drawn per issued operation from this device's (group, lane)
        #: counter streams.
        self.perturb = None
        #: trace group id for this device's lanes (runner assigns one per
        #: device; see repro.obs.tracer group-id conventions).
        self.trace_group = GPU_GROUP_BASE
        # Counters for tests and reports.
        self.kernels_launched = 0
        self.bytes_h2d = 0
        self.bytes_d2h = 0
        self.bytes_p2p = 0

    # -- streams ------------------------------------------------------------
    def stream(self, name: Optional[str] = None) -> Stream:
        """Create a new stream."""
        s = Stream(self, name or f"{self.name}-stream{len(self._streams)}")
        self._streams.append(s)
        return s

    @property
    def host_launch_cost_s(self) -> float:
        """Host-side blocking time to issue one device operation."""
        return self.spec.kernel_launch_us * 1e-6

    # -- operations ---------------------------------------------------------
    def launch_kernel(
        self,
        stream: Stream,
        duration_s: float,
        action: Action = None,
        name: str = "kernel",
    ) -> Event:
        """Issue a kernel of known ``duration_s`` to ``stream``.

        Returns the kernel's completion event. The caller is responsible for
        charging host launch overhead (:attr:`host_launch_cost_s`) to its own
        timeline, since the host — not the device — pays it.
        """
        if duration_s < 0:
            raise ValueError("kernel duration must be non-negative")
        if self.perturb is not None and duration_s > 0.0:
            duration_s *= self.perturb.kernel_factor(self.trace_group)
        self.kernels_launched += 1
        env = self.env
        done = Event(env)

        def begin(_arg):
            slot = self._kernel_slot.request()

            def granted(_ev):
                start = env.now

                def finish(_a):
                    self._kernel_slot.release(slot)
                    if self.tracer is not None:
                        self.tracer.record(
                            "gpu-kernel", name, start, env.now,
                            group=self.trace_group, cat="kernel",
                        )
                    if action is not None:
                        action()
                    done.succeed()

                env.schedule(duration_s, finish)

            slot.callbacks.append(granted)

        return stream._issue(begin, done)

    def _memcpy(
        self, stream: Stream, nbytes: int, action: Action, name: str,
        direction: str = "h2d",
    ) -> Event:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        wire_bytes = nbytes
        if self.perturb is not None and nbytes > 0:
            # DMA/driver interference stretches the wire work, not the
            # engine bookkeeping; the byte counters stay at the true size.
            wire_bytes = nbytes * self.perturb.pcie_factor(self.trace_group)
        env = self.env
        done = Event(env)

        def begin(_arg):
            engines = self._copy_engines[direction]
            engine = engines.request()

            def granted(_ev):
                start = env.now

                def finish(_ev2):
                    engines.release(engine)
                    if self.tracer is not None:
                        self.tracer.record(
                            "gpu-copy", name, start, env.now,
                            group=self.trace_group, cat="copy",
                            args={"dir": direction, "nbytes": nbytes},
                        )
                    if action is not None:
                        action()
                    done.succeed()

                def after_latency(_a):
                    wire = self.pcie.transfer(wire_bytes)
                    wire.callbacks.append(finish)

                env.schedule(self.spec.pcie_latency_s, after_latency)

            engine.callbacks.append(granted)

        return stream._issue(begin, done)

    def memcpy_h2d(
        self, stream: Stream, nbytes: int, action: Action = None, name: str = "h2d"
    ) -> Event:
        """Async host-to-device copy of ``nbytes``; returns completion event."""
        self.bytes_h2d += nbytes
        return self._memcpy(stream, nbytes, action, name, direction="h2d")

    def memcpy_d2h(
        self, stream: Stream, nbytes: int, action: Action = None, name: str = "d2h"
    ) -> Event:
        """Async device-to-host copy of ``nbytes``; returns completion event."""
        self.bytes_d2h += nbytes
        return self._memcpy(stream, nbytes, action, name, direction="d2h")

    def peer_copy(
        self,
        stream: Stream,
        peer: "Gpu",
        nbytes: int,
        action: Action = None,
        name: str = "p2p",
    ) -> Event:
        """Device-to-device copy to ``peer`` (``cudaMemcpyPeerAsync``).

        When both devices hang off the same NVLink fabric (the runner
        wires one shared link per node), the copy DMAs directly over it —
        driven by this device's outbound copy engine, traced on the
        "nvlink" lane.  Without a common fabric it stages through the
        host: a D2H hop over this device's PCIe link, then an H2D hop
        over the peer's, each occupying that device's engine and paying
        its latency — which is exactly why NVLink-class links matter.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if peer is self:
            raise ValueError("peer_copy needs a distinct destination device")
        self.bytes_p2p += nbytes
        wire_bytes = nbytes
        if self.perturb is not None and nbytes > 0:
            wire_bytes = nbytes * self.perturb.pcie_factor(self.trace_group)
        env = self.env
        done = Event(env)
        link = (
            self.nvlink
            if self.nvlink is not None and peer.nvlink is self.nvlink
            else None
        )

        def hop(dev: "Gpu", direction: str, then: Callable[[], None]):
            """One staged hop over ``dev``'s PCIe (engine + latency + wire)."""
            engines = dev._copy_engines[direction]
            engine = engines.request()

            def granted(_ev):
                start = env.now

                def finish(_a):
                    engines.release(engine)
                    if dev.tracer is not None:
                        dev.tracer.record(
                            "gpu-copy", f"{name}:{direction}", start, env.now,
                            group=dev.trace_group, cat="copy",
                            args={"dir": direction, "nbytes": nbytes,
                                  "peer": peer.name if dev is self else self.name},
                        )
                    then()

                def after_latency(_a):
                    wire = dev.pcie.transfer(wire_bytes)
                    wire.callbacks.append(finish)

                env.schedule(dev.spec.pcie_latency_s, after_latency)

            engine.callbacks.append(granted)

        def complete():
            if action is not None:
                action()
            done.succeed()

        if link is not None:
            def begin(_arg):
                engines = self._copy_engines["d2h"]
                engine = engines.request()

                def granted(_ev):
                    start = env.now

                    def finish(_a):
                        engines.release(engine)
                        if self.tracer is not None:
                            self.tracer.record(
                                "nvlink", name, start, env.now,
                                group=self.trace_group, cat="copy",
                                args={"src": self.name, "dst": peer.name,
                                      "nbytes": nbytes},
                            )
                        complete()

                    def after_latency(_a):
                        wire = link.transfer(wire_bytes)
                        wire.callbacks.append(finish)

                    env.schedule(self.spec.nvlink_latency_s, after_latency)

                engine.callbacks.append(granted)
        else:
            def begin(_arg):
                hop(self, "d2h", lambda: hop(peer, "h2d", complete))

        return stream._issue(begin, done)

    # -- synchronization ------------------------------------------------------
    def synchronize(self, streams: Optional[List[Stream]] = None) -> Event:
        """Event that fires when all issued work (or ``streams``) completes."""
        targets = streams if streams is not None else self._streams
        tails = [s.synchronize() for s in targets]
        if not tails:
            ev = self.env.event()
            ev.succeed()
            return ev
        return self.env.all_of(tails)
