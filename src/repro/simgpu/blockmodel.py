"""GPU thread-block performance model (paper §V-C, Figs. 7/8).

The GPU-resident kernel partitions the domain in x and y; each 2-D thread
block owns an xy tile plus halo and iterates over z, staging an xy slab in
shared memory per iteration ([6] in the paper). Block size affects the rate
through five mechanisms, all modeled here:

1. **coalescing** — global loads are fastest when the x extent covers whole
   warps; x = 16 (half warp) pays a penalty, which is why the paper only
   measures x in {16, 32, 64, 128} and finds 32 best;
2. **warp quantization** — threads are issued in warps of 32, so a block of
   ``bx*by`` threads wastes the tail of its last warp;
3. **halo amplification** — the slab staged to shared memory is
   ``(bx+2)(by+2)`` for ``bx*by`` useful results, so small tiles move more
   bytes per point;
4. **occupancy** — resident blocks per SM are limited by shared memory,
   thread slots, block slots and registers; low occupancy cannot hide
   memory latency (diminishing returns, modeled as occ^0.35);
5. **remainder waste** — blocks sticking past the 420-point extent do no
   useful work.

On top of these sits a calibrated per-device sweet-spot bump over the y
extent (``by_sweet_spot``): the measured optima (32x11 on C1060, 32x8 on
C2050) reflect register/scheduler effects the occupancy arithmetic cannot
reproduce from first principles; see calibration notes in DESIGN.md.

Rates are normalized so the best admissible block delivers the device's
calibrated ``stencil_gflops_best``.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterator, Sequence, Tuple

from repro.machines.spec import GpuSpec
from repro.stencil.coefficients import FLOPS_PER_POINT

__all__ = [
    "admissible_blocks",
    "block_efficiency",
    "best_block",
    "stencil_kernel_time",
    "kernel_rate_gflops",
]

#: x extents the paper measures: at least a half warp, power-of-two spacing.
X_CANDIDATES: Tuple[int, ...] = (16, 32, 64, 128)

_ITEMSIZE = 8


def admissible_blocks(gpu: GpuSpec) -> Iterator[Tuple[int, int]]:
    """All (bx, by) the paper's sweep considers for this device.

    x in {16, 32, 64, 128}; y from 1 up to the device's max block size
    (512 threads on C1060, 1024 on C2050).
    """
    for bx in X_CANDIDATES:
        for by in range(1, gpu.max_threads_per_block // bx + 1):
            yield (bx, by)


#: Per-doubling penalty for x extents beyond one warp: wider rows raise
#: per-thread latency exposure and halve block-level parallelism in x, and
#: the paper finds x = 32 (one warp) best throughout (§V-C).
WIDE_BLOCK_PENALTY = 0.85


def _coalesce_factor(gpu: GpuSpec, bx: int) -> float:
    """Memory-transaction efficiency of the x extent."""
    if bx % gpu.warp_size == 0:
        return WIDE_BLOCK_PENALTY ** math.log2(bx / gpu.warp_size)
    if bx % (gpu.warp_size // 2) == 0:
        return 0.80  # half-warp transactions
    return 0.45


def _occupancy(gpu: GpuSpec, bx: int, by: int) -> float:
    """Fraction of the SM's warp slots occupied by resident blocks."""
    threads = bx * by
    warps_per_block = math.ceil(threads / gpu.warp_size)
    shared_per_block = (bx + 2) * (by + 2) * _ITEMSIZE
    by_shared = int(gpu.shared_mem_per_sm_kb * 1024 // shared_per_block)
    by_threads = gpu.max_threads_per_sm // threads
    by_regs = gpu.register_file_size // max(1, threads * gpu.regs_per_thread)
    blocks = max(0, min(gpu.max_blocks_per_sm, by_shared, by_threads, by_regs))
    if blocks == 0:
        return 0.0
    max_warps = gpu.max_threads_per_sm // gpu.warp_size
    return min(1.0, blocks * warps_per_block / max_warps)


def _sweet_spot(gpu: GpuSpec, by: int) -> float:
    """Calibrated per-device scheduler/register bump over the y extent."""
    return 1.0 + gpu.by_sweet_amp * math.exp(
        -((by - gpu.by_sweet_spot) ** 2) / (2.0 * gpu.by_sweet_tol**2)
    )


def block_efficiency(
    gpu: GpuSpec, block: Tuple[int, int], shape: Sequence[int] = (420, 420, 420)
) -> float:
    """Unnormalized efficiency of a (bx, by) block on an (nx, ny, nz) tile.

    Zero for inadmissible blocks (over the thread limit or zero occupancy).
    """
    bx, by = block
    nx, ny = int(shape[0]), int(shape[1])
    if bx * by > gpu.max_threads_per_block or bx < 1 or by < 1:
        return 0.0
    occ = _occupancy(gpu, bx, by)
    if occ == 0.0:
        return 0.0
    threads = bx * by
    warp_util = threads / (math.ceil(threads / gpu.warp_size) * gpu.warp_size)
    halo_util = threads / ((bx + 2) * (by + 2))
    cover_x = nx / (math.ceil(nx / bx) * bx)
    cover_y = ny / (math.ceil(ny / by) * by)
    return (
        _coalesce_factor(gpu, bx)
        * warp_util
        * halo_util
        * (occ**0.35)
        * cover_x
        * cover_y
        * _sweet_spot(gpu, by)
    )


@lru_cache(maxsize=256)
def _best_block_cached(gpu: GpuSpec, shape: Tuple[int, int, int]) -> Tuple[Tuple[int, int], float]:
    best, best_eff = None, 0.0
    for blk in admissible_blocks(gpu):
        eff = block_efficiency(gpu, blk, shape)
        if eff > best_eff:
            best, best_eff = blk, eff
    if best is None:
        raise ValueError(f"no admissible block for {gpu.name}")
    return best, best_eff


def best_block(
    gpu: GpuSpec, shape: Sequence[int] = (420, 420, 420)
) -> Tuple[int, int]:
    """The best (bx, by) over the paper's sweep for this device and tile."""
    shape3 = tuple(int(s) for s in shape)
    if len(shape3) != 3:
        raise ValueError(f"shape must be 3-D, got {shape}")
    return _best_block_cached(gpu, shape3)[0]


def kernel_rate_gflops(
    gpu: GpuSpec,
    block: Tuple[int, int],
    shape: Sequence[int] = (420, 420, 420),
) -> float:
    """Delivered GF of the resident stencil kernel at ``block``.

    Normalized so the best block on the full 420^3 domain delivers the
    calibrated ``stencil_gflops_best`` (86 GF on the C2050, Fig. 8).
    """
    shape3 = tuple(int(s) for s in shape)
    _, ref_eff = _best_block_cached(gpu, (420, 420, 420))
    eff = block_efficiency(gpu, block, shape3)
    if eff <= 0.0:
        raise ValueError(f"block {block} not admissible on {gpu.name}")
    flop_rate = gpu.stencil_gflops_best * eff / ref_eff
    # Memory-bandwidth ceiling: the slab-staged kernel streams ~20 B/point
    # of global traffic (read + write + halo reload) at best.
    mem_rate = gpu.mem_bandwidth_gbs * (eff / ref_eff) / 20.0 * FLOPS_PER_POINT
    return min(flop_rate, mem_rate)


def stencil_kernel_time(
    gpu: GpuSpec,
    points: int,
    block: Tuple[int, int] | None = None,
    shape: Sequence[int] = (420, 420, 420),
) -> float:
    """Seconds for the resident/interior stencil kernel over ``points``."""
    if points <= 0:
        return 0.0
    if block is None:
        block = best_block(gpu, shape)
    rate = kernel_rate_gflops(gpu, block, shape) * 1e9
    return points * FLOPS_PER_POINT / rate
