"""Simulated GPU: device memory, streams, PCIe, and kernel cost models.

This package stands in for CUDA (Fortran) on the simulated machines:

* :mod:`~repro.simgpu.memory` — device allocations distinct from host
  memory, with capacity accounting against the GPU's global memory
  (the paper sizes 420^3 "to just fit within the memory of a single GPU").
* :mod:`~repro.simgpu.blockmodel` — the 2-D thread-block performance model
  behind Figs. 7/8: warp quantization, halo amplification of the
  shared-memory slab, occupancy, remainder waste, and the calibrated
  per-device sweet spot.
* :mod:`~repro.simgpu.device` — the DES-side device: CUDA streams with
  in-order execution, kernel slots (concurrent kernels on Fermi only),
  copy engines, and async H2D/D2H transfers over a shared PCIe link.
  Functional payloads (NumPy) execute when their simulated operation
  completes, so data semantics follow stream ordering exactly.
"""

from repro.simgpu.blockmodel import (
    admissible_blocks,
    best_block,
    block_efficiency,
    stencil_kernel_time,
)
from repro.simgpu.device import Gpu, Stream
from repro.simgpu.memory import DeviceArray, DeviceMemory, DeviceMemoryError

__all__ = [
    "DeviceArray",
    "DeviceMemory",
    "DeviceMemoryError",
    "Gpu",
    "Stream",
    "admissible_blocks",
    "best_block",
    "block_efficiency",
    "stencil_kernel_time",
]
