"""Lines-of-code accounting for Fig. 2.

The paper measures programmer-productivity cost as Fortran lines per
implementation, minus blank lines and comment-only lines (Fig. 2: 215 for
the single-task baseline up to exactly 860 — 4x — for the full-overlap
hybrid). We reproduce the figure two ways:

* the paper's reported/derived Fortran counts (stored on each
  :class:`~repro.core.base.Implementation`), and
* the same counting rule applied to *this repository's* implementation
  modules, so the relative complexity of the Python reproduction can be
  compared against the paper's Fortran.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Dict

from repro.core.registry import IMPLEMENTATIONS

__all__ = ["count_loc_text", "count_module_loc", "implementation_loc", "fortran_loc"]

#: Helper modules each implementation would contain if it were a standalone
#: program, as the paper's Fortran codes are. Every MPI implementation
#: carries the serialized exchange; every GPU+MPI implementation carries the
#: device-geometry helpers; the hybrids also carry their common setup.
_EXCHANGE = "repro.core.exchange"
_GPU_COMMON = "repro.core.gpu_common"
_HYBRID_COMMON = "repro.core.hybrid_common"
_SHARED = {
    "bulk": [_EXCHANGE],
    "bulk_direct": ["repro.decomp.halo26"],
    "nonblocking": [_EXCHANGE],
    "thread_overlap": [_EXCHANGE],
    "gpu_bulk": [_GPU_COMMON],
    "gpu_streams": [_GPU_COMMON],
    "hybrid_bulk": [_EXCHANGE, _GPU_COMMON, _HYBRID_COMMON],
    "hybrid_overlap": [_EXCHANGE, _GPU_COMMON, _HYBRID_COMMON],
}


def count_loc_text(text: str) -> int:
    """Count non-blank, non-comment-only lines, the paper's Fig. 2 rule.

    Docstring lines count as code here (they are the Python analogue of
    the header comments the paper's rule also excludes — excluded below).
    """
    count = 0
    in_doc = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_doc:
            if '"""' in line or "'''" in line:
                in_doc = False
            continue
        if line.startswith('"""') or line.startswith("'''"):
            quote = line[:3]
            # One-line docstring?
            if line.count(quote) >= 2 and len(line) > 3:
                continue
            in_doc = True
            continue
        if line.startswith("#"):
            continue
        count += 1
    return count


def count_module_loc(module_name: str) -> int:
    """LoC of one importable module's source file."""
    mod = importlib.import_module(module_name)
    return count_loc_text(inspect.getsource(mod))


def implementation_loc() -> Dict[str, int]:
    """Python LoC for each implementation (module + attributed shared code)."""
    out: Dict[str, int] = {}
    for key, impl in IMPLEMENTATIONS.items():
        module = type(impl).__module__
        total = count_module_loc(module)
        for shared in _SHARED.get(key, []):
            total += count_module_loc(shared)
        out[key] = total
    return out


def fortran_loc() -> Dict[str, int]:
    """The paper's Fortran LoC per implementation (Fig. 2)."""
    return {key: impl.fortran_loc for key, impl in IMPLEMENTATIONS.items()}
