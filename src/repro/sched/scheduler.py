"""The shared task scheduler behind sweeps, autotune, replicas and grids.

One :class:`Scheduler` instance turns batches of
:class:`~repro.core.config.RunConfig` into deduplicated tasks executed by
a persistent :class:`concurrent.futures.ProcessPoolExecutor` worker pool.
See :mod:`repro.sched` for the contract (dedup, cache short-circuit,
bounded crash retry with poisoning, resumable journal, telemetry).

Execution model
---------------
``map(configs)`` is synchronous: it returns results in request order,
bit-identical to a serial ``[run(c) for c in configs]``.  Internally each
distinct config key owns one :class:`~repro.sched.task.TaskRecord`;
requesters of an already-known key — within the batch, across batches, or
from concurrent threads — coalesce onto the existing record and wait on
its ``done`` event instead of resubmitting.  Configs that cannot travel
through the pool (functional or traced runs, or any run while a
process-global trace capture is installed) execute inline in the parent,
exactly as the serial path would.

Crash recovery
--------------
A dying worker breaks the whole ``ProcessPoolExecutor`` (every pending
future raises :class:`BrokenExecutor`), so blame is ambiguous: any of the
in-flight configs could be the culprit.  The scheduler rebuilds the pool,
bumps the attempt count of every suspect, and resubmits the ones still
under ``max_retries`` in parallel.  A suspect that *exceeds* the bound is
never poisoned on ambiguous evidence — it is placed in a **quarantine**
and re-run *solo* (one task in the pool, everything else parked).  A solo
crash is exact blame: the config is poisoned and raises
:class:`PoisonedConfigError` to its requesters; a solo success exonerates
an innocent that was merely co-scheduled with a crasher.  Once the
quarantine drains, parked work resumes in parallel.  The deterministic
crasher is weeded out after at most ``max_retries`` ambiguous crashes
plus one solo crash; the rest of the batch always completes.
"""

from __future__ import annotations

import logging
import os
import pickle
import statistics
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.config import RunConfig, RunResult
from repro.sched.journal import Journal, open_journal
from repro.sched.task import TaskRecord, TaskState
from repro.sched.worker import execute_chunk, init_worker

__all__ = [
    "Scheduler",
    "SchedulerError",
    "PoisonedConfigError",
    "configure",
    "active_scheduler",
    "scheduled",
]

log = logging.getLogger("repro.sched")

#: Counter names reported by :meth:`Scheduler.stats` (always all present).
COUNTER_NAMES = (
    "submitted",
    "coalesced",
    "cache_hits",
    "journal_hits",
    "simulated",
    "inline",
    "failed",
    "poisoned",
    "retries",
    "crashes",
)


class SchedulerError(RuntimeError):
    """Base class for scheduler-raised errors."""


class PoisonedConfigError(SchedulerError):
    """A config crashed its worker more than ``max_retries`` times."""

    def __init__(self, cfg: RunConfig, attempts: int):
        self.cfg = cfg
        self.attempts = attempts
        super().__init__(
            f"config {cfg.implementation}@{cfg.machine.name} cores={cfg.cores} "
            f"threads={cfg.threads_per_task} T={cfg.box_thickness} crashed its "
            f"worker {attempts} times and is poisoned (bound: retries exhausted)"
        )


class Scheduler:
    """Deduplicating parallel executor for batches of run configs.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` executes inline (serial order, no pool)
        while keeping dedup, cache short-circuit, journal and telemetry.
    cache_dir:
        Run-cache directory handed to every worker. Defaults to the
        directory of the process-wide cache (:func:`repro.cache.active_cache`)
        when one is installed.
    journal:
        Path of the resumable journal (a ``.jsonl`` file or a sharded
        journal directory, see :func:`repro.sched.journal.open_journal`),
        or an already-open :class:`~repro.sched.journal.Journal` /
        :class:`~repro.sched.journal.ShardedJournal`; ``None`` disables
        journaling.  Journal appends are group-committed; ``map`` flushes
        before surfacing results, so nothing unjournaled is ever returned.
    max_retries:
        Worker crashes a single config may survive before being poisoned.
    straggler_factor:
        A completed task is logged as a straggler when its wall time
        exceeds ``straggler_factor`` x the batch median.
    chunk_max_tasks:
        Upper bound on tasks per pool submission.  Payloads are pickled
        once and shipped in chunks of roughly ``len(batch)/(jobs*4)``
        (clamped to ``[1, chunk_max_tasks]``) to amortize per-future IPC
        while keeping enough chunks in flight to load every worker.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        journal: Optional[Union[str, Journal]] = None,
        max_retries: int = 2,
        straggler_factor: float = 3.0,
        chunk_max_tasks: int = 32,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if chunk_max_tasks < 1:
            raise ValueError(
                f"chunk_max_tasks must be >= 1, got {chunk_max_tasks}"
            )
        self.jobs = int(jobs)
        self.max_retries = int(max_retries)
        self.straggler_factor = float(straggler_factor)
        self.chunk_max_tasks = int(chunk_max_tasks)
        if cache_dir is None:
            from repro.cache import active_cache

            active = active_cache()
            cache_dir = active.directory if active is not None else None
        self.cache_dir = cache_dir
        if journal is None:
            self.journal = None
        elif isinstance(journal, (str, os.PathLike)):
            self.journal = open_journal(journal)
        else:
            self.journal = journal  # already-open Journal/ShardedJournal
        #: parent-side cache handle for probing/storing when no ambient
        #: cache is installed (lazy; see _probe_cache)
        self._cache: Optional[Any] = None
        #: test/CI hook: ``(cfg, attempt) -> bool`` — True crashes the worker
        #: assigned to this config on this attempt (see repro.sched.worker).
        self.fault_injector: Optional[Callable[[RunConfig, int], bool]] = None

        self._lock = threading.RLock()
        #: signalled by a future's done-callback; drain loops sleep on it
        self._cond = threading.Condition(self._lock)
        self._exec: Optional[ProcessPoolExecutor] = None
        #: key -> terminal record (session-wide dedup, including failures)
        self._memo: Dict[str, TaskRecord] = {}
        #: key -> in-flight record (coalescing target)
        self._inflight: Dict[str, TaskRecord] = {}
        #: chunk future -> the records it carries (drainers claim by pop)
        self._chunk_records: Dict[Future, List[TaskRecord]] = {}
        #: records awaiting a *solo* confirmation run (exact crash blame)
        self._quarantine: List[TaskRecord] = []
        #: the record currently running solo, if any
        self._qactive: Optional[TaskRecord] = None
        #: records parked while the quarantine drains
        self._parked: List[TaskRecord] = []
        self._counters: Dict[str, int] = {k: 0 for k in COUNTER_NAMES}
        #: completion hooks: ``fn(record)`` fired exactly once per record
        #: reaching a terminal state, always *outside* the scheduler lock
        #: (see add_completion_hook)
        self._hooks: List[Callable[[TaskRecord], None]] = []
        #: wall seconds of every *simulated* task, in completion order
        self.wall_times: List[float] = []
        #: telemetry dicts of detected stragglers (see TaskRecord.describe)
        self.straggler_log: List[Dict[str, Any]] = []
        #: telemetry dicts of poisoned configs
        self.poisoned: List[Dict[str, Any]] = []
        self._closed = False

    # -- pool lifecycle -------------------------------------------------------
    def _executor(self) -> ProcessPoolExecutor:
        if self._exec is None:
            self._exec = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=init_worker,
                initargs=(self.cache_dir,),
            )
        return self._exec

    def _rebuild_pool(self) -> None:
        if self._exec is not None:
            self._exec.shutdown(wait=False, cancel_futures=True)
            self._exec = None

    def close(self) -> None:
        """Shut the worker pool down and close the journal."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._exec is not None:
                self._exec.shutdown(wait=True, cancel_futures=True)
                self._exec = None
            if self.journal is not None:
                self.journal.close()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission -----------------------------------------------------------
    @staticmethod
    def _forced(cfg: RunConfig) -> RunConfig:
        """Apply the process-global noise override before keying.

        Mirrors :func:`repro.core.runner.run`, so a scheduled run keys and
        simulates exactly the config the serial path would.
        """
        from repro.perturb import forced_override

        forced = forced_override()
        if forced is not None and cfg.seed is None and cfg.noise is None:
            return cfg.with_(seed=forced[0], noise=forced[1])
        return cfg

    @staticmethod
    def _poolable(cfg: RunConfig) -> bool:
        """Whether this config's run may execute in a worker process.

        Functional and traced runs carry non-scalar artifacts, and a
        process-global trace capture hook must observe every run in the
        installing process — all of those execute inline instead.
        """
        from repro.cache import cacheable
        from repro.obs.capture import active_capture

        return cacheable(cfg) and active_capture() is None

    def _submit_chunk(self, recs: Sequence[TaskRecord]) -> None:
        """Dispatch one chunk of records to the pool (caller holds the lock).

        Each record's payload is pickled exactly once (``rec.blob``,
        reused verbatim across crash retries); the pool then ships the
        whole chunk through a single future, amortizing submit/IPC
        overhead over ``len(recs)`` tasks.
        """
        items: List[Union[bytes, Dict[str, Any]]] = []
        for rec in recs:
            if self.fault_injector is not None and self.fault_injector(
                rec.cfg, rec.attempts
            ):
                items.append({"crash": True, "key": rec.key})
                continue
            if rec.blob is None:
                rec.blob = pickle.dumps(
                    {"cfg": rec.cfg, "key": rec.key},
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            items.append(rec.blob)
        fut = self._executor().submit(execute_chunk, items)
        now = time.perf_counter()
        for rec in recs:
            rec.state = TaskState.RUNNING
            rec.t_submit = now
            rec.future = fut
        self._chunk_records[fut] = list(recs)
        fut.add_done_callback(self._wake)

    def _submit_record(self, rec: TaskRecord) -> None:
        """Dispatch one record solo (quarantine confirmation runs)."""
        self._submit_chunk([rec])

    def _submit_records(self, recs: Sequence[TaskRecord]) -> None:
        """Dispatch a batch in size-tuned chunks (caller holds the lock).

        Chunk size targets ~4 chunks per worker so stragglers cannot
        serialize the tail, bounded by ``chunk_max_tasks`` so one future
        never carries an unbounded payload.
        """
        if not recs:
            return
        size = max(
            1,
            min(self.chunk_max_tasks, -(-len(recs) // (self.jobs * 4))),
        )
        for i in range(0, len(recs), size):
            self._submit_chunk(recs[i:i + size])

    def _wake(self, _fut: Future) -> None:
        """Future done-callback: nudge every drain loop to re-scan."""
        with self._cond:
            self._cond.notify_all()

    # -- completion hooks ------------------------------------------------------
    def add_completion_hook(
        self, fn: Callable[[TaskRecord], None]
    ) -> Callable[[TaskRecord], None]:
        """Register ``fn(record)`` to fire when a record goes terminal.

        Fired exactly once per distinct record — on simulation completion,
        failure, poisoning, or a warm cache/journal short-circuit — never
        for coalesced re-requests of an already-terminal key.  Hooks are
        invoked **outside** the scheduler lock, from whichever thread
        completed the record, so a hook may safely call back into
        ``stats()``/``snapshot()`` (or hand the event to another thread
        that does) without deadlocking a concurrent ``map()``.  Hook
        exceptions are logged and swallowed.  Returns ``fn`` so callers
        can unregister it later.
        """
        with self._lock:
            self._hooks.append(fn)
        return fn

    def remove_completion_hook(self, fn: Callable[[TaskRecord], None]) -> None:
        """Unregister a completion hook (no-op when not registered)."""
        with self._lock:
            try:
                self._hooks.remove(fn)
            except ValueError:
                pass

    def _fire_hooks(self, recs: Sequence[TaskRecord]) -> None:
        """Invoke completion hooks for newly terminal records.

        Must be called WITHOUT the scheduler lock held: hooks are user
        code (the serve path bridges them onto an event loop) and may
        re-enter telemetry methods from other threads.
        """
        if not recs:
            return
        with self._lock:
            hooks = list(self._hooks)
        if not hooks:
            return
        for rec in recs:
            for fn in hooks:
                try:
                    fn(rec)
                except Exception:  # never let a hook break the scheduler
                    log.exception("completion hook failed for %s", rec)

    def map(
        self,
        configs: Iterable[RunConfig],
        return_exceptions: bool = False,
    ) -> List[Union[RunResult, BaseException]]:
        """Execute a batch; results come back in request order.

        With ``return_exceptions=False`` (default) the first failed or
        poisoned task raises (after the whole batch settled, so sibling
        results are journaled/cached).  With ``return_exceptions=True``
        failures are returned in-slot as the exception object.
        """
        if self._closed:
            raise SchedulerError("scheduler is closed")
        # The per-config loop below is the warm-lookup hot path (millions
        # of configs resolve here without touching a worker), so the
        # ambient lookups are hoisted out: one forced-noise resolution,
        # one capture check, and batch key hashing (memoized per config
        # instance) before the lock is taken.
        from repro.cache import cacheable, config_key
        from repro.obs.capture import active_capture
        from repro.perturb import forced_override

        forced = forced_override()
        if forced is not None:
            cfgs = [
                c.with_(seed=forced[0], noise=forced[1])
                if c.seed is None and c.noise is None else c
                for c in configs
            ]
        else:
            cfgs = list(configs)
        capturing = active_capture() is not None
        keys: List[Optional[str]] = [
            config_key(c) if not capturing and cacheable(c) else None
            for c in cfgs
        ]
        slots: List[Optional[TaskRecord]] = [None] * len(cfgs)
        inline: List[int] = []  # indices executed in the parent
        owned: List[TaskRecord] = []  # records this call submitted
        to_submit: List[TaskRecord] = []  # new records, chunked below
        waiting: List[TaskRecord] = []  # records owned by someone else
        fresh_done: List[TaskRecord] = []  # warm short-circuits (hooks fire)

        cache = self._probe_cache()
        with self._lock:
            for i, cfg in enumerate(cfgs):
                self._counters["submitted"] += 1
                key = keys[i]
                if key is None:  # functional/traced/captured: not poolable
                    inline.append(i)
                    continue
                rec = self._memo.get(key)
                if rec is not None:  # session dedup (results and failures)
                    self._counters["coalesced"] += 1
                    slots[i] = rec
                    continue
                rec = self._inflight.get(key)
                if rec is not None:  # in-flight coalescing
                    self._counters["coalesced"] += 1
                    slots[i] = rec
                    if rec not in waiting and rec not in owned:
                        waiting.append(rec)
                    continue
                rec = TaskRecord(key, cfg)
                slots[i] = rec
                # Warm journal entry: replay, no worker occupied.
                if self.journal is not None and key in self.journal:
                    rec.payload = self.journal.get(key)
                    rec.state = TaskState.JOURNALED
                    rec.done.set()
                    self._memo[key] = rec
                    self._counters["journal_hits"] += 1
                    fresh_done.append(rec)
                    continue
                # Warm cache entry: replay, no worker occupied.  Misses are
                # not charged here — the worker that simulates the config
                # performs (and counts) the authoritative lookup.
                if cache is not None:
                    cached = cache.get(cfg, record_miss=False)
                    if cached is not None:
                        rec.payload = {
                            "elapsed_s": cached.elapsed_s,
                            "phases": dict(cached.phases),
                            "comm_stats": dict(cached.comm_stats),
                        }
                        rec.state = TaskState.CACHED
                        rec.done.set()
                        self._memo[key] = rec
                        self._counters["cache_hits"] += 1
                        fresh_done.append(rec)
                        if self.journal is not None:
                            self.journal.record(key, rec.payload)
                        continue
                self._inflight[key] = rec
                if self.jobs == 1:
                    owned.append(rec)  # executed inline below, memoized
                else:
                    if self._quarantining():
                        self._parked.append(rec)  # resumes after quarantine
                    else:
                        to_submit.append(rec)
                    owned.append(rec)
            # One chunked dispatch for the whole batch's fresh records.
            self._submit_records(to_submit)
        # Warm short-circuits went terminal during intake; notify hooks
        # now that the lock is released.
        self._fire_hooks(fresh_done)

        # Inline execution (functional/traced/captured runs): serial order,
        # exactly the code path the unscheduled pipeline takes.
        from repro.core.runner import run

        inline_results: Dict[int, Union[RunResult, BaseException]] = {}
        for i in inline:
            with self._lock:
                self._counters["inline"] += 1
            try:
                inline_results[i] = run(cfgs[i])
            except BaseException as exc:
                if not return_exceptions:
                    raise
                inline_results[i] = exc

        if self.jobs == 1:
            self._drain_inline(owned)
        else:
            self._drain_pool(owned)
        for rec in waiting:
            rec.done.wait()

        # Durability invariant: group-committed journal records covering
        # this batch become durable *before* any result is surfaced, so a
        # caller can never hold a result whose record a SIGKILL would lose.
        if self.journal is not None:
            self.journal.flush()

        out: List[Union[RunResult, BaseException]] = []
        first_error: Optional[BaseException] = None
        for i, cfg in enumerate(cfgs):
            rec = slots[i]
            if rec is None:
                out.append(inline_results[i])
                continue
            rec.done.wait()
            if rec.ok:
                out.append(rec.result(cfg))
            else:
                err = rec.error or SchedulerError(f"task {rec.key} lost")
                if first_error is None:
                    first_error = err
                out.append(err)
        if first_error is not None and not return_exceptions:
            raise first_error
        return out

    def _probe_cache(self):
        """Parent-side run cache: the ambient one, else a private handle.

        The ambient cache (:func:`repro.cache.active_cache`) wins when
        installed so its hit/miss counters stay authoritative.  Otherwise
        a scheduler constructed with an explicit ``cache_dir`` opens its
        own handle, keeping warm short-circuits (and jobs=1 stores)
        working without process-global configuration.
        """
        from repro.cache import RunCache, active_cache

        cache = active_cache()
        if cache is not None:
            return cache
        if self.cache_dir is None:
            return None
        if self._cache is None:
            self._cache = RunCache(self.cache_dir)
        return self._cache

    # -- inline (jobs=1) execution -------------------------------------------
    def _drain_inline(self, owned: Sequence[TaskRecord]) -> None:
        from repro.cache import active_cache
        from repro.core.runner import run

        for rec in owned:
            rec.state = TaskState.RUNNING
            t0 = time.perf_counter()
            try:
                result = run(rec.cfg)
            except BaseException as exc:
                self._finish_failure(rec, exc)
                continue
            # ``run`` stores through the ambient cache when one is
            # installed; with only a private ``cache_dir`` handle, mirror
            # the worker protocol here (authoritative miss, then store) so
            # jobs=1 leaves the same on-disk artifacts a pool would.
            cache = self._probe_cache()
            if cache is not None and cache is not active_cache():
                if cache.get(rec.cfg) is None:
                    cache.put(rec.cfg, result)
            payload = {
                "elapsed_s": result.elapsed_s,
                "phases": dict(result.phases),
                "comm_stats": dict(result.comm_stats),
                "wall_s": time.perf_counter() - t0,
            }
            self._finish_success(rec, payload)

    # -- pool draining --------------------------------------------------------
    def _quarantining(self) -> bool:
        """Whether the pool is reserved for solo confirmation runs."""
        return bool(self._quarantine) or self._qactive is not None or bool(
            self._parked
        )

    def _pump(self) -> None:
        """Advance the quarantine (caller holds the lock).

        Submits the next quarantined record *solo*; once the quarantine is
        empty, flushes every parked record back into the pool in parallel.
        """
        if self._qactive is not None:
            if not self._qactive.done.is_set():
                return  # solo run in progress
            self._qactive = None
        while self._quarantine:
            rec = self._quarantine.pop(0)
            if rec.done.is_set():
                continue
            self._submit_record(rec)
            self._qactive = rec
            return
        if self._parked:
            parked, self._parked = self._parked, []
            self._submit_records(
                [rec for rec in parked if not rec.done.is_set()]
            )

    def _drain_pool(self, owned: Sequence[TaskRecord]) -> None:
        """Wait for owned records, recovering from broken pools.

        Event-driven: every submitted future carries a done-callback
        that signals ``self._cond`` (as do the ``_finish_*`` paths and
        crash recovery), so each pass only scans this call's still
        pending records for settled futures — no per-iteration waiter
        registration on every pending future, which made large batches
        quadratic in future-lock traffic. The wait timeout is a safety
        net for records parked behind a quarantine, whose future is
        ``None`` until the pump resubmits them.
        """
        pending = [rec for rec in owned if not rec.done.is_set()]
        while pending:
            ready: List[Future] = []
            with self._cond:
                self._pump()
                pending = [r for r in pending if not r.done.is_set()]
                if not pending:
                    return
                seen = set()
                for rec in pending:
                    fut = rec.future
                    if fut is not None and fut.done() and id(fut) not in seen:
                        seen.add(id(fut))
                        ready.append(fut)
                if not ready:
                    self._cond.wait(timeout=0.05)
                    continue
            for fut in ready:
                self._handle_chunk(fut)

    def _handle_chunk(self, fut: Future) -> None:
        """Settle one completed chunk future (claimed by pop, so exactly
        one drainer processes it even when several own records in it)."""
        with self._lock:
            recs = self._chunk_records.pop(fut, None)
        if recs is None:
            return  # another drainer claimed it, or it went stale
        # Records resubmitted by crash recovery carry a newer future and
        # must not be settled from this (stale) one.
        live = [r for r in recs if not r.done.is_set() and r.future is fut]
        exc = fut.exception()
        if exc is None:
            outcomes = fut.result()
            by_key = {o.get("key"): o for o in outcomes}
            for rec in live:
                outcome = by_key.get(rec.key)
                if outcome is None:
                    self._finish_failure(
                        rec,
                        SchedulerError(
                            f"task {rec.key[:12]} missing from its chunk result"
                        ),
                    )
                elif "error" in outcome:
                    # Per-task simulator exception, shipped back as data so
                    # chunk-mates keep their results.
                    self._finish_failure(rec, outcome["error"])
                else:
                    payload = dict(outcome)
                    self._merge_cache_delta(payload.pop("cache_delta", None))
                    rec.worker_pid = payload.pop("pid", None)
                    self._finish_success(rec, payload)
        elif isinstance(exc, BrokenExecutor):
            if live:
                self._on_broken(fut, live[0])
        else:
            # CancelledError after a pool rebuild (records were already
            # resubmitted, live is empty) or a submit-side error.
            for rec in live:
                self._finish_failure(rec, exc)

    def _on_broken(self, fut: Future, rec: TaskRecord) -> None:
        """Rebuild the pool after a worker crash; assign blame.

        Every in-flight record with a live future is a *suspect*.  One
        suspect means exact blame (it was running solo): bump its count
        and poison past ``max_retries``.  Several suspects mean ambiguous
        blame: bump everyone and resubmit, except that a suspect past the
        bound goes to the quarantine for a solo confirmation run instead
        of being poisoned on circumstantial evidence.
        """
        poisoned_rec: Optional[TaskRecord] = None
        with self._lock:
            if rec.done.is_set() or rec.future is not fut:
                return  # this crash was already handled by another drainer
            self._counters["crashes"] += 1
            self._rebuild_pool()
            suspects = [
                r
                for r in self._inflight.values()
                if not r.done.is_set() and r.future is not None
            ]
            for r in suspects:
                r.future = None
                r.attempts += 1
            # Chunk futures whose records were all nulled above will still
            # complete (broken/cancelled); drop their bookkeeping now so
            # the claim table cannot leak across pool rebuilds.
            self._chunk_records = {
                f: rs
                for f, rs in self._chunk_records.items()
                if any(r.future is f for r in rs)
            }
            if self._qactive is not None and self._qactive.future is None:
                self._qactive = None  # the solo run itself crashed
            solo = len(suspects) == 1
            over = [r for r in suspects if r.attempts > self.max_retries]
            under = [r for r in suspects if r.attempts <= self.max_retries]
            if solo and over:
                self._finish_poisoned(over[0])  # exact blame
                poisoned_rec = over[0]
                under = []
                over = []
            for r in over:
                self._counters["retries"] += 1
                log.warning(
                    "worker crash: %s exceeded %d retries under ambiguous "
                    "blame; quarantining for a solo confirmation run",
                    r, self.max_retries,
                )
                self._quarantine.append(r)
            resubmit: List[TaskRecord] = []
            for r in under:
                self._counters["retries"] += 1
                log.warning(
                    "worker crash: retrying %s (attempt %d/%d)",
                    r, r.attempts, self.max_retries,
                )
                if self._quarantining():
                    self._parked.append(r)  # resumes after the quarantine
                else:
                    resubmit.append(r)
            self._submit_records(resubmit)  # re-chunked for the fresh pool
            self._cond.notify_all()  # futures were nulled: drainers re-pump
        if poisoned_rec is not None:
            self._fire_hooks([poisoned_rec])

    # -- completion bookkeeping ----------------------------------------------
    def _merge_cache_delta(self, delta: Optional[Dict[str, int]]) -> None:
        if not delta:
            return
        from repro.cache import merge_stats

        merge_stats(delta)

    def _finish_success(self, rec: TaskRecord, payload: Dict[str, Any]) -> None:
        with self._lock:
            if rec.done.is_set():
                return
            rec.wall_s = payload.pop("wall_s", None)
            payload.pop("key", None)
            rec.payload = payload
            rec.state = TaskState.DONE
            self._memo[rec.key] = rec
            self._inflight.pop(rec.key, None)
            self._counters["simulated"] += 1
            if rec.wall_s is not None:
                self.wall_times.append(rec.wall_s)
                self._note_straggler(rec)
            if self.journal is not None:
                self.journal.record(rec.key, payload)
            rec.done.set()
            self._cond.notify_all()
        self._fire_hooks([rec])

    def _finish_failure(self, rec: TaskRecord, exc: BaseException) -> None:
        with self._lock:
            if rec.done.is_set():
                return
            rec.error = exc
            rec.state = TaskState.FAILED
            self._memo[rec.key] = rec
            self._inflight.pop(rec.key, None)
            self._counters["failed"] += 1
            log.warning("task failed: %s: %s", rec, exc)
            rec.done.set()
            self._cond.notify_all()
        self._fire_hooks([rec])

    def _finish_poisoned(self, rec: TaskRecord) -> None:
        # Caller holds the lock (only reached from _on_broken, which fires
        # the completion hooks once it has released the lock).
        rec.error = PoisonedConfigError(rec.cfg, rec.attempts)
        rec.state = TaskState.POISONED
        self._memo[rec.key] = rec
        self._inflight.pop(rec.key, None)
        self._counters["poisoned"] += 1
        self.poisoned.append(rec.describe())
        log.error("poisoned config: %s", rec.error)
        rec.done.set()
        self._cond.notify_all()

    def _note_straggler(self, rec: TaskRecord) -> None:
        """Log tasks whose wall time dwarfs the running median."""
        if len(self.wall_times) < 4 or rec.wall_s is None:
            return
        median = statistics.median(self.wall_times)
        if median > 0 and rec.wall_s > self.straggler_factor * median:
            entry = rec.describe()
            entry["median_s"] = median
            self.straggler_log.append(entry)
            log.info(
                "straggler: %s took %.3fs (median %.3fs)",
                rec, rec.wall_s, median,
            )

    # -- telemetry ------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Snapshot of every counter (all names always present)."""
        with self._lock:
            return dict(self._counters)

    def journal_counts(self) -> Optional[Dict[str, int]]:
        """Journal telemetry (entries, pending, corruption by kind)."""
        if self.journal is None:
            return None
        return self.journal.counts()

    def snapshot(self) -> Dict[str, Any]:
        """Consistent telemetry snapshot under a single lock acquire.

        Everything ``summary()`` and the serve ``/metrics`` endpoint
        report is gathered while the scheduler lock is held *once*:
        counters, in-flight/memo/quarantine gauges, wall-time aggregates
        and the journal tallies.  Assembling these field-by-field (one
        ``stats()`` call here, one ``journal_counts()`` there) can
        interleave with a concurrent batch and produce torn readings —
        e.g. a ``coalesced`` observed from a later batch than the
        ``submitted`` it is compared against.  Within one snapshot the
        counter invariants always hold (every terminal tally is counted
        against an already-incremented ``submitted``).
        """
        with self._lock:
            wall = {
                "count": len(self.wall_times),
                "total_s": float(sum(self.wall_times)),
                "max_s": max(self.wall_times) if self.wall_times else 0.0,
            }
            snap: Dict[str, Any] = {
                "jobs": self.jobs,
                "counters": dict(self._counters),
                "inflight": len(self._inflight),
                "memoized": len(self._memo),
                "quarantined": len(self._quarantine)
                + (1 if self._qactive is not None else 0),
                "parked": len(self._parked),
                "poisoned_configs": len(self.poisoned),
                "stragglers": len(self.straggler_log),
                "wall": wall,
                "journal": (
                    self.journal.counts() if self.journal is not None else None
                ),
            }
        return snap

    def summary(self) -> str:
        """One greppable line for CLIs and CI logs.

        Built from a single :meth:`snapshot`, so the printed counters are
        mutually consistent even while other threads complete tasks.
        When a journal is attached, its entry count and the per-kind
        corruption tallies (torn batched writes, wrong-version lines,
        ill-shaped payloads) are appended instead of being silently
        dropped at load time.
        """
        snap = self.snapshot()
        s = snap["counters"]
        parts = " ".join(f"{k.replace('_', '-')}={s[k]}" for k in COUNTER_NAMES)
        line = f"scheduler: jobs={self.jobs} {parts}"
        counts = snap["journal"]
        if counts is not None:
            line += (
                f" journal-entries={counts['entries']}"
                f" journal-torn={counts['torn']}"
                f" journal-wrong-version={counts['wrong_version']}"
                f" journal-ill-shaped={counts['ill_shaped']}"
            )
        return line


#: The process-wide scheduler consulted by sweep/autotune/replica drivers.
_active: Optional[Scheduler] = None


def configure(jobs: Optional[int] = None, **kwargs) -> Optional[Scheduler]:
    """Install (or, with ``None``, remove) the process-wide scheduler.

    The previous scheduler, if any, is closed.  Keyword arguments go to
    :class:`Scheduler`.
    """
    global _active
    if _active is not None:
        _active.close()
    _active = Scheduler(jobs=jobs, **kwargs) if jobs is not None else None
    return _active


def active_scheduler() -> Optional[Scheduler]:
    """The currently installed scheduler, if any."""
    return _active


@contextmanager
def scheduled(jobs: int, **kwargs):
    """Temporarily install a process-wide scheduler (restores the prior)."""
    global _active
    prev = _active
    sched = Scheduler(jobs=jobs, **kwargs)
    _active = sched
    try:
        yield sched
    finally:
        _active = prev
        sched.close()
